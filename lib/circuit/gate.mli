(** Quantum gates.

    A deliberately small but closed gate set: enough to express the
    workloads the paper motivates (QFT, GHZ state preparation, Trotterized
    spatially-local Hamiltonians, random circuits) and to verify transpiled
    circuits against a statevector simulator.  Angles are in radians. *)

type one_qubit =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float

type two_qubit =
  | CX  (** Controlled-NOT; first operand is the control. *)
  | CZ
  | CP of float  (** Controlled phase. *)
  | RZZ of float  (** exp(-i θ/2 Z⊗Z) — the Trotter-step interaction. *)
  | SWAP

type t =
  | One of one_qubit * int
  | Two of two_qubit * int * int

val qubits : t -> int list
(** Operand qubits, in order. *)

val is_two_qubit : t -> bool

val is_swap : t -> bool

val map_qubits : (int -> int) -> t -> t
(** Relabel operands (e.g. logical → physical). *)

val is_symmetric : two_qubit -> bool
(** Whether the gate commutes with exchanging its operands (CZ, CP, RZZ,
    SWAP); CX does not. *)

val name : t -> string
(** Lower-case mnemonic used by the QASM-subset printer. *)

val equal : t -> t -> bool
(** Structural equality with float angle equality. *)

val pp : Format.formatter -> t -> unit
