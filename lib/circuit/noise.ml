type model = {
  one_qubit_error : float;
  two_qubit_error : float;
  idle_error_per_layer : float;
  native_swap : bool;
}

let default =
  {
    one_qubit_error = 1e-4;
    two_qubit_error = 1e-2;
    idle_error_per_layer = 1e-3;
    native_swap = false;
  }

let gate_counts circuit =
  List.fold_left
    (fun (ones, twos) gate ->
      if Gate.is_two_qubit gate then (ones, twos + 1) else (ones + 1, twos))
    (0, 0) (Circuit.gates circuit)

let log_success model circuit =
  let costed =
    if model.native_swap then circuit else Circuit.expand_swaps circuit
  in
  let log1m e =
    if e >= 1. then neg_infinity else log (1. -. e)
  in
  let gate_term =
    List.fold_left
      (fun acc gate ->
        acc
        +.
        if Gate.is_two_qubit gate then log1m model.two_qubit_error
        else log1m model.one_qubit_error)
      0. (Circuit.gates costed)
  in
  (* Idle decoherence: every qubit not acted on in a layer idles once. *)
  let n = Circuit.num_qubits costed in
  let idle_slots =
    List.fold_left
      (fun acc layer ->
        let busy =
          List.fold_left (fun b g -> b + List.length (Gate.qubits g)) 0 layer
        in
        acc + (n - busy))
      0 (Circuit.layers costed)
  in
  gate_term +. (float_of_int idle_slots *. log1m model.idle_error_per_layer)

let success_probability model circuit =
  Float.min 1. (Float.max 0. (exp (log_success model circuit)))
