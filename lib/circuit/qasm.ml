let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.filter (fun s -> s <> "")

let gate_of_tokens = function
  | [ op; q ] -> (
      match (op, int_of_string_opt q) with
      | _, None -> Error "bad qubit"
      | "h", Some q -> Ok (Gate.One (Gate.H, q))
      | "x", Some q -> Ok (Gate.One (Gate.X, q))
      | "y", Some q -> Ok (Gate.One (Gate.Y, q))
      | "z", Some q -> Ok (Gate.One (Gate.Z, q))
      | "s", Some q -> Ok (Gate.One (Gate.S, q))
      | "sdg", Some q -> Ok (Gate.One (Gate.Sdg, q))
      | "t", Some q -> Ok (Gate.One (Gate.T, q))
      | "tdg", Some q -> Ok (Gate.One (Gate.Tdg, q))
      | _ -> Error "unknown single-qubit gate")
  | [ op; a; q ] when op = "rx" || op = "ry" || op = "rz" -> (
      match (float_of_string_opt a, int_of_string_opt q) with
      | Some angle, Some q ->
          Ok
            (Gate.One
               ( (match op with
                 | "rx" -> Gate.Rx angle
                 | "ry" -> Gate.Ry angle
                 | _ -> Gate.Rz angle),
                 q ))
      | _ -> Error "bad rotation")
  | [ op; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> (
          match op with
          | "cx" -> Ok (Gate.Two (Gate.CX, a, b))
          | "cz" -> Ok (Gate.Two (Gate.CZ, a, b))
          | "swap" -> Ok (Gate.Two (Gate.SWAP, a, b))
          | _ -> Error "unknown two-qubit gate")
      | _ -> Error "bad qubits")
  | [ op; angle; a; b ] when op = "cp" || op = "rzz" -> (
      match (float_of_string_opt angle, int_of_string_opt a, int_of_string_opt b)
      with
      | Some angle, Some a, Some b ->
          Ok
            (Gate.Two
               ((if op = "cp" then Gate.CP angle else Gate.RZZ angle), a, b))
      | _ -> Error "bad controlled rotation")
  | _ -> Error "unrecognized statement"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno num_qubits acc = function
    | [] -> (
        match num_qubits with
        | None -> Error "missing 'qubits <n>' header"
        | Some n -> (
            try Ok (Circuit.create ~num_qubits:n (List.rev acc))
            with Invalid_argument msg -> Error msg))
    | line :: rest -> (
        match tokens line with
        | [] -> go (lineno + 1) num_qubits acc rest
        | [ "qubits"; n ] when num_qubits = None -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> go (lineno + 1) (Some n) acc rest
            | _ -> Error (Printf.sprintf "line %d: bad qubit count" lineno))
        | toks -> (
            if num_qubits = None then
              Error (Printf.sprintf "line %d: statement before header" lineno)
            else
              match gate_of_tokens toks with
              | Ok gate -> go (lineno + 1) num_qubits (gate :: acc) rest
              | Error msg ->
                  Error
                    (Printf.sprintf "line %d: %s: %S" lineno msg
                       (String.trim line))))
  in
  go 1 None [] lines

let parse_exn text =
  match parse text with Ok c -> c | Error msg -> invalid_arg ("Qasm: " ^ msg)

let gate_line gate =
  let mnemonic = Gate.name gate in
  let qs =
    String.concat " " (List.map string_of_int (Gate.qubits gate))
  in
  match gate with
  | Gate.One ((Gate.Rx a | Gate.Ry a | Gate.Rz a), _)
  | Gate.Two ((Gate.CP a | Gate.RZZ a), _, _) ->
      Printf.sprintf "%s %.17g %s" mnemonic a qs
  | Gate.One _ | Gate.Two _ -> Printf.sprintf "%s %s" mnemonic qs

let print circuit =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "qubits %d\n" (Circuit.num_qubits circuit));
  List.iter
    (fun gate ->
      Buffer.add_string buffer (gate_line gate);
      Buffer.add_char buffer '\n')
    (Circuit.gates circuit);
  Buffer.contents buffer

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let save path circuit =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (print circuit))
