(** Stock logical circuits: the workload families the paper's introduction
    motivates (QFT as the dense stress case, spatially-local Hamiltonian
    simulation as the locality showcase) plus generic benchmark fodder. *)

val qft : int -> Circuit.t
(** Textbook quantum Fourier transform on [n] qubits: per target a Hadamard
    and controlled phases [CP(π/2^k)] from every later qubit, then the
    final qubit-reversal SWAPs.  All-to-all interactions — the paper's
    extreme example of routing pressure. *)

val qft_no_reversal : int -> Circuit.t
(** QFT without the trailing SWAP network (the reversal is usually folded
    into the output relabeling). *)

val ghz : int -> Circuit.t
(** H then a CX chain — nearest-neighbour after any line embedding. *)

val ising_trotter_2d : Qr_graph.Grid.t -> steps:int -> theta:float -> Circuit.t
(** First-order Trotter circuit for the transverse-field Ising model on the
    grid: per step, [RZZ(θ)] on every grid edge and [Rx(θ)] on every qubit.
    Interactions are exactly the coupling edges: the "simulation of
    spatially local Hamiltonians" workload the paper expects to benefit. *)

val random_two_qubit : Qr_util.Rng.t -> num_qubits:int -> gates:int -> Circuit.t
(** Uniformly random CX endpoints — global traffic. *)

val random_local_two_qubit :
  Qr_util.Rng.t ->
  grid:Qr_graph.Grid.t -> radius:int -> gates:int -> Circuit.t
(** Random CX gates whose operand pair lies within Manhattan [radius] on
    the grid — tunable locality. *)

val permutation_circuit : Qr_perm.Perm.t -> Circuit.t
(** SWAPs (one per adjacent transposition of a bubble-sort factorization on
    qubit indices) realizing the permutation on an all-to-all machine; used
    by tests as a known-unitary reference. *)
