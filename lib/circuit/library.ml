module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Rng = Qr_util.Rng

let pi = 4.0 *. atan 1.0

let qft_gates n ~with_reversal =
  let acc = ref [] in
  for target = 0 to n - 1 do
    acc := Gate.One (Gate.H, target) :: !acc;
    for k = 1 to n - 1 - target do
      let angle = pi /. float_of_int (1 lsl k) in
      acc := Gate.Two (Gate.CP angle, target + k, target) :: !acc
    done
  done;
  if with_reversal then
    for q = 0 to (n / 2) - 1 do
      acc := Gate.Two (Gate.SWAP, q, n - 1 - q) :: !acc
    done;
  List.rev !acc

let qft n = Circuit.create ~num_qubits:n (qft_gates n ~with_reversal:true)

let qft_no_reversal n =
  Circuit.create ~num_qubits:n (qft_gates n ~with_reversal:false)

let ghz n =
  if n < 1 then invalid_arg "Library.ghz: need at least one qubit";
  let chain = List.init (n - 1) (fun q -> Gate.Two (Gate.CX, q, q + 1)) in
  Circuit.create ~num_qubits:n (Gate.One (Gate.H, 0) :: chain)

let ising_trotter_2d grid ~steps ~theta =
  if steps < 0 then invalid_arg "Library.ising_trotter_2d: negative steps";
  let n = Grid.size grid in
  let edge_gates =
    List.map
      (fun (u, v) -> Gate.Two (Gate.RZZ theta, u, v))
      (Qr_graph.Graph.edges (Grid.graph grid))
  in
  let field_gates = List.init n (fun q -> Gate.One (Gate.Rx theta, q)) in
  let step = edge_gates @ field_gates in
  let rec repeat k acc = if k = 0 then acc else repeat (k - 1) (acc @ step) in
  Circuit.create ~num_qubits:n (repeat steps [])

let random_two_qubit rng ~num_qubits ~gates =
  if num_qubits < 2 then invalid_arg "Library.random_two_qubit: need 2 qubits";
  let gate _ =
    let a = Rng.int rng num_qubits in
    let b = (a + 1 + Rng.int rng (num_qubits - 1)) mod num_qubits in
    Gate.Two (Gate.CX, a, b)
  in
  Circuit.create ~num_qubits (List.init gates gate)

let random_local_two_qubit rng ~grid ~radius ~gates =
  if radius < 1 then invalid_arg "Library.random_local_two_qubit: radius";
  let n = Grid.size grid in
  if n < 2 then invalid_arg "Library.random_local_two_qubit: need 2 qubits";
  let rec draw () =
    let a = Rng.int rng n in
    let near =
      List.filter
        (fun b -> b <> a && Grid.manhattan grid a b <= radius)
        (List.init n (fun b -> b))
    in
    match near with
    | [] -> draw ()
    | choices -> (a, List.nth choices (Rng.int rng (List.length choices)))
  in
  let gate _ =
    let a, b = draw () in
    Gate.Two (Gate.CX, a, b)
  in
  Circuit.create ~num_qubits:n (List.init gates gate)

let permutation_circuit perm =
  let n = Array.length perm in
  let swaps = ref [] in
  (* Far-end-first swaps along each cycle advance every token one arc:
     the whole cycle is realized (cf. the routers' chain trick). *)
  List.iter
    (fun cycle ->
      let arr = Array.of_list cycle in
      for k = Array.length arr - 2 downto 0 do
        swaps := Gate.Two (Gate.SWAP, arr.(k), arr.(k + 1)) :: !swaps
      done)
    (Perm.cycles perm);
  Circuit.create ~num_qubits:n (List.rev !swaps)
