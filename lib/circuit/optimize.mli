(** Peephole circuit optimization.

    Routing inserts SWAPs mechanically; easy cancellations are left on the
    table when consecutive slices route back and forth.  This pass performs
    the standard local rewrites, iterated to a fixed point:

    - cancel adjacent involutions acting on the same operands
      (SWAP·SWAP, CX·CX, CZ·CZ, H·H, X·X, Y·Y, Z·Z);
    - cancel adjacent inverse pairs (S·Sdg, T·Tdg, either order);
    - fuse consecutive rotations on the same operands
      (Rz·Rz, Rx·Rx, Ry·Ry, CP·CP, RZZ·RZZ — angles add);
    - drop rotations with angle ≡ 0.

    "Adjacent" means no intervening gate touches the shared qubits, so the
    pass commutes gates on disjoint qubits past each other implicitly (it
    tracks the last pending gate per qubit).  Unitary equivalence is
    guaranteed (and statevector-checked in the tests). *)

val run : Circuit.t -> Circuit.t
(** Optimize to a fixed point.  The result has the same qubit count and
    acts identically on every state. *)

val cancelled_gates : Circuit.t -> int
(** Convenience: [size before − size after]. *)
