type t = { num_qubits : int; gates : Gate.t list }

let validate_gate n gate =
  let qs = Gate.qubits gate in
  List.iter
    (fun q ->
      if q < 0 || q >= n then invalid_arg "Circuit: qubit out of range")
    qs;
  match qs with
  | [ a; b ] when a = b -> invalid_arg "Circuit: repeated operand"
  | _ -> ()

let create ~num_qubits gates =
  if num_qubits < 0 then invalid_arg "Circuit: negative qubit count";
  List.iter (validate_gate num_qubits) gates;
  { num_qubits; gates }

let num_qubits t = t.num_qubits

let gates t = t.gates

let size t = List.length t.gates

let two_qubit_count t =
  List.length (List.filter Gate.is_two_qubit t.gates)

let swap_count t = List.length (List.filter Gate.is_swap t.gates)

(* Greedy ASAP layering over shared qubits, shared with [depth]. *)
let layers_of gate_list num_qubits =
  let ready = Array.make num_qubits 0 in
  let buckets = ref [||] in
  let ensure d =
    if d >= Array.length !buckets then begin
      let fresh = Array.make (max (d + 1) (2 * max 1 (Array.length !buckets))) [] in
      Array.blit !buckets 0 fresh 0 (Array.length !buckets);
      buckets := fresh
    end
  in
  let max_depth = ref 0 in
  List.iter
    (fun gate ->
      let qs = Gate.qubits gate in
      let d = List.fold_left (fun acc q -> max acc ready.(q)) 0 qs in
      ensure d;
      !buckets.(d) <- gate :: !buckets.(d);
      List.iter (fun q -> ready.(q) <- d + 1) qs;
      if d + 1 > !max_depth then max_depth := d + 1)
    gate_list;
  List.init !max_depth (fun d -> List.rev !buckets.(d))

let layers t = layers_of t.gates t.num_qubits

let depth t = List.length (layers t)

let two_qubit_layers t =
  layers_of (List.filter Gate.is_two_qubit t.gates) t.num_qubits

let append t gate =
  validate_gate t.num_qubits gate;
  { t with gates = t.gates @ [ gate ] }

let concat a b =
  if a.num_qubits <> b.num_qubits then
    invalid_arg "Circuit.concat: qubit-count mismatch";
  { a with gates = a.gates @ b.gates }

let map_qubits f t =
  create ~num_qubits:t.num_qubits (List.map (Gate.map_qubits f) t.gates)

let of_schedule ~num_qubits sched =
  let gate_list =
    List.concat_map
      (fun layer ->
        List.map (fun (u, v) -> Gate.Two (Gate.SWAP, u, v)) (Array.to_list layer))
      sched
  in
  create ~num_qubits gate_list

let expand_swaps t =
  let expand gate =
    match gate with
    | Gate.Two (Gate.SWAP, a, b) ->
        [ Gate.Two (Gate.CX, a, b); Gate.Two (Gate.CX, b, a); Gate.Two (Gate.CX, a, b) ]
    | Gate.One _ | Gate.Two _ -> [ gate ]
  in
  { t with gates = List.concat_map expand t.gates }

let infeasible_gates g t =
  List.filter
    (fun gate ->
      match Gate.qubits gate with
      | [ a; b ] -> not (Qr_graph.Graph.mem_edge g a b)
      | _ -> false)
    t.gates

let is_feasible g t = infeasible_gates g t = []

let equal a b = a.num_qubits = b.num_qubits && a.gates = b.gates

let pp fmt t =
  Format.fprintf fmt "@[<v>circuit(%d qubits, %d gates)@," t.num_qubits (size t);
  List.iter (fun gate -> Format.fprintf fmt "  %a@," Gate.pp gate) t.gates;
  Format.fprintf fmt "@]"
