(** A minimal line-oriented circuit text format (QASM-flavoured).

    Grammar (one statement per line; [#] starts a comment):
    {v
    qubits <n>
    h|x|y|z|s|sdg|t|tdg <q>
    rx|ry|rz <angle> <q>
    cx|cz|swap <q1> <q2>
    cp|rzz <angle> <q1> <q2>
    v}

    Angles are decimal radians.  [print] and [parse] round-trip. *)

val parse : string -> (Circuit.t, string) result
(** Parse a full document; the error carries the offending line number and
    text. *)

val parse_exn : string -> Circuit.t
(** @raise Invalid_argument with the same message. *)

val print : Circuit.t -> string

val load : string -> (Circuit.t, string) result
(** Read and parse a file. *)

val save : string -> Circuit.t -> unit
