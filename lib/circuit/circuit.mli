(** Quantum circuits as gate sequences with dependency-aware metrics.

    The gate list is in program order; two gates depend on each other iff
    they share a qubit (we do not exploit algebraic commutation), so the
    circuit's DAG is implicit and all layering is greedy ASAP over qubit
    wires — the same convention the paper uses when counting how much
    routing inflates size ([5 → 9]) and depth ([3 → 6]) in its Figure 1. *)

type t

val create : num_qubits:int -> Gate.t list -> t
(** @raise Invalid_argument if any operand is outside [0..num_qubits-1] or
    a two-qubit gate repeats an operand. *)

val num_qubits : t -> int

val gates : t -> Gate.t list
(** Program order. *)

val size : t -> int
(** Total gate count. *)

val two_qubit_count : t -> int

val swap_count : t -> int

val depth : t -> int
(** Length of the critical path (ASAP layering over shared qubits). *)

val layers : t -> Gate.t list list
(** ASAP layers; concatenating them in order is a valid program order. *)

val two_qubit_layers : t -> Gate.t list list
(** ASAP layers of the two-qubit gates only, ignoring single-qubit gates —
    the slices the transpiler routes between. *)

val append : t -> Gate.t -> t

val concat : t -> t -> t
(** Sequential composition.  @raise Invalid_argument on qubit-count
    mismatch. *)

val map_qubits : (int -> int) -> t -> t
(** Relabel all operands (the function must be injective on [0..n-1]). *)

val of_schedule : num_qubits:int -> Qr_route.Schedule.t -> t
(** SWAP gates realizing a routing schedule, layer order preserved. *)

val expand_swaps : t -> t
(** Replace every SWAP with its 3-CX realization — the paper's costing for
    hardware without native SWAPs. *)

val is_feasible : Qr_graph.Graph.t -> t -> bool
(** Every two-qubit gate acts on coupled (adjacent) physical qubits. *)

val infeasible_gates : Qr_graph.Graph.t -> t -> Gate.t list
(** The two-qubit gates violating the coupling constraint. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
