module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Bfs = Qr_graph.Bfs
module Distance = Qr_graph.Distance

type config = {
  lookahead : int;
  lookahead_weight : float;
  decay : float;
  decay_reset : int;
}

let default_config =
  { lookahead = 20; lookahead_weight = 0.5; decay = 0.001; decay_reset = 5 }

(* Dependency DAG over shared qubits: indegrees and successor lists. *)
let build_dag gates num_qubits =
  let gate_array = Array.of_list gates in
  let count = Array.length gate_array in
  let indegree = Array.make count 0 in
  let successors = Array.make count [] in
  let last_on = Array.make num_qubits (-1) in
  Array.iteri
    (fun k gate ->
      List.iter
        (fun q ->
          let p = last_on.(q) in
          if p >= 0 then begin
            successors.(p) <- k :: successors.(p);
            indegree.(k) <- indegree.(k) + 1
          end;
          last_on.(q) <- k)
        (Gate.qubits gate))
    gate_array;
  (gate_array, indegree, successors)

let run ?(config = default_config) ?initial ~graph ~dist circuit =
  let n = Graph.num_vertices graph in
  if Circuit.num_qubits circuit <> n then
    invalid_arg "Sabre_lite.run: circuit and device sizes differ";
  let gate_array, indegree, successors =
    build_dag (Circuit.gates circuit) n
  in
  let count = Array.length gate_array in
  let layout = ref (match initial with Some l -> l | None -> Layout.identity n) in
  let started_from = !layout in
  let out = ref [] in
  let swap_layer_estimate = ref 0 in
  let routed = ref false in
  let emit_logical k =
    out := Gate.map_qubits (fun q -> Layout.phys !layout q) gate_array.(k) :: !out
  in
  let emit_swap u v =
    out := Gate.Two (Gate.SWAP, u, v) :: !out;
    incr swap_layer_estimate;
    layout := Layout.apply_perm !layout (Qr_perm.Perm.transposition n u v)
  in
  (* Front set and the program-order queue of pending two-qubit gates for
     the lookahead window. *)
  let in_front = Array.make count false in
  let front = ref [] in
  let done_ = Array.make count false in
  for k = 0 to count - 1 do
    if indegree.(k) = 0 then begin
      in_front.(k) <- true;
      front := k :: !front
    end
  done;
  let remaining = ref count in
  let complete k =
    done_.(k) <- true;
    decr remaining;
    in_front.(k) <- false;
    List.iter
      (fun s ->
        indegree.(s) <- indegree.(s) - 1;
        if indegree.(s) = 0 then begin
          in_front.(s) <- true;
          front := s :: !front
        end)
      successors.(k)
  in
  let executable k =
    match Gate.qubits gate_array.(k) with
    | [ _ ] -> true
    | [ a; b ] ->
        Graph.mem_edge graph (Layout.phys !layout a) (Layout.phys !layout b)
    | _ -> assert false
  in
  let decay_of = Array.make n 1.0 in
  let gates_since_reset = ref 0 in
  (* Flush every currently executable front gate; true if any executed. *)
  let rec flush () =
    let ready = List.filter executable !front in
    if ready = [] then false
    else begin
      List.iter
        (fun k ->
          emit_logical k;
          complete k)
        ready;
      front := List.filter (fun k -> not done_.(k)) !front;
      incr gates_since_reset;
      if !gates_since_reset >= config.decay_reset then begin
        Array.fill decay_of 0 n 1.0;
        gates_since_reset := 0
      end;
      ignore (flush ());
      true
    end
  in
  let front_two_qubit () =
    List.filter (fun k -> Gate.is_two_qubit gate_array.(k)) !front
  in
  (* The next [lookahead] pending 2-qubit gates beyond the front, program
     order. *)
  let lookahead_gates () =
    let acc = ref [] and found = ref 0 in
    let k = ref 0 in
    while !found < config.lookahead && !k < count do
      if (not done_.(!k)) && (not in_front.(!k))
         && Gate.is_two_qubit gate_array.(!k)
      then begin
        acc := !k :: !acc;
        incr found
      end;
      incr k
    done;
    List.rev !acc
  in
  let pair_distance layout' k =
    match Gate.qubits gate_array.(k) with
    | [ a; b ] ->
        float_of_int
          (Distance.dist dist (Layout.phys layout' a) (Layout.phys layout' b))
    | _ -> 0.
  in
  let score_swap (u, v) =
    let layout' = Layout.apply_perm !layout (Qr_perm.Perm.transposition n u v) in
    let front_cost =
      List.fold_left (fun acc k -> acc +. pair_distance layout' k) 0.
        (front_two_qubit ())
    in
    let look = lookahead_gates () in
    let look_cost =
      match look with
      | [] -> 0.
      | _ ->
          config.lookahead_weight
          /. float_of_int (List.length look)
          *. List.fold_left
               (fun acc k -> acc +. pair_distance layout' k)
               0. look
    in
    max decay_of.(u) decay_of.(v) *. (front_cost +. look_cost)
  in
  let candidate_swaps () =
    let interesting = Array.make n false in
    List.iter
      (fun k ->
        List.iter
          (fun q -> interesting.(Layout.phys !layout q) <- true)
          (Gate.qubits gate_array.(k)))
      (front_two_qubit ());
    let acc = ref [] in
    Graph.iter_edges graph (fun u v ->
        if interesting.(u) || interesting.(v) then acc := (u, v) :: !acc);
    !acc
  in
  (* Deterministic escape hatch: walk the first front gate's operands
     together along a shortest path.  Guarantees progress if the heuristic
     ever stalls. *)
  let force_route () =
    match front_two_qubit () with
    | [] -> assert false
    | k :: _ -> (
        match Gate.qubits gate_array.(k) with
        | [ a; b ] ->
            let pa = Layout.phys !layout a and pb = Layout.phys !layout b in
            let path = Bfs.shortest_path graph pa pb in
            (* Swap a's token forward until adjacent to b. *)
            let rec advance = function
              | u :: (v :: rest as tail) when rest <> [] ->
                  emit_swap u v;
                  advance tail
              | _ -> ()
            in
            advance path
        | _ -> assert false)
  in
  let stall = ref 0 in
  let max_stall = 4 * n in
  while !remaining > 0 do
    if flush () then stall := 0
    else if !front = [] then assert false
    else if !stall >= max_stall then begin
      routed := true;
      force_route ();
      stall := 0
    end
    else begin
      routed := true;
      let candidates = candidate_swaps () in
      let best =
        List.fold_left
          (fun best swap ->
            let s = score_swap swap in
            match best with
            | Some (_, s') when s' <= s -> best
            | _ -> Some (swap, s))
          None candidates
      in
      match best with
      | None -> assert false
      | Some ((u, v), _) ->
          emit_swap u v;
          decay_of.(u) <- decay_of.(u) +. config.decay;
          decay_of.(v) <- decay_of.(v) +. config.decay;
          incr stall
    end
  done;
  {
    Transpile.physical = Circuit.create ~num_qubits:n (List.rev !out);
    initial = started_from;
    final = !layout;
    routed_slices = (if !routed then 1 else 0);
    swap_layers = !swap_layer_estimate;
  }

let run_grid ?config ?initial ?unwind ?unwind_config grid circuit =
  let result =
    run ?config ?initial ~graph:(Grid.graph grid)
      ~dist:(Distance.of_grid grid) circuit
  in
  match unwind with
  | None -> result
  | Some engine ->
      let rho =
        Layout.routing_target ~src:result.Transpile.final
          ~dst:result.Transpile.initial
      in
      let sched =
        Qr_route.Router_intf.route_grid ?config:unwind_config engine grid rho
      in
      let swap_gates =
        List.concat_map
          (fun layer ->
            Array.to_list layer
            |> List.map (fun (u, v) -> Gate.Two (Gate.SWAP, u, v)))
          sched
      in
      let n = Circuit.num_qubits result.Transpile.physical in
      let final = Layout.apply_schedule result.Transpile.final sched in
      assert (Layout.equal final result.Transpile.initial);
      {
        result with
        Transpile.physical =
          Circuit.create ~num_qubits:n
            (Circuit.gates result.Transpile.physical @ swap_gates);
        final;
        swap_layers =
          result.Transpile.swap_layers + Qr_route.Schedule.depth sched;
      }
