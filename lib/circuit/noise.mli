(** A coarse NISQ error model: why depth and size matter.

    The paper's motivation (§I) is that routing inflation makes the output
    state "deviate significantly" on NISQ hardware.  This model turns a
    circuit into an estimated success probability using three standard
    ingredients: a depolarizing error per one-qubit gate, one per two-qubit
    gate, and an idle-decoherence term charged per qubit per layer
    (T1/T2-style, parameterized as a per-layer idle error).  Swaps can be
    costed natively or as 3 CX.

    The numbers are {e estimates} (independent-error approximation:
    log-fidelities add); their value is comparative — ranking transpilation
    results — not absolute. *)

type model = {
  one_qubit_error : float;  (** e.g. 1e-4 *)
  two_qubit_error : float;  (** e.g. 1e-2 *)
  idle_error_per_layer : float;  (** per qubit per layer, e.g. 1e-3 *)
  native_swap : bool;
      (** [true]: a SWAP is one two-qubit gate; [false]: it costs 3 CX. *)
}

val default : model
(** Superconducting-flavoured defaults: 1e-4 / 1e-2 / 1e-3, no native
    SWAP. *)

val log_success : model -> Circuit.t -> float
(** Sum of [log (1 - error)] over all gates plus idle terms: the log of the
    estimated probability that no error occurred. *)

val success_probability : model -> Circuit.t -> float
(** [exp (log_success model circuit)], clamped to [0, 1]. *)

val gate_counts : Circuit.t -> int * int
(** [(one_qubit, two_qubit)] gate counts after SWAP costing is {e not}
    applied (raw circuit). *)
