(** Initial qubit placement (the {e mapping} half of the paper's
    mapping/routing alternation, §II).

    A good starting layout puts frequently-interacting logical qubits on
    nearby physical vertices so that the router has less to do.  The
    heuristic here is the standard greedy interaction-graph embedding:

    + weight every logical pair by how often it interacts (optionally
      discounting later gates, which the router can fix up anyway);
    + seed with the heaviest-interacting qubit on the device's most central
      vertex;
    + repeatedly place the unplaced qubit with the strongest attachment to
      the placed set on the free vertex minimizing the weighted sum of
      distances to its placed partners.

    This is a heuristic, not an optimum (optimal placement is NP-hard);
    tests assert only well-formedness and that it does not lose to the
    identity layout on strongly structured circuits. *)

val interaction_weights :
  ?decay:float -> Circuit.t -> (int * int * float) list
(** Weighted interaction pairs [(q1, q2, w)], [q1 < q2], one entry per
    interacting pair.  [decay] < 1 discounts gate [k] by [decay^layer]
    (default [1.], no discount). *)

val place :
  ?decay:float ->
  graph:Qr_graph.Graph.t ->
  dist:Qr_graph.Distance.t ->
  Circuit.t ->
  Layout.t
(** Greedy placement of the circuit's qubits on the device.  The circuit
    and device must have the same size; qubits with no interactions fill
    the remaining vertices in index order. *)

val anneal :
  ?iterations:int ->
  ?temperature:float ->
  rng:Qr_util.Rng.t ->
  dist:Qr_graph.Distance.t ->
  Circuit.t ->
  Layout.t ->
  Layout.t
(** Simulated-annealing refinement of a layout: random pairwise exchanges
    of physical slots, accepted when they lower {!placement_cost} (or with
    Boltzmann probability otherwise), geometric cooling over [iterations]
    (default [2000·n]) from [temperature] (default the initial cost / 10).
    Returns the best layout seen; never worse than the input. *)

val placement_cost :
  dist:Qr_graph.Distance.t -> Circuit.t -> Layout.t -> float
(** [Σ_pairs w · d(phys q1, phys q2)] — the objective the heuristic
    descends; exposed for evaluation and tests. *)
