type one_qubit =
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float

type two_qubit = CX | CZ | CP of float | RZZ of float | SWAP

type t = One of one_qubit * int | Two of two_qubit * int * int

let qubits = function
  | One (_, q) -> [ q ]
  | Two (_, a, b) -> [ a; b ]

let is_two_qubit = function One _ -> false | Two _ -> true

let is_swap = function Two (SWAP, _, _) -> true | One _ | Two _ -> false

let map_qubits f = function
  | One (g, q) -> One (g, f q)
  | Two (g, a, b) -> Two (g, f a, f b)

let is_symmetric = function
  | CZ | CP _ | RZZ _ | SWAP -> true
  | CX -> false

let name = function
  | One (H, _) -> "h"
  | One (X, _) -> "x"
  | One (Y, _) -> "y"
  | One (Z, _) -> "z"
  | One (S, _) -> "s"
  | One (Sdg, _) -> "sdg"
  | One (T, _) -> "t"
  | One (Tdg, _) -> "tdg"
  | One (Rx _, _) -> "rx"
  | One (Ry _, _) -> "ry"
  | One (Rz _, _) -> "rz"
  | Two (CX, _, _) -> "cx"
  | Two (CZ, _, _) -> "cz"
  | Two (CP _, _, _) -> "cp"
  | Two (RZZ _, _, _) -> "rzz"
  | Two (SWAP, _, _) -> "swap"

let angle = function
  | One ((Rx a | Ry a | Rz a), _) | Two ((CP a | RZZ a), _, _) -> Some a
  | One _ | Two _ -> None

let equal a b = a = b

let pp fmt gate =
  let mnemonic = name gate in
  match (angle gate, qubits gate) with
  | Some a, qs ->
      Format.fprintf fmt "%s(%g) %s" mnemonic a
        (String.concat " " (List.map string_of_int qs))
  | None, qs ->
      Format.fprintf fmt "%s %s" mnemonic
        (String.concat " " (List.map string_of_int qs))
