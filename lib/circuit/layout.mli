(** Layouts: the bijection between logical qubits and physical vertices.

    Following the paper's NISQ assumption (footnote 2), the mapping is
    one-to-one: every logical qubit occupies exactly one physical vertex
    and vice versa (pad the program with idle qubits when it is smaller
    than the device).  Immutable; updates return fresh values. *)

type t

val identity : int -> t
(** Logical [q] on physical [q]. *)

val of_phys_of_logical : int array -> t
(** [of_phys_of_logical a] places logical [q] on physical [a.(q)].
    @raise Invalid_argument unless [a] is a permutation. *)

val size : t -> int

val phys : t -> int -> int
(** Physical vertex of a logical qubit. *)

val logical : t -> int -> int
(** Logical qubit on a physical vertex. *)

val to_phys_array : t -> int array
(** Fresh copy of the logical → physical table. *)

val apply_schedule : t -> Qr_route.Schedule.t -> t
(** The layout after executing a routing schedule on the physical device:
    a schedule realizing permutation [ρ] moves the qubit on vertex [v] to
    [ρ(v)]. *)

val apply_perm : t -> Qr_perm.Perm.t -> t
(** Same, from the realized permutation directly. *)

val routing_target : src:t -> dst:t -> Qr_perm.Perm.t
(** The physical permutation a router must realize to turn layout [src]
    into [dst]: vertex holding logical [q] under [src] must travel to
    [q]'s vertex under [dst]. *)

val random : Qr_util.Rng.t -> int -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
