module Graph = Qr_graph.Graph
module Distance = Qr_graph.Distance

let interaction_weights ?(decay = 1.) circuit =
  let table = Hashtbl.create 64 in
  List.iteri
    (fun layer_index layer ->
      let weight = decay ** float_of_int layer_index in
      List.iter
        (fun gate ->
          match Gate.qubits gate with
          | [ a; b ] ->
              let key = (min a b, max a b) in
              let current = Option.value ~default:0. (Hashtbl.find_opt table key) in
              Hashtbl.replace table key (current +. weight)
          | _ -> ())
        layer)
    (Circuit.layers circuit);
  Hashtbl.fold (fun (a, b) w acc -> (a, b, w) :: acc) table []
  |> List.sort compare

let place ?decay ~graph ~dist circuit =
  let n = Graph.num_vertices graph in
  if Circuit.num_qubits circuit <> n then
    invalid_arg "Placement.place: circuit and device sizes differ";
  let weights = interaction_weights ?decay circuit in
  let attraction = Array.make_matrix n n 0. in
  List.iter
    (fun (a, b, w) ->
      attraction.(a).(b) <- attraction.(a).(b) +. w;
      attraction.(b).(a) <- attraction.(b).(a) +. w)
    weights;
  let degree_weight =
    Array.init n (fun q -> Array.fold_left ( +. ) 0. attraction.(q))
  in
  let phys_of_logical = Array.make n (-1) in
  let vertex_used = Array.make n false in
  let placed = Array.make n false in
  (* The most central vertex: minimum total distance to everything. *)
  let centrality v =
    let acc = ref 0 in
    for u = 0 to n - 1 do
      acc := !acc + Distance.dist dist v u
    done;
    !acc
  in
  let central_vertex =
    let best = ref 0 in
    for v = 1 to n - 1 do
      if centrality v < centrality !best then best := v
    done;
    !best
  in
  let heaviest_qubit =
    let best = ref 0 in
    for q = 1 to n - 1 do
      if degree_weight.(q) > degree_weight.(!best) then best := q
    done;
    !best
  in
  let assign q v =
    phys_of_logical.(q) <- v;
    vertex_used.(v) <- true;
    placed.(q) <- true
  in
  if degree_weight.(heaviest_qubit) > 0. then
    assign heaviest_qubit central_vertex;
  let attachment q =
    let acc = ref 0. in
    for p = 0 to n - 1 do
      if placed.(p) then acc := !acc +. attraction.(q).(p)
    done;
    !acc
  in
  let continue_ = ref true in
  while !continue_ do
    (* Strongest unplaced qubit with a placed partner. *)
    let best_q = ref (-1) and best_a = ref 0. in
    for q = 0 to n - 1 do
      if not placed.(q) then begin
        let a = attachment q in
        if a > !best_a then begin
          best_a := a;
          best_q := q
        end
      end
    done;
    if !best_q = -1 then continue_ := false
    else begin
      let q = !best_q in
      (* Free vertex minimizing weighted distance to placed partners. *)
      let cost v =
        let acc = ref 0. in
        for p = 0 to n - 1 do
          if placed.(p) && attraction.(q).(p) > 0. then
            acc :=
              !acc
              +. (attraction.(q).(p)
                 *. float_of_int (Distance.dist dist v phys_of_logical.(p)))
        done;
        !acc
      in
      let best_v = ref (-1) and best_c = ref infinity in
      for v = 0 to n - 1 do
        if not vertex_used.(v) then begin
          let c = cost v in
          if c < !best_c then begin
            best_c := c;
            best_v := v
          end
        end
      done;
      assign q !best_v
    end
  done;
  (* Isolated qubits fill the remaining vertices in index order. *)
  let free = ref [] in
  for v = n - 1 downto 0 do
    if not vertex_used.(v) then free := v :: !free
  done;
  for q = 0 to n - 1 do
    if not placed.(q) then begin
      match !free with
      | v :: rest ->
          assign q v;
          free := rest
      | [] -> assert false
    end
  done;
  Layout.of_phys_of_logical phys_of_logical

let anneal ?iterations ?temperature ~rng ~dist circuit layout =
  let n = Layout.size layout in
  let weights = interaction_weights circuit in
  let attraction = Array.make n [] in
  List.iter
    (fun (a, b, w) ->
      attraction.(a) <- (b, w) :: attraction.(a);
      attraction.(b) <- (a, w) :: attraction.(b))
    weights;
  let phys = Layout.to_phys_array layout in
  let cost_around q =
    List.fold_left
      (fun acc (p, w) ->
        acc +. (w *. float_of_int (Qr_graph.Distance.dist dist phys.(q) phys.(p))))
      0. attraction.(q)
  in
  let total_cost () =
    List.fold_left
      (fun acc (a, b, w) ->
        acc +. (w *. float_of_int (Qr_graph.Distance.dist dist phys.(a) phys.(b))))
      0. weights
  in
  let iterations = match iterations with Some k -> k | None -> 2000 * n in
  let current = ref (total_cost ()) in
  let temperature =
    ref (match temperature with Some t -> t | None -> max 1e-6 (!current /. 10.))
  in
  let cooling =
    if iterations <= 1 then 1.
    else (1e-3 /. max 1e-6 !temperature) ** (1. /. float_of_int iterations)
  in
  let best_cost = ref !current in
  let best = ref (Array.copy phys) in
  for _ = 1 to iterations do
    if n >= 2 then begin
      let a = Qr_util.Rng.int rng n in
      let b = (a + 1 + Qr_util.Rng.int rng (n - 1)) mod n in
      let before = cost_around a +. cost_around b in
      let tmp = phys.(a) in
      phys.(a) <- phys.(b);
      phys.(b) <- tmp;
      let after = cost_around a +. cost_around b in
      (* Pairs (a,b) themselves are counted twice on both sides, so the
         double-count cancels in the delta. *)
      let delta = after -. before in
      let accept =
        delta < 0.
        || Qr_util.Rng.float rng 1. < exp (-.delta /. max 1e-9 !temperature)
      in
      if accept then begin
        current := !current +. delta;
        if !current < !best_cost then begin
          best_cost := !current;
          best := Array.copy phys
        end
      end
      else begin
        let tmp = phys.(a) in
        phys.(a) <- phys.(b);
        phys.(b) <- tmp
      end
    end;
    temperature := !temperature *. cooling
  done;
  Layout.of_phys_of_logical !best

let placement_cost ~dist circuit layout =
  List.fold_left
    (fun acc (a, b, w) ->
      acc
      +. (w
         *. float_of_int
              (Distance.dist dist (Layout.phys layout a) (Layout.phys layout b))))
    0.
    (interaction_weights circuit)
