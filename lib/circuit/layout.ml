module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule

type t = { phys_of_logical : int array; logical_of_phys : int array }

let of_phys_of_logical a =
  if not (Perm.is_permutation a) then
    invalid_arg "Layout.of_phys_of_logical: not a permutation";
  { phys_of_logical = Array.copy a; logical_of_phys = Perm.inverse a }

let identity n = of_phys_of_logical (Array.init n (fun q -> q))

let size t = Array.length t.phys_of_logical

let phys t q = t.phys_of_logical.(q)

let logical t v = t.logical_of_phys.(v)

let to_phys_array t = Array.copy t.phys_of_logical

let apply_perm t rho =
  if Array.length rho <> size t then invalid_arg "Layout.apply_perm: size";
  of_phys_of_logical (Array.map (fun v -> rho.(v)) t.phys_of_logical)

let apply_schedule t sched =
  apply_perm t (Schedule.apply ~n:(size t) sched)

let routing_target ~src ~dst =
  if size src <> size dst then invalid_arg "Layout.routing_target: size";
  let n = size src in
  let rho = Array.make n 0 in
  for v = 0 to n - 1 do
    rho.(v) <- dst.phys_of_logical.(src.logical_of_phys.(v))
  done;
  Perm.check rho

let random rng n = of_phys_of_logical (Qr_util.Rng.permutation rng n)

let equal a b = a.phys_of_logical = b.phys_of_logical

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>layout(";
  Array.iteri
    (fun q v -> Format.fprintf fmt "@ %d->%d" q v)
    t.phys_of_logical;
  Format.fprintf fmt ")@]"
