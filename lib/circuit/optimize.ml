let angle_is_zero a = Float.abs a < 1e-12

(* Combine two gates acting on identical operand (sets): [Some None] means
   they cancel, [Some (Some g)] means they fuse into [g], [None] means no
   rewrite applies. *)
let combine earlier later =
  let open Gate in
  match (earlier, later) with
  | One (H, q), One (H, q') when q = q' -> Some None
  | One (X, q), One (X, q') when q = q' -> Some None
  | One (Y, q), One (Y, q') when q = q' -> Some None
  | One (Z, q), One (Z, q') when q = q' -> Some None
  | One (S, q), One (Sdg, q') when q = q' -> Some None
  | One (Sdg, q), One (S, q') when q = q' -> Some None
  | One (T, q), One (Tdg, q') when q = q' -> Some None
  | One (Tdg, q), One (T, q') when q = q' -> Some None
  | One (Rz a, q), One (Rz b, q') when q = q' ->
      let s = a +. b in
      Some (if angle_is_zero s then None else Some (One (Rz s, q)))
  | One (Rx a, q), One (Rx b, q') when q = q' ->
      let s = a +. b in
      Some (if angle_is_zero s then None else Some (One (Rx s, q)))
  | One (Ry a, q), One (Ry b, q') when q = q' ->
      let s = a +. b in
      Some (if angle_is_zero s then None else Some (One (Ry s, q)))
  | Two (CX, c, t), Two (CX, c', t') when c = c' && t = t' -> Some None
  | Two (CZ, a, b), Two (CZ, a', b')
    when (a = a' && b = b') || (a = b' && b = a') ->
      Some None
  | Two (SWAP, a, b), Two (SWAP, a', b')
    when (a = a' && b = b') || (a = b' && b = a') ->
      Some None
  | Two (CP x, a, b), Two (CP y, a', b')
    when (a = a' && b = b') || (a = b' && b = a') ->
      let s = x +. y in
      Some (if angle_is_zero s then None else Some (Two (CP s, a, b)))
  | Two (RZZ x, a, b), Two (RZZ y, a', b')
    when (a = a' && b = b') || (a = b' && b = a') ->
      let s = x +. y in
      Some (if angle_is_zero s then None else Some (Two (RZZ s, a, b)))
  | _ -> None

let is_zero_rotation = function
  | Gate.One ((Gate.Rx a | Gate.Ry a | Gate.Rz a), _)
  | Gate.Two ((Gate.CP a | Gate.RZZ a), _, _) ->
      angle_is_zero a
  | Gate.One _ | Gate.Two _ -> false

let one_pass circuit =
  let n = Circuit.num_qubits circuit in
  let out : Gate.t option array =
    Array.make (Circuit.size circuit) None
  in
  let next = ref 0 in
  let last = Array.make n (-1) in
  let process gate =
    if is_zero_rotation gate then ()
    else begin
      let qs = Gate.qubits gate in
      let anchors = List.map (fun q -> last.(q)) qs in
      let same_anchor =
        match anchors with
        | a :: rest when a >= 0 && List.for_all (fun b -> b = a) rest -> Some a
        | _ -> None
      in
      let rewritten =
        match same_anchor with
        | None -> None
        | Some idx -> (
            match out.(idx) with
            | None -> None
            | Some earlier -> (
                match combine earlier gate with
                | None -> None
                | Some replacement ->
                    out.(idx) <- replacement;
                    (match replacement with
                    | None -> List.iter (fun q -> last.(q) <- -1) qs
                    | Some _ -> ());
                    Some ()))
      in
      match rewritten with
      | Some () -> ()
      | None ->
          out.(!next) <- Some gate;
          List.iter (fun q -> last.(q) <- !next) qs;
          incr next
    end
  in
  List.iter process (Circuit.gates circuit);
  let gates =
    Array.to_list (Array.sub out 0 !next) |> List.filter_map (fun g -> g)
  in
  Circuit.create ~num_qubits:n gates

let rec run circuit =
  let optimized = one_pass circuit in
  if Circuit.size optimized < Circuit.size circuit then run optimized
  else optimized

let cancelled_gates circuit = Circuit.size circuit - Circuit.size (run circuit)
