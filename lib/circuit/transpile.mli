(** Slice-based transpilation: the mapping/routing alternation of §II.

    The logical circuit is cut into ASAP slices of two-qubit gates.  For
    each slice, gates already feasible under the current layout execute
    immediately; for the rest, a {e mapping} step picks adjacent meeting
    positions for every blocked pair (midpoint of a shortest path, greedily
    deconflicted), the partial target is extended to a full permutation
    (idle qubits stay put when possible, displaced ones move as little as
    possible), and a {e routing} step — any router with the
    {!router} signature, e.g. the paper's LocalGridRoute — realizes it with
    SWAP layers.  A slice may take several mapping/routing passes when
    meeting positions collide; each pass makes at least one blocked gate
    feasible, so termination is guaranteed.

    Single-qubit gates ride along at their qubit's current position.  The
    output records the final layout so results can be interpreted (or
    verified against a simulator). *)

type router = Qr_perm.Perm.t -> Qr_route.Schedule.t
(** Realizes a physical-vertex permutation on the device. *)

type extension =
  | Nearest  (** Greedy nearest-free-slot completion (default; O(k² log k)). *)
  | Min_total
      (** Hungarian minimum-total-displacement completion of the don't-care
          qubits (O(k³)); typically saves a few swaps per routed slice on
          large devices. *)

type result = {
  physical : Circuit.t;  (** Feasible circuit on physical vertices. *)
  initial : Layout.t;  (** The layout the run started from. *)
  final : Layout.t;  (** Where each logical qubit ends up. *)
  routed_slices : int;  (** Slices that needed at least one routing pass. *)
  swap_layers : int;  (** Total routing layers inserted. *)
}

val run :
  ?initial:Layout.t ->
  ?on_route:(Qr_perm.Perm.t -> Qr_route.Schedule.t -> unit) ->
  ?extension:extension ->
  graph:Qr_graph.Graph.t ->
  dist:Qr_graph.Distance.t ->
  router:router ->
  Circuit.t ->
  result
(** Transpile for an arbitrary coupling graph.  [on_route] observes every
    (permutation, schedule) pair the router is asked to realize — the
    harvesting hook behind the benchmark's realistic workload mode.  The circuit must have
    exactly as many qubits as the graph has vertices (pad with idle qubits
    otherwise).  @raise Invalid_argument on size mismatch. *)

val run_grid :
  ?initial:Layout.t ->
  ?on_route:(Qr_perm.Perm.t -> Qr_route.Schedule.t -> unit) ->
  ?extension:extension ->
  ?engine:Qr_route.Router_intf.t ->
  ?config:Qr_route.Router_config.t ->
  Qr_graph.Grid.t ->
  Circuit.t ->
  result
(** Grid convenience: route every slice with a registered engine (default
    ["local"], the paper's LocalGridRoute with the transpose race).  All
    slices share one {!Qr_route.Router_workspace}, so planning buffers are
    allocated once per transpilation. *)

val verify_feasible : Qr_graph.Graph.t -> result -> bool
(** The physical circuit respects the coupling graph. *)
