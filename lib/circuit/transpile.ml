module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Bfs = Qr_graph.Bfs
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics

type router = Perm.t -> Schedule.t

let c_router_calls = Metrics.counter "router_calls"
let c_routed_slices = Metrics.counter "routed_slices"
let c_transpile_swap_layers = Metrics.counter "transpile_swap_layers"

type extension = Nearest | Min_total

type result = {
  physical : Circuit.t;
  initial : Layout.t;
  final : Layout.t;
  routed_slices : int;
  swap_layers : int;
}

(* Pick adjacent meeting positions for a blocked pair: consecutive vertices
   of a shortest path, tried outwards from the midpoint, skipping slots
   already claimed by other gates of the pass.  The first blocked gate of a
   pass always succeeds (nothing is claimed yet), which guarantees per-pass
   progress. *)
let meeting_slots path claimed =
  let arr = Array.of_list path in
  let len = Array.length arr in
  let mid = (len - 2) / 2 in
  let try_order =
    List.init (len - 1) (fun k ->
        let offset = ((k + 1) / 2) * if k mod 2 = 0 then 1 else -1 in
        mid + offset)
    |> List.filter (fun i -> i >= 0 && i + 1 < len)
  in
  List.find_opt
    (fun i -> (not claimed.(arr.(i))) && not claimed.(arr.(i + 1)))
    try_order
  |> Option.map (fun i -> (arr.(i), arr.(i + 1)))

let run ?initial ?on_route ?(extension = Nearest) ~graph ~dist ~router circuit =
  Trace.with_span "transpile" @@ fun () ->
  let n = Graph.num_vertices graph in
  if Circuit.num_qubits circuit <> n then
    invalid_arg "Transpile.run: circuit and device sizes differ";
  let layout = ref (match initial with Some l -> l | None -> Layout.identity n) in
  let started_from = !layout in
  let out = ref [] in
  let swap_layers = ref 0 in
  let routed_slices = ref 0 in
  let emit gate = out := Gate.map_qubits (fun q -> Layout.phys !layout q) gate :: !out in
  let emit_schedule sched =
    List.iter
      (fun layer ->
        Array.iter
          (fun (u, v) -> out := Gate.Two (Gate.SWAP, u, v) :: !out)
          layer)
      sched;
    swap_layers := !swap_layers + Schedule.depth sched;
    layout := Layout.apply_schedule !layout sched
  in
  let feasible gate =
    match Gate.qubits gate with
    | [ a; b ] -> Graph.mem_edge graph (Layout.phys !layout a) (Layout.phys !layout b)
    | _ -> true
  in
  let route_for_blocked blocked =
    let claimed = Array.make n false in
    let targets = ref [] in
    let still_blocked = ref [] in
    List.iter
      (fun gate ->
        match Gate.qubits gate with
        | [ a; b ] -> (
            let pa = Layout.phys !layout a and pb = Layout.phys !layout b in
            let path = Bfs.shortest_path graph pa pb in
            match meeting_slots path claimed with
            | Some (ma, mb) ->
                claimed.(ma) <- true;
                claimed.(mb) <- true;
                (* Sources may coincide with other gates' targets; that is
                   fine — extend_partial only needs injectivity per side. *)
                targets := (pa, ma) :: (pb, mb) :: !targets;
                still_blocked := gate :: !still_blocked
            | None -> still_blocked := gate :: !still_blocked)
        | _ -> assert false)
      blocked;
    let metric u v = Distance.dist dist u v in
    let rho =
      match extension with
      | Nearest -> Perm.extend_partial ~dist:metric ~n (List.rev !targets)
      | Min_total ->
          Qr_perm.Partial_perm.extend
            (Qr_perm.Partial_perm.Min_total metric)
            (Qr_perm.Partial_perm.make ~n (List.rev !targets))
    in
    Metrics.incr c_router_calls;
    let sched = Trace.with_span "transpile_route" (fun () -> router rho) in
    assert (Schedule.is_valid graph sched);
    assert (Schedule.realizes ~n sched rho);
    (match on_route with Some f -> f rho sched | None -> ());
    emit_schedule sched;
    List.rev !still_blocked
  in
  List.iter
    (fun layer ->
      let ones, twos = List.partition (fun g -> not (Gate.is_two_qubit g)) layer in
      List.iter emit ones;
      let pending = ref twos in
      let routed_here = ref false in
      while !pending <> [] do
        let ready, blocked = List.partition feasible !pending in
        List.iter emit ready;
        if blocked = [] then pending := []
        else begin
          routed_here := true;
          pending := route_for_blocked blocked
        end
      done;
      if !routed_here then incr routed_slices)
    (Circuit.layers circuit);
  Metrics.add c_routed_slices !routed_slices;
  Metrics.add c_transpile_swap_layers !swap_layers;
  {
    physical = Circuit.create ~num_qubits:n (List.rev !out);
    initial = started_from;
    final = !layout;
    routed_slices = !routed_slices;
    swap_layers = !swap_layers;
  }

let run_grid ?initial ?on_route ?extension ?engine ?config grid circuit =
  let engine =
    match engine with
    | Some e -> e
    | None -> Qr_route.Router_registry.get "local"
  in
  (* One workspace per transpilation: every routed slice reuses the same
     planning buffers (same-sized instances throughout). *)
  let ws = Qr_route.Router_workspace.create () in
  let router rho = Qr_route.Router_intf.route_grid ~ws ?config engine grid rho in
  run ?initial ?on_route ?extension ~graph:(Grid.graph grid)
    ~dist:(Distance.of_grid grid) ~router circuit

let verify_feasible graph result = Circuit.is_feasible graph result.physical
