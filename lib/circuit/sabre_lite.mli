(** A SABRE-style swap-insertion transpiler (Li–Ding–Xie, ASPLOS 2019 —
    reference [6] of the paper), as a circuit-level baseline for the
    slice-based {!Transpile}.

    Instead of routing whole permutations between slices, SABRE walks the
    dependency DAG gate by gate: executable front-layer gates are emitted;
    when everything in the front is blocked, one SWAP is inserted — the
    candidate (an edge touching a front gate's operand) minimizing a
    heuristic score, the summed distances of the front-layer pairs plus a
    discounted term for a lookahead window of upcoming gates.  A decay
    penalty on recently-swapped qubits breaks oscillations.

    This implementation is deliberately compact ("lite"): single forward
    pass, no reverse-pass layout search.  It is exact on correctness (same
    verification story as {!Transpile}) and serves as the
    state-of-the-practice comparator in the circuit benchmarks. *)

type config = {
  lookahead : int;  (** Upcoming 2-qubit gates scored beyond the front (default 20). *)
  lookahead_weight : float;  (** Their weight vs the front (default 0.5). *)
  decay : float;  (** Per-use penalty on a qubit's swap score (default 0.001). *)
  decay_reset : int;  (** Emitted-gate period after which decays reset (default 5). *)
}

val default_config : config

val run :
  ?config:config ->
  ?initial:Layout.t ->
  graph:Qr_graph.Graph.t ->
  dist:Qr_graph.Distance.t ->
  Circuit.t ->
  Transpile.result
(** Transpile with SABRE-style swap insertion.  Same contract as
    {!Transpile.run}: every logical gate appears exactly once, only SWAPs
    are added, the result is feasible, and the final layout is reported.
    @raise Invalid_argument on size mismatch. *)

val run_grid :
  ?config:config ->
  ?initial:Layout.t ->
  ?unwind:Qr_route.Router_intf.t ->
  ?unwind_config:Qr_route.Router_config.t ->
  Qr_graph.Grid.t -> Circuit.t ->
  Transpile.result
(** Grid convenience.  With [unwind], the final layout is routed back to
    the initial one by the given engine ({!Layout.routing_target}) and the
    SWAP layers are appended — the output then composes with circuits
    expecting the starting layout; [result.final] equals [result.initial]
    and [swap_layers] includes the unwinding depth. *)
