module Grid = Qr_graph.Grid

type t = {
  size : int;
  displaced : int;
  cycles : int;
  longest_cycle : int;
  total_displacement : int;
  max_displacement : int;
  mean_displacement : float;
}

let compute grid pi =
  let n = Array.length pi in
  let dist u v = Grid.manhattan grid u v in
  let cycle_list = Perm.cycles pi in
  {
    size = n;
    displaced = Perm.support_size pi;
    cycles = List.length cycle_list;
    longest_cycle =
      List.fold_left (fun acc c -> max acc (List.length c)) 0 cycle_list;
    total_displacement = Perm.total_distance dist pi;
    max_displacement = Perm.max_distance dist pi;
    mean_displacement =
      (if n = 0 then 0.
       else float_of_int (Perm.total_distance dist pi) /. float_of_int n);
  }

let displacement_histogram grid pi =
  let diameter = Grid.rows grid - 1 + (Grid.cols grid - 1) in
  let histogram = Array.make (diameter + 1) 0 in
  Array.iteri
    (fun v dst ->
      let d = Grid.manhattan grid v dst in
      histogram.(d) <- histogram.(d) + 1)
    pi;
  histogram

let cycle_bounding_boxes grid pi =
  List.map
    (fun cycle ->
      let coords = List.map (Grid.coord grid) cycle in
      let rows = List.map fst coords and cols = List.map snd coords in
      let min_list = List.fold_left min max_int in
      let max_list = List.fold_left max min_int in
      ( max_list rows - min_list rows + 1,
        max_list cols - min_list cols + 1 ))
    (Perm.cycles pi)

let pp fmt t =
  Format.fprintf fmt
    "n=%d displaced=%d cycles=%d longest=%d total_d=%d max_d=%d mean_d=%.2f"
    t.size t.displaced t.cycles t.longest_cycle t.total_displacement
    t.max_displacement t.mean_displacement
