module Grid = Qr_graph.Grid

let of_coord_map g f =
  let n = Grid.size g in
  let p =
    Array.init n (fun v ->
        let r', c' = f (Grid.coord g v) in
        if not (Grid.in_bounds g r' c') then
          invalid_arg "Grid_perm.of_coord_map: image out of bounds";
        Grid.index g r' c')
  in
  Perm.check p

let transpose g p =
  let n = Grid.size g in
  let pt = Array.make n 0 in
  for v = 0 to n - 1 do
    pt.(Grid.transpose_vertex g v) <- Grid.transpose_vertex g p.(v)
  done;
  Perm.check pt

let untranspose_vertex g v =
  (* Flat index (c, r) of the cols x rows transposed grid back to (r, c);
     pure arithmetic — building the transposed grid here would dominate the
     whole router (each call would construct a CSR graph). *)
  let rows = Grid.rows g in
  if v < 0 || v >= Grid.size g then invalid_arg "Grid_perm.untranspose_vertex";
  let c = v / rows and r = v mod rows in
  (r * Grid.cols g) + c

let coord_pairs g p =
  let acc = ref [] in
  for v = Grid.size g - 1 downto 0 do
    if p.(v) <> v then acc := (Grid.coord g v, Grid.coord g p.(v)) :: !acc
  done;
  !acc

let locality_radius g p =
  Perm.max_distance (fun u v -> Grid.manhattan g u v) p

let pp g fmt p =
  Format.fprintf fmt "@[<v>";
  for r = 0 to Grid.rows g - 1 do
    for c = 0 to Grid.cols g - 1 do
      let r', c' = Grid.coord g p.(Grid.index g r c) in
      Format.fprintf fmt "(%d,%d) " r' c'
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
