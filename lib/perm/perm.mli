(** Permutations of [0..n-1] as destination arrays.

    A permutation [p] sends the token starting at position [i] to position
    [p.(i)] — the routing problem's "where must each qubit go".  Arrays are
    treated as immutable values; every function returns fresh storage. *)

type t = int array
(** [p.(src) = dst].  Invariant: a bijection on [0..n-1]; constructors check
    it, see {!is_permutation}. *)

val is_permutation : int array -> bool
(** Whether the array is a bijection on [0..length-1]. *)

val check : int array -> t
(** Identity on valid input.  @raise Invalid_argument otherwise. *)

val identity : int -> t

val is_identity : t -> bool

val equal : t -> t -> bool

val size : t -> int

val inverse : t -> t
(** [inverse p].(p.(i)) = i]. *)

val compose : t -> t -> t
(** [compose p q] applies [p] first, then [q]: [(compose p q).(i) =
    q.(p.(i))].  @raise Invalid_argument on size mismatch. *)

val transposition : int -> int -> int -> t
(** [transposition n i j] swaps [i] and [j], fixing everything else. *)

val apply_swap : t -> int -> int -> unit
(** In-place helper for simulators: exchange the destinations stored at two
    positions.  This is the only mutating operation exposed, for the inner
    loops that track token positions. *)

val of_cycles : int -> int list list -> t
(** [of_cycles n cycles] builds the permutation whose cycle decomposition is
    [cycles]; elements not mentioned are fixed.  Each cycle
    [[a; b; c]] sends [a→b→c→a].  @raise Invalid_argument on repeated or
    out-of-range elements. *)

val cycles : t -> int list list
(** Cycle decomposition, fixed points omitted.  Canonical form: every cycle
    starts at its smallest element; cycles sorted by that element. *)

val cycle_count : t -> int
(** Number of non-trivial cycles. *)

val fixpoints : t -> int list
(** Positions [i] with [p.(i) = i], ascending. *)

val support_size : t -> int
(** Number of displaced positions. *)

val parity : t -> int
(** [0] for even permutations, [1] for odd. *)

val total_distance : (int -> int -> int) -> t -> int
(** [total_distance dist p] is [Σ_i dist i p.(i)] — the displacement lower
    bound driving token-swapping analyses ([#swaps ≥ total/2],
    [depth ≥ max_i dist i p.(i)]). *)

val max_distance : (int -> int -> int) -> t -> int
(** [max_i dist i p.(i)], a depth lower bound for any routing schedule. *)

val extend_partial :
  ?dist:(int -> int -> int) -> n:int -> (int * int) list -> t
(** [extend_partial ~n pairs] extends the partial bijection given by
    [(src, dst)] pairs to a full permutation.  Unconstrained sources keep
    their position when it is free; the remainder are assigned to leftover
    destinations — nearest-first when [dist] is supplied (greedy on sorted
    candidate pairs), in index order otherwise.  @raise Invalid_argument on
    duplicate sources/destinations or out-of-range values. *)

val pp : Format.formatter -> t -> unit
(** Cycle-notation rendering, e.g. ["(0 3 1)(2 4)"]; ["id"] for identity. *)

val to_string : t -> string
