(** Workload generators: the permutation classes of the paper's evaluation.

    Figure 4 distinguishes (a) uniformly random permutations, (b)
    permutations whose cycles live in disjoint blocks ("local mapping"),
    (c) cycles in overlapping blocks, and (d) long skinny cycles stretching
    in orthogonal directions — the adversarial case discussed in §V.  This
    module also supplies deterministic structured permutations (reversal,
    shifts) that exercise known worst cases of grid routing. *)

type kind =
  | Identity
  | Random  (** Uniform over S_{mn} (Fisher–Yates). *)
  | Block_local of int
      (** [Block_local b]: the grid is tiled by aligned [b×b] blocks (ragged
          at the edges); each block's contents are shuffled uniformly, so
          every cycle is confined to one block. *)
  | Overlapping_blocks of int * int
      (** [Overlapping_blocks (b, count)]: compose [count] uniform shuffles
          of [b×b] windows at random (overlapping) offsets; cycles straddle
          window intersections.  [count = 0] picks a default that covers the
          grid about twice. *)
  | Long_skinny of int
      (** [Long_skinny l]: compose cyclic shifts along random horizontal and
          vertical segments of [l] vertices, yielding long, thin, orthogonal
          overlapping cycles. *)
  | Reversal  (** [(r, c) ↦ (m-1-r, n-1-c)] — the grid's hardest involution. *)
  | Row_shift of int  (** Cyclic shift of rows by [k]. *)
  | Col_shift of int  (** Cyclic shift of columns by [k]. *)
  | Mirror_rows  (** [(r, c) ↦ (m-1-r, c)]. *)

val name : kind -> string
(** Short stable label for tables and CLI flags. *)

val of_name : string -> kind option
(** Parse labels produced by {!name}; parameterized kinds accept
    ["block:4"], ["overlap:4x32"], ["skinny:8"], ["rowshift:2"],
    ["colshift:2"] syntax. *)

val generate : Qr_graph.Grid.t -> kind -> Qr_util.Rng.t -> Perm.t
(** Draw one permutation of the grid's vertices.  Deterministic kinds ignore
    the generator. *)

val paper_kinds : Qr_graph.Grid.t -> kind list
(** The four classes of Figure 4 with the block/segment parameters scaled to
    the grid (blocks of ~quarter side, segments of ~full side). *)
