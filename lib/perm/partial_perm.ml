module Assignment = Qr_bipartite.Assignment

type t = { n : int; dest_of : int array (* -1 = unconstrained *) }

let make ~n pair_list =
  if n < 0 then invalid_arg "Partial_perm.make: negative size";
  let dest_of = Array.make n (-1) in
  let taken = Array.make n false in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Partial_perm.make: value out of range";
      if dest_of.(src) <> -1 then
        invalid_arg "Partial_perm.make: duplicate source";
      if taken.(dst) then invalid_arg "Partial_perm.make: duplicate destination";
      dest_of.(src) <- dst;
      taken.(dst) <- true)
    pair_list;
  { n; dest_of }

let size t = t.n

let pairs t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    if t.dest_of.(src) <> -1 then acc := (src, t.dest_of.(src)) :: !acc
  done;
  !acc

let constrained t =
  Array.fold_left (fun acc d -> if d <> -1 then acc + 1 else acc) 0 t.dest_of

let is_total t = constrained t = t.n

let of_perm p =
  { n = Array.length p; dest_of = Array.copy (Perm.check p) }

type policy =
  | Stay
  | Greedy_nearest of (int -> int -> int)
  | Min_total of (int -> int -> int)

let free_vertices t =
  let taken = Array.make t.n false in
  Array.iter (fun d -> if d <> -1 then taken.(d) <- true) t.dest_of;
  let sources = ref [] and dests = ref [] in
  for v = t.n - 1 downto 0 do
    if t.dest_of.(v) = -1 then sources := v :: !sources;
    if not taken.(v) then dests := v :: !dests
  done;
  (!sources, !dests)

(* Pin every unconstrained vertex that can stay in place; the policies
   below only handle the genuinely displaced remainder. *)
let with_stay_bias t =
  let dest_of = Array.copy t.dest_of in
  let taken = Array.make t.n false in
  Array.iter (fun d -> if d <> -1 then taken.(d) <- true) dest_of;
  for v = 0 to t.n - 1 do
    if dest_of.(v) = -1 && not taken.(v) then begin
      dest_of.(v) <- v;
      taken.(v) <- true
    end
  done;
  { t with dest_of }

let finish dest_of = Perm.check dest_of

let extend_stay t =
  let pinned = with_stay_bias t in
  let sources, dests = free_vertices pinned in
  let dest_of = Array.copy pinned.dest_of in
  List.iter2 (fun src dst -> dest_of.(src) <- dst) sources dests;
  finish dest_of

let extend_greedy dist t =
  let pinned = with_stay_bias t in
  let sources, dests = free_vertices pinned in
  let dest_of = Array.copy pinned.dest_of in
  let taken = Array.make t.n false in
  let candidates =
    List.concat_map
      (fun src -> List.map (fun dst -> (dist src dst, src, dst)) dests)
      sources
  in
  List.iter
    (fun (_, src, dst) ->
      if dest_of.(src) = -1 && not taken.(dst) then begin
        dest_of.(src) <- dst;
        taken.(dst) <- true
      end)
    (List.sort compare candidates);
  finish dest_of

let extend_min_total dist t =
  (* No stay bias here: staying put is simply the zero-cost diagonal, and
     pre-pinning could force a worse global assignment. *)
  let sources, dests = free_vertices t in
  let dest_of = Array.copy t.dest_of in
  let src_arr = Array.of_list sources and dst_arr = Array.of_list dests in
  let k = Array.length src_arr in
  if k > 0 then begin
    let costs =
      Array.init k (fun i -> Array.init k (fun j -> dist src_arr.(i) dst_arr.(j)))
    in
    let assignment, _total = Assignment.solve ~costs in
    Array.iteri (fun i j -> dest_of.(src_arr.(i)) <- dst_arr.(j)) assignment
  end;
  finish dest_of

let extend policy t =
  match policy with
  | Stay -> extend_stay t
  | Greedy_nearest dist -> extend_greedy dist t
  | Min_total dist -> extend_min_total dist t

let total_distance dist t perm =
  let acc = ref 0 in
  for v = 0 to t.n - 1 do
    if t.dest_of.(v) = -1 then acc := !acc + dist v perm.(v)
  done;
  !acc
