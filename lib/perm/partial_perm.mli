(** Partial permutations — routing with don't-care qubits.

    §II of the paper: "Oftentimes, we do not care about the location of
    some qubits.  In such a case, the destinations are given by a bijection
    f : S → R, where S, R ⊂ V.  We can extend f to a permutation by
    selecting destinations for the don't-care qubits."  This module is that
    extension step, with three policies of increasing cost:

    - {!Stay}: unconstrained vertices keep their position when free,
      leftovers are paired in index order — O(n), no distance information;
    - {!Greedy_nearest}: leftover sources take the nearest free destination,
      scanning candidate pairs in distance order — good and cheap;
    - {!Min_total}: leftover sources are assigned to free destinations by a
      minimum-total-distance perfect assignment (Hungarian) — the optimal
      completion w.r.t. total displacement, O(k³) in the number of free
      vertices. *)

type t
(** A validated partial bijection on [0..n-1]. *)

val make : n:int -> (int * int) list -> t
(** [make ~n pairs] with [(source, destination)] pairs.
    @raise Invalid_argument on out-of-range values, duplicate sources or
    duplicate destinations. *)

val size : t -> int
(** The ambient [n]. *)

val pairs : t -> (int * int) list
(** The constrained pairs, sorted by source. *)

val constrained : t -> int
(** Number of constrained sources. *)

val is_total : t -> bool
(** Whether every vertex is constrained (the extension is forced). *)

val of_perm : Perm.t -> t
(** View a full permutation as a (total) partial one. *)

type policy =
  | Stay
  | Greedy_nearest of (int -> int -> int)
  | Min_total of (int -> int -> int)

val extend : policy -> t -> Perm.t
(** Complete to a full permutation under the given policy.  Constrained
    pairs are always honored exactly. *)

val total_distance : (int -> int -> int) -> t -> Perm.t -> int
(** [total_distance dist partial perm] is [Σ dist v (perm v)] over the
    {e unconstrained} vertices only — the quantity {!Min_total} minimizes
    (checked in the tests against brute force). *)
