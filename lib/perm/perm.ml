type t = int array

let size = Array.length

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true)
    p;
  !ok

let check p =
  if not (is_permutation p) then invalid_arg "Perm.check: not a permutation";
  p

let identity n = Array.init n (fun i -> i)

let is_identity p =
  let n = Array.length p in
  let rec loop i = i >= n || (p.(i) = i && loop (i + 1)) in
  loop 0

let equal (p : t) (q : t) = p = q

let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(p.(i)) <- i
  done;
  inv

let compose p q =
  if Array.length p <> Array.length q then
    invalid_arg "Perm.compose: size mismatch";
  Array.map (fun dst -> q.(dst)) p

let transposition n i j =
  if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Perm.transposition";
  let p = identity n in
  p.(i) <- j;
  p.(j) <- i;
  p

let apply_swap p i j =
  let tmp = p.(i) in
  p.(i) <- p.(j);
  p.(j) <- tmp

let of_cycles n cycle_list =
  let p = identity n in
  let seen = Array.make n false in
  let touch x =
    if x < 0 || x >= n then invalid_arg "Perm.of_cycles: element out of range";
    if seen.(x) then invalid_arg "Perm.of_cycles: repeated element";
    seen.(x) <- true
  in
  let install = function
    | [] -> ()
    | first :: _ as cycle ->
        List.iter touch cycle;
        let rec chain = function
          | [ last ] -> p.(last) <- first
          | x :: (y :: _ as rest) ->
              p.(x) <- y;
              chain rest
          | [] -> ()
        in
        chain cycle
  in
  List.iter install cycle_list;
  p

let cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let acc = ref [] in
  for start = 0 to n - 1 do
    if (not seen.(start)) && p.(start) <> start then begin
      let rec walk x path =
        seen.(x) <- true;
        if p.(x) = start then List.rev (x :: path) else walk p.(x) (x :: path)
      in
      acc := walk start [] :: !acc
    end
  done;
  List.rev !acc

let cycle_count p = List.length (cycles p)

let fixpoints p =
  let acc = ref [] in
  for i = Array.length p - 1 downto 0 do
    if p.(i) = i then acc := i :: !acc
  done;
  !acc

let support_size p = Array.length p - List.length (fixpoints p)

let parity p =
  (* n minus the number of cycles (counting fixed points) mod 2. *)
  let n = Array.length p in
  let trivial = List.length (fixpoints p) in
  let nontrivial = cycles p in
  let cycle_total = trivial + List.length nontrivial in
  (n - cycle_total) mod 2

let total_distance dist p =
  let acc = ref 0 in
  Array.iteri (fun i dst -> acc := !acc + dist i dst) p;
  !acc

let max_distance dist p =
  let acc = ref 0 in
  Array.iteri (fun i dst -> acc := max !acc (dist i dst)) p;
  !acc

let extend_partial ?dist ~n pairs =
  let p = Array.make n (-1) in
  let taken = Array.make n false in
  let bind src dst =
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Perm.extend_partial: value out of range";
    if p.(src) <> -1 then invalid_arg "Perm.extend_partial: duplicate source";
    if taken.(dst) then invalid_arg "Perm.extend_partial: duplicate destination";
    p.(src) <- dst;
    taken.(dst) <- true
  in
  List.iter (fun (src, dst) -> bind src dst) pairs;
  (* Pass 1: unconstrained sources stay put when their slot is free. *)
  for i = 0 to n - 1 do
    if p.(i) = -1 && not taken.(i) then begin
      p.(i) <- i;
      taken.(i) <- true
    end
  done;
  let free_sources = ref [] and free_dests = ref [] in
  for i = n - 1 downto 0 do
    if p.(i) = -1 then free_sources := i :: !free_sources;
    if not taken.(i) then free_dests := i :: !free_dests
  done;
  (match dist with
  | None ->
      List.iter2 (fun src dst -> p.(src) <- dst) !free_sources !free_dests
  | Some dist ->
      (* Greedy nearest-first over all (source, destination) candidates. *)
      let candidates =
        List.concat_map
          (fun src -> List.map (fun dst -> (dist src dst, src, dst)) !free_dests)
          !free_sources
      in
      let sorted = List.sort compare candidates in
      List.iter
        (fun (_, src, dst) ->
          if p.(src) = -1 && not taken.(dst) then begin
            p.(src) <- dst;
            taken.(dst) <- true
          end)
        sorted);
  check p

let pp fmt p =
  match cycles p with
  | [] -> Format.pp_print_string fmt "id"
  | cycle_list ->
      let print_cycle cycle =
        Format.fprintf fmt "(%s)"
          (String.concat " " (List.map string_of_int cycle))
      in
      List.iter print_cycle cycle_list

let to_string p = Format.asprintf "%a" pp p
