(** Descriptive statistics of permutations on grids — the knobs that
    characterize workload locality in the benchmark reports. *)

type t = {
  size : int;  (** Ambient n. *)
  displaced : int;  (** Non-fixed points. *)
  cycles : int;  (** Non-trivial cycles. *)
  longest_cycle : int;  (** 0 for the identity. *)
  total_displacement : int;  (** Σ Manhattan distances. *)
  max_displacement : int;
  mean_displacement : float;  (** Over all n positions. *)
}

val compute : Qr_graph.Grid.t -> Perm.t -> t

val displacement_histogram : Qr_graph.Grid.t -> Perm.t -> int array
(** [h.(d)] counts positions displaced exactly [d]; indices up to the grid
    diameter. *)

val cycle_bounding_boxes : Qr_graph.Grid.t -> Perm.t -> (int * int) list
(** Per non-trivial cycle, the (height, width) of its coordinate bounding
    box — the paper's informal notion of cycles "contained within small
    regions" (block-local workloads have small boxes, long-skinny ones are
    thin and long). *)

val pp : Format.formatter -> t -> unit
