module Grid = Qr_graph.Grid
module Rng = Qr_util.Rng

type kind =
  | Identity
  | Random
  | Block_local of int
  | Overlapping_blocks of int * int
  | Long_skinny of int
  | Reversal
  | Row_shift of int
  | Col_shift of int
  | Mirror_rows

let name = function
  | Identity -> "identity"
  | Random -> "random"
  | Block_local b -> Printf.sprintf "block:%d" b
  | Overlapping_blocks (b, count) -> Printf.sprintf "overlap:%dx%d" b count
  | Long_skinny l -> Printf.sprintf "skinny:%d" l
  | Reversal -> "reversal"
  | Row_shift k -> Printf.sprintf "rowshift:%d" k
  | Col_shift k -> Printf.sprintf "colshift:%d" k
  | Mirror_rows -> "mirror"

let of_name s =
  let after prefix =
    let lp = String.length prefix in
    if String.length s > lp && String.sub s 0 lp = prefix then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  let int_param prefix wrap =
    match after prefix with
    | Some rest -> Option.map wrap (int_of_string_opt rest)
    | None -> None
  in
  match s with
  | "identity" -> Some Identity
  | "random" -> Some Random
  | "reversal" -> Some Reversal
  | "mirror" -> Some Mirror_rows
  | _ ->
      let parsers =
        [ (fun () -> int_param "block:" (fun b -> Block_local b));
          (fun () -> int_param "skinny:" (fun l -> Long_skinny l));
          (fun () -> int_param "rowshift:" (fun k -> Row_shift k));
          (fun () -> int_param "colshift:" (fun k -> Col_shift k));
          (fun () ->
            match after "overlap:" with
            | Some rest -> (
                match String.index_opt rest 'x' with
                | Some cut -> (
                    let b = int_of_string_opt (String.sub rest 0 cut) in
                    let c =
                      int_of_string_opt
                        (String.sub rest (cut + 1)
                           (String.length rest - cut - 1))
                    in
                    match (b, c) with
                    | Some b, Some c -> Some (Overlapping_blocks (b, c))
                    | _ -> None)
                | None -> None)
            | None -> None) ]
      in
      List.fold_left
        (fun acc parse -> match acc with Some _ -> acc | None -> parse ())
        None parsers

(* Compose a uniform shuffle of [positions] after the accumulated permutation
   [p] (in place): tokens headed into the window get redistributed inside
   it.  Overlapping windows therefore create cycles spanning several
   windows. *)
let compose_window_shuffle rng p positions =
  let n = Array.length p in
  let k = Array.length positions in
  let sigma = Rng.permutation rng k in
  let image = Array.init n (fun v -> v) in
  for i = 0 to k - 1 do
    image.(positions.(i)) <- positions.(sigma.(i))
  done;
  for v = 0 to n - 1 do
    p.(v) <- image.(p.(v))
  done

(* Same, but with a cyclic shift of the positions instead of a shuffle. *)
let compose_cyclic_shift p positions =
  let n = Array.length p in
  let k = Array.length positions in
  let image = Array.init n (fun v -> v) in
  for i = 0 to k - 1 do
    image.(positions.(i)) <- positions.((i + 1) mod k)
  done;
  for v = 0 to n - 1 do
    p.(v) <- image.(p.(v))
  done

let block_window g r0 c0 height width =
  let acc = ref [] in
  for r = min (r0 + height) (Grid.rows g) - 1 downto r0 do
    for c = min (c0 + width) (Grid.cols g) - 1 downto c0 do
      acc := Grid.index g r c :: !acc
    done
  done;
  Array.of_list !acc

let block_local g b rng =
  if b <= 0 then invalid_arg "Generators: block size must be positive";
  let p = Perm.identity (Grid.size g) in
  let r0 = ref 0 in
  while !r0 < Grid.rows g do
    let c0 = ref 0 in
    while !c0 < Grid.cols g do
      compose_window_shuffle rng p (block_window g !r0 !c0 b b);
      c0 := !c0 + b
    done;
    r0 := !r0 + b
  done;
  p

let overlapping_blocks g b count rng =
  if b <= 0 then invalid_arg "Generators: block size must be positive";
  let count =
    if count > 0 then count
    else max 4 (2 * Grid.size g / max 1 (b * b))
  in
  let p = Perm.identity (Grid.size g) in
  for _ = 1 to count do
    let r0 = Rng.int rng (max 1 (Grid.rows g - b + 1)) in
    let c0 = Rng.int rng (max 1 (Grid.cols g - b + 1)) in
    compose_window_shuffle rng p (block_window g r0 c0 b b)
  done;
  p

let long_skinny g l rng =
  if l <= 1 then invalid_arg "Generators: segment length must exceed 1";
  let p = Perm.identity (Grid.size g) in
  let horizontal_len = min l (Grid.cols g) in
  let vertical_len = min l (Grid.rows g) in
  let count = max 2 (2 * Grid.size g / l) in
  for step = 1 to count do
    if step mod 2 = 0 && horizontal_len > 1 then begin
      let r = Rng.int rng (Grid.rows g) in
      let c0 = Rng.int rng (Grid.cols g - horizontal_len + 1) in
      compose_cyclic_shift p (block_window g r c0 1 horizontal_len)
    end
    else if vertical_len > 1 then begin
      let c = Rng.int rng (Grid.cols g) in
      let r0 = Rng.int rng (Grid.rows g - vertical_len + 1) in
      compose_cyclic_shift p (block_window g r0 c vertical_len 1)
    end
  done;
  p

let generate g kind rng =
  let rows = Grid.rows g and cols = Grid.cols g in
  match kind with
  | Identity -> Perm.identity (Grid.size g)
  | Random -> Perm.check (Rng.permutation rng (Grid.size g))
  | Block_local b -> block_local g b rng
  | Overlapping_blocks (b, count) -> overlapping_blocks g b count rng
  | Long_skinny l -> long_skinny g l rng
  | Reversal ->
      Grid_perm.of_coord_map g (fun (r, c) -> (rows - 1 - r, cols - 1 - c))
  | Row_shift k ->
      Grid_perm.of_coord_map g (fun (r, c) -> (((r + k) mod rows + rows) mod rows, c))
  | Col_shift k ->
      Grid_perm.of_coord_map g (fun (r, c) -> (r, ((c + k) mod cols + cols) mod cols))
  | Mirror_rows -> Grid_perm.of_coord_map g (fun (r, c) -> (rows - 1 - r, c))

let paper_kinds g =
  let side = min (Grid.rows g) (Grid.cols g) in
  let b = max 2 (side / 4) in
  let l = max 2 side in
  [ Random; Block_local b; Overlapping_blocks (b, 0); Long_skinny l ]
