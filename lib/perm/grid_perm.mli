(** Permutations viewed through grid coordinates. *)

val of_coord_map : Qr_graph.Grid.t -> (int * int -> int * int) -> Perm.t
(** [of_coord_map g f] builds the flat permutation sending [(r, c)] to
    [f (r, c)].  @raise Invalid_argument if [f] is not a bijection of the
    grid's coordinates. *)

val transpose : Qr_graph.Grid.t -> Perm.t -> Perm.t
(** [transpose g p] is the paper's [π^T], a permutation on [transpose g]:
    [π^T (c, r) = (c', r')] iff [π (r, c) = (r', c')].  Routing [π^T] on the
    transposed grid and mirroring the schedule solves the original
    instance. *)

val untranspose_vertex : Qr_graph.Grid.t -> int -> int
(** Inverse of {!Qr_graph.Grid.transpose_vertex}: map a flat index of
    [transpose g] back to the corresponding flat index of [g]. *)

val coord_pairs : Qr_graph.Grid.t -> Perm.t -> ((int * int) * (int * int)) list
(** All [((r, c), (r', c'))] moves, displaced positions only, row-major. *)

val locality_radius : Qr_graph.Grid.t -> Perm.t -> int
(** Largest Manhattan displacement — the "how local is this permutation"
    statistic the workload generators are parameterized by. *)

val pp : Qr_graph.Grid.t -> Format.formatter -> Perm.t -> unit
(** Render as a rows × cols table of destination coordinates. *)
