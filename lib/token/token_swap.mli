(** Approximate token swapping (ATS), the paper's baseline.

    The 4-approximation of Miltzow et al. [3], as implemented in the
    Childs–Schoute–Unsal transpiler [9] the paper compares against: maintain
    the digraph with an arc [v → u] whenever [u] is a neighbor of [v]
    strictly closer to the destination of the token on [v]; repeatedly

    - if the digraph has a cycle, swap along it (a chain of k−1 swaps that
      advances all k tokens — every swap "happy"), else
    - follow arcs from an unplaced vertex to a placed one (a maximal path)
      and perform the single "unhappy" swap on its last arc, advancing one
      token at the cost of displacing a placed token by one.

    Each chain is found by a deterministic greedy walk (smallest-index
    closer neighbor first), so results are reproducible.  A safety cap
    bounds the swap count; the theoretical guarantee keeps it far from
    binding. *)

module Schedule = Qr_route.Schedule
(** Re-export so callers need not also depend on [qr_route]. *)

val serial :
  ?trials:int ->
  ?seed:int ->
  Qr_graph.Graph.t -> Qr_graph.Distance.t -> Qr_perm.Perm.t -> (int * int) list
(** The swap sequence, in execution order.  Applying the swaps realizes the
    permutation (checked by an internal assertion).  [trials] (default 1)
    reruns the algorithm with randomized vertex priorities — mirroring the
    reference implementation's retries — and keeps the shortest sequence;
    trial 0 is always the deterministic identity-priority run, and [seed]
    (default 0) fixes the rest.
    @raise Invalid_argument on size mismatch or a disconnected graph.
    @raise Failure if every trial exceeds the safety cap (max(4n², 8·Σd)
    swaps — the 4-approximation guarantee keeps honest runs far below). *)

val schedule :
  ?trials:int ->
  ?seed:int ->
  Qr_graph.Graph.t -> Qr_graph.Distance.t -> Qr_perm.Perm.t -> Schedule.t
(** {!serial} parallelized into matchings by greedy ASAP re-layering —
    "the swaps discovered by the token swapping algorithm" as a depth
    schedule, the quantity Figure 4 plots for ATS. *)

val swap_count_lower_bound : Qr_graph.Distance.t -> Qr_perm.Perm.t -> int
(** [⌈Σ_v d(v, π(v)) / 2⌉]: every swap reduces total displacement by at
    most 2.  [serial] is guaranteed within 4× of the optimum, which is at
    least this. *)
