module Graph = Qr_graph.Graph

let closer_neighbors g dist dest_at priority v =
  let target = dest_at.(v) in
  if target = v then []
  else begin
    let dv = dist v target in
    let candidates =
      Graph.fold_neighbors g v
        (fun acc u -> if dist u target < dv then u :: acc else acc)
        []
    in
    List.sort (fun a b -> compare priority.(a) priority.(b)) candidates
  end

let is_happy dist dest_at u v =
  let tu = dest_at.(u) and tv = dest_at.(v) in
  dist v tu < dist u tu && dist u tv < dist v tv

let find_cycle g dist dest_at priority roots =
  let n = Graph.num_vertices g in
  let color = Array.make n 0 in
  (* 0 white, 1 on the current DFS path, 2 done *)
  let found = ref None in
  let rec visit path v =
    color.(v) <- 1;
    let rec try_arcs = function
      | [] -> ()
      | u :: rest -> (
          if !found = None then
            match color.(u) with
            | 0 -> (
                visit (v :: path) u;
                match !found with None -> try_arcs rest | Some _ -> ())
            | 1 ->
                (* The suffix of the path from u's occurrence is the
                   cycle. *)
                let rec collect acc = function
                  | [] -> assert false
                  | w :: ws -> if w = u then u :: acc else collect (w :: acc) ws
                in
                found := Some (collect [] (v :: path))
            | _ -> try_arcs rest)
    in
    try_arcs (closer_neighbors g dist dest_at priority v);
    if !found = None then color.(v) <- 2
  in
  List.iter
    (fun v ->
      if !found = None && color.(v) = 0 && dest_at.(v) <> v then visit [] v)
    roots;
  !found

let find_unhappy_arc g dist dest_at priority start =
  let rec walk prev v =
    match closer_neighbors g dist dest_at priority v with
    | [] ->
        assert (prev >= 0);
        (prev, v)
    | u :: _ -> walk v u
  in
  walk (-1) start
