(** Shared internals of the token-swapping algorithms: the swap digraph D
    and its chain searches.  [dest_at.(v)] is the destination of the token
    currently on [v]; D has an arc [v → u] for each neighbor [u] strictly
    closer to [dest_at.(v)] (placed tokens have no arcs).  [priority]
    perturbs arc and root order for randomized trials; identity keeps runs
    deterministic. *)

val closer_neighbors :
  Qr_graph.Graph.t -> (int -> int -> int) -> int array -> int array -> int ->
  int list
(** Out-neighbors of a vertex in D, sorted by priority. *)

val is_happy : (int -> int -> int) -> int array -> int -> int -> bool
(** Whether swapping the edge strictly helps both tokens (a 2-cycle of D). *)

val find_cycle :
  Qr_graph.Graph.t -> (int -> int -> int) -> int array -> int array ->
  int list -> int list option
(** Any directed cycle of D (vertices in arc order), by DFS from [roots]. *)

val find_unhappy_arc :
  Qr_graph.Graph.t -> (int -> int -> int) -> int array -> int array -> int ->
  int * int
(** Last arc of a maximal D-path from an unplaced vertex; the endpoint
    carries a placed token (requires D acyclic, otherwise may not
    terminate). *)
