(** Token-swapping engines for the {!Qr_route.Router_registry}.

    [ats] (depth-oriented parallel ATS, {!Parallel_ats.route}) and
    [ats-serial] ({!Token_swap.schedule}, the serial order re-layered) —
    the generic-graph engines every coupling graph can use, and the
    fallback target for grid-only engines.  They read [ats_trials]
    (parallel only) and [seed] from the configuration. *)

val ats : Qr_route.Router_intf.t

val ats_serial : Qr_route.Router_intf.t

val register : unit -> unit
(** Register both engines; idempotent.  The [qroute] umbrella calls this at
    initialization, so programs linking [qroute] need not. *)

val graph_of_input :
  Qr_route.Router_intf.input ->
  Qr_graph.Graph.t * Qr_graph.Distance.t * Qr_perm.Perm.t
(** View any input as a generic graph (grids via {!Qr_graph.Grid.graph} and
    {!Qr_graph.Distance.of_grid}). *)
