module Graph = Qr_graph.Graph
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Rng = Qr_util.Rng
module Schedule = Qr_route.Schedule
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics
module Cancel = Qr_util.Cancel

let c_trials = Metrics.counter "ats_parallel_trials"
let c_happy_layers = Metrics.counter "ats_happy_layers"
let c_fallbacks = Metrics.counter "ats_fallback_steps"

let route_one ~seed g oracle pi =
  let n = Graph.num_vertices g in
  let dist u v = Distance.dist oracle u v in
  let dest_at = Array.copy pi in
  let layers = ref [] in
  let do_swap u v =
    let tmp = dest_at.(u) in
    dest_at.(u) <- dest_at.(v);
    dest_at.(v) <- tmp
  in
  let push_layer swaps =
    List.iter (fun (u, v) -> do_swap u v) swaps;
    layers := Array.of_list swaps :: !layers
  in
  (* Edge order of the greedy harvest, perturbed per seed so ties don't
     always favour low-index corners. *)
  let edge_array = Array.of_list (Graph.edges g) in
  Rng.shuffle_in_place (Rng.create seed) edge_array;
  let priority = Array.init n (fun v -> v) in
  let roots = List.init n (fun v -> v) in
  let used = Array.make n false in
  let happy_layer () =
    Array.fill used 0 n false;
    let batch = ref [] in
    Array.iter
      (fun (u, v) ->
        if (not used.(u)) && (not used.(v))
           && Ats_core.is_happy dist dest_at u v
        then begin
          used.(u) <- true;
          used.(v) <- true;
          batch := (u, v) :: !batch
        end)
      edge_array;
    !batch
  in
  let total = Perm.total_distance dist pi in
  let cap = max (4 * n * n) ((8 * total) + 64) in
  let cancel = Cancel.ambient () in
  let rounds = ref 0 in
  let finished = ref false in
  while not !finished do
    Cancel.poll cancel;
    incr rounds;
    if !rounds > cap then failwith "Parallel_ats.route: safety cap exceeded";
    match happy_layer () with
    | _ :: _ as batch ->
        Metrics.incr c_happy_layers;
        push_layer batch
    | [] -> (
        (* Stuck: fall back to one serial ATS step to restore progress —
           a cycle chain (emitted as singleton layers; the final compaction
           merges what it can) or a single unhappy swap. *)
        match Ats_core.find_cycle g dist dest_at priority roots with
        | Some cycle ->
            Metrics.incr c_fallbacks;
            let arr = Array.of_list cycle in
            for k = Array.length arr - 2 downto 0 do
              push_layer [ (arr.(k), arr.(k + 1)) ]
            done
        | None -> (
            let rec first_unplaced v =
              if v >= n then None
              else if dest_at.(v) <> v then Some v
              else first_unplaced (v + 1)
            in
            match first_unplaced 0 with
            | None -> finished := true
            | Some v ->
                Metrics.incr c_fallbacks;
                let a, b = Ats_core.find_unhappy_arc g dist dest_at priority v in
                push_layer [ (a, b) ]))
  done;
  let sched = Schedule.compact ~n (List.rev !layers) in
  assert (Schedule.realizes ~n sched pi);
  sched

let route ?(trials = 4) ?(seed = 0) g oracle pi =
  let n = Graph.num_vertices g in
  if Array.length pi <> n then invalid_arg "Parallel_ats.route: size mismatch";
  if not (Perm.is_permutation pi) then
    invalid_arg "Parallel_ats.route: not a permutation";
  if not (Graph.is_connected g) then
    invalid_arg "Parallel_ats.route: graph must be connected";
  if trials < 1 then invalid_arg "Parallel_ats.route: trials must be positive";
  let trial k =
    Metrics.incr c_trials;
    Trace.with_span "ats_trial"
      ~attrs:[ ("trial", Trace.Int k); ("serial", Trace.Bool false) ]
      (fun () -> route_one ~seed:(seed + k) g oracle pi)
  in
  let rec best k champion =
    if k >= trials then champion
    else begin
      let candidate = trial k in
      let champion =
        if Schedule.depth candidate < Schedule.depth champion then candidate
        else champion
      in
      best (k + 1) champion
    end
  in
  best 1 (trial 0)
