module Graph = Qr_graph.Graph
module Perm = Qr_perm.Perm

(* Configurations are encoded as strings (one byte per vertex: the
   destination of the token sitting there), giving cheap hashing. *)
let encode config =
  String.init (Array.length config) (fun i -> Char.chr config.(i))

let check_size g =
  if Graph.num_vertices g > 10 then
    invalid_arg "Exact: graph too large for exhaustive search"

let bfs ~max_states ~moves g pi =
  check_size g;
  let n = Graph.num_vertices g in
  if Array.length pi <> n then invalid_arg "Exact: size mismatch";
  let start = Array.copy pi in
  let goal = encode (Array.init n (fun i -> i)) in
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let start_key = encode start in
  Hashtbl.replace seen start_key ();
  Queue.add (start, 0) queue;
  let answer = ref None in
  while !answer = None && not (Queue.is_empty queue) do
    let config, steps = Queue.pop queue in
    if encode config = goal then answer := Some steps
    else
      moves config (fun next ->
          let key = encode next in
          if not (Hashtbl.mem seen key) then begin
            if Hashtbl.length seen >= max_states then
              failwith "Exact: state budget exhausted";
            Hashtbl.replace seen key ();
            Queue.add (next, steps + 1) queue
          end)
  done;
  match !answer with
  | Some steps -> steps
  | None -> failwith "Exact: goal unreachable (disconnected graph?)"

let min_swaps ?(max_states = 2_000_000) g pi =
  let moves config emit =
    Graph.iter_edges g (fun u v ->
        let next = Array.copy config in
        let tmp = next.(u) in
        next.(u) <- next.(v);
        next.(v) <- tmp;
        emit next)
  in
  bfs ~max_states ~moves g pi

let matchings_of_graph g =
  let edge_array = Array.of_list (Graph.edges g) in
  let num = Array.length edge_array in
  let n = Graph.num_vertices g in
  let used = Array.make n false in
  let acc = ref [] in
  let rec extend k current =
    if k = num then begin
      if current <> [] then acc := List.rev current :: !acc
    end
    else begin
      extend (k + 1) current;
      let u, v = edge_array.(k) in
      if (not used.(u)) && not used.(v) then begin
        used.(u) <- true;
        used.(v) <- true;
        extend (k + 1) ((u, v) :: current);
        used.(u) <- false;
        used.(v) <- false
      end
    end
  in
  extend 0 [];
  !acc

let min_depth ?(max_states = 2_000_000) g pi =
  let all_matchings = matchings_of_graph g in
  let moves config emit =
    List.iter
      (fun matching ->
        let next = Array.copy config in
        List.iter
          (fun (u, v) ->
            let tmp = next.(u) in
            next.(u) <- next.(v);
            next.(v) <- tmp)
          matching;
        emit next)
      all_matchings
  in
  bfs ~max_states ~moves g pi
