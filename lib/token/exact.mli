(** Exact token-swapping and routing-depth solvers by state-space search.

    Both problems are NP-hard; these brute-force BFS solvers exist solely to
    calibrate the heuristics on tiny instances in the test suite and the
    ablation benchmarks (approximation-ratio measurements). *)

val min_swaps : ?max_states:int -> Qr_graph.Graph.t -> Qr_perm.Perm.t -> int
(** Minimum number of swaps realizing the permutation: BFS over token
    configurations, one edge-swap per move.  @raise Invalid_argument if the
    graph has more than 10 vertices.  @raise Failure when [max_states]
    (default 2_000_000) is exhausted. *)

val min_depth : ?max_states:int -> Qr_graph.Graph.t -> Qr_perm.Perm.t -> int
(** Minimum number of matchings (layers) realizing the permutation: BFS
    whose moves are all non-empty matchings of the graph.  Same limits. *)

val matchings_of_graph : Qr_graph.Graph.t -> (int * int) list list
(** Every non-empty matching of the graph (exponential; tiny graphs only).
    Exposed for tests. *)
