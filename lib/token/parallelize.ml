module Schedule = Qr_route.Schedule

let schedule ~n swaps = Schedule.compact ~n (Schedule.of_swaps swaps)

let parallelism sched =
  let d = Schedule.depth sched in
  if d = 0 then 0.
  else float_of_int (Schedule.size sched) /. float_of_int d

let layer_sizes sched =
  Array.of_list (List.map Array.length sched)

let critical_path ~n swaps =
  let longest_at = Array.make n 0 in
  let best = ref 0 in
  List.iter
    (fun (u, v) ->
      let here = 1 + max longest_at.(u) longest_at.(v) in
      longest_at.(u) <- here;
      longest_at.(v) <- here;
      if here > !best then best := here)
    swaps;
  !best
