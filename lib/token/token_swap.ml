module Graph = Qr_graph.Graph
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Rng = Qr_util.Rng
module Schedule = Qr_route.Schedule
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics
module Cancel = Qr_util.Cancel

let c_happy = Metrics.counter "ats_happy_swaps"
let c_cycle = Metrics.counter "ats_cycle_swaps"
let c_unhappy = Metrics.counter "ats_unhappy_swaps"
let c_trials = Metrics.counter "ats_trials"

let run_trial g dist pi priority roots cap =
  let n = Graph.num_vertices g in
  let dest_at = Array.copy pi in
  let swaps = ref [] in
  let swap_count = ref 0 in
  let do_swap u v =
    let tmp = dest_at.(u) in
    dest_at.(u) <- dest_at.(v);
    dest_at.(v) <- tmp;
    swaps := (u, v) :: !swaps;
    incr swap_count
  in
  (* Greedily perform a maximal vertex-disjoint set of happy swaps (the
     2-cycles of D); batching them keeps the serial order friendly to ASAP
     re-layering.  Returns whether any swap was made. *)
  let happy_batch () =
    let used = Array.make n false in
    let batch = ref [] in
    Graph.iter_edges g (fun u v ->
        if (not used.(u)) && (not used.(v))
           && Ats_core.is_happy dist dest_at u v
        then begin
          used.(u) <- true;
          used.(v) <- true;
          batch := (u, v) :: !batch
        end);
    List.iter (fun (u, v) -> do_swap u v) !batch;
    Metrics.add c_happy (List.length !batch);
    !batch <> []
  in
  (* Far-end first along a cycle of D: every token on the cycle advances
     one arc using k−1 swaps. *)
  let swap_chain vertices =
    let arr = Array.of_list vertices in
    Metrics.add c_cycle (Array.length arr - 1);
    for k = Array.length arr - 2 downto 0 do
      do_swap arr.(k) arr.(k + 1)
    done
  in
  let first_unplaced () = List.find_opt (fun v -> dest_at.(v) <> v) roots in
  let cancel = Cancel.ambient () in
  let ok = ref true in
  let finished = ref false in
  while (not !finished) && !ok do
    Cancel.poll cancel;
    if !swap_count > cap then ok := false
    else if happy_batch () then ()
    else
      match Ats_core.find_cycle g dist dest_at priority roots with
      | Some cycle -> swap_chain cycle
      | None -> (
          match first_unplaced () with
          | None -> finished := true
          | Some v ->
              (* Miltzow's unhappy swap: the single last arc of a maximal
                 path (swapping along the whole path would drag the placed
                 token back across it and void the approximation bound). *)
              let a, b = Ats_core.find_unhappy_arc g dist dest_at priority v in
              Metrics.incr c_unhappy;
              do_swap a b)
  done;
  if !ok then Some (List.rev !swaps) else None

let serial ?(trials = 1) ?(seed = 0) g oracle pi =
  let n = Graph.num_vertices g in
  if Array.length pi <> n then invalid_arg "Token_swap.serial: size mismatch";
  if not (Perm.is_permutation pi) then
    invalid_arg "Token_swap.serial: not a permutation";
  if not (Graph.is_connected g) then
    invalid_arg "Token_swap.serial: graph must be connected";
  if trials < 1 then invalid_arg "Token_swap.serial: trials must be positive";
  let dist u v = Distance.dist oracle u v in
  let total = Perm.total_distance dist pi in
  let cap = max (4 * n * n) ((8 * total) + 64) in
  let identity_order = List.init n (fun v -> v) in
  let rng = Rng.create seed in
  let best = ref None in
  for trial = 0 to trials - 1 do
    let priority, roots =
      if trial = 0 then (Array.init n (fun v -> v), identity_order)
      else begin
        let p = Rng.permutation rng n in
        (p, List.sort (fun a b -> compare p.(a) p.(b)) identity_order)
      end
    in
    Metrics.incr c_trials;
    match
      Trace.with_span "ats_trial"
        ~attrs:[ ("trial", Trace.Int trial); ("serial", Trace.Bool true) ]
        (fun () -> run_trial g dist pi priority roots cap)
    with
    | None -> ()
    | Some swaps -> (
        match !best with
        | Some prev when List.length prev <= List.length swaps -> ()
        | _ -> best := Some swaps)
  done;
  match !best with
  | None -> failwith "Token_swap.serial: all trials exceeded the safety cap"
  | Some swaps ->
      (* The sequence must realize pi exactly. *)
      assert (
        let check = Array.copy pi in
        List.iter
          (fun (u, v) ->
            let tmp = check.(u) in
            check.(u) <- check.(v);
            check.(v) <- tmp)
          swaps;
        Array.for_all2 ( = ) check (Array.init n (fun i -> i)));
      swaps

let schedule ?trials ?seed g oracle pi =
  let n = Graph.num_vertices g in
  Schedule.compact ~n (Schedule.of_swaps (serial ?trials ?seed g oracle pi))

let swap_count_lower_bound oracle pi =
  let total = Perm.total_distance (fun u v -> Distance.dist oracle u v) pi in
  (total + 1) / 2
