module Grid = Qr_graph.Grid
module Distance = Qr_graph.Distance
module Router_intf = Qr_route.Router_intf
module Router_config = Qr_route.Router_config
module Router_registry = Qr_route.Router_registry

let graph_of_input = function
  | Router_intf.Grid_input (grid, pi) ->
      (Grid.graph grid, Distance.of_grid grid, pi)
  | Router_intf.Graph_input (graph, dist, pi) -> (graph, dist, pi)

let generic_caps =
  {
    Router_intf.grid_only = false;
    supports_transpose = false;
    supports_partial = true;
  }

let ats =
  {
    Router_intf.name = "ats";
    capabilities = generic_caps;
    plan =
      (fun _ws config input ->
        let graph, dist, pi = graph_of_input input in
        Router_intf.Ready
          (Parallel_ats.route ~trials:config.Router_config.ats_trials
             ~seed:config.Router_config.seed graph dist pi));
    execute = Router_intf.execute_plan;
  }

(* [trials] deliberately stays at [Token_swap.schedule]'s own default: the
   [trials] knob parameterizes the parallel engine's restart race, while
   the serial ablation is the single deterministic run the paper
   compares against. *)
let ats_serial =
  {
    Router_intf.name = "ats-serial";
    capabilities = generic_caps;
    plan =
      (fun _ws config input ->
        let graph, dist, pi = graph_of_input input in
        Router_intf.Ready
          (Token_swap.schedule ~seed:config.Router_config.seed graph dist pi));
    execute = Router_intf.execute_plan;
  }

(* Compare-and-set so concurrent [register] calls race safely: exactly
   one caller performs the (init-time, single-threaded by convention —
   see Router_registry's .mli) registration.  The engines themselves
   hold no shared mutable state: every plan call works out of
   call-local structures, so they are domain-safe once registered. *)
let registered = Atomic.make false

let register () =
  if Atomic.compare_and_set registered false true then begin
    Router_registry.register ats;
    Router_registry.register ats_serial
  end
