(** Analysis helpers for lifting serial swap sequences into parallel
    schedules.

    The lifting itself is {!Qr_route.Schedule.compact} (greedy ASAP): a swap
    joins the earliest layer after the last layer touching either endpoint,
    which preserves the realized permutation because only commuting swaps
    change relative order.  This module adds the measurements the benches
    report alongside the depth. *)

val schedule : n:int -> (int * int) list -> Qr_route.Schedule.t
(** ASAP layering of a serial swap list. *)

val parallelism : Qr_route.Schedule.t -> float
(** Average swaps per layer ([size/depth]); [0.] for the empty schedule. *)

val layer_sizes : Qr_route.Schedule.t -> int array
(** Swap count of each layer, in order. *)

val critical_path : n:int -> (int * int) list -> int
(** Length of the longest chain of endpoint-sharing swaps — a lower bound
    on the depth of {e any} order-preserving layering, and exactly the
    depth ASAP achieves (asserted in tests). *)
