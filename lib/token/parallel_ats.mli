(** Depth-oriented parallel token swapping.

    The serial ATS minimizes swap {e count}; its sequence, even optimally
    re-layered, can leave long dependency chains.  Transpilers that use
    token swapping as a routing primitive therefore run it in rounds: every
    round applies a maximal vertex-disjoint set of {e happy} swaps (both
    tokens strictly closer — the 2-cycles of the swap digraph) as one
    parallel layer.  When no happy swap exists the round falls back to one
    serial ATS step (cycle chain or single unhappy swap), which guarantees
    progress; a final ASAP compaction welds independent fallback swaps into
    neighbouring layers.

    This is the schedule the benchmarks label [ats] when comparing depths
    (Figure 4); {!Token_swap.schedule} (serial order, re-layered) is kept as
    the [ats-serial] ablation. *)

val route :
  ?trials:int ->
  ?seed:int ->
  Qr_graph.Graph.t -> Qr_graph.Distance.t -> Qr_perm.Perm.t ->
  Qr_route.Schedule.t
(** Route the permutation; the result is a valid schedule realizing it
    (asserted).  Runs [trials] attempts (default 4, like the reference
    implementation) whose harvest scan order is perturbed from [seed]
    (default 0) and keeps the shallowest — fully deterministic for fixed
    arguments.
    @raise Invalid_argument on size mismatch or a disconnected graph.
    @raise Failure if the safety cap trips. *)
