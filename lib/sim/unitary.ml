module Circuit = Qr_circuit.Circuit

type t = {
  n : int;
  re : float array array; (* re.(col).(row) *)
  im : float array array;
}

let num_qubits t = t.n

let dim t = 1 lsl t.n

let of_circuit circuit =
  let n = Circuit.num_qubits circuit in
  if n > 8 then invalid_arg "Unitary.of_circuit: too many qubits";
  let d = 1 lsl n in
  let re = Array.make d [||] and im = Array.make d [||] in
  for col = 0 to d - 1 do
    let out = Statevector.run circuit (Statevector.basis_state n col) in
    re.(col) <- Array.init d (fun row -> fst (Statevector.amplitude out row));
    im.(col) <- Array.init d (fun row -> snd (Statevector.amplitude out row))
  done;
  { n; re; im }

let entry t ~row ~col = (t.re.(col).(row), t.im.(col).(row))

let is_unitary ?(tol = 1e-9) t =
  let d = dim t in
  let ok = ref true in
  for a = 0 to d - 1 do
    for b = a to d - 1 do
      (* <col_a | col_b> *)
      let dot_r = ref 0. and dot_i = ref 0. in
      for row = 0 to d - 1 do
        dot_r :=
          !dot_r +. (t.re.(a).(row) *. t.re.(b).(row))
          +. (t.im.(a).(row) *. t.im.(b).(row));
        dot_i :=
          !dot_i +. (t.re.(a).(row) *. t.im.(b).(row))
          -. (t.im.(a).(row) *. t.re.(b).(row))
      done;
      let expected = if a = b then 1. else 0. in
      if Float.abs (!dot_r -. expected) > tol || Float.abs !dot_i > tol then
        ok := false
    done
  done;
  !ok

(* The phase e^{iφ} aligning [b] onto [a], read off the entry where [a] has
   the largest modulus. *)
let alignment_phase a b =
  let d = dim a in
  let best = ref (0, 0) and best_mag = ref 0. in
  for col = 0 to d - 1 do
    for row = 0 to d - 1 do
      let m = (a.re.(col).(row) ** 2.) +. (a.im.(col).(row) ** 2.) in
      if m > !best_mag then begin
        best_mag := m;
        best := (row, col)
      end
    done
  done;
  let row, col = !best in
  (* phase = a_entry / b_entry, normalized. *)
  let ar = a.re.(col).(row) and ai = a.im.(col).(row) in
  let br = b.re.(col).(row) and bi = b.im.(col).(row) in
  let denom = (br *. br) +. (bi *. bi) in
  if denom < 1e-30 then (1., 0.)
  else begin
    let pr = ((ar *. br) +. (ai *. bi)) /. denom in
    let pi_ = ((ai *. br) -. (ar *. bi)) /. denom in
    let mag = sqrt ((pr *. pr) +. (pi_ *. pi_)) in
    if mag < 1e-30 then (1., 0.) else (pr /. mag, pi_ /. mag)
  end

let distance a b =
  if a.n <> b.n then invalid_arg "Unitary.distance: size mismatch";
  let pr, pi_ = alignment_phase a b in
  let d = dim a in
  let worst = ref 0. in
  for col = 0 to d - 1 do
    for row = 0 to d - 1 do
      (* a - phase * b *)
      let br = (pr *. b.re.(col).(row)) -. (pi_ *. b.im.(col).(row)) in
      let bi = (pr *. b.im.(col).(row)) +. (pi_ *. b.re.(col).(row)) in
      let dr = a.re.(col).(row) -. br and di = a.im.(col).(row) -. bi in
      let m = sqrt ((dr *. dr) +. (di *. di)) in
      if m > !worst then worst := m
    done
  done;
  !worst

let equal_up_to_phase ?(tol = 1e-9) a b =
  a.n = b.n && distance a b <= tol

let apply_qubit_permutation t p =
  if Array.length p <> t.n || not (Qr_perm.Perm.is_permutation p) then
    invalid_arg "Unitary.apply_qubit_permutation: bad permutation";
  let d = dim t in
  let relabel i =
    let j = ref 0 in
    for q = 0 to t.n - 1 do
      if i land (1 lsl q) <> 0 then j := !j lor (1 lsl p.(q))
    done;
    !j
  in
  let re = Array.make d [||] and im = Array.make d [||] in
  for col = 0 to d - 1 do
    re.(col) <- Array.make d 0.;
    im.(col) <- Array.make d 0.
  done;
  for col = 0 to d - 1 do
    for row = 0 to d - 1 do
      re.(relabel col).(relabel row) <- t.re.(col).(row);
      im.(relabel col).(relabel row) <- t.im.(col).(row)
    done
  done;
  { n = t.n; re; im }
