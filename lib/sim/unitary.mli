(** Full unitary extraction — the strongest equivalence check we can run.

    A circuit on [n ≤ 8] qubits is turned into its [2^n × 2^n] matrix by
    simulating every basis state.  Two circuits are equivalent iff their
    matrices agree up to a global phase; unlike random-state fidelity
    checks this is a proof, not a sample.  The integration tests use it on
    small transpilations; the statevector checks remain the tool for
    larger instances. *)

type t
(** A dense complex matrix (column [k] = image of basis state [k]). *)

val num_qubits : t -> int

val dim : t -> int

val of_circuit : Qr_circuit.Circuit.t -> t
(** @raise Invalid_argument beyond 8 qubits (the matrix has [4^n]
    entries). *)

val entry : t -> row:int -> col:int -> float * float
(** Real and imaginary parts. *)

val is_unitary : ?tol:float -> t -> bool
(** Columns orthonormal (default tolerance [1e-9]): a sanity check that
    simulation preserved structure. *)

val equal_up_to_phase : ?tol:float -> t -> t -> bool
(** Whether [U = e^{iφ} V] for some φ: per-entry comparison after aligning
    on the largest-magnitude entry. *)

val apply_qubit_permutation : t -> int array -> t
(** Conjugate by a qubit relabeling: the unitary of the same circuit with
    wires renamed (inputs and outputs both relabeled). *)

val distance : t -> t -> float
(** Max-entry modulus of the difference after phase alignment — a debug
    aid when {!equal_up_to_phase} fails. *)
