module Grid = Qr_graph.Grid
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule

type snapshot = int array

let trace ~n sched =
  let token_at = Array.init n (fun v -> v) in
  let snapshots = ref [ Array.copy token_at ] in
  List.iter
    (fun layer ->
      Array.iter
        (fun (u, v) ->
          let tmp = token_at.(u) in
          token_at.(u) <- token_at.(v);
          token_at.(v) <- tmp)
        layer;
      snapshots := Array.copy token_at :: !snapshots)
    sched;
  List.rev !snapshots

let final ~n sched =
  match List.rev (trace ~n sched) with
  | last :: _ -> last
  | [] -> assert false

let realized ~n sched = Perm.inverse (Perm.check (final ~n sched))

let max_token_travel oracle ~n sched =
  let travelled = Array.make n 0 in
  let position_of = Array.init n (fun v -> v) in
  let token_at = Array.init n (fun v -> v) in
  List.iter
    (fun layer ->
      Array.iter
        (fun (u, v) ->
          let a = token_at.(u) and b = token_at.(v) in
          travelled.(a) <- travelled.(a) + Distance.dist oracle u v;
          travelled.(b) <- travelled.(b) + Distance.dist oracle u v;
          token_at.(u) <- b;
          token_at.(v) <- a;
          position_of.(a) <- v;
          position_of.(b) <- u)
        layer)
    sched;
  Array.fold_left max 0 travelled

let pp_grid_snapshot grid fmt snapshot =
  let width =
    String.length (string_of_int (max 1 (Array.length snapshot - 1)))
  in
  Format.fprintf fmt "@[<v>";
  for r = 0 to Grid.rows grid - 1 do
    for c = 0 to Grid.cols grid - 1 do
      Format.fprintf fmt "%*d " width snapshot.(Grid.index grid r c)
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
