(** Dense statevector simulation for correctness checking.

    Exact simulation of the gate set of {!Qr_circuit.Gate} on up to ~12
    qubits (the state has [2^n] amplitudes).  Qubit [q] is bit [q] of the
    basis index (little-endian).  This is the ground truth the integration
    tests use: a transpiled circuit must act identically to the logical
    circuit once its input/output layouts are accounted for. *)

type t
(** A normalized (unless constructed otherwise) complex state. *)

val num_qubits : t -> int

val dim : t -> int
(** [2^num_qubits]. *)

val zero_state : int -> t
(** |0…0⟩ on [n] qubits.  @raise Invalid_argument if [n < 0] or [n > 20]. *)

val basis_state : int -> int -> t
(** [basis_state n k] is |k⟩. *)

val random_state : Qr_util.Rng.t -> int -> t
(** Haar-ish random state: i.i.d. Gaussian amplitudes, normalized. *)

val copy : t -> t

val amplitude : t -> int -> float * float
(** Real and imaginary part of an amplitude. *)

val norm : t -> float

val apply_gate : t -> Qr_circuit.Gate.t -> unit
(** In-place application. *)

val run : Qr_circuit.Circuit.t -> t -> t
(** Apply every gate to a copy of the state. *)

val run_from_zero : Qr_circuit.Circuit.t -> t

val permute_qubits : t -> int array -> t
(** [permute_qubits s p]: the state in which qubit [q] of [s] is relabeled
    as qubit [p.(q)] — i.e. the new amplitude at index [j] equals the old
    amplitude at the index whose bit [q] is bit [p.(q)] of [j].
    @raise Invalid_argument unless [p] is a permutation of the qubits. *)

val fidelity : t -> t -> float
(** |⟨a|b⟩|² — 1.0 for equal states regardless of global phase. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [fidelity ≥ 1 − tol] (default [1e-9]). *)

val measure_probabilities : t -> float array
(** |amplitude|² per basis state. *)

val sample : Qr_util.Rng.t -> t -> int
(** Draw one measurement outcome (a basis index) per the Born rule. *)

val sample_counts : Qr_util.Rng.t -> t -> shots:int -> (int * int) list
(** [shots] independent samples, aggregated as [(basis_index, count)]
    pairs sorted by index. *)
