module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Rng = Qr_util.Rng

type t = { n : int; re : float array; im : float array }

let num_qubits t = t.n

let dim t = Array.length t.re

let check_qubits n =
  if n < 0 || n > 20 then invalid_arg "Statevector: qubit count out of range"

let zero_state n =
  check_qubits n;
  let d = 1 lsl n in
  let re = Array.make d 0. and im = Array.make d 0. in
  re.(0) <- 1.;
  { n; re; im }

let basis_state n k =
  check_qubits n;
  let d = 1 lsl n in
  if k < 0 || k >= d then invalid_arg "Statevector.basis_state";
  let re = Array.make d 0. and im = Array.make d 0. in
  re.(k) <- 1.;
  { n; re; im }

let norm t =
  let acc = ref 0. in
  for i = 0 to dim t - 1 do
    acc := !acc +. (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i))
  done;
  sqrt !acc

let random_state rng n =
  check_qubits n;
  let d = 1 lsl n in
  (* Box–Muller pairs give rotation-invariant (Haar-like) amplitudes. *)
  let gaussian () =
    let u1 = max 1e-12 (Rng.float rng 1.) and u2 = Rng.float rng 1. in
    sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
  in
  let re = Array.init d (fun _ -> gaussian ()) in
  let im = Array.init d (fun _ -> gaussian ()) in
  let state = { n; re; im } in
  let scale = 1. /. norm state in
  for i = 0 to d - 1 do
    re.(i) <- re.(i) *. scale;
    im.(i) <- im.(i) *. scale
  done;
  state

let copy t = { n = t.n; re = Array.copy t.re; im = Array.copy t.im }

let amplitude t k =
  if k < 0 || k >= dim t then invalid_arg "Statevector.amplitude";
  (t.re.(k), t.im.(k))

(* Apply a 2×2 complex matrix to qubit [q]: matrix rows (m00 m01; m10 m11),
   entries as (re, im) pairs. *)
let apply_one t q (m00r, m00i) (m01r, m01i) (m10r, m10i) (m11r, m11i) =
  let d = dim t in
  let bit = 1 lsl q in
  let re = t.re and im = t.im in
  let i = ref 0 in
  while !i < d do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let a_r = re.(!i) and a_i = im.(!i) in
      let b_r = re.(j) and b_i = im.(j) in
      re.(!i) <- (m00r *. a_r) -. (m00i *. a_i) +. (m01r *. b_r) -. (m01i *. b_i);
      im.(!i) <- (m00r *. a_i) +. (m00i *. a_r) +. (m01r *. b_i) +. (m01i *. b_r);
      re.(j) <- (m10r *. a_r) -. (m10i *. a_i) +. (m11r *. b_r) -. (m11i *. b_i);
      im.(j) <- (m10r *. a_i) +. (m10i *. a_r) +. (m11r *. b_i) +. (m11i *. b_r)
    end;
    incr i
  done

(* Multiply the amplitudes selected by [select] by the phase e^{iθ}. *)
let apply_phase t select theta =
  let c = cos theta and s = sin theta in
  for i = 0 to dim t - 1 do
    if select i then begin
      let a_r = t.re.(i) and a_i = t.im.(i) in
      t.re.(i) <- (c *. a_r) -. (s *. a_i);
      t.im.(i) <- (c *. a_i) +. (s *. a_r)
    end
  done

let apply_gate t gate =
  let sqrt_half = sqrt 0.5 in
  match gate with
  | Gate.One (Gate.H, q) ->
      apply_one t q (sqrt_half, 0.) (sqrt_half, 0.) (sqrt_half, 0.)
        (-.sqrt_half, 0.)
  | Gate.One (Gate.X, q) -> apply_one t q (0., 0.) (1., 0.) (1., 0.) (0., 0.)
  | Gate.One (Gate.Y, q) -> apply_one t q (0., 0.) (0., -1.) (0., 1.) (0., 0.)
  | Gate.One (Gate.Z, q) ->
      apply_phase t (fun i -> i land (1 lsl q) <> 0) Float.pi
  | Gate.One (Gate.S, q) ->
      apply_phase t (fun i -> i land (1 lsl q) <> 0) (Float.pi /. 2.)
  | Gate.One (Gate.Sdg, q) ->
      apply_phase t (fun i -> i land (1 lsl q) <> 0) (-.Float.pi /. 2.)
  | Gate.One (Gate.T, q) ->
      apply_phase t (fun i -> i land (1 lsl q) <> 0) (Float.pi /. 4.)
  | Gate.One (Gate.Tdg, q) ->
      apply_phase t (fun i -> i land (1 lsl q) <> 0) (-.Float.pi /. 4.)
  | Gate.One (Gate.Rx theta, q) ->
      let c = cos (theta /. 2.) and s = sin (theta /. 2.) in
      apply_one t q (c, 0.) (0., -.s) (0., -.s) (c, 0.)
  | Gate.One (Gate.Ry theta, q) ->
      let c = cos (theta /. 2.) and s = sin (theta /. 2.) in
      apply_one t q (c, 0.) (-.s, 0.) (s, 0.) (c, 0.)
  | Gate.One (Gate.Rz theta, q) ->
      let bit = 1 lsl q in
      apply_phase t (fun i -> i land bit = 0) (-.theta /. 2.);
      apply_phase t (fun i -> i land bit <> 0) (theta /. 2.)
  | Gate.Two (Gate.CX, c, x) ->
      let cbit = 1 lsl c and xbit = 1 lsl x in
      let d = dim t in
      for i = 0 to d - 1 do
        (* Visit each swapped pair once via the xbit = 0 member. *)
        if i land cbit <> 0 && i land xbit = 0 then begin
          let j = i lor xbit in
          let tmp_r = t.re.(i) and tmp_i = t.im.(i) in
          t.re.(i) <- t.re.(j);
          t.im.(i) <- t.im.(j);
          t.re.(j) <- tmp_r;
          t.im.(j) <- tmp_i
        end
      done
  | Gate.Two (Gate.CZ, a, b) ->
      let abit = 1 lsl a and bbit = 1 lsl b in
      apply_phase t (fun i -> i land abit <> 0 && i land bbit <> 0) Float.pi
  | Gate.Two (Gate.CP theta, a, b) ->
      let abit = 1 lsl a and bbit = 1 lsl b in
      apply_phase t (fun i -> i land abit <> 0 && i land bbit <> 0) theta
  | Gate.Two (Gate.RZZ theta, a, b) ->
      let abit = 1 lsl a and bbit = 1 lsl b in
      let same i = (i land abit <> 0) = (i land bbit <> 0) in
      apply_phase t same (-.theta /. 2.);
      apply_phase t (fun i -> not (same i)) (theta /. 2.)
  | Gate.Two (Gate.SWAP, a, b) ->
      let abit = 1 lsl a and bbit = 1 lsl b in
      for i = 0 to dim t - 1 do
        if i land abit <> 0 && i land bbit = 0 then begin
          let j = (i lxor abit) lor bbit in
          let tmp_r = t.re.(i) and tmp_i = t.im.(i) in
          t.re.(i) <- t.re.(j);
          t.im.(i) <- t.im.(j);
          t.re.(j) <- tmp_r;
          t.im.(j) <- tmp_i
        end
      done

let run circuit state =
  if Circuit.num_qubits circuit <> state.n then
    invalid_arg "Statevector.run: qubit-count mismatch";
  let out = copy state in
  List.iter (apply_gate out) (Circuit.gates circuit);
  out

let run_from_zero circuit = run circuit (zero_state (Circuit.num_qubits circuit))

let permute_qubits t p =
  if Array.length p <> t.n || not (Qr_perm.Perm.is_permutation p) then
    invalid_arg "Statevector.permute_qubits: bad permutation";
  let d = dim t in
  let re = Array.make d 0. and im = Array.make d 0. in
  for i = 0 to d - 1 do
    let j = ref 0 in
    for q = 0 to t.n - 1 do
      if i land (1 lsl q) <> 0 then j := !j lor (1 lsl p.(q))
    done;
    re.(!j) <- t.re.(i);
    im.(!j) <- t.im.(i)
  done;
  { n = t.n; re; im }

let fidelity a b =
  if a.n <> b.n then invalid_arg "Statevector.fidelity: size mismatch";
  let dot_r = ref 0. and dot_i = ref 0. in
  for i = 0 to dim a - 1 do
    (* ⟨a|b⟩ = Σ conj(a_i)·b_i *)
    dot_r := !dot_r +. (a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i));
    dot_i := !dot_i +. (a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i))
  done;
  (!dot_r *. !dot_r) +. (!dot_i *. !dot_i)

let approx_equal ?(tol = 1e-9) a b = fidelity a b >= 1. -. tol

let measure_probabilities t =
  Array.init (dim t) (fun i -> (t.re.(i) *. t.re.(i)) +. (t.im.(i) *. t.im.(i)))

let sample rng t =
  let p = measure_probabilities t in
  let total = Array.fold_left ( +. ) 0. p in
  let x = ref (Rng.float rng total) in
  let result = ref (dim t - 1) in
  (try
     Array.iteri
       (fun i q ->
         x := !x -. q;
         if !x <= 0. then begin
           result := i;
           raise Exit
         end)
       p
   with Exit -> ());
  !result

let sample_counts rng t ~shots =
  if shots < 0 then invalid_arg "Statevector.sample_counts: negative shots";
  let counts = Hashtbl.create 64 in
  for _ = 1 to shots do
    let k = sample rng t in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []
  |> List.sort compare
