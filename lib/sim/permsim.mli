(** Token-level simulation of routing schedules.

    Cheap (O(size) per run) classical simulation used everywhere the
    statevector would be overkill: it tracks which original vertex's token
    occupies each position as layers execute, and is the oracle for
    "does this schedule realize this permutation" on grids of any size. *)

type snapshot = int array
(** [snapshot.(v)] is the token (identified by its start vertex) currently
    on [v]. *)

val trace : n:int -> Qr_route.Schedule.t -> snapshot list
(** Configurations after each layer, starting with the initial one; length
    is [depth + 1]. *)

val final : n:int -> Qr_route.Schedule.t -> snapshot

val realized : n:int -> Qr_route.Schedule.t -> Qr_perm.Perm.t
(** The permutation the schedule realizes (same as
    {!Qr_route.Schedule.apply}, re-derived by token simulation — the two
    are cross-checked in tests). *)

val max_token_travel :
  Qr_graph.Distance.t -> n:int -> Qr_route.Schedule.t -> int
(** The longest total distance any single token is moved — compared against
    its displacement it measures routing detours. *)

val pp_grid_snapshot :
  Qr_graph.Grid.t -> Format.formatter -> snapshot -> unit
(** Render a configuration as a rows × cols table of token ids. *)
