(* Cooperative cancellation tokens for the routing hot loops.

   A token couples an absolute monotonic-clock deadline with an atomic
   kill flag set asynchronously by the server's watchdog.  The routing
   inner loops call [poll] at bounded intervals; the common disarmed
   case ([none]) is a single physical-equality branch, so the
   checkpoints are free for library users that never serve traffic. *)

type reason = Deadline | Killed

exception Cancelled of reason

let reason_name = function Deadline -> "deadline" | Killed -> "killed"

let () =
  Printexc.register_printer (function
    | Cancelled r -> Some (Printf.sprintf "Cancel.Cancelled(%s)" (reason_name r))
    | _ -> None)

type t = {
  mutable deadline_ns : int64;  (* Int64.max_int = no deadline *)
  killed : bool Atomic.t;  (* set by the watchdog, read by the owner *)
  progress : int Atomic.t;  (* liveness word: bumped on strided checks *)
  mutable countdown : int;  (* polls until the next clock read *)
}

(* How many [poll]s between clock reads.  The kill flag is still read on
   every poll (one atomic load); only the [Timer.now_ns] call — and the
   progress-word bump the watchdog uses as a heartbeat — is strided. *)
let stride = 64

let make () =
  {
    deadline_ns = Int64.max_int;
    killed = Atomic.make false;
    progress = Atomic.make 0;
    countdown = 0;
  }

(* The shared never-cancelled token.  [kill]/[set_deadline_ns] refuse to
   touch it, so a stray call can never poison every un-tokened caller. *)
let none = make ()

let create ?deadline_ns () =
  let t = make () in
  (match deadline_ns with Some at -> t.deadline_ns <- at | None -> ());
  t

let set_deadline_ns t at =
  if t != none then
    t.deadline_ns <- (match at with Some ns -> ns | None -> Int64.max_int)

let kill t = if t != none then Atomic.set t.killed true

let killed t = Atomic.get t.killed

let progress t = Atomic.get t.progress

let check t =
  if t != none then begin
    if Atomic.get t.killed then raise (Cancelled Killed);
    if t.deadline_ns <> Int64.max_int && Timer.now_ns () >= t.deadline_ns then
      raise (Cancelled Deadline)
  end

(* [countdown] is owner-mutated without synchronization; a batch fanned
   across domains shares one token, and the benign race only jitters how
   often the clock is read — the kill flag is checked on every poll. *)
let poll t =
  if t != none then begin
    if Atomic.get t.killed then raise (Cancelled Killed);
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then begin
      t.countdown <- stride;
      Atomic.incr t.progress;
      if t.deadline_ns <> Int64.max_int && Timer.now_ns () >= t.deadline_ns
      then raise (Cancelled Deadline)
    end
  end

(* ------------------------------------------------------- ambient token *)

(* The per-domain current token.  Threading a token through every
   routing signature would churn the whole engine API; instead the
   request layer installs the token for the duration of the call and the
   hot loops fetch it once at entry.  Worker pools re-install the token
   inside fanned-out closures, so a batch item polls its request's token
   on whichever domain runs it. *)
let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> none)

let ambient () = Domain.DLS.get ambient_key

let set_ambient t = Domain.DLS.set ambient_key t

let with_ambient t f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f
