/* Process resource usage for Qr_util.Resource.

   getrusage(RUSAGE_SELF) is POSIX but not exposed by OCaml's Unix
   library; the telemetry plane's process gauges (max RSS) need it.
   ru_maxrss is reported in kilobytes on Linux and in bytes on macOS —
   the OCaml side normalizes to kilobytes. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <sys/resource.h>

CAMLprim value qr_util_maxrss(value unit)
{
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return caml_copy_int64(0);
#if defined(__APPLE__)
  return caml_copy_int64((int64_t)ru.ru_maxrss / 1024);
#else
  return caml_copy_int64((int64_t)ru.ru_maxrss);
#endif
}
