(** Disjoint-set union (union-find) with path compression and union by rank.
    Used for connectivity checks and for grouping permutation cycles into
    spatial clusters in the workload generators. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0..n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [true] iff they were previously distinct. *)

val same : t -> int -> int -> bool
(** Whether the two elements share a set. *)

val size : t -> int -> int
(** Number of elements in the element's set. *)

val count_sets : t -> int
(** Number of distinct sets remaining. *)

val groups : t -> int list array
(** [groups t] lists each set's members, indexed by representative; entries
    for non-representatives are empty. *)
