type t = { parent : int array; rank : int array; sizes : int array }

let create n =
  { parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    sizes = Array.make n 1 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rx, ry =
      if t.rank.(rx) < t.rank.(ry) then (ry, rx) else (rx, ry)
    in
    t.parent.(ry) <- rx;
    t.sizes.(rx) <- t.sizes.(rx) + t.sizes.(ry);
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    true
  end

let same t x y = find t x = find t y

let size t x = t.sizes.(find t x)

let count_sets t =
  let n = Array.length t.parent in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr count
  done;
  !count

let groups t =
  let n = Array.length t.parent in
  let acc = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = find t i in
    acc.(r) <- i :: acc.(r)
  done;
  acc
