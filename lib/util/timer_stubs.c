/* Monotonic clock for Qr_util.Timer.

   CLOCK_MONOTONIC is immune to wall-clock jumps (NTP steps, manual
   clock changes), which matters for the paper's figure-5 style runtime
   measurements and for the Qr_obs span tracer.  Platforms without
   clock_gettime fall back to gettimeofday, preserving the old
   behaviour. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value qr_util_monotonic_ns(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL
                           + (int64_t)ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000LL
                           + (int64_t)tv.tv_usec * 1000LL);
  }
}
