type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step then two xor-shift-multiply
   mixing rounds (constants from the reference implementation). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec loop () =
    let raw = Int64.to_int (next_int64 t) land mask in
    let limit = mask - (mask mod bound) in
    if raw >= limit then loop () else raw mod bound
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_prefix t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.shuffle_prefix";
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_in_place t a = shuffle_prefix t a (Array.length a)

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_distinct t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_distinct";
  (* Floyd's algorithm: k iterations, O(k) expected memory. *)
  let seen = Hashtbl.create (2 * k) in
  let acc = ref [] in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    let v = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen v ();
    acc := v :: !acc
  done;
  !acc
