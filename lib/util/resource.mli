(** Process resource usage, for the telemetry plane's process gauges.

    A thin C stub over [getrusage(RUSAGE_SELF)]; the serving stack
    exposes these as [process_*] gauges in metrics snapshots and the
    Prometheus exposition (DESIGN.md §12). *)

val max_rss_kb : unit -> int
(** Peak resident set size in kilobytes (0 when the platform cannot
    report it). *)

val gc_major_words : unit -> float
(** Words allocated in the OCaml major heap since program start
    ([Gc.quick_stat]; a word is 8 bytes on 64-bit). *)
