(** Wall-clock timing for the figure-5 style runtime measurements. *)

type t
(** A running timer. *)

val start : unit -> t
(** Start a timer now. *)

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_repeated : ?min_runs:int -> ?min_time_s:float -> (unit -> 'a) -> float
(** [time_repeated f] runs [f] at least [min_runs] times (default 3) and for
    at least [min_time_s] seconds (default 0.05) and returns the mean seconds
    per run — a cheap measurement loop for coarse benchmark sweeps where a
    full Bechamel run would be overkill. *)
