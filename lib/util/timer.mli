(** Monotonic timing for the figure-5 style runtime measurements and the
    {!Qr_obs} span tracer.

    All functions read CLOCK_MONOTONIC through a tiny C stub (platforms
    without [clock_gettime] fall back to [gettimeofday] inside the stub),
    so measurements are immune to wall-clock jumps. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock.  The epoch is arbitrary; only
    differences are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

type t
(** A running timer. *)

val start : unit -> t
(** Start a timer now. *)

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_repeated : ?min_runs:int -> ?min_time_s:float -> (unit -> 'a) -> float
(** [time_repeated f] runs [f] at least [min_runs] times (default 3) and for
    at least [min_time_s] seconds (default 0.05) and returns the mean seconds
    per run — a cheap measurement loop for coarse benchmark sweeps where a
    full Bechamel run would be overkill. *)
