(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, splittable
    generator with 64 bits of state, good enough for workload generation and
    property-based testing (it is not cryptographic). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from [seed].  Equal seeds yield
    identical streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to give
    each benchmark trial its own substream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive.  @raise
    Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle of the whole array. *)

val shuffle_prefix : t -> 'a array -> int -> unit
(** [shuffle_prefix t a k] applies Fisher–Yates to positions [0..k-1],
    drawing replacements from the whole array: the standard partial shuffle.
    @raise Invalid_argument if [k] is negative or exceeds the length. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    empty input. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k n] draws [k] distinct values from [0..n-1]
    (order unspecified).  @raise Invalid_argument if [k > n] or [k < 0]. *)
