/* poll(2) for Qr_util.Sys_poll.

   The serving loops need readiness multiplexing that does not fall over
   at FD_SETSIZE the way select(2) does, and that can block indefinitely
   without a tick timeout.  The binding is deliberately tiny: the caller
   owns three parallel arrays (fd, interest mask, result mask) so a busy
   event loop re-polls without allocating, and errno handling is reduced
   to the one case the loop treats specially (EINTR).

   Platforms without poll(2) report unavailability and the OCaml side
   falls back to Unix.select. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#ifndef _WIN32
#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#endif

CAMLprim value qr_util_poll_available(value unit)
{
#ifdef _WIN32
  return Val_false;
#else
  return Val_true;
#endif
}

/* Interest/result masks shared with Sys_poll: 1 = readable, 2 =
   writable, 4 = error (POLLERR | POLLHUP | POLLNVAL, result only).
   Returns the number of ready descriptors, -1 for EINTR, -2 for any
   other errno. */
CAMLprim value qr_util_poll(value v_fds, value v_events, value v_revents,
                            value v_timeout_ms)
{
#ifdef _WIN32
  caml_failwith("Sys_poll.poll: poll(2) unavailable on this platform");
  return Val_int(0);
#else
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds;
  mlsize_t i;
  int r;

  pfds = (struct pollfd *)malloc(sizeof(struct pollfd) * (n ? n : 1));
  if (pfds == NULL) caml_failwith("Sys_poll.poll: out of memory");
  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = 0;
    if (ev & 1) pfds[i].events |= POLLIN;
    if (ev & 2) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  r = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (r < 0) {
    int e = errno;
    free(pfds);
    CAMLreturn(Val_int(e == EINTR ? -1 : -2));
  }
  for (i = 0; i < n; i++) {
    int rv = 0;
    if (pfds[i].revents & POLLIN) rv |= 1;
    if (pfds[i].revents & POLLOUT) rv |= 2;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) rv |= 4;
    Store_field(v_revents, i, Val_int(rv));
  }
  free(pfds);
  CAMLreturn(Val_int(r));
#endif
}
