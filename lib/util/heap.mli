(** Binary min-heap keyed by integers, used for greedy selections (e.g.
    nearest-target assignment when extending partial permutations). *)

type 'a t
(** Heap of values of type ['a] ordered by an [int] key (smallest first). *)

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** Insert a keyed value. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the minimum-key entry, or [None] when empty.  Ties are
    broken arbitrarily but deterministically. *)

val peek_min : 'a t -> (int * 'a) option
(** Return the minimum-key entry without removing it. *)

val of_list : (int * 'a) list -> 'a t
(** Build a heap from keyed values. *)
