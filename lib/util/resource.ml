external maxrss : unit -> int64 = "qr_util_maxrss"

let max_rss_kb () = Int64.to_int (maxrss ())

let gc_major_words () =
  let s = Gc.quick_stat () in
  s.Gc.major_words
