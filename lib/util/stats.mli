(** Small descriptive-statistics helpers used by the benchmark harness to
    summarize depth and runtime samples. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for singletons.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_max : float array -> float * float
(** Smallest and largest value.  @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: linear interpolation between
    closest ranks on a sorted copy.  @raise Invalid_argument on empty input
    or [p] outside [0,100]. *)

val median : float array -> float
(** [percentile xs 50.]. *)

val of_ints : int array -> float array
(** Convert integer samples (e.g. schedule depths) for the functions above. *)

val of_list : float list -> float array
(** Convert accumulated samples (the benchmark loops collect into lists)
    for the functions above. *)

val summary : float array -> string
(** One-line ["mean=… sd=… min=… med=… max=…"] rendering. *)
