type t = float

let now () = Unix.gettimeofday ()

let start () = now ()

let elapsed_s t = now () -. t

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)

let time_repeated ?(min_runs = 3) ?(min_time_s = 0.05) f =
  let t = start () in
  let runs = ref 0 in
  while !runs < min_runs || elapsed_s t < min_time_s do
    ignore (Sys.opaque_identity (f ()));
    incr runs
  done;
  elapsed_s t /. float_of_int !runs
