external monotonic_ns : unit -> int64 = "qr_util_monotonic_ns"

let now_ns = monotonic_ns

let now_s () = Int64.to_float (monotonic_ns ()) *. 1e-9

type t = float

let start () = now_s ()

let elapsed_s t = now_s () -. t

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)

let time_repeated ?(min_runs = 3) ?(min_time_s = 0.05) f =
  let t = start () in
  let runs = ref 0 in
  while !runs < min_runs || elapsed_s t < min_time_s do
    ignore (Sys.opaque_identity (f ()));
    incr runs
  done;
  elapsed_s t /. float_of_int !runs
