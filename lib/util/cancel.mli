(** Cooperative cancellation for the routing hot loops.

    A token carries an absolute monotonic-clock deadline (see
    {!Qr_util.Timer}) and an atomic kill flag a supervisor can set from
    another domain.  Long-running planning loops — band-search sweeps,
    Hopcroft–Karp phases, token-swapping rounds — call {!poll} at
    bounded intervals; an expired or killed token aborts the plan
    mid-loop with {!Cancelled} instead of burning the domain until the
    phase boundary.

    Cost discipline: {!poll} on {!none} (the default) is one physical
    equality test and a branch, safe in the innermost loops.  On a live
    token every poll reads the kill flag (one atomic load) and only
    every [~64]th poll reads the clock and bumps the {!progress} word —
    the per-token heartbeat the server's watchdog uses to tell a slow
    worker from a wedged one.

    Tokens reach the loops {e ambiently}: the request layer installs the
    current request's token with {!with_ambient} and the loops fetch it
    once at entry with {!ambient} — no signature churn through the
    engine stack.  Results are bit-identical with or without a live
    token (the checkpoints only ever raise), which the QCheck identity
    property in [test_supervision] pins down. *)

type reason =
  | Deadline  (** The token's deadline passed. *)
  | Killed  (** {!kill} was called — the watchdog gave up on the request. *)

exception Cancelled of reason

type t

val none : t
(** The shared never-cancelled token; {!kill} and {!set_deadline_ns}
    refuse to touch it. *)

val create : ?deadline_ns:int64 -> unit -> t
(** A fresh token, optionally expiring at an absolute monotonic
    instant. *)

val set_deadline_ns : t -> int64 option -> unit
(** Set or clear the deadline (owner-domain only; [None] clears).  No-op
    on {!none}. *)

val kill : t -> unit
(** Ask the owner to abort at its next {!poll}/{!check}.  Safe from any
    domain; idempotent; no-op on {!none}. *)

val killed : t -> bool

val progress : t -> int
(** Monotone liveness word, bumped about every 64th {!poll}.  A watchdog
    that sees it advance knows the owner is alive and will honor the
    kill flag on its own. *)

val check : t -> unit
(** Full check (kill flag, then clock).
    @raise Cancelled when the token is killed or past its deadline. *)

val poll : t -> unit
(** Bounded-interval check for hot loops: kill flag every call, clock
    every [~64]th.  @raise Cancelled as {!check}. *)

(** {2 Ambient token}

    One current token per domain, default {!none}. *)

val ambient : unit -> t

val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as the calling domain's ambient token for the duration
    of [f], restoring the previous token even on exceptions. *)
