(** Thin binding to [poll(2)].

    [Unix.select] has two defects the serving loops care about: it
    cannot watch descriptors numbered [>= FD_SETSIZE] (typically 1024 —
    it raises [EINVAL], taking the whole accept loop down with it), and
    rebuilding [fd_set]s every call costs O(highest fd) in the kernel.
    [poll(2)] has neither problem.  {!Qr_server.Event_loop} uses this
    binding when {!available}, and falls back to [Unix.select] (with an
    explicit capacity guard) where it is not.

    The interface is deliberately array-in/array-out so a long-lived
    event loop can re-poll without allocating: the caller keeps three
    parallel arrays of the same length and reuses them across calls. *)

val available : bool
(** Whether [poll(2)] exists on this platform. *)

val pollin : int
(** Interest/result bit: readable (data, EOF, or a pending accept). *)

val pollout : int
(** Interest/result bit: writable. *)

val pollerr : int
(** Result-only bit: [POLLERR]/[POLLHUP]/[POLLNVAL] folded together.
    The loop surfaces it as readiness on whatever interest the fd had,
    so the normal read/write path discovers the error itself. *)

val poll :
  fds:Unix.file_descr array ->
  events:int array ->
  revents:int array ->
  timeout_ms:int ->
  int
(** [poll ~fds ~events ~revents ~timeout_ms] waits until at least one
    descriptor is ready or the timeout elapses.  [events.(i)] is the
    interest mask for [fds.(i)]; [revents.(i)] is overwritten with the
    result mask.  [timeout_ms < 0] blocks indefinitely; [0] polls.
    Returns the number of ready descriptors (0 on timeout).

    @raise Unix.Unix_error [EINTR] when interrupted by a signal (the
    caller re-checks its stop flag and re-polls).
    @raise Failure on platforms without [poll(2)] or any other errno. *)
