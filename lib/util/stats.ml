let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

let of_ints xs = Array.map float_of_int xs

let of_list xs = Array.of_list xs

let summary xs =
  let lo, hi = min_max xs in
  Printf.sprintf "mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" (mean xs)
    (stddev xs) lo (median xs) hi
