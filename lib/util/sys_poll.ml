external poll_available : unit -> bool = "qr_util_poll_available"

external poll_raw :
  Unix.file_descr array -> int array -> int array -> int -> int
  = "qr_util_poll"

let available = poll_available ()
let pollin = 1
let pollout = 2
let pollerr = 4

let poll ~fds ~events ~revents ~timeout_ms =
  let n = Array.length fds in
  if Array.length events <> n || Array.length revents <> n then
    invalid_arg "Sys_poll.poll: array lengths differ";
  match poll_raw fds events revents timeout_ms with
  | -1 -> raise (Unix.Unix_error (Unix.EINTR, "poll", ""))
  | -2 -> failwith "Sys_poll.poll: poll(2) failed"
  | r -> r
