type 'a entry = { key : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let fresh_cap = max 8 (2 * cap) in
    let fresh =
      Array.make fresh_cap
        (if cap = 0 then { key = 0; value = Obj.magic 0 } else t.data.(0))
    in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).key < t.data.(parent).key then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.data.(left).key < t.data.(!smallest).key then
    smallest := left;
  if right < t.size && t.data.(right).key < t.data.(!smallest).key then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~key value =
  ensure_capacity t;
  t.data.(t.size) <- { key; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_min t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let of_list entries =
  let t = create () in
  List.iter (fun (key, value) -> add t ~key value) entries;
  t
