(** Readiness-driven event loop for the serving stack (DESIGN.md §15).

    Wraps [poll(2)] ({!Qr_util.Sys_poll}) — with a [Unix.select]
    fallback for platforms without it — behind the three things a
    single-domain server loop needs:

    - {e fd interest}: per-descriptor read/write interest with a
      callback receiving which direction(s) fired.  [POLLERR]/[POLLHUP]
      are folded into whatever interest the fd had armed, so the normal
      read/write path discovers the error itself;
    - {e timers}: one-shot and periodic, fired in due order.  Periodic
      timers {e coalesce}: a tick delayed past one or more periods fires
      once and reschedules from now, never burst-fires to catch up.
      This is what drives the metrics-snapshot cadence and the
      supervisor's watchdog scan — an idle server with no timers armed
      makes {e zero} wakeups, where the old loop ticked every second;
    - {e wakeup accounting}: every return from the kernel (ready or
      timeout, not [EINTR]) bumps {!wakeups} and the
      [server_loop_wakeups] counter, the number the [evloop] bench
      turns into wakeups/sec.

    The poll call runs under the [server.poll] fault point: a chaos plan
    can inject [EINTR] storms or delays into the multiplexer itself; an
    injected raise is absorbed as a zero-ready wakeup.

    Capacity: the poll backend is bounded only by the process fd limit.
    The select backend refuses ({!at_capacity}) to watch more than
    [FD_SETSIZE]-ish descriptors instead of letting [Unix.select] raise
    [EINVAL] and kill the accept loop; callers stop accepting while at
    capacity.

    Single-owner: one domain creates, registers and runs; callbacks run
    on that domain.  Worker domains reach the loop only through
    self-pipe writes (a watched readable fd). *)

type t

type backend = Poll | Select

val create : ?backend:backend -> unit -> t
(** Default backend: [Poll] when {!Qr_util.Sys_poll.available}, else
    [Select].  Forcing [~backend:Poll] where unavailable raises
    [Failure] at first poll; forcing [Select] is how the FD_SETSIZE
    guard is tested on a poll-capable host. *)

val backend : t -> backend

val capacity : t -> int option
(** [None] = bounded only by the fd limit (poll); [Some n] = hard
    backend cap (select: FD_SETSIZE = 1024). *)

val fd_count : t -> int
(** Currently watched descriptors. *)

val at_capacity : t -> bool
(** Whether {!watch} would push past {!capacity} — the accept loop's
    guard: stop accepting rather than die in the multiplexer. *)

(** {2 Descriptor interest} *)

type handle

val watch :
  t ->
  ?readable:bool ->
  ?writable:bool ->
  Unix.file_descr ->
  (readable:bool -> writable:bool -> unit) ->
  handle
(** Register a descriptor (default interest: [readable], not
    [writable]).  The callback runs once per wakeup with which armed
    direction(s) are ready; at least one of the two is [true].
    Callbacks may watch/unwatch/re-arm freely — changes take effect the
    same cycle for interest, next cycle for the poll set.
    @raise Invalid_argument when {!at_capacity}. *)

val set_interest : t -> handle -> ?readable:bool -> ?writable:bool -> unit -> unit
(** Re-arm a handle's interest; omitted directions keep their value.  A
    handle with neither interest stays registered but is skipped. *)

val unwatch : t -> handle -> unit
(** Forget the handle (idempotent).  Does not close the fd. *)

(** {2 Timers} *)

type timer

val add_timer : t -> ?period_ns:int64 -> delay_ns:int64 -> (unit -> unit) -> timer
(** Fire the callback once after [delay_ns] (clamped to [>= 0]); with
    [period_ns] (positive), keep firing every period, coalescing missed
    ticks.  Due timers fire in due order after fd dispatch. *)

val cancel_timer : t -> timer -> unit
(** Idempotent; a cancelled timer never fires again. *)

(** {2 Running} *)

val wakeups : t -> int
(** Kernel returns (ready or timeout) since {!create}; [EINTR] and
    injected [server.poll] faults are not wakeups. *)

val run_once : t -> unit
(** One cycle: block until readiness or the next timer (indefinitely if
    neither is armed — a signal's [EINTR] still returns), dispatch fd
    callbacks, then fire due timers.  Returns without dispatching on
    [EINTR]. *)

val run : ?on_cycle:(unit -> unit) -> t -> stop:(unit -> bool) -> unit
(** [run_once] until [stop ()] — checked before every cycle, so a
    signal handler flipping the flag mid-poll takes effect immediately
    after the interrupted call.  [on_cycle] runs after each cycle
    (dispatch {e and} timers), the seam where the serving loops stage
    parsed lines, drain response queues, and reap dead connections. *)
