(** Bounded per-connection write queue for the readiness-driven server.

    The historical loops wrote every response with a {e blocking}
    {!Io_util.write_all} on the accept domain, so one client that
    stopped reading (full kernel buffer) head-of-line-blocked every
    other connection behind it.  A write queue inverts that: responses
    are appended here, the event loop flushes whatever the kernel will
    take each time poll(2) reports the fd writable, and a stalled
    client's backlog grows {e its own} queue only — until the byte cap,
    at which point the server closes the connection
    ([server_slow_client_closes]) instead of holding response memory
    hostage (DESIGN.md §15).

    Single-owner: the accept/event-loop domain.  Not thread-safe. *)

type t

val create : ?fault:string -> cap_bytes:int -> Unix.file_descr -> t
(** A queue for one nonblocking descriptor.  [cap_bytes] bounds the
    {e queued} (not yet kernel-accepted) bytes; [fault] names the
    {!Qr_fault.Fault} point applied to every underlying write (the
    serving loops pass ["server.write"]). *)

val enqueue : t -> string -> [ `Ok | `Overflow ]
(** Append [line ^ "\n"].  [`Overflow] means accepting the line would
    exceed the byte cap — the line is {e not} queued and the caller
    should treat the connection as a slow client and close it.  The
    queue itself is not torn down; already-queued bytes may still be
    flushed if the caller prefers a best-effort goodbye. *)

val flush : t -> [ `Idle | `Pending | `Closed ]
(** Write queued bytes until the queue drains ([`Idle]), the kernel
    stops accepting ([`Pending] — re-arm write interest), or the peer
    is gone ([`Closed]). *)

val pending_bytes : t -> int
(** Bytes queued and not yet accepted by the kernel. *)

val is_empty : t -> bool
(** No queued bytes ([pending_bytes t = 0]). *)
