(** Fixed pool of worker domains for the serving stack.

    A pool owns [workers] OCaml 5 domains consuming work from two
    internal queues under one mutex+condition pair:

    - the {e job queue} (bounded): whole requests submitted by the
      server's accept/IO loop with {!submit}, which refuses — returns
      [false] — instead of blocking when the bound is reached, so the
      caller can shed with [overloaded] immediately;
    - the {e task queue} (unbounded; fan-out is already capped by
      [max_batch]): sub-items fanned out by {!map_tasks} from inside a
      running job — how [route_batch] parallelizes its items.

    Workers prefer tasks over jobs, and a domain blocked in
    {!map_tasks} {e helps}: it runs queued tasks while its own futures
    are pending — never jobs, which could re-enter the session it is
    itself serving — so a batch makes progress even when every other
    worker is busy.

    Each worker registers its stable index with
    {!Qr_fault.Fault.set_domain_index} (worker [k] is fault-stream
    domain [k + 1]), keeping chaos runs reproducible, and exposes it
    through {!worker_index} for per-worker session lookup and access-log
    stamping.

    Shutdown ({!shutdown}) is a graceful drain: workers finish
    everything queued, then exit and are joined.  The
    [server_queue_depth] gauge tracks jobs queued or running. *)

type t

val create : ?queue_bound:int -> ?notify:(unit -> unit) -> workers:int -> unit -> t
(** Spawn [workers] domains (at least 1).  [queue_bound] caps the job
    queue (default 32, matching [Session.default_config.max_inflight]).
    [notify] is called by a worker after each completed job — the
    server's self-pipe hook: the pipe's read end is just another
    readable fd in the {!Event_loop} interest set, so a finished
    response wakes the accept domain immediately instead of waiting
    out a poll timeout (DESIGN.md §15).
    @raise Invalid_argument when [workers < 1] or [queue_bound < 1]. *)

val workers : t -> int

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] (nothing enqueued) when the queue is at its
    bound or the pool is stopping.  Jobs must not raise — the worker
    absorbs anything that escapes, but the response plumbing is the
    job's responsibility. *)

val map_tasks : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_tasks pool f items] evaluates [f] on every item across the
    pool and returns the results in input order.  An exception raised
    by any [f item] is re-raised (after all items settle, the first in
    input order wins).  Safe to call from a worker: the calling domain
    helps run queued tasks while waiting.  When the pool is stopping,
    remaining items run inline on the caller. *)

val worker_index : unit -> int option
(** The calling worker's index in [0 .. workers-1]; [None] off-pool
    (e.g. on the main/accept domain). *)

val pending : t -> int
(** Jobs queued plus jobs currently running — the [health] report's
    [inflight] count in pool mode. *)

val replace : t -> int -> unit
(** Respawn worker slot [k] (the supervisor's lost-worker path).  The
    old domain cannot be killed — it is {e superseded}: its slot epoch
    is bumped so it exits its loop at the next check instead of taking
    new work, and it is joined at {!shutdown}.  A job it is still
    running finishes under its own error plumbing (its reply is dropped
    by the supervisor's settle CAS).  The replacement registers the same
    worker index and fault-stream domain.  Bumps
    [server_worker_restarts].  Main domain only; no-op while stopping.
    @raise Invalid_argument on a bad index. *)

val restarts : t -> int
(** Domains respawned by {!replace} (metrics-independent tally). *)

val shutdown : t -> unit
(** Stop accepting, let the workers drain both queues, join them.
    Idempotent.  Call only after the submitting loop has stopped. *)
