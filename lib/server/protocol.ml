module Json = Qr_obs.Json
module Trace_context = Qr_obs.Trace_context
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Router_config = Qr_route.Router_config
module Router_intf = Qr_route.Router_intf
module Router_registry = Qr_route.Router_registry

(* --------------------------------------------------------------- errors *)

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Invalid_params
  | Unsupported_input
  | Deadline_exceeded
  | Overloaded
  | Internal_error

let code_to_string = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_method -> "unknown_method"
  | Invalid_params -> "invalid_params"
  | Unsupported_input -> "unsupported_input"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Internal_error -> "internal_error"

let all_codes =
  [
    Parse_error; Invalid_request; Unknown_method; Invalid_params;
    Unsupported_input; Deadline_exceeded; Overloaded; Internal_error;
  ]

let code_of_string s =
  List.find_opt (fun c -> code_to_string c = s) all_codes

type error = {
  code : error_code;
  message : string;
  retry_after_ms : int option;
}

let error ?retry_after_ms code message = { code; message; retry_after_ms }

(* ------------------------------------------------------------- requests *)

type request = {
  id : Json.t;
  meth : string;
  params : Json.t;
  deadline_ms : int option;
  trace : Trace_context.t option;
}

let request ?(id = Json.Null) ?deadline_ms ?trace ~meth params =
  (match params with
  | Json.Obj _ -> ()
  | _ -> invalid_arg "Protocol.request: params must be an object");
  (match id with
  | Json.Null | Json.Int _ | Json.String _ -> ()
  | _ -> invalid_arg "Protocol.request: id must be an int or string");
  { id; meth; params; deadline_ms; trace }

let request_to_json r =
  let fields = [ ("id", r.id); ("method", Json.String r.meth) ] in
  let fields =
    match r.params with Json.Obj [] -> fields | p -> fields @ [ ("params", p) ]
  in
  let fields =
    match r.deadline_ms with
    | None -> fields
    | Some ms -> fields @ [ ("deadline_ms", Json.Int ms) ]
  in
  let fields =
    match r.trace with
    | None -> fields
    | Some t ->
        fields @ [ ("trace", Json.String (Trace_context.to_traceparent t)) ]
  in
  Json.Obj fields

let request_id json =
  match Json.member "id" json with
  | Some ((Json.Int _ | Json.String _ | Json.Null) as id) -> id
  | _ -> Json.Null

let request_of_json json =
  let invalid msg = Error (error Invalid_request msg) in
  match json with
  | Json.Obj _ -> (
      let id = request_id json in
      match Json.member "id" json with
      | Some (Json.Bool _ | Json.Float _ | Json.List _ | Json.Obj _) ->
          invalid "id: expected an integer or string"
      | _ -> (
          match Json.member "method" json with
          | None -> invalid "missing method"
          | Some (Json.String meth) -> (
              let params_ok =
                match Json.member "params" json with
                | None -> Ok (Json.Obj [])
                | Some (Json.Obj _ as p) -> Ok p
                | Some _ -> Error "params: expected an object"
              in
              match params_ok with
              | Error msg -> invalid msg
              | Ok params -> (
                  let deadline_ok =
                    match Json.member "deadline_ms" json with
                    | None -> Ok None
                    | Some (Json.Int ms) when ms >= 0 -> Ok (Some ms)
                    | Some _ ->
                        Error "deadline_ms: expected a non-negative integer"
                  in
                  match deadline_ok with
                  | Error msg -> invalid msg
                  | Ok deadline_ms -> (
                      match Json.member "trace" json with
                      | None ->
                          Ok { id; meth; params; deadline_ms; trace = None }
                      | Some (Json.String tp) -> (
                          match Trace_context.of_traceparent tp with
                          | Ok t ->
                              Ok
                                {
                                  id;
                                  meth;
                                  params;
                                  deadline_ms;
                                  trace = Some t;
                                }
                          | Error msg -> invalid ("trace: " ^ msg))
                      | Some _ ->
                          invalid "trace: expected a traceparent string")))
          | Some _ -> invalid "method: expected a string"))
  | _ -> invalid "request must be a JSON object"

(* ------------------------------------------------------------ responses *)

(* Responses echo the request's trace context verbatim (so callers can
   correlate without holding per-request state) and report the
   server-side wall time spent on the request. *)
let response_meta ?trace ?server_ms fields =
  let fields =
    match trace with
    | None -> fields
    | Some t ->
        fields @ [ ("trace", Json.String (Trace_context.to_traceparent t)) ]
  in
  match server_ms with
  | None -> fields
  | Some ms -> fields @ [ ("server_ms", Json.Float ms) ]

let ok_response ?trace ?server_ms ~id result =
  Json.Obj (response_meta ?trace ?server_ms [ ("id", id); ("result", result) ])

let error_to_json { code; message; retry_after_ms } =
  let fields =
    [
      ("code", Json.String (code_to_string code));
      ("message", Json.String message);
    ]
  in
  match retry_after_ms with
  | None -> Json.Obj fields
  | Some ms -> Json.Obj (fields @ [ ("retry_after_ms", Json.Int ms) ])

let error_response ?trace ?server_ms ~id err =
  Json.Obj
    (response_meta ?trace ?server_ms
       [ ("id", id); ("error", error_to_json err) ])

let response_trace json =
  match Json.member "trace" json with
  | Some (Json.String tp) -> (
      match Trace_context.of_traceparent tp with
      | Ok t -> Some t
      | Error _ -> None)
  | _ -> None

let response_server_ms json =
  Option.bind (Json.member "server_ms" json) Json.get_float

let response_result json =
  match Json.member "result" json with
  | Some result -> Ok result
  | None -> (
      match Json.member "error" json with
      | Some err ->
          let code =
            Option.bind (Json.member "code" err) Json.get_string
            |> Fun.flip Option.bind code_of_string
            |> Option.value ~default:Internal_error
          in
          let message =
            Option.bind (Json.member "message" err) Json.get_string
            |> Option.value ~default:(Json.to_string err)
          in
          let retry_after_ms =
            Option.bind (Json.member "retry_after_ms" err) Json.get_int
          in
          Error (error ?retry_after_ms code message)
      | None ->
          Error
            (error Internal_error
               ("malformed response envelope: " ^ Json.to_string json)))

(* --------------------------------------------------------------- codecs *)

let grid_to_json grid =
  Json.Obj
    [ ("rows", Json.Int (Grid.rows grid)); ("cols", Json.Int (Grid.cols grid)) ]

let grid_of_json json =
  match
    ( Option.bind (Json.member "rows" json) Json.get_int,
      Option.bind (Json.member "cols" json) Json.get_int )
  with
  | Some rows, Some cols ->
      if rows >= 1 && cols >= 1 then Ok (Grid.make ~rows ~cols)
      else Error "grid: rows and cols must be >= 1"
  | _ -> Error "grid: expected {\"rows\": m, \"cols\": n}"

let perm_to_json pi =
  Json.List (Array.to_list (Array.map (fun d -> Json.Int d) pi))

let perm_of_json ?expect_size json =
  match Json.get_list json with
  | None -> Error "perm: expected a list of integers"
  | Some items -> (
      let ints =
        List.fold_left
          (fun acc j ->
            match (acc, Json.get_int j) with
            | Some acc, Some i -> Some (i :: acc)
            | _ -> None)
          (Some []) items
      in
      match ints with
      | None -> Error "perm: expected a list of integers"
      | Some rev -> (
          let arr = Array.of_list (List.rev rev) in
          match expect_size with
          | Some n when Array.length arr <> n ->
              Error
                (Printf.sprintf "perm: expected %d entries, got %d" n
                   (Array.length arr))
          | _ ->
              if Perm.is_permutation arr then Ok arr
              else Error "perm: not a permutation of 0..n-1"))

let config_to_json (c : Router_config.t) =
  let base =
    [
      ( "discovery",
        Json.String (Router_config.discovery_to_string c.discovery) );
      ( "assignment",
        Json.String
          (match c.assignment with
          | Qr_route.Local_grid_route.Mcbbm -> "mcbbm"
          | Qr_route.Local_grid_route.Arbitrary -> "arbitrary") );
      ("transpose", Json.Bool c.transpose);
      ("compaction", Json.Bool c.compaction);
      ("trials", Json.Int c.ats_trials);
      ("seed", Json.Int c.seed);
    ]
  in
  match c.best_of with
  | None -> Json.Obj base
  | Some names ->
      Json.Obj
        (base
        @ [ ("best", Json.List (List.map (fun n -> Json.String n) names)) ])

let config_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.String text -> (
      match Router_config.of_string text with
      | Ok c -> Ok c
      | Error msg -> Error ("config: " ^ msg))
  | Json.Obj fields ->
      List.fold_left
        (fun acc (key, value) ->
          let* c = acc in
          let bad what =
            Error (Printf.sprintf "config: %s: expected %s" key what)
          in
          match key with
          | "discovery" -> (
              match Json.get_string value with
              | Some s -> (
                  match Router_config.discovery_of_string s with
                  | Ok d -> Ok { c with Router_config.discovery = d }
                  | Error msg -> Error ("config: " ^ msg))
              | None -> bad "a string")
          | "assignment" -> (
              match Json.get_string value with
              | Some "mcbbm" ->
                  Ok
                    {
                      c with
                      Router_config.assignment = Qr_route.Local_grid_route.Mcbbm;
                    }
              | Some "arbitrary" ->
                  Ok
                    {
                      c with
                      Router_config.assignment =
                        Qr_route.Local_grid_route.Arbitrary;
                    }
              | _ -> bad "\"mcbbm\" or \"arbitrary\"")
          | "transpose" -> (
              match Json.get_bool value with
              | Some b -> Ok { c with Router_config.transpose = b }
              | None -> bad "a boolean")
          | "compaction" -> (
              match Json.get_bool value with
              | Some b -> Ok { c with Router_config.compaction = b }
              | None -> bad "a boolean")
          | "trials" -> (
              match Json.get_int value with
              | Some v when v >= 1 -> Ok { c with Router_config.ats_trials = v }
              | _ -> bad "an integer >= 1")
          | "seed" -> (
              match Json.get_int value with
              | Some v -> Ok { c with Router_config.seed = v }
              | None -> bad "an integer")
          | "best" -> (
              match Json.get_list value with
              | Some items -> (
                  let names =
                    List.fold_left
                      (fun acc j ->
                        match (acc, Json.get_string j) with
                        | Some acc, Some s when s <> "" -> Some (s :: acc)
                        | _ -> None)
                      (Some []) items
                  in
                  match names with
                  | Some (_ :: _ as rev) ->
                      Ok { c with Router_config.best_of = Some (List.rev rev) }
                  | _ -> bad "a non-empty list of engine names")
              | None -> bad "a non-empty list of engine names")
          | _ -> Error (Printf.sprintf "config: unknown key %S" key))
        (Ok Router_config.default) fields
  | _ -> Error "config: expected an object or a key=value string"

let engines_json () =
  Json.Obj
    [
      ( "engines",
        Json.List
          (List.map
             (fun (e : Router_intf.t) ->
               let caps = e.capabilities in
               Json.Obj
                 [
                   ("name", Json.String e.name);
                   ( "inputs",
                     Json.String (if caps.grid_only then "grid" else "any") );
                   ("transpose", Json.Bool caps.supports_transpose);
                   ("partial", Json.Bool caps.supports_partial);
                 ])
             (Router_registry.all ())) );
    ]

let methods =
  [ "route"; "route_batch"; "transpile"; "engines"; "health"; "metrics";
    "stats" ]
