module Sys_poll = Qr_util.Sys_poll
module Timer = Qr_util.Timer
module Metrics = Qr_obs.Metrics
module Fault = Qr_fault.Fault

let c_wakeups =
  Metrics.counter "server_loop_wakeups"
    ~help:
      "Event-loop returns from poll/select (ready fds or timer expiry); \
       an idle server with no timers armed makes none."

type backend = Poll | Select

(* Unix.select fails with EINVAL at FD_SETSIZE; 1024 on every libc we
   target.  The guard lives here so the accept loop can refuse politely
   instead of dying in the multiplexer. *)
let select_capacity = 1024

type handle = {
  h_fd : Unix.file_descr;
  mutable h_read : bool;
  mutable h_write : bool;
  mutable h_active : bool;
  h_cb : readable:bool -> writable:bool -> unit;
}

type timer = {
  mutable t_due_ns : int64;
  t_period_ns : int64 option;
  t_cb : unit -> unit;
  mutable t_active : bool;
}

type t = {
  backend : backend;
  mutable handles : handle list;
  mutable timers : timer list;
  mutable wakeups : int;
}

let create ?backend () =
  let backend =
    match backend with
    | Some b -> b
    | None -> if Sys_poll.available then Poll else Select
  in
  { backend; handles = []; timers = []; wakeups = 0 }

let backend t = t.backend

let capacity t =
  match t.backend with Poll -> None | Select -> Some select_capacity

let fd_count t =
  List.length (List.filter (fun h -> h.h_active) t.handles)

let at_capacity t =
  match capacity t with None -> false | Some cap -> fd_count t >= cap

let watch t ?(readable = true) ?(writable = false) fd cb =
  if at_capacity t then
    invalid_arg "Event_loop.watch: backend at capacity (FD_SETSIZE)";
  let h =
    { h_fd = fd; h_read = readable; h_write = writable; h_active = true;
      h_cb = cb }
  in
  t.handles <- h :: t.handles;
  h

let set_interest _t h ?readable ?writable () =
  (match readable with Some r -> h.h_read <- r | None -> ());
  match writable with Some w -> h.h_write <- w | None -> ()

let unwatch t h =
  h.h_active <- false;
  t.handles <- List.filter (fun x -> x != h) t.handles

let add_timer t ?period_ns ~delay_ns cb =
  (match period_ns with
  | Some p when Int64.compare p 0L <= 0 ->
      invalid_arg "Event_loop.add_timer: period_ns <= 0"
  | _ -> ());
  let delay_ns = if Int64.compare delay_ns 0L < 0 then 0L else delay_ns in
  let tm =
    {
      t_due_ns = Int64.add (Timer.now_ns ()) delay_ns;
      t_period_ns = period_ns;
      t_cb = cb;
      t_active = true;
    }
  in
  t.timers <- tm :: t.timers;
  tm

let cancel_timer t tm =
  tm.t_active <- false;
  t.timers <- List.filter (fun x -> x != tm) t.timers

let wakeups t = t.wakeups

(* Next timer expiry as a poll timeout in ms: -1 = no timer armed (block
   until fd readiness or a signal), 0 = already due. *)
let timeout_ms t =
  let next =
    List.fold_left
      (fun acc tm ->
        if not tm.t_active then acc
        else
          match acc with
          | None -> Some tm.t_due_ns
          | Some d -> if Int64.compare tm.t_due_ns d < 0 then Some tm.t_due_ns else acc)
      None t.timers
  in
  match next with
  | None -> -1
  | Some due ->
      let delta = Int64.sub due (Timer.now_ns ()) in
      if Int64.compare delta 0L <= 0 then 0
      else
        (* Round up so a timer never finds itself polled just short of
           due in a hot loop. *)
        let ms = Int64.div (Int64.add delta 999_999L) 1_000_000L in
        Int64.to_int (Int64.min ms 3_600_000L)

(* Fire every due timer in due order.  Periodic timers reschedule from
   [now] (coalescing): a cycle that ran long fires the timer once and
   moves on — the cadence slips rather than burst-firing to catch up. *)
let fire_timers t =
  let now = Timer.now_ns () in
  let due =
    List.filter
      (fun tm -> tm.t_active && Int64.compare tm.t_due_ns now <= 0)
      t.timers
  in
  let due = List.sort (fun a b -> Int64.compare a.t_due_ns b.t_due_ns) due in
  List.iter
    (fun tm ->
      if tm.t_active then begin
        (match tm.t_period_ns with
        | Some p -> tm.t_due_ns <- Int64.add now p
        | None -> tm.t_active <- false);
        tm.t_cb ()
      end)
    due;
  t.timers <- List.filter (fun tm -> tm.t_active) t.timers

(* One kernel wait.  The snapshot arrays are rebuilt per cycle (the
   handle list mutates under dispatch); dispatch re-checks [h_active]
   so a callback closing a later connection in the same cycle wins. *)
let poll_backend t ~timeout =
  let interested =
    List.filter (fun h -> h.h_active && (h.h_read || h.h_write)) t.handles
  in
  let harr = Array.of_list interested in
  let n = Array.length harr in
  let fds = Array.map (fun h -> h.h_fd) harr in
  let events =
    Array.map
      (fun h ->
        (if h.h_read then Sys_poll.pollin else 0)
        lor if h.h_write then Sys_poll.pollout else 0)
      harr
  in
  let revents = Array.make n 0 in
  match Sys_poll.poll ~fds ~events ~revents ~timeout_ms:timeout with
  | _ready ->
      t.wakeups <- t.wakeups + 1;
      Metrics.incr c_wakeups;
      Array.iteri
        (fun i rv ->
          if rv <> 0 then begin
            let h = harr.(i) in
            if h.h_active then begin
              let err = rv land Sys_poll.pollerr <> 0 in
              (* An error/hup condition is delivered on whichever
                 interest is armed, so the read or flush path surfaces
                 the real errno itself. *)
              let readable =
                h.h_read && (rv land Sys_poll.pollin <> 0 || err)
              in
              let writable =
                h.h_write && (rv land Sys_poll.pollout <> 0 || err)
              in
              if readable || writable then h.h_cb ~readable ~writable
            end
          end)
        revents;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let select_backend t ~timeout =
  let interested =
    List.filter (fun h -> h.h_active && (h.h_read || h.h_write)) t.handles
  in
  let rfds =
    List.filter_map (fun h -> if h.h_read then Some h.h_fd else None)
      interested
  in
  let wfds =
    List.filter_map (fun h -> if h.h_write then Some h.h_fd else None)
      interested
  in
  let timeout_s = if timeout < 0 then -1.0 else float_of_int timeout /. 1e3 in
  match Unix.select rfds wfds [] timeout_s with
  | ready_r, ready_w, _ ->
      t.wakeups <- t.wakeups + 1;
      Metrics.incr c_wakeups;
      List.iter
        (fun h ->
          if h.h_active then begin
            let readable = h.h_read && List.memq h.h_fd ready_r in
            let writable = h.h_write && List.memq h.h_fd ready_w in
            if readable || writable then h.h_cb ~readable ~writable
          end)
        interested;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let run_once t =
  let timeout = timeout_ms t in
  let dispatched =
    (* The fault point covers the kernel wait itself: raise(eintr)
       storms the multiplexer, delay(ms) stalls a cycle.  A plain
       injected raise is absorbed as an empty wakeup so a chaos plan
       cannot kill the loop at its root. *)
    match
      Fault.point "server.poll" ~f:(fun () ->
          match t.backend with
          | Poll -> poll_backend t ~timeout
          | Select -> select_backend t ~timeout)
    with
    | ok -> ok
    | exception Fault.Injected _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  if dispatched then fire_timers t
  else
    (* EINTR: still honour due timers — a signal storm must not starve
       the watchdog cadence. *)
    fire_timers t

let run ?(on_cycle = fun () -> ()) t ~stop =
  while not (stop ()) do
    run_once t;
    on_cycle ()
  done
