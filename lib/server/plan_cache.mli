(** Bounded LRU cache of routing results.

    Routing is deterministic — the schedule for a [(grid, permutation,
    engine, configuration)] quadruple never changes — so a long-lived
    service can answer repeated requests without replanning.  Keys
    canonicalize the quadruple as grid dimensions, an MD5 digest of the
    permutation's destination array, the engine's registry name and the
    configuration's canonical text form; cached schedules are returned
    as-is, so a hit is byte-identical to the original response.

    Hits, misses and evictions are counted both per cache (the accessors
    below, for [health] reports and tests) and in the global
    {!Qr_obs.Metrics} registry ([plan_cache_hits], [plan_cache_misses],
    [plan_cache_evictions]) when collection is enabled.

    Fault points: [cache.find] fires on every lookup (raising actions
    simulate a broken cache; [corrupt] mangles the {e returned} schedule
    — the stored entry is untouched, so {!remove} + replan heals the
    key) and [cache.insert] fires on every store.  See DESIGN.md §11.

    {b Domain safety} (DESIGN.md §13): safe to share one cache across
    worker domains — a single internal mutex guards the table, the LRU
    recency list and the per-cache stat counters together, so entries
    never tear and [hits + misses] always equals the number of lookups.
    Eviction order stays globally exact (one lock, no shards);
    [find_or_add] runs [compute] outside the lock, so two domains
    missing on the same key concurrently may both plan — idempotent,
    since routing is deterministic. *)

type t

type key

val key :
  grid:Qr_graph.Grid.t ->
  pi:Qr_perm.Perm.t ->
  engine:string ->
  config:Qr_route.Router_config.t ->
  key

val create : ?capacity:int -> unit -> t
(** Default capacity 128.  A capacity of 0 disables caching (every lookup
    misses, nothing is stored).  @raise Invalid_argument when negative. *)

val capacity : t -> int
(** The configured (hard) capacity, fixed at {!create}. *)

val limit : t -> int
(** The effective (soft) capacity — equal to {!capacity} unless lowered
    by {!set_limit}. *)

val set_limit : t -> int -> unit
(** Shrink (or restore, up to {!capacity}) the effective capacity,
    evicting least-recently-used entries down to the new limit — the
    memory-brownout lever ({!Supervisor}): a browned-out server keeps
    serving but stops holding plans.  A limit of 0 disables caching.
    Evictions count as evictions.  @raise Invalid_argument when
    negative. *)

val length : t -> int

val find : t -> key -> Qr_route.Schedule.t option
(** Lookup; a hit refreshes the entry's recency and bumps the hit
    counters, a miss bumps the miss counters. *)

val add : t -> key -> Qr_route.Schedule.t -> unit
(** Insert (or overwrite) an entry, evicting the least recently used entry
    when past capacity. *)

val find_or_add :
  t -> key -> (unit -> Qr_route.Schedule.t) -> Qr_route.Schedule.t * bool
(** [find_or_add t k compute] returns [(schedule, cached)]: the cached
    schedule with [true], or [compute ()] — inserted — with [false]. *)

val remove : t -> key -> unit
(** Drop one entry (no-op when absent).  Does not count as an eviction —
    the caller is invalidating, not aging out; {!Session} uses this to
    shed entries whose schedules fail re-verification. *)

val clear : t -> unit
(** Drop every entry; the hit/miss/eviction counters are kept. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
