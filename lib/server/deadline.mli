(** Per-request time budgets on the monotonic clock.

    A deadline is an absolute instant on {!Qr_util.Timer}'s monotonic
    clock (so wall-clock jumps cannot extend or shrink a budget).  The
    request loop creates one from the envelope's [deadline_ms] and calls
    {!check} between routing phases — before planning, between batch
    items, before serialization — turning a blown budget into a
    [deadline_exceeded] error envelope instead of a connection that hangs
    until routing finishes.

    A 0 ms budget is already expired when created: the first check fires
    before any routing work, which is the deterministic behavior the
    tests (and impatient clients) rely on. *)

type t

exception Exceeded
(** Raised by {!check}; {!Session} maps it to the [deadline_exceeded]
    error code. *)

val none : t
(** Never expires. *)

val after_ms : int -> t
(** Expires [ms] milliseconds from now; budgets [<= 0] are already
    expired.  Very large budgets saturate at the far future instead of
    wrapping past the monotonic clock. *)

val of_budget_ms : int option -> t
(** [None] is {!none} — the envelope's optional [deadline_ms] field. *)

val expired : t -> bool

val check : t -> unit
(** @raise Exceeded once the deadline has passed. *)

val remaining_ms : t -> int option
(** Milliseconds left (clamped at 0); [None] for {!none}. *)

val absolute_ns : t -> int64 option
(** The absolute monotonic expiry instant; [None] for {!none}.  This is
    what {!Session} hands to {!Qr_util.Cancel.set_deadline_ns} so the
    routing hot loops can abort mid-plan. *)
