module Grid = Qr_graph.Grid
module Metrics = Qr_obs.Metrics
module Fault = Qr_fault.Fault
module Router_config = Qr_route.Router_config
module Schedule = Qr_route.Schedule

let c_hits = Metrics.counter "plan_cache_hits"
let c_misses = Metrics.counter "plan_cache_misses"
let c_evictions = Metrics.counter "plan_cache_evictions"

type key = string

let key ~grid ~pi ~engine ~config =
  let buf = Buffer.create 64 in
  Array.iter
    (fun d ->
      Buffer.add_string buf (string_of_int d);
      Buffer.add_char buf ',')
    pi;
  Printf.sprintf "%dx%d|%s|%s|%s" (Grid.rows grid) (Grid.cols grid)
    (Digest.to_hex (Digest.string (Buffer.contents buf)))
    engine
    (Router_config.to_string config)

(* Doubly-linked recency list threaded through the table's entries: head =
   most recent, tail = next eviction.  All operations O(1). *)
type entry = {
  e_key : key;
  value : Schedule.t;
  mutable prev : entry option;  (* towards the head *)
  mutable next : entry option;  (* towards the tail *)
}

(* Domain-safety (DESIGN.md §13): one mutex guards the table, the
   recency list and the stat counters together, so concurrent find/add
   from worker domains can never tear an entry or skew hits+misses away
   from the lookup count.  A single lock (rather than shards) keeps the
   LRU eviction order globally exact — the semantics the tests pin down;
   per-worker sharding is a ROADMAP follow-up.  Fault points fire
   {e outside} the critical section so a raising action can never leave
   the mutex held. *)
type t = {
  capacity : int;
  mutable limit : int;  (* soft cap <= capacity; brownout shrinks it *)
  mutex : Mutex.t;
  table : (key, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 128) () =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  {
    capacity;
    limit = capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = t.capacity
let length t = locked t @@ fun () -> Hashtbl.length t.table
let hits t = locked t @@ fun () -> t.hits
let misses t = locked t @@ fun () -> t.misses
let evictions t = locked t @@ fun () -> t.evictions

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

(* Chaos corruptor for the [cache.find] fault point: mangle the hit the
   smallest way the verifier must still catch — drop the first layer of a
   nonempty schedule (wrong permutation), or invent a swap for an empty
   one.  The stored entry itself is never mutated, so evicting and
   replanning heals the poisoned key. *)
let corrupt_schedule = function
  | [] -> [ [| (0, 1) |] ]
  | _ :: rest -> rest

let find t k =
  Fault.point "cache.find" ~f:(fun () -> ());
  let hit =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.table k with
    | Some e ->
        t.hits <- t.hits + 1;
        Metrics.incr c_hits;
        unlink t e;
        push_front t e;
        Some e.value
    | None ->
        t.misses <- t.misses + 1;
        Metrics.incr c_misses;
        None
  in
  match hit with
  | Some v -> Some (Fault.corrupt "cache.find" corrupt_schedule v)
  | None -> None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table e.e_key;
      t.evictions <- t.evictions + 1;
      Metrics.incr c_evictions

let add t k v =
  Fault.point "cache.insert" ~f:(fun () -> ());
  if t.limit > 0 then
    locked t @@ fun () ->
    (match Hashtbl.find_opt t.table k with
    | Some old ->
        unlink t old;
        Hashtbl.remove t.table k
    | None -> ());
    let e = { e_key = k; value = v; prev = None; next = None } in
    push_front t e;
    Hashtbl.replace t.table k e;
    while Hashtbl.length t.table > t.limit do
      evict_lru t
    done

let limit t = t.limit

let set_limit t n =
  if n < 0 then invalid_arg "Plan_cache.set_limit: negative limit";
  locked t @@ fun () ->
  t.limit <- min n t.capacity;
  while Hashtbl.length t.table > t.limit do
    evict_lru t
  done

let find_or_add t k compute =
  match find t k with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      add t k v;
      (v, false)

let remove t k =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table k

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
