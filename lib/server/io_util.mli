(** Hardened file-descriptor I/O for the serving loops.

    Plain [Unix.write]/[Unix.read] calls are wrong in three ways a busy
    server hits constantly: writes can be short (kernel buffers fill),
    both can be interrupted by signals ([EINTR] — the SIGINT/SIGTERM
    handlers the socket server installs make this routine), and a peer
    that went away surfaces as [EPIPE]/[ECONNRESET] which must close one
    connection, never the accept loop.  These helpers absorb all three:
    short writes and [EINTR] are retried until the operation completes,
    and peer-gone errors come back as values instead of exceptions.

    Both helpers carry an optional {!Qr_fault.Fault} point name so a
    chaos plan can tear writes ([truncate]), storm them with
    [raise(eintr)], or kill the peer mid-response ([raise(epipe)])
    deterministically — see DESIGN.md §11. *)

type read_result =
  | Read of int  (** [n > 0] bytes were read. *)
  | Eof  (** Orderly end of stream. *)
  | Closed  (** The peer reset the connection. *)

val write_all :
  ?fault:string -> Unix.file_descr -> string -> (unit, [ `Closed ]) result
(** Write the whole string, looping over short writes and [EINTR].
    [EPIPE]/[ECONNRESET] (peer closed mid-response) return
    [Error `Closed].  [fault] names a fault point applied to every
    underlying write: [Truncate] shortens the attempted length (the loop
    still completes the payload), raising actions are interpreted like
    the matching errno. *)

val write_line :
  ?fault:string -> Unix.file_descr -> string -> (unit, [ `Closed ]) result
(** {!write_all} of [line ^ "\n"]. *)

val read_chunk : ?fault:string -> Unix.file_descr -> bytes -> read_result
(** Read once into the buffer, retrying [EINTR] and spurious
    [EAGAIN]/[EWOULDBLOCK] wake-ups (the serving loops only read
    [select]-ready descriptors, so a would-block result is transient).
    0 bytes is {!Eof}; [ECONNRESET]/[EPIPE] is {!Closed}. *)
