(** Hardened file-descriptor I/O for the serving loops.

    Plain [Unix.write]/[Unix.read] calls are wrong in three ways a busy
    server hits constantly: writes can be short (kernel buffers fill),
    both can be interrupted by signals ([EINTR] — the SIGINT/SIGTERM
    handlers the socket server installs make this routine), and a peer
    that went away surfaces as [EPIPE]/[ECONNRESET] which must close one
    connection, never the accept loop.  These helpers absorb all three:
    short writes and [EINTR] are retried until the operation completes,
    and peer-gone errors come back as values instead of exceptions.

    The serving loops run their sockets {e nonblocking} (DESIGN.md §15),
    so [EAGAIN]/[EWOULDBLOCK] is a state, not an error: {!read_chunk}
    reports it as {!Would_block} and {!write_once} as {!Write_blocked},
    and the event loop reschedules the descriptor on readiness instead
    of spinning.

    Both helpers carry an optional {!Qr_fault.Fault} point name so a
    chaos plan can tear writes ([truncate]), storm them with
    [raise(eintr)], or kill the peer mid-response ([raise(epipe)])
    deterministically — see DESIGN.md §11. *)

type read_result =
  | Read of int  (** [n > 0] bytes were read. *)
  | Eof  (** Orderly end of stream. *)
  | Closed  (** The peer reset the connection. *)
  | Would_block
      (** Nonblocking fd with no data right now; wait for readiness.
          (Historically {!read_chunk} busy-retried this case, burning a
          core on an idle nonblocking descriptor.) *)

type write_result =
  | Wrote of int  (** [n >= 0] bytes were accepted by the kernel. *)
  | Write_blocked
      (** Kernel buffer full (nonblocking fd); wait for writability. *)
  | Write_closed  (** The peer is gone ([EPIPE]/[ECONNRESET]). *)

val write_all :
  ?fault:string -> Unix.file_descr -> string -> (unit, [ `Closed ]) result
(** Write the whole string, looping over short writes and [EINTR].
    [EPIPE]/[ECONNRESET] (peer closed mid-response) return
    [Error `Closed].  For {e blocking} descriptors (the one-shot client,
    channel transports); on a nonblocking fd an [EAGAIN] would escape as
    an exception — use {!write_once} and a {!Write_queue} there.
    [fault] names a fault point applied to every underlying write:
    [Truncate] shortens the attempted length (the loop still completes
    the payload), raising actions are interpreted like the matching
    errno. *)

val write_line :
  ?fault:string -> Unix.file_descr -> string -> (unit, [ `Closed ]) result
(** {!write_all} of [line ^ "\n"]. *)

val write_once :
  ?fault:string ->
  Unix.file_descr ->
  string ->
  pos:int ->
  len:int ->
  write_result
(** One write attempt of [s.[pos .. pos+len)], retrying only [EINTR].
    Short writes are reported, not looped: the caller (a per-connection
    {!Write_queue}) keeps the remainder queued and flushes again when
    poll reports the fd writable.  [fault] applies {!Qr_fault.Fault}
    [truncate] (clamped to [>= 1]) and raising actions like
    {!write_all}. *)

val read_chunk : ?fault:string -> Unix.file_descr -> bytes -> read_result
(** Read once into the buffer, retrying [EINTR].  0 bytes is {!Eof};
    [EAGAIN]/[EWOULDBLOCK] is {!Would_block} (nonblocking fd, no data —
    the event loop re-arms read interest rather than spinning);
    [ECONNRESET]/[EPIPE] is {!Closed}. *)
