module Metrics = Qr_obs.Metrics
module Fault = Qr_fault.Fault

let g_queue_depth =
  Metrics.gauge "server_queue_depth"
    ~help:"Requests queued or running in the worker pool."

let c_restarts =
  Metrics.counter "server_worker_restarts"
    ~help:"Worker domains respawned after the watchdog declared them lost."

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on every enqueue and at shutdown *)
  jobs : (unit -> unit) Queue.t;
  tasks : (unit -> unit) Queue.t;
  queue_bound : int;
  notify : unit -> unit;
  mutable running_jobs : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
  (* Slot [k]'s spawn generation: a worker observing a bumped epoch is a
     superseded zombie and exits its loop instead of taking new work. *)
  epochs : int Atomic.t array;
  mutable zombies : unit Domain.t list;  (* replaced domains, joined at shutdown *)
  mutable restarts : int;
}

let index_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let worker_index () = Domain.DLS.get index_key

let workers t = Array.length t.domains

(* Call with [t.mutex] held. *)
let update_depth t =
  Metrics.set g_queue_depth
    (float_of_int (Queue.length t.jobs + t.running_jobs))

(* ------------------------------------------------------------- futures *)

type 'a cell = Pending | Value of 'a | Exn of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable cell : 'a cell;
}

let fulfill fut thunk =
  let result = match thunk () with v -> Value v | exception e -> Exn e in
  Mutex.lock fut.fm;
  fut.cell <- result;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let try_pop_task t =
  Mutex.lock t.mutex;
  let task = if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks) in
  Mutex.unlock t.mutex;
  task

(* Wait for the future, running queued {e tasks} in the meantime.  Only
   tasks: running another whole job here could re-enter the session the
   calling worker is serving.  Progress: if no task is poppable and the
   future is still pending, its task is running on some domain right
   now, and that domain is not blocked on this future. *)
let is_pending fut =
  Mutex.lock fut.fm;
  let p = match fut.cell with Pending -> true | Value _ | Exn _ -> false in
  Mutex.unlock fut.fm;
  p

let rec await t fut =
  if is_pending fut then
    match try_pop_task t with
    | Some task ->
        task ();
        await t fut
    | None ->
        Mutex.lock fut.fm;
        let rec wait () =
          match fut.cell with
          | Pending ->
              Condition.wait fut.fc fut.fm;
              wait ()
          | Value _ | Exn _ -> ()
        in
        wait ();
        Mutex.unlock fut.fm;
        await t fut
  else
    match fut.cell with
    | Value v -> Ok v
    | Exn e -> Error e
    | Pending -> assert false

(* ---------------------------------------------------------- worker loop *)

let rec worker_loop t k epoch =
  let stale () = Atomic.get t.epochs.(k) <> epoch in
  Mutex.lock t.mutex;
  while
    (not (stale ()))
    && Queue.is_empty t.tasks && Queue.is_empty t.jobs && not t.stopping
  do
    Condition.wait t.nonempty t.mutex
  done;
  if stale () then
    (* Superseded: a replacement domain owns this slot now — exit
       without touching the queues. *)
    Mutex.unlock t.mutex
  else if Queue.is_empty t.tasks && Queue.is_empty t.jobs then
    (* stopping, both queues drained *)
    Mutex.unlock t.mutex
  else begin
    let from_tasks = not (Queue.is_empty t.tasks) in
    let work =
      if from_tasks then Queue.pop t.tasks
      else begin
        let j = Queue.pop t.jobs in
        t.running_jobs <- t.running_jobs + 1;
        update_depth t;
        j
      end
    in
    Mutex.unlock t.mutex;
    (* Jobs and tasks are responsible for their own error plumbing;
       nothing they raise may kill the worker. *)
    (try work () with _ -> ());
    if not from_tasks then begin
      Mutex.lock t.mutex;
      t.running_jobs <- t.running_jobs - 1;
      update_depth t;
      Mutex.unlock t.mutex;
      t.notify ()
    end;
    worker_loop t k epoch
  end

let create ?(queue_bound = 32) ?(notify = fun () -> ()) ~workers () =
  if workers < 1 then invalid_arg "Worker_pool.create: workers < 1";
  if queue_bound < 1 then invalid_arg "Worker_pool.create: queue_bound < 1";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      tasks = Queue.create ();
      queue_bound;
      notify;
      running_jobs = 0;
      stopping = false;
      domains = [||];
      epochs = Array.init workers (fun _ -> Atomic.make 0);
      zombies = [];
      restarts = 0;
    }
  in
  t.domains <-
    Array.init workers (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.set index_key (Some k);
            Fault.set_domain_index (k + 1);
            worker_loop t k 0));
  t

let submit t job =
  Mutex.lock t.mutex;
  let accepted =
    if t.stopping || Queue.length t.jobs >= t.queue_bound then false
    else begin
      Queue.add job t.jobs;
      update_depth t;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.mutex;
  accepted

let submit_task t task =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    (* Drain mode: no worker may be left to pop it; run inline. *)
    task ()
  end
  else begin
    Queue.add task t.tasks;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex
  end

let map_tasks t f items =
  let futures =
    List.map
      (fun item ->
        let fut = { fm = Mutex.create (); fc = Condition.create (); cell = Pending } in
        submit_task t (fun () -> fulfill fut (fun () -> f item));
        fut)
      items
  in
  let results = List.map (fun fut -> await t fut) futures in
  (* Every item settled; re-raise the first failure in input order. *)
  List.map
    (function Ok v -> v | Error e -> raise e)
    results

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs + t.running_jobs in
  Mutex.unlock t.mutex;
  n

(* Replace the domain in slot [k]: bump the slot epoch (the old domain
   exits its loop as soon as it next checks — a genuinely wedged one
   just never takes new work) and spawn a fresh domain with the same
   worker index and fault stream.  The old domain cannot be killed
   (OCaml domains have no cancellation) so it is parked on the zombie
   list and joined at shutdown; a job it is still running finishes under
   its own error plumbing and decrements [running_jobs] normally.  Main
   domain only. *)
let replace t k =
  if k < 0 || k >= Array.length t.domains then
    invalid_arg "Worker_pool.replace: bad worker index";
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let epoch = 1 + Atomic.get t.epochs.(k) in
    Atomic.set t.epochs.(k) epoch;
    t.zombies <- t.domains.(k) :: t.zombies;
    t.restarts <- t.restarts + 1;
    Metrics.incr c_restarts;
    (* Wake a zombie parked in Condition.wait so it notices the epoch. *)
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    t.domains.(k) <-
      Domain.spawn (fun () ->
          Domain.DLS.set index_key (Some k);
          Fault.set_domain_index (k + 1);
          worker_loop t k epoch)
  end

let restarts t =
  Mutex.lock t.mutex;
  let n = t.restarts in
  Mutex.unlock t.mutex;
  n

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||];
  List.iter Domain.join t.zombies;
  t.zombies <- []
