module Timer = Qr_util.Timer

type t = int64 option  (* absolute monotonic ns; None never expires *)

exception Exceeded

let () =
  Printexc.register_printer (function
    | Exceeded -> Some "Deadline.Exceeded"
    | _ -> None)

let none : t = None

let after_ms ms =
  let budget_ns = Int64.mul (Int64.of_int (max 0 ms)) 1_000_000L in
  Some (Int64.add (Timer.now_ns ()) budget_ns)

let of_budget_ms = function None -> none | Some ms -> after_ms ms

let expired = function
  | None -> false
  | Some at -> Timer.now_ns () >= at

let check t = if expired t then raise Exceeded

let remaining_ms = function
  | None -> None
  | Some at ->
      let left = Int64.sub at (Timer.now_ns ()) in
      Some (Int64.to_int (Int64.div (Int64.max 0L left) 1_000_000L))
