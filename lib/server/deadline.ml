module Timer = Qr_util.Timer

type t = int64 option  (* absolute monotonic ns; None never expires *)

exception Exceeded

let () =
  Printexc.register_printer (function
    | Exceeded -> Some "Deadline.Exceeded"
    | _ -> None)

let none : t = None

(* Saturating arithmetic: a budget like [max_int] ms must clamp to the
   far future, not wrap past the monotonic clock into the past (which
   would expire the request instantly). *)
let after_ms ms =
  let ms = Int64.of_int (max 0 ms) in
  let budget_ns =
    if Int64.compare ms (Int64.div Int64.max_int 1_000_000L) > 0 then
      Int64.max_int
    else Int64.mul ms 1_000_000L
  in
  let now = Timer.now_ns () in
  let at =
    if Int64.compare budget_ns (Int64.sub Int64.max_int now) > 0 then
      Int64.max_int
    else Int64.add now budget_ns
  in
  Some at

let of_budget_ms = function None -> none | Some ms -> after_ms ms

let expired = function
  | None -> false
  | Some at -> Timer.now_ns () >= at

let check t = if expired t then raise Exceeded

let absolute_ns = function None -> None | Some at -> Some at

let remaining_ms = function
  | None -> None
  | Some at ->
      let left = Int64.sub at (Timer.now_ns ()) in
      Some (Int64.to_int (Int64.div (Int64.max 0L left) 1_000_000L))
