module Cancel = Qr_util.Cancel
module Timer = Qr_util.Timer
module Resource = Qr_util.Resource
module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Json = Qr_obs.Json

let c_hung =
  Metrics.counter "server_hung_requests"
    ~help:"Requests killed by the watchdog after exceeding --hung-request-ms."

let c_adaptive_shed =
  Metrics.counter "server_shed_adaptive"
    ~help:"Requests shed by adaptive admission (queue delay over target)."

let g_queue_delay =
  Metrics.gauge "server_queue_delay_ms"
    ~help:"EWMA of job queue delay (submit to start) in milliseconds."

let g_brownout =
  Metrics.gauge "server_brownout"
    ~help:"1 while the memory brownout is active, else 0."

(* ------------------------------------------------------------- tickets *)

(* One in-flight pool job under watch.  The watchdog (main domain) and
   the worker race to settle it: whoever wins the [tk_settled] CAS owns
   the reply slot — the loser drops its response on the floor.  The
   monitor-only fields track the kill escalation and are never touched
   by the worker. *)
type ticket = {
  tk_worker : int;
  tk_cancel : Cancel.t;
  tk_settled : bool Atomic.t;
  tk_abort : unit -> unit;  (* park the internal_error reply; main only *)
  tk_started_ns : int64;
  mutable tk_cell : ticket option;  (* the exact option stored in the slot *)
  mutable tk_killed_at_ns : int64;  (* 0 = not killed yet; monitor only *)
  mutable tk_progress_at_kill : int;  (* monitor only *)
}

type t = {
  hung_ns : int64 option;
  queue_target_ns : int64 option;
  max_rss_kb : int option;
  slots : ticket option Atomic.t array;
  queue_delay_ns : int64 Atomic.t;  (* EWMA, 0 = no sample yet *)
  last_sample_ns : int64 Atomic.t;  (* when a job last reported a delay *)
  brownout : bool Atomic.t;
  mutable hung : int;  (* main domain only *)
}

(* Process-wide brownout flag: sessions live one layer above the
   supervisor wiring (workers reach them through the pool, not through
   [t]), so the batch-rejection check reads module state. *)
let brownout_flag = Atomic.make false

let brownout_active () = Atomic.get brownout_flag

let ms_to_ns ms = Int64.mul (Int64.of_int ms) 1_000_000L

let create ?hung_ms ?queue_delay_target_ms ?max_rss_mb ~workers () =
  let pos what = function
    | Some v when v <= 0 ->
        invalid_arg (Printf.sprintf "Supervisor.create: %s must be positive" what)
    | v -> v
  in
  let hung_ms = pos "hung_ms" hung_ms in
  let queue_delay_target_ms = pos "queue_delay_target_ms" queue_delay_target_ms in
  let max_rss_mb = pos "max_rss_mb" max_rss_mb in
  if workers < 1 then invalid_arg "Supervisor.create: workers < 1";
  {
    hung_ns = Option.map ms_to_ns hung_ms;
    queue_target_ns = Option.map ms_to_ns queue_delay_target_ms;
    max_rss_kb = Option.map (fun mb -> mb * 1024) max_rss_mb;
    slots = Array.init workers (fun _ -> Atomic.make None);
    queue_delay_ns = Atomic.make 0L;
    last_sample_ns = Atomic.make 0L;
    brownout = Atomic.make false;
    hung = 0;
  }

let hung t = t.hung

let enter t ~worker ~cancel ~abort =
  let tk =
    {
      tk_worker = worker;
      tk_cancel = cancel;
      tk_settled = Atomic.make false;
      tk_abort = abort;
      tk_started_ns = Timer.now_ns ();
      tk_cell = None;
      tk_killed_at_ns = 0L;
      tk_progress_at_kill = 0;
    }
  in
  let cell = Some tk in
  tk.tk_cell <- cell;
  if worker >= 0 && worker < Array.length t.slots then
    Atomic.set t.slots.(worker) cell;
  tk

let settle tk = Atomic.compare_and_set tk.tk_settled false true

let leave t tk =
  if tk.tk_worker >= 0 && tk.tk_worker < Array.length t.slots then
    ignore (Atomic.compare_and_set t.slots.(tk.tk_worker) tk.tk_cell None)

(* ------------------------------------------------------------ watchdog *)

(* Escalation per armed slot: past [hung_ns] the request is killed
   cooperatively (its cancel token flips; a polling engine aborts with
   an internal_error within a stride).  If after a further grace period
   — another [hung_ns] — the token's progress word has not moved, the
   worker is not polling at all: declare it lost, park the abort reply
   (settle CAS decides against a late worker), free the slot, and report
   the worker index so the server can respawn the domain.  A killed
   worker whose progress word still advances is slow, not wedged — it
   keeps its domain and aborts on its own. *)
let monitor t =
  match t.hung_ns with
  | None -> []
  | Some hung_ns ->
      let now = Timer.now_ns () in
      let lost = ref [] in
      Array.iteri
        (fun k slot ->
          match Atomic.get slot with
          | None -> ()
          | Some tk ->
              if Int64.compare tk.tk_killed_at_ns 0L = 0 then begin
                if Int64.compare (Int64.sub now tk.tk_started_ns) hung_ns > 0
                then begin
                  tk.tk_killed_at_ns <- now;
                  tk.tk_progress_at_kill <- Cancel.progress tk.tk_cancel;
                  Cancel.kill tk.tk_cancel;
                  t.hung <- t.hung + 1;
                  Metrics.incr c_hung;
                  Log.warn "supervisor: request hung; cancelling"
                    [
                      ("worker", Json.Int k);
                      ( "elapsed_ms",
                        Json.Float
                          (Int64.to_float (Int64.sub now tk.tk_started_ns)
                          /. 1e6) );
                    ]
                end
              end
              else if
                Int64.compare (Int64.sub now tk.tk_killed_at_ns) hung_ns > 0
                && Cancel.progress tk.tk_cancel = tk.tk_progress_at_kill
              then
                if settle tk then begin
                  tk.tk_abort ();
                  ignore (Atomic.compare_and_set slot tk.tk_cell None);
                  lost := k :: !lost;
                  Log.error "supervisor: worker lost; restarting domain"
                    [ ("worker", Json.Int k) ]
                end
                else
                  (* The worker settled first after all — its normal
                     completion path will clear the slot. *)
                  ())
        t.slots;
      List.rev !lost

(* Poll often enough that kill and lost detection land within a fraction
   of the hang budget, but never busier than 10 ms. *)
let poll_interval_s t =
  match t.hung_ns with
  | None -> 1.0
  | Some hung_ns ->
      Float.min 1.0 (Float.max 0.01 (Int64.to_float hung_ns /. 4e9))

let poll_interval_ns t =
  let ns = Int64.of_float (poll_interval_s t *. 1e9) in
  if Int64.compare ns 1_000_000L < 0 then 1_000_000L else ns

(* ----------------------------------------------------------- admission *)

(* EWMA with alpha = 1/8, folded CAS-free-loop style so any worker can
   report its observed queue delay. *)
let note_queue_delay t delay_ns =
  let delay_ns = if Int64.compare delay_ns 0L < 0 then 0L else delay_ns in
  let rec fold () =
    let old = Atomic.get t.queue_delay_ns in
    let next =
      if Int64.compare old 0L = 0 then delay_ns
      else Int64.add old (Int64.div (Int64.sub delay_ns old) 8L)
    in
    if not (Atomic.compare_and_set t.queue_delay_ns old next) then fold ()
    else next
  in
  let ewma = fold () in
  Atomic.set t.last_sample_ns (Timer.now_ns ());
  Metrics.set g_queue_delay (Int64.to_float ewma /. 1e6)

let queue_delay_ms t = Int64.to_float (Atomic.get t.queue_delay_ns) /. 1e6

let retry_hint_ms t =
  let ewma_ms = queue_delay_ms t in
  max 1 (min 60_000 (int_of_float (2. *. ewma_ms)))

(* The EWMA only moves when a job starts.  If a burst drives it over the
   target and then the backlog drains, no further samples arrive — a
   frozen spike would shed every future request forever.  So when the
   EWMA is over target but no job has started for a while (the queue
   must be empty or draining), fold in a zero sample, rate-limited to
   one per stale window by a CAS on the sample clock: the estimate
   decays geometrically and admission reopens on its own. *)
let decay_if_stale t ~target =
  let now = Timer.now_ns () in
  let stale = Int64.mul 4L target in
  let last = Atomic.get t.last_sample_ns in
  if
    Int64.compare (Int64.sub now last) stale > 0
    && Atomic.compare_and_set t.last_sample_ns last now
  then begin
    let rec fold () =
      let old = Atomic.get t.queue_delay_ns in
      let next = Int64.sub old (Int64.div old 8L) in
      if not (Atomic.compare_and_set t.queue_delay_ns old next) then fold ()
    in
    fold ();
    Metrics.set g_queue_delay
      (Int64.to_float (Atomic.get t.queue_delay_ns) /. 1e6)
  end

let should_shed t =
  match t.queue_target_ns with
  | None -> None
  | Some target ->
      if Int64.compare (Atomic.get t.queue_delay_ns) target > 0 then begin
        decay_if_stale t ~target;
        if Int64.compare (Atomic.get t.queue_delay_ns) target > 0 then begin
          Metrics.incr c_adaptive_shed;
          Some (retry_hint_ms t)
        end
        else None
      end
      else None

(* ------------------------------------------------------------ brownout *)

(* One-way: max RSS is a high-water mark, so once crossed the process
   stays browned out — it keeps serving single routes but stops holding
   cached plans and rejects batch fan-out. *)
let check_memory t ~cache =
  match t.max_rss_kb with
  | None -> ()
  | Some limit_kb ->
      if (not (Atomic.get t.brownout)) && Resource.max_rss_kb () > limit_kb
      then begin
        Atomic.set t.brownout true;
        Atomic.set brownout_flag true;
        Metrics.set g_brownout 1.;
        Plan_cache.set_limit cache (Plan_cache.capacity cache / 8);
        Log.warn "supervisor: memory brownout"
          [
            ("max_rss_kb", Json.Int (Resource.max_rss_kb ()));
            ("limit_kb", Json.Int limit_kb);
            ("cache_limit", Json.Int (Plan_cache.limit cache));
          ]
      end

let reset_brownout () =
  Atomic.set brownout_flag false;
  Metrics.set g_brownout 0.
