(** The routing service's serving loops.

    Two transports share one request pipeline ({!Session.handle_line}):

    - {!run_stdio} serves newline-delimited JSON on stdin/stdout — the
      mode scripts and CI pipe through, and the transport a transpiler
      pipeline would spawn as a subprocess;
    - {!run_socket} serves a Unix-domain socket with a single-threaded
      [select] event loop: every accepted connection gets its own
      {!Session} (its own workspace) but all connections share one
      {!Plan_cache}, so any client can hit plans another client warmed.

    Backpressure: complete request lines are staged in a bounded in-flight
    queue; once [max_inflight] requests are queued in a poll cycle,
    further pipelined requests are answered immediately with the
    [overloaded] error instead of growing the queue without bound.

    Shutdown: SIGINT/SIGTERM flip a flag; the loop stops accepting,
    answers everything already queued, flushes, closes and removes the
    socket file before returning (graceful drain).  Both loops enable
    {!Qr_obs.Metrics} so the [metrics] method and the plan-cache counters
    are live. *)

val serve_channels :
  ?config:Session.config -> ?session:Session.t -> in_channel -> out_channel ->
  unit
(** Serve one connection's worth of requests: read lines until EOF,
    answer each on [oc] (flushed per response).  Blank lines are skipped.
    The loop {!run_stdio} wraps, and the seam tests drive over an
    in-memory channel pair. *)

val run_stdio : ?config:Session.config -> unit -> unit
(** {!serve_channels} on stdin/stdout with metrics enabled. *)

val run_socket : ?config:Session.config -> path:string -> unit -> unit
(** Bind, listen and serve [path] until SIGINT/SIGTERM, then drain.  A
    stale socket file left by a crashed server is replaced; any other
    existing file is an error ([Failure]).  The socket file is removed on
    exit. *)
