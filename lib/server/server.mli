(** The routing service's serving loops.

    Three transports share one request pipeline ({!Session.handle_line}):

    - {!run_stdio} serves newline-delimited JSON on stdin/stdout — the
      mode scripts and CI pipe through, and the transport a transpiler
      pipeline would spawn as a subprocess;
    - {!serve_fd} serves one already-connected file descriptor (one end
      of a socketpair, an inherited fd) until EOF — the loop the chaos
      harness drives;
    - {!run_socket} serves a Unix-domain socket.  With [workers = 1]
      (the default) it is a single-threaded readiness-driven
      {!Event_loop} ([poll(2)], [select] fallback): every accepted
      connection gets its own {!Session} (its own workspace) but all
      connections share one {!Plan_cache}, so any client can hit plans
      another client warmed.  With [workers > 1] the accept/IO loop
      stays on the main domain and requests run on a {!Worker_pool} of
      that many domains — one session per worker, the plan cache still
      shared — with responses written back in arrival order per
      connection (DESIGN.md §13); the pool's self-pipe read end is just
      another readable fd in the loop's interest set.

    All accepted descriptors are nonblocking and close-on-exec.
    Responses go through a per-connection bounded write queue
    ({!Write_queue}) flushed on writability: a client that stops
    reading blocks {e only itself}, and once its outbox exceeds
    [max_outbox_bytes] the connection is closed
    ([server_slow_client_closes] metric) rather than letting the queue
    grow without bound (DESIGN.md §15).  An idle server with no timers
    armed makes zero wakeups ([server_loop_wakeups] counter); the
    metrics-snapshot cadence and the supervisor's watchdog scan are
    event-loop timers, armed only when their feature is on.

    Robustness (DESIGN.md §11): every request runs under per-request
    exception isolation — a crashing handler produces an
    [internal_error] response ([server_crashed_requests] metric), never
    a dead loop.  A peer vanishing mid-response ([EPIPE]/[ECONNRESET])
    closes that connection only.  A connection that accumulates
    [error_budget] consecutive error responses is shed
    ([server_error_budget_closes] metric).  Fault points [server.read],
    [server.write], [server.accept], [server.poll] and
    [server.writable] let a chaos plan exercise all of these
    deterministically.

    Backpressure: complete request lines are staged in a bounded in-flight
    queue; once [max_inflight] requests are queued in a poll cycle,
    further pipelined requests are answered immediately with the
    [overloaded] error instead of growing the queue without bound.

    Capacity: on the poll backend the fd limit is the only bound; on
    the select fallback the loop stops accepting (one-time warning) at
    the FD_SETSIZE guard instead of dying in the multiplexer.

    Shutdown: SIGINT/SIGTERM flip a flag; the loop stops accepting
    (listener unwatched), answers everything already queued, flushes
    write queues under a bounded (5s) grace for slow readers, closes
    and removes the socket file before returning (graceful drain).  The stdio and socket
    loops enable {!Qr_obs.Metrics} so the [metrics] method and the
    plan-cache counters are live.

    Telemetry (DESIGN.md §12): with [metrics_file] set, the loops write
    the Prometheus exposition ({!Qr_obs.Metrics.to_prometheus}, process
    gauges refreshed) to that path atomically (tmp + rename) about every
    2 seconds and at shutdown/EOF — file-based scraping without an HTTP
    listener.  Access-log records are emitted per request by
    {!Session.handle_line}. *)

val serve_channels :
  ?config:Session.config ->
  ?session:Session.t ->
  ?metrics_file:string ->
  in_channel ->
  out_channel ->
  unit
(** Serve one connection's worth of requests: read lines until EOF,
    answer each on [oc] (flushed per response).  Blank lines are skipped.
    The loop {!run_stdio} wraps, and the seam tests drive over an
    in-memory channel pair.  [metrics_file] snapshots are written at most
    every ~2s after a response, plus once at EOF. *)

val run_stdio : ?config:Session.config -> ?metrics_file:string -> unit -> unit
(** {!serve_channels} on stdin/stdout with metrics enabled. *)

val serve_fd :
  ?config:Session.config -> ?session:Session.t -> Unix.file_descr -> unit
(** Serve one connected descriptor until EOF, peer reset, an injected
    read fault, or the error budget trips — reads through the
    [server.read] fault point and writes through [server.write], so chaos
    plans reach the real descriptor I/O (unlike {!serve_channels}, whose
    buffered channels bypass it).  Runs [fd] through the same
    {!Event_loop} + {!Write_queue} machinery as the socket loops
    (the fd is switched to nonblocking for the duration and restored
    on exit).  Does not close [fd] and does not enable metrics; the
    caller owns both. *)

val run_socket :
  ?config:Session.config ->
  ?metrics_file:string ->
  ?workers:int ->
  path:string ->
  unit ->
  unit
(** Bind, listen and serve [path] until SIGINT/SIGTERM, then drain.  A
    stale socket file left by a crashed server is replaced; any other
    existing file is an error ([Failure]).  The socket file is removed on
    exit.  Sessions report the pending queue's length as their [health]
    [inflight] count.  [metrics_file] snapshots are written at startup,
    about every 2s, and at shutdown.

    [workers] (default 1) selects the serving engine.  1 keeps the
    historical single-threaded loop, byte-for-byte.  [> 1] runs requests
    on that many worker domains: per-connection response order is still
    arrival order (sequence-numbered reorder buffer), the in-flight
    bound still sheds with [overloaded] (the shed response waits its
    turn in the same order), the per-connection error budget is still
    enforced (on the accept loop, from each response's status), and
    SIGINT/SIGTERM still drain everything submitted before the pool
    shuts down.  [route_batch] items additionally fan out across the
    pool.  The [server_workers] gauge reports the mode;
    [server_queue_depth] tracks the pool's backlog. *)
