(** One-shot client for the routing service.

    Connects to a {!Server.run_socket} Unix-domain socket, sends a single
    request line, half-closes, and reads the single response line — the
    transport behind [qroute request] and a convenient building block for
    scripts and smoke tests.  Transport failures (no socket, refused
    connection, truncated response) come back as [Error] strings; protocol
    errors arrive inside the response envelope
    ({!Protocol.response_result}). *)

val call : path:string -> string -> (string, string) result
(** [call ~path line] sends [line] (newline appended) and returns the
    response line (newline stripped). *)

val rpc : path:string -> Protocol.request -> (Protocol.Json.t, string) result
(** Render the envelope, {!call}, and parse the response document. *)
