(** One-shot client for the routing service, with retries.

    Connects to a {!Server.run_socket} Unix-domain socket, sends a single
    request line, half-closes, and reads the single response line — the
    transport behind [qroute request] and a convenient building block for
    scripts and smoke tests.  Transport failures (no socket, refused
    connection, truncated response) come back as [Error] strings; protocol
    errors arrive inside the response envelope
    ({!Protocol.response_result}).

    {!rpc_retry} layers a retry policy on top: transport failures and
    [overloaded] responses (the transient classes) are retried with
    decorrelated-jitter backoff under a total time budget; typed request
    errors ([invalid_request], [deadline_exceeded], ...) are never
    retried — the request would just fail again.  Every attempt opens a
    fresh connection, so a peer that died mid-response (EPIPE) is
    recovered by reconnecting.  Retries bump the [client_retries]
    metric.  Fault points [client.connect], [client.write] and
    [client.read] make the transport failable under a chaos plan without
    a misbehaving server (DESIGN.md §11). *)

val call : path:string -> string -> (string, string) result
(** [call ~path line] sends [line] (newline appended) and returns the
    response line (newline stripped).  Writes ride {!Io_util} (EINTR and
    short-write safe). *)

val rpc : path:string -> Protocol.request -> (Protocol.Json.t, string) result
(** Render the envelope, {!call}, and parse the response document.  One
    attempt, no retries.  A request without a trace context gets a
    freshly minted one ({!Qr_obs.Trace_context.mint}); a supplied
    context is forwarded untouched. *)

(** {2 Retrying transport} *)

type retry = {
  attempts : int;  (** Total attempts including the first (default 4). *)
  base_delay_ms : float;  (** Backoff floor (default 5ms). *)
  max_delay_ms : float;  (** Per-delay cap (default 100ms). *)
  budget_ms : float;
      (** Total retry budget; once spent, the last outcome is returned
          as-is (default 1000ms). *)
}

val default_retry : retry

val retryable_code : Protocol.error_code -> bool
(** [true] only for the transient class ([overloaded]).  Typed request
    errors are deterministic — retrying cannot help. *)

(** The three-way result a caller actually branches on: success envelope,
    typed server error (with the full envelope for printing), or
    transport failure.  [qroute request] maps these to exit codes
    0 / 3 / 1. *)
type outcome =
  | Response of Protocol.Json.t  (** Full envelope containing [result]. *)
  | Server_error of Protocol.error * Protocol.Json.t
      (** Decoded error plus the full envelope. *)
  | Transport_failure of string

val rpc_retry :
  ?retry:retry -> ?seed:int -> path:string -> Protocol.request -> outcome
(** Attempt the RPC under the retry policy.  [seed] makes the jitter
    stream deterministic (default 0) — same seed, same delays.  As with
    {!rpc}, a missing trace context is minted once; every attempt of the
    call carries the same trace_id. *)
