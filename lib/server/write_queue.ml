type t = {
  fd : Unix.file_descr;
  fault : string option;
  cap_bytes : int;
  chunks : string Queue.t;
  mutable head_off : int;  (* bytes of [Queue.peek chunks] already written *)
  mutable bytes : int;  (* total queued bytes, head offset discounted *)
}

let create ?fault ~cap_bytes fd =
  if cap_bytes < 1 then invalid_arg "Write_queue.create: cap_bytes < 1";
  { fd; fault; cap_bytes; chunks = Queue.create (); head_off = 0; bytes = 0 }

let pending_bytes t = t.bytes

let is_empty t = t.bytes = 0

let enqueue t line =
  let chunk_len = String.length line + 1 in
  if t.bytes + chunk_len > t.cap_bytes then `Overflow
  else begin
    Queue.add (line ^ "\n") t.chunks;
    t.bytes <- t.bytes + chunk_len;
    `Ok
  end

let rec flush t =
  if Queue.is_empty t.chunks then `Idle
  else
    let head = Queue.peek t.chunks in
    let len = String.length head - t.head_off in
    match Io_util.write_once ?fault:t.fault t.fd head ~pos:t.head_off ~len with
    | Io_util.Wrote n ->
        t.bytes <- t.bytes - n;
        if n >= len then begin
          ignore (Queue.pop t.chunks);
          t.head_off <- 0
        end
        else t.head_off <- t.head_off + n;
        flush t
    | Io_util.Write_blocked -> `Pending
    | Io_util.Write_closed -> `Closed
