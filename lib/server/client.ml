module Json = Qr_obs.Json
module Metrics = Qr_obs.Metrics
module Trace_context = Qr_obs.Trace_context
module Rng = Qr_util.Rng
module Fault = Qr_fault.Fault

let c_retries = Metrics.counter "client_retries"

(* Every RPC leaves with a trace context: the caller's when supplied
   (propagation), a freshly minted one otherwise — so server-side spans
   and access logs are always correlatable with this call site. *)
let with_trace (request : Protocol.request) =
  match request.Protocol.trace with
  | Some _ -> request
  | None -> { request with Protocol.trace = Some (Trace_context.mint ()) }

let call ~path line =
  (* CLOEXEC: a client embedded in a program that forks (the chaos
     harness, a respawning supervisor) must not leak its RPC socket
     into children. *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    Fun.protect ~finally @@ fun () ->
    Fault.point "client.connect" ~f:(fun () ->
        Unix.connect fd (Unix.ADDR_UNIX path));
    (match Io_util.write_line ~fault:"client.write" fd line with
    | Ok () -> ()
    | Error `Closed ->
        raise (Unix.Unix_error (Unix.EPIPE, "write", "response socket")));
    (* Half-close: the server sees EOF after the request but the read
       side stays open for the response. *)
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec read_line () =
      if String.contains (Buffer.contents buf) '\n' then ()
      else
        match Io_util.read_chunk ~fault:"client.read" fd chunk with
        | Io_util.Eof | Io_util.Closed -> ()
        (* Blocking fd: a would-block can only come from an injected
           EAGAIN — retry like the kernel would have. *)
        | Io_util.Would_block -> read_line ()
        | Io_util.Read k ->
            Buffer.add_subbytes buf chunk 0 k;
            read_line ()
    in
    read_line ();
    let data = Buffer.contents buf in
    match String.index_opt data '\n' with
    | Some i -> Ok (String.sub data 0 i)
    | None ->
        if data = "" then Error "connection closed without a response"
        else Error ("truncated response: " ^ data)
  with
  | result -> result
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | exception Fault.Injected point -> Error ("injected fault at " ^ point)

let rpc ~path request =
  let request = with_trace request in
  match call ~path (Json.to_string (Protocol.request_to_json request)) with
  | Error _ as e -> e
  | Ok line -> (
      match Json.of_string line with
      | Ok json -> Ok json
      | Error msg -> Error ("bad response: " ^ msg))

(* ------------------------------------------------------------- retries *)

type retry = {
  attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  budget_ms : float;
}

let default_retry =
  { attempts = 4; base_delay_ms = 5.; max_delay_ms = 100.; budget_ms = 1000. }

let retryable_code = function
  | Protocol.Overloaded -> true
  | Protocol.Parse_error | Protocol.Invalid_request | Protocol.Unknown_method
  | Protocol.Invalid_params | Protocol.Unsupported_input
  | Protocol.Deadline_exceeded | Protocol.Internal_error ->
      false

type outcome =
  | Response of Json.t
  | Server_error of Protocol.error * Json.t
  | Transport_failure of string

let attempt_once ~path line =
  match call ~path line with
  | Error msg -> Transport_failure msg
  | Ok resp_line -> (
      match Json.of_string resp_line with
      | Error msg -> Transport_failure ("bad response: " ^ msg)
      | Ok json -> (
          match Protocol.response_result json with
          | Ok _ -> Response json
          | Error err -> Server_error (err, json)))

let retryable = function
  | Response _ -> false
  | Transport_failure _ -> true
  | Server_error (err, _) -> retryable_code err.Protocol.code

let rpc_retry ?(retry = default_retry) ?(seed = 0) ~path request =
  let rng = Rng.create seed in
  (* All attempts share one trace context: the retries of one logical
     call correlate to one trace_id on the server. *)
  let line = Json.to_string (Protocol.request_to_json (with_trace request)) in
  let start = Unix.gettimeofday () in
  let budget_left () =
    retry.budget_ms -. ((Unix.gettimeofday () -. start) *. 1000.)
  in
  (* Each attempt opens a fresh connection ([call] is one-shot), so a
     half-dead socket from the previous attempt can never poison the
     next one.  Backoff is decorrelated jitter: the delay is uniform on
     [base, 3 * previous], capped at [max_delay_ms] and clamped to what
     is left of the retry budget. *)
  let rec go attempt prev_delay =
    let outcome = attempt_once ~path line in
    if (not (retryable outcome)) || attempt >= retry.attempts then outcome
    else
      let left = budget_left () in
      if left <= 0. then outcome
      else begin
        let span = Float.max 0. ((prev_delay *. 3.) -. retry.base_delay_ms) in
        let jittered =
          retry.base_delay_ms +. (if span > 0. then Rng.float rng span else 0.)
        in
        let delay = Float.min (Float.min retry.max_delay_ms jittered) left in
        Metrics.incr c_retries;
        if delay > 0. then Unix.sleepf (delay /. 1000.);
        go (attempt + 1) delay
      end
  in
  go 1 retry.base_delay_ms
