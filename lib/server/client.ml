module Json = Qr_obs.Json

let call ~path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    Fun.protect ~finally @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX path);
    let msg = line ^ "\n" in
    let n = String.length msg in
    let pos = ref 0 in
    while !pos < n do
      pos := !pos + Unix.write_substring fd msg !pos (n - !pos)
    done;
    (* Half-close: the server sees EOF after the request but the read
       side stays open for the response. *)
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec read_line () =
      if String.contains (Buffer.contents buf) '\n' then ()
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            read_line ()
    in
    read_line ();
    let data = Buffer.contents buf in
    match String.index_opt data '\n' with
    | Some i -> Ok (String.sub data 0 i)
    | None ->
        if data = "" then Error "connection closed without a response"
        else Error ("truncated response: " ^ data)
  with
  | result -> result
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

let rpc ~path request =
  match call ~path (Json.to_string (Protocol.request_to_json request)) with
  | Error _ as e -> e
  | Ok line -> (
      match Json.of_string line with
      | Ok json -> Ok json
      | Error msg -> Error ("bad response: " ^ msg))
