module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Json = Qr_obs.Json
module Timer = Qr_util.Timer
module Fault = Qr_fault.Fault

let c_connections = Metrics.counter "server_connections"
let c_shed = Metrics.counter "server_shed_requests"
let c_crashed = Metrics.counter "server_crashed_requests"
let c_budget_closes = Metrics.counter "server_error_budget_closes"

(* ------------------------------------------------- metrics-file snapshots *)

(* Periodic Prometheus snapshots for file-based scraping: written
   atomically (tmp + rename) so a concurrent reader never sees a torn
   exposition.  A failing write warns once and never disturbs serving. *)
let write_metrics_file path =
  try
    Session.refresh_process_gauges ();
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (Metrics.to_prometheus ());
    close_out oc;
    Sys.rename tmp path
  with exn ->
    Log.warn_once ~key:"metrics_file" "failed to write metrics file"
      [
        ("path", Json.String path);
        ("error", Json.String (Printexc.to_string exn));
      ]

let metrics_interval_ns = 2_000_000_000L

(* A rate-limited writer: [tick] writes at most every ~2s, [flush] always
   (startup, shutdown, EOF). *)
let metrics_writer metrics_file =
  match metrics_file with
  | None -> ((fun () -> ()), fun () -> ())
  | Some path ->
      let last = ref Int64.min_int in
      let flush () =
        last := Timer.now_ns ();
        write_metrics_file path
      in
      let tick () =
        if Int64.sub (Timer.now_ns ()) !last >= metrics_interval_ns then
          flush ()
      in
      (tick, flush)

(* ---------------------------------------------------------- channel loop *)

let serve_channels ?config ?session ?metrics_file ic oc =
  let session =
    match session with Some s -> s | None -> Session.create ?config ()
  in
  let tick_metrics, flush_metrics = metrics_writer metrics_file in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let reply =
           try Session.handle_line session line
           with exn ->
             Metrics.incr c_crashed;
             Session.crashed_response_line line exn
         in
         output_string oc reply;
         output_char oc '\n';
         flush oc;
         tick_metrics ()
       end
     done
   with End_of_file -> ());
  flush_metrics ()

let run_stdio ?config ?metrics_file () =
  Metrics.enable ();
  serve_channels ?config ?metrics_file stdin stdout

(* ----------------------------------------------------------- socket loop *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* bytes read, possibly ending mid-line *)
  session : Session.t;
  mutable eof : bool;
}

(* Blocking write of a whole response.  EPIPE/ECONNRESET (client went away
   mid-response) and an injected write fault just mark the connection
   dead; short writes and EINTR are absorbed by {!Io_util}. *)
let send conn line =
  match Io_util.write_line ~fault:"server.write" conn.fd line with
  | Ok () -> ()
  | Error `Closed -> conn.eof <- true
  | exception Fault.Injected _ -> conn.eof <- true

(* Answer one request line, with per-request exception isolation — a
   crashing handler yields an [internal_error] response, never a dead
   loop — and enforce the connection's consecutive-error budget. *)
let respond config conn line =
  let reply =
    try Session.handle_line conn.session line
    with exn ->
      Metrics.incr c_crashed;
      Session.crashed_response_line line exn
  in
  send conn reply;
  let budget = config.Session.error_budget in
  if budget > 0 && Session.consecutive_errors conn.session >= budget then begin
    Metrics.incr c_budget_closes;
    conn.eof <- true
  end

(* Move complete lines out of the connection's buffer; the trailing
   fragment (no newline yet) stays for the next read. *)
let take_lines conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let n = String.length data in
  let lines = ref [] in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from data !start '\n' in
       let line = String.sub data !start (i - !start) in
       start := i + 1;
       if String.trim line <> "" then lines := line :: !lines
     done
   with Not_found -> ());
  Buffer.add_substring conn.inbuf data !start (n - !start);
  List.rev !lines

(* ------------------------------------------------- single-connection loop *)

let serve_fd ?(config = Session.default_config) ?session fd =
  let session =
    match session with Some s -> s | None -> Session.create ~config ()
  in
  let conn = { fd; inbuf = Buffer.create 256; session; eof = false } in
  let chunk = Bytes.create 65536 in
  while not conn.eof do
    match Io_util.read_chunk ~fault:"server.read" conn.fd chunk with
    | Io_util.Eof | Io_util.Closed -> conn.eof <- true
    | Io_util.Read k ->
        Buffer.add_subbytes conn.inbuf chunk 0 k;
        List.iter (fun line -> respond config conn line) (take_lines conn)
    | exception Fault.Injected _ -> conn.eof <- true
  done

(* ------------------------------------------------------------ socket loop *)

let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let run_socket ?(config = Session.default_config) ?metrics_file ~path () =
  Metrics.enable ();
  let tick_metrics, flush_metrics = metrics_writer metrics_file in
  let stop = ref false in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
  in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
  in
  (* A client closing mid-write must surface as EPIPE, not kill the
     process. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  remove_stale_socket path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 16;
  let cache = Plan_cache.create ~capacity:config.Session.cache_capacity () in
  let conns = ref [] in
  let pending = Queue.create () in
  let chunk = Bytes.create 65536 in
  let cleanup () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    ignore (Sys.signal Sys.sigint prev_int);
    ignore (Sys.signal Sys.sigterm prev_term);
    ignore (Sys.signal Sys.sigpipe prev_pipe);
    (* Final snapshot so the last requests before shutdown are visible
       to scrapers. *)
    flush_metrics ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  flush_metrics ();
  while not !stop do
    let fds = listener :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.memq listener ready then begin
          (* An injected accept fault skips this accept; the client sees a
             connection that was never picked up and retries. *)
          match Fault.point "server.accept" ~f:(fun () -> Unix.accept listener)
          with
          | fd, _ ->
              Metrics.incr c_connections;
              conns :=
                {
                  fd;
                  inbuf = Buffer.create 256;
                  session =
                    Session.create ~config ~cache
                      ~inflight_probe:(fun () -> Queue.length pending)
                      ();
                  eof = false;
                }
                :: !conns
          | exception Fault.Injected _ -> ()
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun conn ->
            if List.memq conn.fd ready then
              match Io_util.read_chunk ~fault:"server.read" conn.fd chunk with
              | Io_util.Eof | Io_util.Closed -> conn.eof <- true
              | Io_util.Read k -> Buffer.add_subbytes conn.inbuf chunk 0 k
              | exception Fault.Injected _ -> conn.eof <- true)
          !conns;
        (* Stage complete lines in the bounded in-flight queue; requests
           pipelined past the bound are shed with [overloaded] right
           away rather than queued without limit. *)
        List.iter
          (fun conn ->
            List.iter
              (fun line ->
                if Queue.length pending >= config.Session.max_inflight then begin
                  Metrics.incr c_shed;
                  send conn (Session.overloaded_response_line line)
                end
                else Queue.add (conn, line) pending)
              (take_lines conn))
          !conns;
        (* Drain: answer everything queued this cycle, in arrival order.
           The queue is empty again before the next poll, so a SIGTERM
           between cycles never abandons accepted work. *)
        (* A half-closed connection (client shut down its write side and
           is waiting to read — the one-shot client pattern) has eof set
           but must still get its responses; [send] absorbs the EPIPE if
           the client is really gone. *)
        while not (Queue.is_empty pending) do
          let conn, line = Queue.pop pending in
          respond config conn line
        done;
        conns :=
          List.filter
            (fun conn ->
              if conn.eof then begin
                (try Unix.close conn.fd with Unix.Unix_error _ -> ());
                false
              end
              else true)
            !conns;
        (* Piggyback on the poll cadence (select times out at 1.0s), so
           an idle server still refreshes the snapshot about every 2s. *)
        tick_metrics ()
  done
