module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Json = Qr_obs.Json
module Timer = Qr_util.Timer
module Cancel = Qr_util.Cancel
module Fault = Qr_fault.Fault

let c_connections = Metrics.counter "server_connections"
let c_shed = Metrics.counter "server_shed_requests"
let c_crashed = Metrics.counter "server_crashed_requests"
let c_budget_closes = Metrics.counter "server_error_budget_closes"

let c_oversized =
  Metrics.counter "server_oversized_lines"
    ~help:"Connections closed for exceeding max-line-bytes."

let c_slow_closes =
  Metrics.counter "server_slow_client_closes"
    ~help:
      "Connections closed because their queued responses exceeded \
       max-outbox-bytes (client stopped reading)."

let g_workers =
  Metrics.gauge "server_workers"
    ~help:"Worker domains serving requests (1 = single-threaded loop)."

(* How long the post-signal drain keeps trying to flush response bytes a
   slow client has not read yet.  The requests themselves are always
   answered into the outboxes; this only bounds the goodbye. *)
let drain_flush_ns = 5_000_000_000L

(* ------------------------------------------------- metrics-file snapshots *)

(* Periodic Prometheus snapshots for file-based scraping: written
   atomically (tmp + rename) so a concurrent reader never sees a torn
   exposition.  A failing write warns once and never disturbs serving. *)
let write_metrics_file path =
  try
    Session.refresh_process_gauges ();
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (Metrics.to_prometheus ());
    close_out oc;
    Sys.rename tmp path
  with exn ->
    Log.warn_once ~key:"metrics_file" "failed to write metrics file"
      [
        ("path", Json.String path);
        ("error", Json.String (Printexc.to_string exn));
      ]

let metrics_interval_ns = 2_000_000_000L

(* A rate-limited writer: [tick] writes at most every ~2s, [flush] always
   (startup, shutdown, EOF).  The socket loops drive [tick] from an
   event-loop timer instead of a poll-timeout cadence, so a server with
   no metrics file armed never wakes for it at all. *)
let metrics_writer metrics_file =
  match metrics_file with
  | None -> ((fun () -> ()), fun () -> ())
  | Some path ->
      let last = ref Int64.min_int in
      let flush () =
        last := Timer.now_ns ();
        write_metrics_file path
      in
      let tick () =
        if Int64.sub (Timer.now_ns ()) !last >= metrics_interval_ns then
          flush ()
      in
      (tick, flush)

(* Arm the snapshot cadence on the event loop — only when there is a
   file to write. *)
let add_metrics_timer loop metrics_file tick =
  match metrics_file with
  | None -> ()
  | Some _ ->
      ignore
        (Event_loop.add_timer loop ~period_ns:metrics_interval_ns
           ~delay_ns:metrics_interval_ns tick)

(* ---------------------------------------------------------- channel loop *)

let serve_channels ?config ?session ?metrics_file ic oc =
  let session =
    match session with Some s -> s | None -> Session.create ?config ()
  in
  let tick_metrics, flush_metrics = metrics_writer metrics_file in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let reply =
           try Session.handle_line session line
           with exn ->
             Metrics.incr c_crashed;
             Session.crashed_response_line line exn
         in
         output_string oc reply;
         output_char oc '\n';
         flush oc;
         tick_metrics ()
       end
     done
   with End_of_file -> ());
  flush_metrics ()

let run_stdio ?config ?metrics_file () =
  Metrics.enable ();
  serve_channels ?config ?metrics_file stdin stdout

(* ------------------------------------------------------------ connections *)

(* One nonblocking accepted socket in the readiness loop.  Responses go
   through a bounded {!Write_queue} flushed on writability: a client
   that stops reading grows only its own queue, and past the byte cap
   the connection is closed ([server_slow_client_closes]) instead of
   head-of-line-blocking the loop the way the historical blocking
   [write_all] did.

   [eof] stops reading but keeps flushing (the half-closed one-shot
   client pattern: request sent, write side shut down, still waiting to
   read its response); the connection closes once the queue drains.
   [dead] closes immediately, discarding queued bytes. *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* bytes read, possibly ending mid-line *)
  session : Session.t;
  wq : Write_queue.t;
  mutable handle : Event_loop.handle option;
  mutable eof : bool;
  mutable dead : bool;
}

let conn_closing conn = conn.eof || conn.dead

(* Queue a response line.  Overflow is the slow-client verdict: drop the
   connection rather than buffer without bound. *)
let send conn line =
  if not conn.dead then
    match Write_queue.enqueue conn.wq line with
    | `Ok -> ()
    | `Overflow ->
        Metrics.incr c_slow_closes;
        conn.dead <- true

(* Flush whatever the kernel will take and keep write interest armed
   exactly while bytes remain.  The [server.writable] fault point covers
   the flush as a whole (a chaos plan can stall or kill the writable
   path); per-write faults stay on [server.write] inside the queue. *)
let flush_conn loop conn =
  if not conn.dead then begin
    match
      Fault.point "server.writable" ~f:(fun () -> Write_queue.flush conn.wq)
    with
    | `Idle -> (
        match conn.handle with
        | Some h -> Event_loop.set_interest loop h ~writable:false ()
        | None -> ())
    | `Pending -> (
        match conn.handle with
        | Some h -> Event_loop.set_interest loop h ~writable:true ()
        | None -> ())
    | `Closed -> conn.dead <- true
    | exception Fault.Injected _ -> conn.dead <- true
  end

(* Answer one request line, with per-request exception isolation — a
   crashing handler yields an [internal_error] response, never a dead
   loop — and enforce the connection's consecutive-error budget.  A
   budget trip closes gracefully: the final reply still flushes. *)
let respond config conn line =
  let reply =
    try Session.handle_line conn.session line
    with exn ->
      Metrics.incr c_crashed;
      Session.crashed_response_line line exn
  in
  send conn reply;
  let budget = config.Session.error_budget in
  if budget > 0 && Session.consecutive_errors conn.session >= budget then begin
    Metrics.incr c_budget_closes;
    conn.eof <- true
  end

(* Move complete lines out of an input buffer; the trailing fragment
   (no newline yet) stays for the next read.  Stops at the first line
   longer than [limit] — the in-bound lines before it are returned for
   normal processing and [`Oversized] tells the caller to answer
   [invalid_request] and close.  A trailing fragment past the limit
   trips the same way: the buffer must never grow without bound while
   waiting for a newline that may never come. *)
let take_lines_buf inbuf ~limit =
  let data = Buffer.contents inbuf in
  Buffer.clear inbuf;
  let n = String.length data in
  let lines = ref [] in
  let start = ref 0 in
  let oversized = ref false in
  (try
     while not !oversized do
       let i = String.index_from data !start '\n' in
       if i - !start > limit then oversized := true
       else begin
         let line = String.sub data !start (i - !start) in
         start := i + 1;
         if String.trim line <> "" then lines := line :: !lines
       end
     done
   with Not_found -> ());
  if (not !oversized) && n - !start > limit then oversized := true;
  if not !oversized then Buffer.add_substring inbuf data !start (n - !start);
  if !oversized then `Oversized (List.rev !lines) else `Lines (List.rev !lines)

let take_lines config conn =
  take_lines_buf conn.inbuf ~limit:config.Session.max_line_bytes

(* Pull whatever is readable off a connection.  [Would_block] is the
   normal end of a readiness-sized burst on a nonblocking fd — park
   until poll reports the fd readable again (the old loop busy-spun
   here). *)
let read_conn conn chunk =
  let rec go () =
    if conn_closing conn then ()
    else
      match Io_util.read_chunk ~fault:"server.read" conn.fd chunk with
      | Io_util.Would_block -> ()
      | Io_util.Eof | Io_util.Closed -> conn.eof <- true
      | Io_util.Read k ->
          Buffer.add_subbytes conn.inbuf chunk 0 k;
          go ()
      | exception Fault.Injected _ -> conn.eof <- true
  in
  go ()

let stop_reading loop conn =
  match conn.handle with
  | Some h -> Event_loop.set_interest loop h ~readable:false ()
  | None -> ()

(* ------------------------------------------------- single-connection loop *)

let serve_fd ?(config = Session.default_config) ?session fd =
  let session =
    match session with Some s -> s | None -> Session.create ~config ()
  in
  let loop = Event_loop.create () in
  Unix.set_nonblock fd;
  let conn =
    {
      fd;
      inbuf = Buffer.create 256;
      session;
      wq =
        Write_queue.create ~fault:"server.write"
          ~cap_bytes:config.Session.max_outbox_bytes fd;
      handle = None;
      eof = false;
      dead = false;
    }
  in
  let chunk = Bytes.create 65536 in
  let on_readable ~readable ~writable =
    if readable then begin
      read_conn conn chunk;
      match take_lines config conn with
      | `Lines lines -> List.iter (fun line -> respond config conn line) lines
      | `Oversized lines ->
          List.iter (fun line -> respond config conn line) lines;
          Metrics.incr c_oversized;
          send conn (Session.oversized_response_line ());
          conn.eof <- true
    end;
    ignore writable
  in
  let h = Event_loop.watch loop fd (fun ~readable ~writable -> on_readable ~readable ~writable) in
  conn.handle <- Some h;
  let finally () =
    Event_loop.unwatch loop h;
    (* The caller owns the fd; hand it back in the blocking state it
       arrived in. *)
    try Unix.clear_nonblock fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  Event_loop.run loop
    ~on_cycle:(fun () ->
      flush_conn loop conn;
      if conn.eof then stop_reading loop conn)
    ~stop:(fun () -> conn.dead || (conn.eof && Write_queue.is_empty conn.wq))

(* ------------------------------------------------------------ socket loop *)

let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Shared scaffolding for both socket loops: signals, the listening
   socket (CLOEXEC + nonblocking: the forked chaos tests and respawned
   worker domains must not inherit serving fds, and the accept burst
   must end in [EWOULDBLOCK], not a block). *)
let with_signals_and_listener ~path f =
  let stop = ref false in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
  in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
  in
  (* A client closing mid-write must surface as EPIPE, not kill the
     process. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  remove_stale_socket path;
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let restore () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    ignore (Sys.signal Sys.sigint prev_int);
    ignore (Sys.signal Sys.sigterm prev_term);
    ignore (Sys.signal Sys.sigpipe prev_pipe)
  in
  f ~stop ~listener ~restore

(* Accept everything pending this wakeup.  The capacity guard keeps the
   select fallback below FD_SETSIZE — connections past it wait in the
   listen backlog instead of blowing up the multiplexer with EINVAL
   (the poll backend has no such cap).  An injected accept fault skips
   one accept; the client sees a connection that was never picked up
   and retries. *)
let accept_burst loop listener ~on_fd =
  let continue = ref true in
  while !continue do
    if Event_loop.at_capacity loop then begin
      Log.warn_once ~key:"fd_capacity"
        "select backend at FD_SETSIZE; deferring accepts"
        [ ("capacity", Json.Int (Option.value ~default:0 (Event_loop.capacity loop))) ];
      continue := false
    end
    else
      match
        Fault.point "server.accept" ~f:(fun () ->
            Unix.accept ~cloexec:true listener)
      with
      | fd, _ ->
          Unix.set_nonblock fd;
          Metrics.incr c_connections;
          on_fd fd
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Fault.Injected _ -> continue := false
      | exception Unix.Unix_error _ -> continue := false
  done

let run_socket_single ~config ?metrics_file ~path () =
  Metrics.enable ();
  Metrics.set g_workers 1.;
  let tick_metrics, flush_metrics = metrics_writer metrics_file in
  with_signals_and_listener ~path @@ fun ~stop ~listener ~restore ->
  let loop = Event_loop.create () in
  add_metrics_timer loop metrics_file tick_metrics;
  let cache = Plan_cache.create ~capacity:config.Session.cache_capacity () in
  let conns = ref [] in
  let pending = Queue.create () in
  let chunk = Bytes.create 65536 in
  (* Stage complete lines in the bounded in-flight queue; requests
     pipelined past the bound are shed with [overloaded] right away
     rather than queued without limit.  An oversized line queues a close
     marker behind the conn's staged lines, so the [invalid_request]
     goodbye still leaves in arrival order. *)
  let stage conn =
    let lines, oversized =
      match take_lines config conn with
      | `Lines lines -> (lines, false)
      | `Oversized lines -> (lines, true)
    in
    List.iter
      (fun line ->
        if Queue.length pending >= config.Session.max_inflight then begin
          Metrics.incr c_shed;
          send conn (Session.overloaded_response_line line)
        end
        else Queue.add (conn, `Line line) pending)
      lines;
    if oversized then Queue.add (conn, `Oversized) pending
  in
  let on_conn conn ~readable ~writable =
    if readable then begin
      read_conn conn chunk;
      stage conn
    end;
    if writable then flush_conn loop conn
  in
  let add_conn fd =
    let conn =
      {
        fd;
        inbuf = Buffer.create 256;
        session =
          Session.create ~config ~cache
            ~inflight_probe:(fun () -> Queue.length pending)
            ();
        wq =
          Write_queue.create ~fault:"server.write"
            ~cap_bytes:config.Session.max_outbox_bytes fd;
        handle = None;
        eof = false;
        dead = false;
      }
    in
    let h =
      Event_loop.watch loop fd (fun ~readable ~writable ->
          on_conn conn ~readable ~writable)
    in
    conn.handle <- Some h;
    conns := conn :: !conns
  in
  let close_conn conn =
    (match conn.handle with Some h -> Event_loop.unwatch loop h | None -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let cleanup () =
    List.iter close_conn !conns;
    restore ();
    (* Final snapshot so the last requests before shutdown are visible
       to scrapers. *)
    flush_metrics ()
  in
  (* Drain: answer everything staged this cycle, in arrival order.  The
     queue is empty again before the next poll, so a SIGTERM between
     cycles never abandons accepted work.  A half-closed connection
     (client shut down its write side and is waiting to read — the
     one-shot client pattern) has eof set but must still get its
     responses; the write queue flushes them before the close. *)
  let on_cycle () =
    while not (Queue.is_empty pending) do
      match Queue.pop pending with
      | conn, `Line line -> respond config conn line
      | conn, `Oversized ->
          Metrics.incr c_oversized;
          send conn (Session.oversized_response_line ());
          conn.eof <- true
    done;
    conns :=
      List.filter
        (fun conn ->
          flush_conn loop conn;
          if conn.eof then stop_reading loop conn;
          if conn.dead || (conn.eof && Write_queue.is_empty conn.wq) then begin
            close_conn conn;
            false
          end
          else true)
        !conns
  in
  let listener_h =
    Event_loop.watch loop listener (fun ~readable ~writable ->
        ignore writable;
        if readable then accept_burst loop listener ~on_fd:add_conn)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  flush_metrics ();
  Event_loop.run loop ~on_cycle ~stop:(fun () -> !stop);
  (* Graceful drain: stop accepting and reading; all staged requests
     are already answered into the write queues (the pending queue
     empties every cycle), so only give slow readers a bounded grace to
     take their remaining bytes. *)
  Event_loop.unwatch loop listener_h;
  List.iter (fun c -> c.eof <- true) !conns;
  let deadline = Int64.add (Timer.now_ns ()) drain_flush_ns in
  let drained () = !conns = [] in
  ignore (Event_loop.add_timer loop ~delay_ns:drain_flush_ns (fun () -> ()));
  (* Reap already-flushed connections before the first poll so an idle
     shutdown returns without blocking. *)
  on_cycle ();
  Event_loop.run loop ~on_cycle
    ~stop:(fun () ->
      drained () || Int64.compare (Timer.now_ns ()) deadline > 0)

(* --------------------------------------------------- multicore socket loop *)

(* Pool mode (DESIGN.md §13, §15): the accept/IO loop stays on the main
   domain; parsed request lines become jobs on a {!Worker_pool}.  Each
   request is stamped with a per-connection sequence number at arrival,
   and finished responses land in the connection's outbox (a mutex-
   guarded seq -> line table filled by workers); the main loop moves
   consecutive sequence numbers into the connection's write queue, so
   responses leave every connection in arrival order no matter how the
   workers interleave — including shed [overloaded] responses, which
   are parked in the outbox at their slot instead of jumping the queue.
   A worker finishing a job pokes a self-pipe that is just another
   readable fd in the loop's interest set, so responses are written
   promptly instead of waiting out a poll timeout. *)
type pconn = {
  p_fd : Unix.file_descr;
  p_inbuf : Buffer.t;
  p_mutex : Mutex.t;  (* guards p_outbox *)
  (* seq -> (response, standing).  [`Errored] counts toward the
     connection's consecutive-error budget, [`Ok] resets it, and
     [`Shed] leaves it alone: an [overloaded] reply is the server's
     condition, not evidence of a misbehaving client — a polite client
     honouring retry_after_ms through a long brownout must neither be
     disconnected for it nor have its garbage streak forgiven by it. *)
  p_outbox : (int, string * [ `Ok | `Errored | `Shed ]) Hashtbl.t;
  p_wq : Write_queue.t;
  mutable p_handle : Event_loop.handle option;
  mutable p_next_seq : int;  (* main domain only *)
  mutable p_next_write : int;  (* main domain only *)
  mutable p_inflight : int;  (* submitted, not yet moved to the wq; main only *)
  mutable p_eof : bool;  (* read side finished *)
  mutable p_dead : bool;  (* write failed, slow-client cap, or budget *)
  mutable p_errors : int;  (* consecutive error responses *)
}

let run_socket_pool ~config ?metrics_file ~path ~workers () =
  Metrics.enable ();
  Metrics.set g_workers (float_of_int workers);
  let tick_metrics, flush_metrics = metrics_writer metrics_file in
  with_signals_and_listener ~path @@ fun ~stop ~listener ~restore ->
  let loop = Event_loop.create () in
  add_metrics_timer loop metrics_file tick_metrics;
  let cache = Plan_cache.create ~capacity:config.Session.cache_capacity () in
  (* Self-pipe: workers poke the write end after each finished job; the
     read end sits in the interest set like any connection.  Both ends
     nonblocking — a full pipe already means a wake-up is pending — and
     CLOEXEC, like every fd this loop mints. *)
  let pipe_rd, pipe_wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_rd;
  Unix.set_nonblock pipe_wr;
  let poke = Bytes.make 1 '!' in
  let notify () =
    try ignore (Unix.write pipe_wr poke 0 1) with Unix.Unix_error _ -> ()
  in
  let pool =
    Worker_pool.create ~queue_bound:config.Session.max_inflight ~notify
      ~workers ()
  in
  let sup =
    Supervisor.create ?hung_ms:config.Session.hung_request_ms
      ?queue_delay_target_ms:config.Session.queue_delay_target_ms
      ?max_rss_mb:config.Session.max_rss_mb ~workers ()
  in
  (* One session per worker, created lazily {e on} the worker so its
     router workspace is domain-owned there; slot [k] is only ever
     touched by worker [k].  All sessions share the one plan cache. *)
  let sessions = Array.make workers None in
  let session_for k =
    match sessions.(k) with
    | Some s -> s
    | None ->
        let s =
          Session.create ~config ~cache ~pool ~worker:(k + 1)
            ~inflight_probe:(fun () -> Worker_pool.pending pool)
            ()
        in
        sessions.(k) <- Some s;
        s
  in
  let conns = ref [] in
  let chunk = Bytes.create 65536 in
  let drain_pipe () =
    let b = Bytes.create 512 in
    let rec go () =
      match Unix.read pipe_rd b 0 512 with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  (* Park a ready-made response at the next arrival slot — shed,
     oversized and watchdog replies ride the same ordered outbox as
     real responses, so they never jump the queue. *)
  let park conn reply =
    let seq = conn.p_next_seq in
    conn.p_next_seq <- seq + 1;
    conn.p_inflight <- conn.p_inflight + 1;
    Mutex.lock conn.p_mutex;
    Hashtbl.replace conn.p_outbox seq reply;
    Mutex.unlock conn.p_mutex
  in
  (* Assign the arrival slot and hand the line to the pool.  Adaptive
     admission sheds before the queue is even tried; a refused job
     (queue at hard bound) sheds into the same slot so ordering holds.
     Each accepted job runs under a supervisor ticket: a fresh cancel
     token becomes ambient for the request (engines poll it), the
     watchdog's abort parks the [internal_error] reply if the worker is
     declared lost, and the settle CAS guarantees exactly one of worker
     and watchdog answers. *)
  let submit_line conn line =
    match Supervisor.should_shed sup with
    | Some retry_after_ms ->
        Metrics.incr c_shed;
        park conn (Session.overloaded_response_line ~retry_after_ms line, `Shed)
    | None ->
        let seq = conn.p_next_seq in
        conn.p_next_seq <- seq + 1;
        conn.p_inflight <- conn.p_inflight + 1;
        let submitted_ns = Timer.now_ns () in
        let deliver reply =
          Mutex.lock conn.p_mutex;
          Hashtbl.replace conn.p_outbox seq reply;
          Mutex.unlock conn.p_mutex
        in
        let job () =
          let k = Option.value ~default:0 (Worker_pool.worker_index ()) in
          Supervisor.note_queue_delay sup
            (Int64.sub (Timer.now_ns ()) submitted_ns);
          let cancel = Cancel.create () in
          let ticket =
            Supervisor.enter sup ~worker:k ~cancel ~abort:(fun () ->
                deliver (Session.hung_response_line line, `Errored);
                notify ())
          in
          let reply =
            try
              let line, errored =
                Cancel.with_ambient cancel (fun () ->
                    Fault.point "worker.hang" ~f:(fun () ->
                        Session.handle_line_status (session_for k) line))
              in
              (line, if errored then `Errored else `Ok)
            with
            | Cancel.Cancelled Cancel.Killed ->
                (Session.hung_response_line line, `Errored)
            | exn ->
                Metrics.incr c_crashed;
                (Session.crashed_response_line line exn, `Errored)
          in
          let won = Supervisor.settle ticket in
          Supervisor.leave sup ticket;
          if won then deliver reply
        in
        if not (Worker_pool.submit pool job) then begin
          Metrics.incr c_shed;
          deliver
            ( Session.overloaded_response_line
                ~retry_after_ms:(Supervisor.retry_hint_ms sup) line,
              `Shed )
        end
  in
  (* Move finished responses into the write queue in sequence order;
     stop at the first slot a worker hasn't filled yet.  A dead
     connection keeps consuming its slots (so inflight reaches 0 and it
     can close) without queuing bytes.  A queue overflow is the
     slow-client verdict: the client stopped reading while its replies
     kept coming. *)
  let flush_outbox conn =
    let rec go () =
      Mutex.lock conn.p_mutex;
      let next = Hashtbl.find_opt conn.p_outbox conn.p_next_write in
      (match next with
      | Some _ -> Hashtbl.remove conn.p_outbox conn.p_next_write
      | None -> ());
      Mutex.unlock conn.p_mutex;
      match next with
      | None -> ()
      | Some (line, standing) ->
          conn.p_inflight <- conn.p_inflight - 1;
          conn.p_next_write <- conn.p_next_write + 1;
          if not conn.p_dead then begin
            (match Write_queue.enqueue conn.p_wq line with
            | `Ok -> ()
            | `Overflow ->
                Metrics.incr c_slow_closes;
                conn.p_dead <- true);
            match standing with
            | `Errored ->
                conn.p_errors <- conn.p_errors + 1;
                let budget = config.Session.error_budget in
                if budget > 0 && conn.p_errors >= budget then begin
                  Metrics.incr c_budget_closes;
                  conn.p_dead <- true
                end
            | `Ok -> conn.p_errors <- 0
            | `Shed -> ()
          end;
          go ()
    in
    go ()
  in
  let flush_wq conn =
    if not conn.p_dead then begin
      match
        Fault.point "server.writable" ~f:(fun () ->
            Write_queue.flush conn.p_wq)
      with
      | `Idle -> (
          match conn.p_handle with
          | Some h -> Event_loop.set_interest loop h ~writable:false ()
          | None -> ())
      | `Pending -> (
          match conn.p_handle with
          | Some h -> Event_loop.set_interest loop h ~writable:true ()
          | None -> ())
      | `Closed -> conn.p_dead <- true
      | exception Fault.Injected _ -> conn.p_dead <- true
    end
  in
  let read_pconn conn =
    let rec go () =
      if conn.p_eof || conn.p_dead then ()
      else
        match Io_util.read_chunk ~fault:"server.read" conn.p_fd chunk with
        | Io_util.Would_block -> ()
        | Io_util.Eof | Io_util.Closed -> conn.p_eof <- true
        | Io_util.Read k ->
            Buffer.add_subbytes conn.p_inbuf chunk 0 k;
            go ()
        | exception Fault.Injected _ -> conn.p_eof <- true
    in
    go ()
  in
  let stage_pconn conn =
    match
      take_lines_buf conn.p_inbuf ~limit:config.Session.max_line_bytes
    with
    | `Lines lines -> List.iter (submit_line conn) lines
    | `Oversized lines ->
        List.iter (submit_line conn) lines;
        Metrics.incr c_oversized;
        park conn (Session.oversized_response_line (), `Errored);
        (* p_eof, not p_dead: queued replies (and the goodbye) still
           flush before the socket closes. *)
        conn.p_eof <- true
  in
  let on_pconn conn ~readable ~writable =
    if readable then begin
      read_pconn conn;
      stage_pconn conn
    end;
    if writable then flush_wq conn
  in
  let add_conn fd =
    let conn =
      {
        p_fd = fd;
        p_inbuf = Buffer.create 256;
        p_mutex = Mutex.create ();
        p_outbox = Hashtbl.create 8;
        p_wq =
          Write_queue.create ~fault:"server.write"
            ~cap_bytes:config.Session.max_outbox_bytes fd;
        p_handle = None;
        p_next_seq = 0;
        p_next_write = 0;
        p_inflight = 0;
        p_eof = false;
        p_dead = false;
        p_errors = 0;
      }
    in
    let h =
      Event_loop.watch loop fd (fun ~readable ~writable ->
          on_pconn conn ~readable ~writable)
    in
    conn.p_handle <- Some h;
    conns := conn :: !conns
  in
  let close_pconn conn =
    (match conn.p_handle with
    | Some h -> Event_loop.unwatch loop h
    | None -> ());
    try Unix.close conn.p_fd with Unix.Unix_error _ -> ()
  in
  let cleanup () =
    Worker_pool.shutdown pool;
    List.iter close_pconn !conns;
    (try Unix.close pipe_rd with Unix.Unix_error _ -> ());
    (try Unix.close pipe_wr with Unix.Unix_error _ -> ());
    restore ();
    flush_metrics ()
  in
  (* One watchdog/brownout pass.  A worker declared lost gets its slot
     respawned; its session is dropped first so the replacement builds a
     fresh one (the zombie may still be mutating the old workspace) —
     the write happens before [replace]'s spawn, so the new domain sees
     it. *)
  let supervise () =
    List.iter
      (fun k ->
        sessions.(k) <- None;
        Worker_pool.replace pool k)
      (Supervisor.monitor sup);
    Supervisor.check_memory sup ~cache
  in
  (* The watchdog/brownout cadence replaces the old fixed poll timeout:
     armed only when there is something to supervise, so an idle server
     without a watchdog makes no timer wakeups at all. *)
  if
    config.Session.hung_request_ms <> None
    || config.Session.max_rss_mb <> None
  then begin
    let period_ns = Supervisor.poll_interval_ns sup in
    ignore (Event_loop.add_timer loop ~period_ns ~delay_ns:period_ns supervise)
  end;
  let on_cycle () =
    conns :=
      List.filter
        (fun conn ->
          flush_outbox conn;
          flush_wq conn;
          if conn.p_eof then
            (match conn.p_handle with
            | Some h -> Event_loop.set_interest loop h ~readable:false ()
            | None -> ());
          if
            (conn.p_eof || conn.p_dead)
            && conn.p_inflight = 0
            && (conn.p_dead || Write_queue.is_empty conn.p_wq)
          then begin
            close_pconn conn;
            false
          end
          else true)
        !conns
  in
  ignore
    (Event_loop.watch loop pipe_rd (fun ~readable ~writable ->
         ignore writable;
         if readable then drain_pipe ()));
  let listener_h =
    Event_loop.watch loop listener (fun ~readable ~writable ->
        ignore writable;
        if readable then accept_burst loop listener ~on_fd:add_conn)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  flush_metrics ();
  Event_loop.run loop ~on_cycle ~stop:(fun () -> !stop);
  (* Graceful drain: stop accepting; everything already submitted gets
     its response moved into a write queue before the pool is shut down
     and the sockets close.  The watchdog keeps its cadence so a wedged
     worker cannot hold the drain hostage — its request is answered by
     the abort reply.  The final flush gives slow readers a bounded
     grace; a client that never reads is cut off at the deadline. *)
  Event_loop.unwatch loop listener_h;
  let deadline = Int64.add (Timer.now_ns ()) drain_flush_ns in
  ignore (Event_loop.add_timer loop ~delay_ns:drain_flush_ns (fun () -> ()));
  ignore
    (Event_loop.add_timer loop ~period_ns:50_000_000L ~delay_ns:50_000_000L
       supervise);
  on_cycle ();
  Event_loop.run loop ~on_cycle
    ~stop:(fun () ->
      (List.for_all
         (fun c ->
           c.p_inflight = 0 && (c.p_dead || Write_queue.is_empty c.p_wq))
         !conns)
      || Int64.compare (Timer.now_ns ()) deadline > 0)

let run_socket ?(config = Session.default_config) ?metrics_file
    ?(workers = 1) ~path () =
  if workers <= 1 then run_socket_single ~config ?metrics_file ~path ()
  else run_socket_pool ~config ?metrics_file ~path ~workers ()
