module Fault = Qr_fault.Fault

type read_result = Read of int | Eof | Closed | Would_block

type write_result = Wrote of int | Write_blocked | Write_closed

let with_fault fault f =
  match fault with Some name -> Fault.point name ~f | None -> f ()

let write_all ?fault fd s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else
      (* The clamp keeps the retry loop terminating even if a faulted
         (or future buggy) length comes back as 0: a zero-length write
         would succeed, advance nothing, and spin forever. *)
      let len =
        match fault with
        | Some name -> max 1 (Fault.truncate name (n - pos))
        | None -> n - pos
      in
      match with_fault fault (fun () -> Unix.write_substring fd s pos len) with
      | written -> go (pos + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Error `Closed
  in
  go 0

let write_line ?fault fd line = write_all ?fault fd (line ^ "\n")

let rec write_once ?fault fd s ~pos ~len =
  let len =
    match fault with
    | Some name -> max 1 (Fault.truncate name len)
    | None -> len
  in
  match with_fault fault (fun () -> Unix.write_substring fd s pos len) with
  | written -> Wrote written
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_once ?fault fd s ~pos ~len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Write_blocked
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Write_closed

let rec read_chunk ?fault fd buf =
  match
    with_fault fault (fun () -> Unix.read fd buf 0 (Bytes.length buf))
  with
  | 0 -> Eof
  | k -> Read k
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_chunk ?fault fd buf
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* A nonblocking fd with nothing to read.  The old loop retried
         here, which on a readiness-driven server meant burning a whole
         core spinning on an idle descriptor; surfacing the state lets
         the event loop park the connection until poll(2) reports it
         readable again. *)
      Would_block
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Closed
