(** Wire protocol of the routing service.

    The service speaks newline-delimited JSON: one request object per line,
    one response object per line, in request order.  A request envelope is

    {v
    {"id": 7, "method": "route", "params": {...}, "deadline_ms": 50}
    v}

    where [id] is an integer or string echoed back verbatim (missing ids
    echo as [null]), [method] names the operation, [params] is an optional
    object and [deadline_ms] an optional per-request time budget on the
    monotonic clock (see {!Deadline}).  Responses are either

    {v
    {"id": 7, "result": {...}}
    {"id": 7, "error": {"code": "deadline_exceeded", "message": "..."}}
    v}

    Methods: [route], [route_batch], [transpile], [engines], [health],
    [metrics] — dispatched by {!Session}.  This module owns the envelope
    and parameter codecs; it performs no routing itself.  See DESIGN.md §10
    for the full method and error-code tables. *)

module Json = Qr_obs.Json
module Trace_context = Qr_obs.Trace_context

(** {2 Errors} *)

type error_code =
  | Parse_error  (** The request line is not a JSON document. *)
  | Invalid_request  (** JSON, but not a valid request envelope. *)
  | Unknown_method
  | Invalid_params
  | Unsupported_input
      (** The chosen engine cannot route the given input shape. *)
  | Deadline_exceeded  (** The request's [deadline_ms] budget ran out. *)
  | Overloaded
      (** Backpressure: in-flight queue full, or a batch over [max_batch]. *)
  | Internal_error

val code_to_string : error_code -> string
(** The stable snake_case wire name, e.g. ["deadline_exceeded"]. *)

val code_of_string : string -> error_code option

type error = {
  code : error_code;
  message : string;
  retry_after_ms : int option;
      (** Backpressure hint on [Overloaded] sheds: how long the client
          should wait before retrying.  Serialized as a
          [retry_after_ms] field inside the error object. *)
}

val error : ?retry_after_ms:int -> error_code -> string -> error

(** {2 Request envelopes} *)

type request = {
  id : Json.t;  (** [Int], [String], or [Null]. *)
  meth : string;
  params : Json.t;  (** Always an [Obj] ([{}] when omitted). *)
  deadline_ms : int option;
  trace : Trace_context.t option;
      (** Caller's trace context, carried as a W3C-traceparent string in
          the envelope's [trace] field (DESIGN.md §12). *)
}

val request :
  ?id:Json.t ->
  ?deadline_ms:int ->
  ?trace:Trace_context.t ->
  meth:string ->
  Json.t ->
  request
(** Build an envelope; [params] must be an object.
    @raise Invalid_argument otherwise. *)

val request_to_json : request -> Json.t

val request_of_json : Json.t -> (request, error) result
(** Validate an envelope: [method] required, [id] an int/string when
    present, [params] an object when present, [deadline_ms] a non-negative
    integer when present, [trace] a well-formed traceparent string when
    present. *)

val request_id : Json.t -> Json.t
(** Best-effort id extraction from an arbitrary document — [Null] unless a
    well-typed [id] field is present.  Lets error responses echo the id
    even when the envelope is otherwise invalid. *)

(** {2 Response envelopes} *)

val ok_response :
  ?trace:Trace_context.t -> ?server_ms:float -> id:Json.t -> Json.t -> Json.t
(** [trace] echoes the request's context back as a [trace] field;
    [server_ms] reports server-side wall time for the request. *)

val error_to_json : error -> Json.t
(** [{"code": ..., "message": ...}] — the payload [error_response] wraps;
    also the per-item error shape inside [route_batch] results. *)

val error_response :
  ?trace:Trace_context.t -> ?server_ms:float -> id:Json.t -> error -> Json.t

val response_result : Json.t -> (Json.t, error) result
(** Destructure a response envelope from the client side: [Ok result] or
    the decoded error.  A malformed envelope decodes as an
    {!Internal_error}. *)

val response_trace : Json.t -> Trace_context.t option
(** The echoed trace context of a response envelope, when present and
    well-formed. *)

val response_server_ms : Json.t -> float option
(** The server-side timing field of a response envelope. *)

(** {2 Parameter codecs} *)

val grid_to_json : Qr_graph.Grid.t -> Json.t
(** [{"rows": m, "cols": n}]. *)

val grid_of_json : Json.t -> (Qr_graph.Grid.t, string) result

val perm_to_json : Qr_perm.Perm.t -> Json.t
(** The destination array as a JSON list. *)

val perm_of_json : ?expect_size:int -> Json.t -> (Qr_perm.Perm.t, string) result
(** A list of ints that is a bijection on [0..n-1]; with [expect_size] the
    length must also match (the grid's vertex count). *)

val config_to_json : Qr_route.Router_config.t -> Json.t
(** One field per knob: [{"discovery": "doubling", "assignment": "mcbbm",
    "transpose": true, "compaction": false, "trials": 4, "seed": 0}] plus
    ["best"] (a name list) when contenders are explicitly set. *)

val config_of_json : Json.t -> (Qr_route.Router_config.t, string) result
(** Accepts the object form (any subset of keys over the defaults, exactly
    like the text form) or a [String] holding the canonical text form. *)

val engines_json : unit -> Json.t
(** [{"engines": [{"name": ..., "inputs": "grid"|"any", "transpose": bool,
    "partial": bool}, ...]}] over the current registry — the [engines]
    method's result and the payload of [qroute engines --json]. *)

val methods : string list
(** The methods {!Session} dispatches, for error messages and docs. *)
