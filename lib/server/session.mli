(** Per-connection request processing.

    A session owns everything one connection reuses across requests: a
    {!Qr_route.Router_workspace.t} (so every request after the first rides
    the batched [route_many] allocation profile), a {!Plan_cache.t}
    (optionally shared between connections by the server), and the request
    counter behind the [health] report.  {!handle_line} is the whole
    request pipeline — parse, dispatch, route, serialize — and is pure
    string-to-string, so tests and the [serve_session] example drive it
    without sockets or channels.

    Every request runs inside a [serve_request] trace span (method name
    and outcome as attributes) and bumps the [server_requests] /
    [server_errors] counters and the [server_request_ms] histogram.

    {b Telemetry plane} (DESIGN.md §12): a request carrying a [trace]
    context has its trace_id adopted for the duration — every span in
    the request's tree, including engine phases and degradations, is
    stamped with it — and the response echoes the context plus a
    [server_ms] timing field.  {!handle_line} emits one Info-level
    access-log record per request (method, status, bytes, ms, trace_id,
    cache outcome, degradation) through {!Qr_obs.Log}. *)

type config = {
  cache_capacity : int;  (** {!Plan_cache} bound (default 128). *)
  max_batch : int;
      (** Largest accepted [route_batch]; bigger batches get the
          [overloaded] error (default 64). *)
  max_inflight : int;
      (** Pipelined requests the server queues per poll cycle before
          answering [overloaded] (default 32; enforced by {!Server}). *)
  verify : bool;
      (** Verified routing ([--verify-schedules]): every schedule —
          freshly planned or a cache hit — is checked against the
          routing invariant; bad engines degrade through the
          {!Qr_route.Router_registry.verified} fallback chain, and
          cache hits that fail re-verification are evicted and
          replanned (default [false]). *)
  error_budget : int;
      (** Consecutive error responses a connection may accumulate
          before the socket server sheds it (default 32; 0 disables;
          enforced by {!Server}). *)
  max_line_bytes : int;
      (** Largest request line (and largest partial line buffered while
          waiting for its newline) a connection may send; past it the
          server replies [invalid_request] and closes — a stuck or
          malicious client cannot grow a connection buffer without
          bound (default 1 MiB; enforced by {!Server}). *)
  max_outbox_bytes : int;
      (** Response bytes the server will queue for a connection whose
          client is not reading them; past it the connection is closed
          ([server_slow_client_closes]) — a stalled reader blocks only
          itself, never the serving loop, and cannot hold unbounded
          response memory (default 4 MiB; enforced by {!Server}'s
          per-connection {!Write_queue}). *)
  hung_request_ms : int option;
      (** Watchdog budget ([--hung-request-ms]): a pool request running
          longer is cancelled, and a worker that then stops making
          progress is declared lost and its domain respawned (default
          [None] = watchdog off; enforced by {!Server}/{!Supervisor}). *)
  queue_delay_target_ms : int option;
      (** Adaptive-admission target ([--queue-delay-ms]): when the EWMA
          of job queue delay exceeds it, new requests are shed with
          [overloaded] plus a [retry_after_ms] hint (default [None] =
          off; enforced by {!Server}/{!Supervisor}). *)
  max_rss_mb : int option;
      (** Memory brownout threshold ([--max-rss-mb]): past this max-RSS
          high-water mark the plan cache is shrunk and batch requests
          rejected (default [None] = off). *)
  breaker : Qr_route.Breaker.config option;
      (** Per-engine circuit breakers for verified routing
          ([--breaker-threshold]/[--breaker-cooldown-ms]): repeated
          engine failures trip the breaker open and requests skip
          straight to the degradation chain until half-open probes
          succeed.  Only effective with [verify] (the breaker watches
          the verified ladder's outcomes; default [None] = off). *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?cache:Plan_cache.t ->
  ?inflight_probe:(unit -> int) ->
  ?pool:Worker_pool.t ->
  ?worker:int ->
  unit ->
  t
(** A fresh session with its own workspace.  [cache] shares a cache
    between sessions (the socket server passes one cache to every
    connection); by default the session creates its own with
    [config.cache_capacity].  [inflight_probe] supplies the [health]
    report's [inflight] count (the socket server passes its pending
    queue length; defaults to [fun () -> 0]).  [pool] lets
    [route_batch] fan its items across worker domains
    ({!Worker_pool.map_tasks}); without it batches run serially as
    before.  [worker] stamps the owning worker's index into every
    access-log record ([worker=N]) in pool mode.  Creation completes
    the engine registry (registers the token-swapping engines), so a
    bare [qr_server] link serves the full engine set.

    {b Domain safety} (DESIGN.md §13): a session is {e single-owner}
    mutable state — create it on (or dedicate it to) the one domain
    that calls [handle_line]; the multicore server keeps one session
    per worker.  The cache shared between sessions is safe
    ({!Plan_cache} locks internally); the workspace is per-session and
    ownership-checked. *)

val config : t -> config

val cache : t -> Plan_cache.t

val requests_served : t -> int

val consecutive_errors : t -> int
(** Error responses since the last success on this session — the
    per-connection error budget the socket server enforces.  Reset to 0
    by every success response. *)

val handle_request : t -> Protocol.request -> Protocol.Json.t
(** Dispatch one parsed request to its method handler; always returns a
    response envelope (errors are encoded, never raised).  The envelope
    echoes the request's trace context and carries [server_ms]. *)

val stats : t -> Protocol.Json.t
(** The [stats] method's result: health, plan-cache counters and the
    full metrics registry (process gauges refreshed) in one snapshot. *)

val refresh_process_gauges : unit -> unit
(** Update the [process_uptime_seconds] / [process_max_rss_kb] /
    [process_gc_major_words] gauges from the live process.  Called by
    the [metrics] and [stats] methods and the [--metrics-file]
    writer. *)

val handle_line : t -> string -> string
(** One request line to one response line (no trailing newline): parse,
    validate, {!handle_request}, render. *)

val handle_line_status : t -> string -> string * bool
(** {!handle_line} plus whether the response was an error — the signal
    the multicore server feeds its per-connection error budget, which
    it tracks on the accept loop (worker sessions are shared between
    connections, so {!consecutive_errors} can't be per-connection
    there). *)

val overloaded_response_line : ?retry_after_ms:int -> string -> string
(** The [overloaded] error response for a request line that was shed
    before parsing — echoes the line's id when one can be recovered.
    [retry_after_ms] adds the adaptive-admission backpressure hint.
    Used by {!Server}'s bounded in-flight queue. *)

val oversized_response_line : unit -> string
(** The [invalid_request] response sent just before closing a
    connection whose request line exceeded [max_line_bytes] (the line
    itself is not parsed, so no id is echoed). *)

val hung_response_line : string -> string
(** The [internal_error] response the watchdog parks for a request
    whose worker was declared lost — echoes the line's id when one can
    be recovered. *)

val crashed_response_line : string -> exn -> string
(** The [internal_error] response the serving loops substitute when the
    request pipeline itself raised — the last line of per-request
    exception isolation (one bad request can never kill the loop). *)
