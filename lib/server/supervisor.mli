(** Supervision and overload control for the pool-mode server.

    Three cooperating protections (DESIGN.md §14):

    - {b Watchdog}: every pool job runs under a {!ticket} carrying the
      request's {!Qr_util.Cancel.t}.  The main loop calls {!monitor}
      each tick; a request past [hung_ms] is killed cooperatively (the
      cancel token flips, a polling engine aborts within a stride), and
      one further [hung_ms] of grace with a frozen progress word means
      the worker is not polling at all — it is declared {e lost}: the
      abort reply is parked for the client and the worker index returned
      so the server respawns the domain
      ([server_hung_requests] / [server_worker_restarts]).
    - {b Adaptive admission}: workers report their observed queue delay
      ({!note_queue_delay}); when the EWMA exceeds the target the
      accept loop sheds new requests with [overloaded] plus a
      [retry_after_ms] hint ({!should_shed}, [server_shed_adaptive],
      [server_queue_delay_ms]).
    - {b Memory brownout}: once the process max-RSS high-water mark
      crosses [max_rss_mb], the plan cache is shrunk and batch fan-out
      is rejected ({!check_memory}, {!brownout_active},
      [server_brownout]).  One-way by construction — max RSS never
      falls.

    {b Domain safety} (DESIGN.md §13): tickets are settled by a CAS
    that the worker and the watchdog race — exactly one of them writes
    the reply slot.  Slots, the delay EWMA and the brownout flag are
    atomics; {!monitor} runs only on the main domain. *)

type t

type ticket

val create :
  ?hung_ms:int ->
  ?queue_delay_target_ms:int ->
  ?max_rss_mb:int ->
  workers:int ->
  unit ->
  t
(** All three protections are off unless their knob is given.
    @raise Invalid_argument on non-positive knobs or [workers < 1]. *)

(** {2 Job lifecycle (worker side)} *)

val enter :
  t ->
  worker:int ->
  cancel:Qr_util.Cancel.t ->
  abort:(unit -> unit) ->
  ticket
(** Register the job now starting on [worker].  [abort] must park an
    [internal_error] reply in the job's response slot and wake the
    writer — it is invoked (on the main domain) only if the watchdog
    wins the settle race. *)

val settle : ticket -> bool
(** Claim the reply slot; [true] exactly once across worker and
    watchdog.  A worker whose settle returns [false] must drop its
    response — the watchdog already answered for it. *)

val leave : t -> ticket -> unit
(** Clear the worker's slot (no-op if the watchdog already did). *)

(** {2 Watchdog (main loop)} *)

val monitor : t -> int list
(** One escalation pass over all slots; returns the indexes of workers
    declared lost this tick (their abort replies are already parked) —
    the caller respawns those domains.  Empty when [hung_ms] is off. *)

val poll_interval_s : t -> float
(** Watchdog cadence that keeps kill/lost detection within a fraction
    of [hung_ms]: [hung_ms/4] clamped to [\[10ms, 1s\]]; [1s] when off.
    Historically the select timeout; now the period of the event-loop
    timer that drives {!monitor} (DESIGN.md §15). *)

val poll_interval_ns : t -> int64
(** {!poll_interval_s} in nanoseconds — the period handed to
    {!Qr_server.Event_loop.add_timer}, never below 1ms. *)

val hung : t -> int
(** Requests killed by the watchdog (metrics-independent tally). *)

(** {2 Adaptive admission} *)

val note_queue_delay : t -> int64 -> unit
(** Report one observed submit-to-start delay in nanoseconds (worker
    side, at job start). *)

val queue_delay_ms : t -> float
(** Current EWMA in milliseconds (0 before the first sample). *)

val should_shed : t -> int option
(** [Some retry_after_ms] when the delay EWMA exceeds the target —
    shed the incoming request; hint is twice the current EWMA, clamped
    to [\[1, 60000\]] ms.  Always [None] with no target.

    The EWMA only gains samples when jobs start, so while it is over
    target and no job has started for four target-widths (the backlog
    has drained), each consult folds in one zero sample: a burst's
    spike decays geometrically instead of shedding forever. *)

val retry_hint_ms : t -> int
(** The hint alone, for sheds decided elsewhere (e.g. the job queue at
    its hard bound). *)

(** {2 Memory brownout} *)

val check_memory : t -> cache:Plan_cache.t -> unit
(** Compare max-RSS against the limit; on first crossing, shrink
    [cache] to an eighth of its capacity ({!Plan_cache.set_limit}) and
    raise the process-wide brownout flag. *)

val brownout_active : unit -> bool
(** Process-wide flag sessions consult to reject batch work. *)

val reset_brownout : unit -> unit
(** Clear the process-wide flag (tests). *)
