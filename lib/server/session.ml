module Json = Qr_obs.Json
module Trace = Qr_obs.Trace
module Trace_context = Qr_obs.Trace_context
module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Fault = Qr_fault.Fault
module Timer = Qr_util.Timer
module Cancel = Qr_util.Cancel
module Resource = Qr_util.Resource
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Router_intf = Qr_route.Router_intf
module Router_config = Qr_route.Router_config
module Router_registry = Qr_route.Router_registry
module Router_workspace = Qr_route.Router_workspace
module Breaker = Qr_route.Breaker
module Circuit = Qr_circuit.Circuit
module Qasm = Qr_circuit.Qasm
module Transpile = Qr_circuit.Transpile
module P = Protocol

let c_requests =
  Metrics.counter "server_requests" ~help:"Requests dispatched by sessions."

let c_errors =
  Metrics.counter "server_errors" ~help:"Error responses sent by sessions."

let c_cache_errors =
  Metrics.counter "plan_cache_errors"
    ~help:"Plan-cache operations that raised and were absorbed."

let c_cache_invalid =
  Metrics.counter "plan_cache_invalid"
    ~help:"Cache hits that failed re-verification and were replanned."

let h_request_ms =
  Metrics.histogram "server_request_ms" ~buckets:Metrics.latency_buckets
    ~help:"Server-side request wall time in milliseconds."

(* Process-level gauges, refreshed on every metrics/stats exposition
   (and by the server's --metrics-file writer). *)
let g_uptime =
  Metrics.gauge "process_uptime_seconds"
    ~help:"Seconds since process start (monotonic clock)."

let g_max_rss =
  Metrics.gauge "process_max_rss_kb"
    ~help:"Peak resident set size in kilobytes (getrusage)."

let g_gc_major =
  Metrics.gauge "process_gc_major_words"
    ~help:"Words allocated in the OCaml major heap since start."

let process_start_ns = Timer.now_ns ()

let refresh_process_gauges () =
  Metrics.set g_uptime
    (Int64.to_float (Int64.sub (Timer.now_ns ()) process_start_ns) /. 1e9);
  Metrics.set g_max_rss (float_of_int (Resource.max_rss_kb ()));
  Metrics.set g_gc_major (Resource.gc_major_words ())

type config = {
  cache_capacity : int;
  max_batch : int;
  max_inflight : int;
  verify : bool;
  error_budget : int;
  max_line_bytes : int;
  max_outbox_bytes : int;
  hung_request_ms : int option;
  queue_delay_target_ms : int option;
  max_rss_mb : int option;
  breaker : Breaker.config option;
}

let default_config =
  {
    cache_capacity = 128;
    max_batch = 64;
    max_inflight = 32;
    verify = false;
    error_budget = 32;
    max_line_bytes = 1 lsl 20;
    max_outbox_bytes = 4 lsl 20;
    hung_request_ms = None;
    queue_delay_target_ms = None;
    max_rss_mb = None;
    breaker = None;
  }

(* What the access log reports about the request just handled; filled by
   [handle_request], read back by [handle_line] once the response line
   (and so its byte count) exists. *)
type access = {
  a_meth : string;
  a_status : string;  (* "ok" or the wire error code *)
  a_ms : float;
  a_trace : Trace_context.t option;
  a_cached : bool option;  (* plan-cache outcome, when the method routed *)
  a_degraded : bool;  (* the request degraded through the fallback chain *)
}

type t = {
  config : config;
  cache : Plan_cache.t;
  ws : Router_workspace.t;
  started_ns : int64;
  session_id : int;
  inflight_probe : unit -> int;
  pool : Worker_pool.t option;  (* fan route_batch items across workers *)
  worker : int option;  (* owning worker's index, for access logs *)
  mutable served : int;
  mutable consecutive_errors : int;
  mutable last_cached : bool option;
  mutable last_access : access option;
}

let next_session_id = Atomic.make 0

let create ?(config = default_config) ?cache ?(inflight_probe = fun () -> 0)
    ?pool ?worker () =
  (* The grid engines register with qr_route itself; completing the
     registry here means a server embedded without the umbrella still
     serves ats/ats-serial (idempotent). *)
  Qr_token.Engines.register ();
  let cache =
    match cache with
    | Some c -> c
    | None -> Plan_cache.create ~capacity:config.cache_capacity ()
  in
  {
    config;
    cache;
    ws = Router_workspace.create ();
    started_ns = Timer.now_ns ();
    session_id = 1 + Atomic.fetch_and_add next_session_id 1;
    inflight_probe;
    pool;
    worker;
    served = 0;
    consecutive_errors = 0;
    last_cached = None;
    last_access = None;
  }

let config t = t.config
let cache t = t.cache
let requests_served t = t.served
let consecutive_errors t = t.consecutive_errors

(* ----------------------------------------------------- param extraction *)

let ( let* ) = Result.bind

let parse_grid params =
  match Json.member "grid" params with
  | None -> Error "missing grid"
  | Some g -> P.grid_of_json g

let parse_engine params =
  match Json.member "engine" params with
  | None -> Ok (Router_registry.get "best")
  | Some (Json.String name) -> (
      match Router_registry.find name with
      | Some engine -> Ok engine
      | None ->
          Error
            (Printf.sprintf "unknown engine %S (registered: %s)" name
               (String.concat ", " (Router_registry.names ()))))
  | Some _ -> Error "engine: expected a string"

let parse_config params =
  match Json.member "config" params with
  | None -> Ok Router_config.default
  | Some j -> P.config_of_json j

(* -------------------------------------------------------------- methods *)

(* Internal control flow for dispatch outcomes that are not parameter
   errors; handle_request maps them to their wire error codes. *)
exception Overloaded_batch of string
exception Unknown_method of string

(* Wrap the engine in the verified-routing degradation ladder when the
   session runs with --verify-schedules; the ladder also feeds the
   engine's circuit breaker when one is configured, so a persistently
   failing engine is skipped (straight to the fallbacks) until its
   half-open probes succeed. *)
let effective_engine t engine =
  if t.config.verify then
    let breaker =
      Option.map
        (fun config ->
          Breaker.get_or_create ~config engine.Router_intf.name)
        t.config.breaker
    in
    Router_registry.verified ?breaker engine
  else engine

(* One routing call behind the cache: a hit returns the stored schedule
   (byte-identical response), a miss plans through the session's shared
   workspace and stores the result.

   Cache trouble must never fail a request that routing itself could
   answer: a raising lookup counts as a miss, a raising insert serves
   the freshly planned schedule uncached (plan_cache_errors counts
   both).  In verify mode every hit is re-checked against the routing
   invariant; a hit that no longer verifies (bit rot, a chaos plan's
   [cache.find=corrupt], a poisoned entry) is evicted and replanned —
   the self-healing path ([plan_cache_invalid]). *)
let routed t grid pi engine config =
  let key =
    Plan_cache.key ~grid ~pi ~engine:engine.Router_intf.name ~config
  in
  let plan () =
    Router_intf.route ~ws:t.ws ~config (effective_engine t engine)
      (Router_intf.Grid_input (grid, pi))
  in
  let compute () =
    let sched = plan () in
    (try Plan_cache.add t.cache key sched
     with _ -> Metrics.incr c_cache_errors);
    (sched, false)
  in
  let hit =
    try Plan_cache.find t.cache key
    with _ ->
      Metrics.incr c_cache_errors;
      None
  in
  (* [routed] itself leaves [t.last_cached] alone: batch items may run
     it concurrently on several domains, and only the single-route path
     feeds the access log's [cached] field. *)
  match hit with
  | None -> compute ()
  | Some sched when not t.config.verify -> (sched, true)
  | Some sched -> (
      match
        Router_registry.validate (Router_intf.Grid_input (grid, pi)) sched
      with
      | Ok () -> (sched, true)
      | Error _ ->
          Metrics.incr c_cache_invalid;
          Plan_cache.remove t.cache key;
          compute ())

let do_route t deadline params =
  let* grid = parse_grid params in
  let* pi =
    match Json.member "perm" params with
    | None -> Error "missing perm"
    | Some j -> P.perm_of_json ~expect_size:(Grid.size grid) j
  in
  let* engine = parse_engine params in
  let* config = parse_config params in
  Deadline.check deadline;
  let sched, cached = routed t grid pi engine config in
  t.last_cached <- Some cached;
  Deadline.check deadline;
  Ok
    (Json.Obj
       [
         ("engine", Json.String engine.Router_intf.name);
         ("cached", Json.Bool cached);
         ("schedule", Schedule.to_json sched);
       ])

let do_route_batch t deadline params =
  let* grid = parse_grid params in
  let* perm_jsons =
    match Json.member "perms" params with
    | Some (Json.List items) -> Ok items
    | Some _ -> Error "perms: expected a list of permutations"
    | None -> Error "missing perms"
  in
  let* engine = parse_engine params in
  let* config = parse_config params in
  let n = Grid.size grid in
  let* perms =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* pi = P.perm_of_json ~expect_size:n j in
        Ok (pi :: acc))
      (Ok []) perm_jsons
    |> Result.map List.rev
  in
  let batch = List.length perms in
  if batch > t.config.max_batch then
    raise
      (Overloaded_batch
         (Printf.sprintf "batch of %d exceeds max_batch %d" batch
            t.config.max_batch));
  (* Memory brownout: keep answering single routes, but batch fan-out is
     the first work to go when the process is over its RSS budget. *)
  if Supervisor.brownout_active () then
    raise
      (Overloaded_batch "memory brownout: batch requests temporarily rejected");
  (* The deadline is checked per item: finished items are returned, and
     unfinished ones get per-item deadline_exceeded errors — not one
     all-or-nothing failure for work already done. *)
  let item pi =
    match
      Deadline.check deadline;
      routed t grid pi engine config
    with
    | result -> Ok result
    | exception Deadline.Exceeded ->
        Error (P.error P.Deadline_exceeded "request deadline exceeded")
    | exception Cancel.Cancelled Cancel.Deadline ->
        Error (P.error P.Deadline_exceeded "request deadline exceeded")
  in
  let results =
    match t.pool with
    | Some pool when batch > 1 ->
        (* Fan the items across the worker pool.  Each item closure
           carries this request's trace id onto whichever domain runs
           it, so the whole batch's spans stay stamped; non-deadline
           exceptions propagate out of [map_tasks] exactly as they
           would from the serial loop. *)
        let tid = Trace.trace_id () in
        Worker_pool.map_tasks pool
          (fun pi ->
            let prev = Trace.trace_id () in
            Trace.set_trace_id tid;
            Fun.protect
              ~finally:(fun () -> Trace.set_trace_id prev)
              (fun () -> item pi))
          perms
    | _ -> List.map item perms
  in
  let completed =
    List.fold_left
      (fun n -> function Ok _ -> n + 1 | Error _ -> n)
      0 results
  in
  Ok
    (Json.Obj
       [
         ("engine", Json.String engine.Router_intf.name);
         ( "schedules",
           Json.List
             (List.map
                (function
                  | Ok (s, _) -> Schedule.to_json s
                  | Error err -> Json.Obj [ ("error", P.error_to_json err) ])
                results) );
         ( "cached",
           Json.List
             (List.map
                (function Ok (_, c) -> Json.Bool c | Error _ -> Json.Null)
                results) );
         ("completed", Json.Int completed);
       ])

(* Transpilation manages its own per-run workspace inside
   [Transpile.run_grid]; the session's is not threaded through. *)
let do_transpile t deadline params =
  let* grid = parse_grid params in
  let* logical =
    match Json.member "circuit" params with
    | Some (Json.String text) -> Qasm.parse text
    | Some _ -> Error "circuit: expected the circuit text as a string"
    | None -> Error "missing circuit"
  in
  let* () =
    let q = Circuit.num_qubits logical and n = Grid.size grid in
    if q = n then Ok ()
    else
      Error
        (Printf.sprintf "circuit has %d qubits but the grid has %d vertices" q
           n)
  in
  let* engine = parse_engine params in
  let* config = parse_config params in
  Deadline.check deadline;
  let result =
    Transpile.run_grid ~engine:(effective_engine t engine) ~config grid logical
  in
  Deadline.check deadline;
  Ok
    (Json.Obj
       [
         ("engine", Json.String engine.Router_intf.name);
         ("physical", Json.String (Qasm.print result.Transpile.physical));
         ("physical_depth", Json.Int (Circuit.depth result.Transpile.physical));
         ("physical_size", Json.Int (Circuit.size result.Transpile.physical));
         ("swaps", Json.Int (Circuit.swap_count result.Transpile.physical));
         ("routed_slices", Json.Int result.Transpile.routed_slices);
         ("swap_layers", Json.Int result.Transpile.swap_layers);
       ])

let cache_json t =
  Json.Obj
    [
      ("size", Json.Int (Plan_cache.length t.cache));
      ("capacity", Json.Int (Plan_cache.capacity t.cache));
      ("hits", Json.Int (Plan_cache.hits t.cache));
      ("misses", Json.Int (Plan_cache.misses t.cache));
      ("evictions", Json.Int (Plan_cache.evictions t.cache));
    ]

let health t =
  let uptime_ns = Int64.sub (Timer.now_ns ()) t.started_ns in
  let degraded = Router_registry.degradations () > 0 in
  Json.Obj
    [
      ("status", Json.String (if degraded then "degraded" else "ok"));
      ( "verify",
        Json.Obj
          [
            ("enabled", Json.Bool t.config.verify);
            ("failures", Json.Int (Router_registry.verify_failures ()));
            ("degraded", Json.Int (Router_registry.degradations ()));
          ] );
      ("faults_armed", Json.Bool (Fault.armed ()));
      ("requests", Json.Int t.served);
      ("inflight", Json.Int (t.inflight_probe ()));
      ("uptime_s", Json.Float (Int64.to_float uptime_ns /. 1e9));
      ("uptime_ms", Json.Float (Int64.to_float uptime_ns /. 1e6));
      ("engines", Json.Int (List.length (Router_registry.names ())));
      ("plan_cache", cache_json t);
    ]

(* One-call operational snapshot: health + cache + full metrics registry
   (process gauges refreshed), for [qroute stats] and dashboards that
   want a single poll. *)
let stats t =
  refresh_process_gauges ();
  Json.Obj
    [
      ("health", health t);
      ("plan_cache", cache_json t);
      ("metrics", Metrics.to_json ());
    ]

let dispatch t deadline meth params =
  match meth with
  | "route" -> do_route t deadline params
  | "route_batch" -> do_route_batch t deadline params
  | "transpile" -> do_transpile t deadline params
  | "engines" -> Ok (P.engines_json ())
  | "health" -> Ok (health t)
  | "metrics" ->
      refresh_process_gauges ();
      Ok (Metrics.to_json ())
  | "stats" -> Ok (stats t)
  | m ->
      raise
        (Unknown_method
           (Printf.sprintf "unknown method %S (methods: %s)" m
              (String.concat ", " P.methods)))

(* ------------------------------------------------------------- envelope *)

let handle_request t (req : P.request) =
  t.served <- t.served + 1;
  Metrics.incr c_requests;
  let timer = Timer.start () in
  let deadline = Deadline.of_budget_ms req.deadline_ms in
  t.last_cached <- None;
  let degradations_before = Router_registry.degradations () in
  let run () =
    Trace.with_span "serve_request"
      ~attrs:[ ("method", Trace.String req.meth) ]
    @@ fun () ->
    match
      Fault.point "session.dispatch" ~f:(fun () ->
          dispatch t deadline req.meth req.params)
    with
    | Ok json -> Ok json
    | Error msg -> Error (P.error P.Invalid_params msg)
    | exception Deadline.Exceeded ->
        Error (P.error P.Deadline_exceeded "request deadline exceeded")
    | exception Cancel.Cancelled Cancel.Deadline ->
        Error (P.error P.Deadline_exceeded "request deadline exceeded")
    | exception Cancel.Cancelled Cancel.Killed ->
        Error
          (P.error P.Internal_error
             "request cancelled by the supervisor watchdog")
    | exception Unknown_method msg -> Error (P.error P.Unknown_method msg)
    | exception Overloaded_batch msg -> Error (P.error P.Overloaded msg)
    | exception Router_intf.Unsupported_input { engine; reason } ->
        Error
          (P.error P.Unsupported_input
             (Printf.sprintf "engine %s: %s" engine reason))
    | exception Router_registry.Verification_failed { engine; reason } ->
        Error
          (P.error P.Internal_error
             (Printf.sprintf
                "engine %s: no verified schedule from any fallback (%s)"
                engine reason))
    | exception Fault.Injected point ->
        Error (P.error P.Internal_error ("injected fault at " ^ point))
    | exception Invalid_argument msg -> Error (P.error P.Internal_error msg)
    | exception Failure msg -> Error (P.error P.Internal_error msg)
    (* Per-request isolation: whatever a handler raises, the connection
       gets a typed envelope and the serving loop keeps running. *)
    | exception exn ->
        Error
          (P.error P.Internal_error
             ("unexpected exception: " ^ Printexc.to_string exn))
  in
  (* Cooperative cancellation: the pool's job wrapper installs an
     ambient token (the watchdog holds its other end) — reuse it so a
     supervisor kill reaches this request; off-pool, a fresh private
     token.  The request's deadline is pushed into the token and the
     workspace carries it into the routing hot loops (including batch
     items fanned to other domains). *)
  let cancel =
    let ambient = Cancel.ambient () in
    if ambient == Cancel.none then Cancel.create () else ambient
  in
  (match Deadline.absolute_ns deadline with
  | Some _ as at -> Cancel.set_deadline_ns cancel at
  | None -> ());
  Router_workspace.set_cancel t.ws cancel;
  (* Adopt the caller's trace context for the duration of the request:
     every span opened below serve_request — engine phases, cache
     lookups, the degraded_to attribute — carries the caller's trace_id
     in the exported trace. *)
  let result =
    Fun.protect
      ~finally:(fun () -> Router_workspace.set_cancel t.ws Cancel.none)
      (fun () ->
        Cancel.with_ambient cancel (fun () ->
            match req.trace with
            | None -> run ()
            | Some tc ->
                let prev = Trace.trace_id () in
                Trace.set_trace_id (Some tc.Trace_context.trace_id);
                Fun.protect ~finally:(fun () -> Trace.set_trace_id prev) run))
  in
  let ms = Timer.elapsed_s timer *. 1000. in
  Metrics.observe h_request_ms ms;
  let status =
    match result with Ok _ -> "ok" | Error e -> P.code_to_string e.P.code
  in
  t.last_access <-
    Some
      {
        a_meth = req.meth;
        a_status = status;
        a_ms = ms;
        a_trace = req.trace;
        a_cached = t.last_cached;
        a_degraded = Router_registry.degradations () > degradations_before;
      };
  match result with
  | Ok json ->
      t.consecutive_errors <- 0;
      P.ok_response ?trace:req.trace ~server_ms:ms ~id:req.id json
  | Error err ->
      t.consecutive_errors <- t.consecutive_errors + 1;
      Metrics.incr c_errors;
      P.error_response ?trace:req.trace ~server_ms:ms ~id:req.id err

(* One line of access log per request line, at Info — the per-connection
   record operators grep/parse (DESIGN.md §12).  Guarded by [would_log]
   so the default Warn level pays one comparison and no allocation. *)
let log_access t ~bytes =
  if Log.would_log Log.Info then
    match t.last_access with
    | None -> ()
    | Some a ->
        let fields =
          [
            ("session", Json.Int t.session_id);
            ("method", Json.String a.a_meth);
            ("status", Json.String a.a_status);
            ("ms", Json.Float a.a_ms);
            ("bytes", Json.Int bytes);
          ]
        in
        let fields =
          match t.worker with
          | None -> fields
          | Some w -> fields @ [ ("worker", Json.Int w) ]
        in
        let fields =
          match a.a_trace with
          | None -> fields
          | Some tc ->
              fields @ [ ("trace_id", Json.String tc.Trace_context.trace_id) ]
        in
        let fields =
          match a.a_cached with
          | None -> fields
          | Some c -> fields @ [ ("cached", Json.Bool c) ]
        in
        let fields =
          if a.a_degraded then fields @ [ ("degraded", Json.Bool true) ]
          else fields
        in
        Log.info "request" fields

let reject t ~meth err =
  Metrics.incr c_errors;
  t.consecutive_errors <- t.consecutive_errors + 1;
  t.last_access <-
    Some
      {
        a_meth = meth;
        a_status = P.code_to_string err.P.code;
        a_ms = 0.;
        a_trace = None;
        a_cached = None;
        a_degraded = false;
      };
  err

let handle_line_status t line =
  t.last_access <- None;
  let response =
    match Json.of_string line with
    | Error msg ->
        P.error_response ~id:Json.Null
          (reject t ~meth:"?" (P.error P.Parse_error msg))
    | Ok json -> (
        match P.request_of_json json with
        | Error err ->
            let meth =
              match Json.member "method" json with
              | Some (Json.String m) -> m
              | _ -> "?"
            in
            P.error_response ~id:(P.request_id json) (reject t ~meth err)
        | Ok req -> handle_request t req)
  in
  let rendered = Json.to_string response in
  log_access t ~bytes:(String.length rendered);
  let errored =
    match t.last_access with
    | Some a -> a.a_status <> "ok"
    | None -> false
  in
  (rendered, errored)

let handle_line t line = fst (handle_line_status t line)

let recovered_id line =
  match Json.of_string line with
  | Ok json -> P.request_id json
  | Error _ -> Json.Null

let overloaded_response_line ?retry_after_ms line =
  Metrics.incr c_errors;
  Json.to_string
    (P.error_response ~id:(recovered_id line)
       (P.error ?retry_after_ms P.Overloaded
          "server overloaded: in-flight queue full"))

let oversized_response_line () =
  Metrics.incr c_errors;
  Json.to_string
    (P.error_response ~id:Json.Null
       (P.error P.Invalid_request
          "request line exceeds max-line-bytes; closing connection"))

let hung_response_line line =
  Metrics.incr c_errors;
  Json.to_string
    (P.error_response ~id:(recovered_id line)
       (P.error P.Internal_error
          "request cancelled by the supervisor watchdog: worker \
           unresponsive"))

let crashed_response_line line exn =
  Metrics.incr c_errors;
  Json.to_string
    (P.error_response ~id:(recovered_id line)
       (P.error P.Internal_error
          ("request handler crashed: " ^ Printexc.to_string exn)))
