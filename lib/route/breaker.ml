module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Json = Qr_obs.Json
module Timer = Qr_util.Timer

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

(* Gauge encoding: 0 closed, 1 open, 2 half-open. *)
let state_gauge_value = function Closed -> 0. | Open -> 1. | Half_open -> 2.

type config = {
  window : int;
  threshold : int;
  cooldown_ns : int64;
  probes : int;
}

let default_config =
  { window = 16; threshold = 5; cooldown_ns = 2_000_000_000L; probes = 2 }

let check_config c =
  if c.window < 1 then invalid_arg "Breaker: window must be positive";
  if c.threshold < 1 then invalid_arg "Breaker: threshold must be positive";
  if c.threshold > c.window then
    invalid_arg "Breaker: threshold cannot exceed the window";
  if Int64.compare c.cooldown_ns 0L < 0 then
    invalid_arg "Breaker: cooldown must be non-negative";
  if c.probes < 1 then invalid_arg "Breaker: probes must be positive"

let c_trips =
  Metrics.counter "router_breaker_trips"
    ~help:"Circuit breakers tripped open (including re-trips from half-open)."

let c_rejections =
  Metrics.counter "router_breaker_rejections"
    ~help:"Requests skipped past an open engine straight to its fallbacks."

let c_recoveries =
  Metrics.counter "router_breaker_recoveries"
    ~help:"Circuit breakers closed again after successful half-open probes."

(* Prometheus-safe metric suffix for an engine name ("ats-serial" →
   "ats_serial"). *)
let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

type t = {
  name : string;
  config : config;
  mutex : Mutex.t;
  ring : bool array;  (* rolling outcomes, [true] = failure *)
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable failures : int;  (* failures currently in the ring *)
  mutable state : state;
  mutable opened_at_ns : int64;
  mutable probe_inflight : bool;
  mutable probe_successes : int;
  (* Plain tallies next to the metrics counters (the counters only move
     while Metrics is enabled, but health reports and tests must see
     breaker activity regardless). *)
  mutable trips : int;
  mutable rejections : int;
  mutable recoveries : int;
  gauge : Metrics.gauge;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?(config = default_config) name =
  check_config config;
  let gauge =
    Metrics.gauge
      ("router_breaker_state_" ^ sanitize name)
      ~help:"Breaker state: 0 closed, 1 open, 2 half-open."
  in
  Metrics.set gauge (state_gauge_value Closed);
  {
    name;
    config;
    mutex = Mutex.create ();
    ring = Array.make config.window false;
    ring_len = 0;
    ring_pos = 0;
    failures = 0;
    state = Closed;
    opened_at_ns = 0L;
    probe_inflight = false;
    probe_successes = 0;
    trips = 0;
    rejections = 0;
    recoveries = 0;
    gauge;
  }

let set_state t s =
  t.state <- s;
  Metrics.set t.gauge (state_gauge_value s)

let clear_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.ring_len <- 0;
  t.ring_pos <- 0;
  t.failures <- 0

(* Caller holds the lock. *)
let trip t ~reason =
  set_state t Open;
  t.opened_at_ns <- Timer.now_ns ();
  t.probe_inflight <- false;
  t.probe_successes <- 0;
  t.trips <- t.trips + 1;
  Metrics.incr c_trips;
  Log.warn "circuit breaker tripped open"
    [
      ("engine", Json.String t.name);
      ("reason", Json.String reason);
      ("failures", Json.Int t.failures);
      ("window", Json.Int t.ring_len);
    ]

let admit t =
  locked t @@ fun () ->
  match t.state with
  | Closed -> `Admit
  | Open ->
      let elapsed = Int64.sub (Timer.now_ns ()) t.opened_at_ns in
      if Int64.compare elapsed t.config.cooldown_ns >= 0 then begin
        set_state t Half_open;
        t.probe_inflight <- true;
        t.probe_successes <- 0;
        Log.info "circuit breaker half-open; probing"
          [ ("engine", Json.String t.name) ];
        `Probe
      end
      else begin
        t.rejections <- t.rejections + 1;
        Metrics.incr c_rejections;
        `Reject
      end
  | Half_open ->
      if t.probe_inflight then begin
        t.rejections <- t.rejections + 1;
        Metrics.incr c_rejections;
        `Reject
      end
      else begin
        t.probe_inflight <- true;
        `Probe
      end

let record t ~ok =
  locked t @@ fun () ->
  match t.state with
  | Closed ->
      let failure = not ok in
      if t.ring_len < Array.length t.ring then t.ring_len <- t.ring_len + 1
      else if t.ring.(t.ring_pos) then t.failures <- t.failures - 1;
      t.ring.(t.ring_pos) <- failure;
      t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
      if failure then begin
        t.failures <- t.failures + 1;
        if t.failures >= t.config.threshold then
          trip t ~reason:"failure threshold reached"
      end
  | Open | Half_open ->
      (* A straggler admitted before the trip settled; its outcome no
         longer bears on the fresh window the breaker will build after
         recovery. *)
      ()

let abandon_probe t =
  locked t @@ fun () ->
  match t.state with
  | Half_open -> t.probe_inflight <- false
  | Closed | Open -> ()

let record_probe t ~ok =
  locked t @@ fun () ->
  match t.state with
  | Half_open ->
      t.probe_inflight <- false;
      if ok then begin
        t.probe_successes <- t.probe_successes + 1;
        if t.probe_successes >= t.config.probes then begin
          clear_window t;
          set_state t Closed;
          t.recoveries <- t.recoveries + 1;
          Metrics.incr c_recoveries;
          Log.info "circuit breaker recovered"
            [ ("engine", Json.String t.name) ]
        end
      end
      else trip t ~reason:"half-open probe failed"
  | Closed | Open ->
      (* The probe raced a concurrent transition; nothing to settle. *)
      ()

let state t = locked t @@ fun () -> t.state
let name t = t.name
let trips t = locked t @@ fun () -> t.trips
let rejections t = locked t @@ fun () -> t.rejections
let recoveries t = locked t @@ fun () -> t.recoveries

let reset t =
  locked t @@ fun () ->
  clear_window t;
  set_state t Closed;
  t.probe_inflight <- false;
  t.probe_successes <- 0

(* {2 Global per-engine table} *)

let table : (string, t) Hashtbl.t = Hashtbl.create 8
let table_mutex = Mutex.create ()

let get_or_create ?config engine =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) @@ fun () ->
  match Hashtbl.find_opt table engine with
  | Some b -> b
  | None ->
      let b = create ?config engine in
      Hashtbl.replace table engine b;
      b

let clear_all () =
  Mutex.lock table_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) @@ fun () ->
  Hashtbl.iter (fun _ b -> reset b) table;
  Hashtbl.reset table
