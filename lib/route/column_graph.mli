(** The paper's column bipartite multigraph [G^[a,b]].

    For an [m×n] grid and permutation [π], the multigraph has the [n]
    columns on both sides and one edge [j → j'] labelled [(i, i')] for every
    qubit with [π(i,j) = (i',j')].  It is [m]-regular, so it decomposes into
    [m] perfect matchings; restricting to source rows [a..b] gives the
    banded subgraphs the locality-aware search scans.

    Edges are indexed by the source vertex's flat grid index, so the label
    arrays are total and O(1) to consult. *)

type t

val build : ?reuse:t -> Qr_graph.Grid.t -> Qr_perm.Perm.t -> t
(** [build grid pi].  Passing [reuse] (a column graph of a same-sized
    instance, no longer needed) recycles its edge arrays instead of
    allocating fresh ones — the batched [route_many] seam; the reused value
    must not be consulted afterwards.  A size mismatch silently falls back
    to fresh allocation. *)

val rows : t -> int
(** [m] — also the multigraph's regularity degree. *)

val cols : t -> int
(** [n] — the number of vertices on each side. *)

val num_edges : t -> int
(** [m * n]. *)

val src_col : t -> int -> int

val dst_col : t -> int -> int

val src_row : t -> int -> int

val dst_row : t -> int -> int

val all_edge_ids : t -> int list

val hk_edges : t -> (int * int) array
(** Endpoint pairs [(src_col, dst_col)] indexed by edge id, the form
    {!Qr_bipartite.Hopcroft_karp} and {!Qr_bipartite.Decompose} consume. *)

val edges_in_band : t -> live:bool array -> lo:int -> hi:int -> int list
(** Live edge ids whose source row lies in [lo..hi] (inclusive). *)
