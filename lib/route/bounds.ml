module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm

let displacement_bound dist pi = Perm.max_distance dist pi

let size_lower_bound dist pi = (Perm.total_distance dist pi + 1) / 2

let grid_cut_bound grid pi =
  let rows = Grid.rows grid and cols = Grid.cols grid in
  let best = ref 0 in
  let ceil_div a b = (a + b - 1) / b in
  (* Vertical cuts: between columns c and c+1; width = rows. *)
  for c = 0 to cols - 2 do
    let rightward = ref 0 and leftward = ref 0 in
    Array.iteri
      (fun v dst ->
        let sc = Grid.col_of grid v and dc = Grid.col_of grid dst in
        if sc <= c && dc > c then incr rightward;
        if sc > c && dc <= c then incr leftward)
      pi;
    best := max !best (ceil_div !rightward rows);
    best := max !best (ceil_div !leftward rows)
  done;
  (* Horizontal cuts: between rows r and r+1; width = cols. *)
  for r = 0 to rows - 2 do
    let downward = ref 0 and upward = ref 0 in
    Array.iteri
      (fun v dst ->
        let sr = Grid.row_of grid v and dr = Grid.row_of grid dst in
        if sr <= r && dr > r then incr downward;
        if sr > r && dr <= r then incr upward)
      pi;
    best := max !best (ceil_div !downward cols);
    best := max !best (ceil_div !upward cols)
  done;
  !best

let depth_lower_bound grid pi =
  max
    (displacement_bound (fun u v -> Grid.manhattan grid u v) pi)
    (grid_cut_bound grid pi)
