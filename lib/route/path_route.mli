(** Odd–even transposition routing on a path.

    Routing a permutation on the path [P_k] by sorting: tokens carry their
    destination index; alternating rounds compare-and-swap the even pairs
    [(0,1), (2,3), …] and the odd pairs [(1,2), (3,4), …].  A classical
    result (odd–even transposition sort) guarantees completion within [k]
    rounds, and the realized movement is exactly the requested permutation.
    This is the primitive each GridRoute phase runs on every row/column in
    parallel. *)

val route : int array -> (int * int) list list
(** [route dests] routes the permutation on positions [0..k-1] where the
    token at position [i] must reach [dests.(i)].  Returns layers of
    position pairs [(p, p+1)]; empty rounds are dropped, so depth ≤ k and
    trailing/leading idle rounds cost nothing.  Starts with the even phase.
    @raise Invalid_argument if [dests] is not a permutation. *)

val route_min_parity : int array -> (int * int) list list
(** Run both starting parities and keep the shallower schedule — a free
    constant-factor win the routers use by default. *)

val depth_upper_bound : int -> int
(** [k] for a path of [k] vertices (the classical guarantee). *)
