(** Text renderings of grids, permutations and schedules — debugging aids
    and export formats (ASCII for terminals, DOT for Graphviz).

    Nothing here affects routing; every function is a pure formatter.  The
    CLI's [--show] paths and the examples use the ASCII forms; the DOT
    forms are for papers/slides. *)

val grid_ascii : Qr_graph.Grid.t -> string
(** The coupling grid as an ASCII lattice of [o] vertices with [-]/[|]
    edges. *)

val permutation_ascii : Qr_graph.Grid.t -> Qr_perm.Perm.t -> string
(** One cell per vertex showing the destination, displaced cells marked
    with [*]: a quick visual of workload locality. *)

val layer_ascii : Qr_graph.Grid.t -> Schedule.layer -> string
(** The lattice with the layer's swaps drawn as [=] (horizontal) and [#]
    (vertical) on the swapped edges. *)

val schedule_ascii : Qr_graph.Grid.t -> Schedule.t -> string
(** All layers of a schedule, numbered, one lattice each. *)

val occupancy_ascii : Qr_graph.Grid.t -> Schedule.t -> string
(** A heatmap of how many swaps touch each vertex over the whole schedule
    (digits, [9+] capped) — shows routing hotspots. *)

val graph_dot : Qr_graph.Graph.t -> string
(** The coupling graph in Graphviz DOT format. *)

val schedule_dot : Qr_graph.Grid.t -> Schedule.t -> string
(** DOT rendering of the grid with swap edges colored by the layer index
    in which they are (first) used. *)
