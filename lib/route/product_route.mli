(** Routing on Cartesian products [G1 □ G2] — the paper's "grid-like"
    extension (§IV-C).

    The 3-round scheme carries over verbatim: the column multigraph's sides
    become the vertices of [G2], its regularity degree [|V1|]; rounds 1 and
    3 route inside the copies of [G1], round 2 inside the copies of [G2].
    Odd–even transposition is replaced by caller-supplied routers for the
    factors, so the same code routes grids (path factors), cylinders
    (path □ cycle), tori, and anything else.

    Locality-aware selection generalizes by replacing [|i − r|] with the
    graph distance [d_{G1}]; the banded doubling search runs over windows of
    [G1]'s vertex order, which coincides with the paper's row bands when
    [G1] is a path. *)

type factor_router = Qr_graph.Graph.t -> Qr_perm.Perm.t -> Schedule.t
(** A routine that realizes a permutation on a factor graph; the returned
    schedule must be valid for that graph and realize the permutation (both
    are rechecked on the lifted product schedule in debug builds). *)

val route :
  ?locality:bool ->
  route1:factor_router ->
  route2:factor_router ->
  Qr_graph.Product.t ->
  Qr_perm.Perm.t ->
  Schedule.t
(** Route [π] on the product.  [locality] (default [true]) enables banded
    discovery plus MCBBM assignment with the [d_{G1}]-generalized Δ;
    otherwise an arbitrary decomposition/assignment is used. *)

val route_best_orientation :
  ?locality:bool ->
  route1:factor_router ->
  route2:factor_router ->
  Qr_graph.Product.t ->
  Qr_perm.Perm.t ->
  Schedule.t
(** Also try [G2 □ G1] with the mirrored permutation and keep the shallower
    schedule (the product analogue of Algorithm 1). *)
