module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Decompose = Qr_bipartite.Decompose
module Trace = Qr_obs.Trace
module Cancel = Qr_util.Cancel

type sigmas = int array array

type decompose_strategy = Extraction | Euler_split

let sigmas_of_assignment cg ~matchings ~assigned_rows =
  let m = Column_graph.rows cg and n = Column_graph.cols cg in
  if not (Perm.is_permutation assigned_rows) || Array.length assigned_rows <> m
  then invalid_arg "Grid_route.sigmas_of_assignment: bad row assignment";
  if List.length matchings <> m then
    invalid_arg "Grid_route.sigmas_of_assignment: need one matching per row";
  let sigmas = Array.init n (fun _ -> Array.make m (-1)) in
  List.iteri
    (fun k matching ->
      let row = assigned_rows.(k) in
      Array.iteri
        (fun j edge ->
          let i = Column_graph.src_row cg edge in
          if Column_graph.src_col cg edge <> j then
            invalid_arg "Grid_route.sigmas_of_assignment: edge/column mismatch";
          if sigmas.(j).(i) <> -1 then
            invalid_arg "Grid_route.sigmas_of_assignment: qubit covered twice";
          sigmas.(j).(i) <- row)
        matching)
    matchings;
  Array.iter
    (fun sigma ->
      if not (Perm.is_permutation sigma) then
        invalid_arg "Grid_route.sigmas_of_assignment: sigma not a permutation")
    sigmas;
  sigmas

let check_sigmas grid pi sigmas =
  let m = Grid.rows grid and n = Grid.cols grid in
  Array.length sigmas = n
  && Array.for_all (fun s -> Array.length s = m && Perm.is_permutation s) sigmas
  &&
  (* After round 1 the qubit from (i,j) sits at (sigmas.(j).(i), j); its
     destination column must be unique within that row. *)
  let seen = Array.make_matrix m n false in
  let ok = ref true in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      let r = sigmas.(j).(i) in
      let _, c' = Grid.coord grid pi.(Grid.index grid i j) in
      if seen.(r).(c') then ok := false else seen.(r).(c') <- true
    done
  done;
  !ok

(* Merge per-line local schedules into grid-wide layers: layer [t] of the
   phase is the union of every line's layer [t].  [lift line (a, b)] maps a
   local adjacent pair to a grid edge. *)
let merge_lines lines ~lift =
  let rec peel lines acc =
    let layer = ref [] in
    let rest =
      List.filter_map
        (fun (line, layers) ->
          match layers with
          | [] -> None
          | first :: tail ->
              List.iter (fun pair -> layer := lift line pair :: !layer) first;
              if tail = [] then None else Some (line, tail))
        lines
    in
    if !layer = [] then List.rev acc
    else peel rest (Array.of_list !layer :: acc)
  in
  peel lines []

let apply_layers token_at layers =
  List.iter
    (fun layer ->
      Array.iter
        (fun (u, v) ->
          let tmp = token_at.(u) in
          token_at.(u) <- token_at.(v);
          token_at.(v) <- tmp)
        layer)
    layers

let route_rounds grid pi sigmas =
  if not (check_sigmas grid pi sigmas) then
    invalid_arg "Grid_route.route_with_sigmas: invalid sigmas";
  (* Rounds are few but each scans the whole grid; one checkpoint per
     round bounds the overshoot past an expired deadline. *)
  let cancel = Cancel.ambient () in
  Cancel.poll cancel;
  let m = Grid.rows grid and n = Grid.cols grid in
  let token_at = Array.init (Grid.size grid) (fun v -> v) in
  (* Round 1: columns, qubit at (i,j) goes to row sigmas.(j).(i). *)
  let round1 =
    Trace.with_span "round1_columns" (fun () ->
        let column_lines =
          List.init n (fun j ->
              let dests = Array.init m (fun i -> sigmas.(j).(i)) in
              (j, Path_route.route_min_parity dests))
        in
        let round =
          merge_lines column_lines ~lift:(fun j (a, b) ->
              (Grid.index grid a j, Grid.index grid b j))
        in
        apply_layers token_at round;
        round)
  in
  (* Round 2: rows, to destination columns. *)
  let round2 =
    Trace.with_span "round2_rows" (fun () ->
        Cancel.poll cancel;
        let row_lines =
          List.init m (fun r ->
              let dests =
                Array.init n (fun j ->
                    let v = token_at.(Grid.index grid r j) in
                    snd (Grid.coord grid pi.(v)))
              in
              (r, Path_route.route_min_parity dests))
        in
        let round =
          merge_lines row_lines ~lift:(fun r (a, b) ->
              (Grid.index grid r a, Grid.index grid r b))
        in
        apply_layers token_at round;
        round)
  in
  (* Round 3: columns, to destination rows. *)
  let round3 =
    Trace.with_span "round3_columns" (fun () ->
        Cancel.poll cancel;
        let column_lines' =
          List.init n (fun j ->
              let dests =
                Array.init m (fun i ->
                    let v = token_at.(Grid.index grid i j) in
                    let r', c' = Grid.coord grid pi.(v) in
                    assert (c' = j);
                    r')
              in
              (j, Path_route.route_min_parity dests))
        in
        let round =
          merge_lines column_lines' ~lift:(fun j (a, b) ->
              (Grid.index grid a j, Grid.index grid b j))
        in
        apply_layers token_at round;
        round)
  in
  (* Every token must have reached its destination. *)
  Array.iteri (fun v dst -> assert (token_at.(dst) = v)) pi;
  (round1, round2, round3)

let route_with_sigmas grid pi sigmas =
  let round1, round2, round3 = route_rounds grid pi sigmas in
  Schedule.concat round1 (Schedule.concat round2 round3)

let round_depths grid pi sigmas =
  let round1, round2, round3 = route_rounds grid pi sigmas in
  (Schedule.depth round1, Schedule.depth round2, Schedule.depth round3)

let naive_sigmas ?ws ?(strategy = Extraction) grid pi =
  let cg =
    Trace.with_span "column_graph_build" (fun () ->
        Column_graph.build ?reuse:(Router_workspace.reusable_cg ws) grid pi)
  in
  Option.iter (fun w -> Router_workspace.remember_cg w cg) ws;
  let hk = Router_workspace.hk ws in
  let nl = Column_graph.cols cg in
  let edges = Column_graph.hk_edges cg in
  let matchings =
    match strategy with
    | Extraction -> Decompose.by_extraction_in hk ~nl ~nr:nl ~edges
    | Euler_split -> Decompose.by_euler_split_in hk ~nl ~nr:nl ~edges
  in
  let assigned_rows = Array.init (Column_graph.rows cg) (fun k -> k) in
  sigmas_of_assignment cg ~matchings ~assigned_rows

let route_naive ?ws ?strategy grid pi =
  route_with_sigmas grid pi (naive_sigmas ?ws ?strategy grid pi)
