(** First-class routing engines with a plan/execute split.

    An {e engine} is a value — name, capability set, and a pair of
    functions.  [plan] does the thinking (matching discovery, row
    assignment, search) and returns either the column-phase permutations of
    the 3-round GridRoute template ([Sigmas]) or a finished schedule
    ([Ready]); [execute] turns a plan into a schedule.  The split lets
    callers inspect or cache plans, and lets grid engines defer the
    odd–even transposition rounds until a schedule is actually needed.

    Engines are registered and enumerated by {!Router_registry}; the
    observable entry point is {!route}, which wraps the call in the [route]
    span and records the schedule-quality counters ([route_calls],
    [swap_layers], [swaps_total]) exactly once per call — engines that race
    other engines internally go through the uncounted {!run_plan}. *)

type input =
  | Grid_input of Qr_graph.Grid.t * Qr_perm.Perm.t
  | Graph_input of Qr_graph.Graph.t * Qr_graph.Distance.t * Qr_perm.Perm.t
      (** Arbitrary connected coupling graph with a distance oracle. *)

type capabilities = {
  grid_only : bool;
      (** The engine rejects {!Graph_input} ({!Unsupported_input});
          {!Router_registry.route_generic} falls back explicitly. *)
  supports_transpose : bool;
      (** The engine reads {!Router_config.t}[.transpose] (Algorithm 1's
          orientation race). *)
  supports_partial : bool;
      (** The engine is safe under the extend-then-route pipeline of
          partial permutations (all current engines are; a future
          native-don't-care engine would plan differently). *)
}

type plan =
  | Sigmas of {
      grid : Qr_graph.Grid.t;
      pi : Qr_perm.Perm.t;
      sigmas : Grid_route.sigmas;
    }
      (** Column-phase permutations; execution is the 3-round template. *)
  | Ready of Schedule.t  (** Engines that produce schedules directly. *)

type t = {
  name : string;  (** Registry key; lowercase, stable across releases. *)
  capabilities : capabilities;
  plan : Router_workspace.t option -> Router_config.t -> input -> plan;
  execute : plan -> Schedule.t;  (** Usually {!execute_plan}. *)
}

exception Unsupported_input of { engine : string; reason : string }
(** Raised by [plan] when the input shape is outside the engine's
    capabilities (e.g. a grid-only engine on {!Graph_input}). *)

val unsupported : engine:string -> reason:string -> 'a

val input_size : input -> int
(** Number of vertices of the underlying device. *)

val input_perm : input -> Qr_perm.Perm.t

val require_grid : engine:string -> input -> Qr_graph.Grid.t * Qr_perm.Perm.t
(** Destructure a grid input or raise {!Unsupported_input} — the standard
    first line of a grid-only engine's [plan]. *)

val execute_plan : plan -> Schedule.t
(** The default executor: [Ready] is returned as-is; [Sigmas] runs
    {!Grid_route.route_with_sigmas}. *)

val run_plan :
  ?ws:Router_workspace.t -> t -> Router_config.t -> input -> Schedule.t
(** Plan, execute, and apply the configured compaction post-pass — with no
    span and no counters.  Internal composition seam (the [best] engine
    races contenders through this). *)

val route :
  ?ws:Router_workspace.t -> ?config:Router_config.t -> t -> input -> Schedule.t
(** The observable routing call: {!run_plan} wrapped in the [route] span
    (engine name and configuration as attributes) with the
    [route_calls]/[swap_layers]/[swaps_total] counters recorded from the
    returned schedule.  Every engine returns a valid schedule realizing the
    input permutation.  @raise Unsupported_input outside the engine's
    capabilities. *)

val route_grid :
  ?ws:Router_workspace.t ->
  ?config:Router_config.t ->
  t -> Qr_graph.Grid.t -> Qr_perm.Perm.t -> Schedule.t
(** {!route} on a {!Grid_input}. *)

val route_many : ?config:Router_config.t -> t -> input list -> Schedule.t list
(** Route a batch through one shared {!Router_workspace}, amortizing the
    planning allocations.  Schedules are bit-identical to routing each
    input with a separate {!route} call.  An empty batch returns [[]]
    without allocating a workspace. *)
