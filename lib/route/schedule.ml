module Graph = Qr_graph.Graph
module Perm = Qr_perm.Perm

type layer = (int * int) array

type t = layer list

let empty : t = []

let depth t = List.length t

let size t = List.fold_left (fun acc layer -> acc + Array.length layer) 0 t

let concat a b = a @ b

let layer_is_matching ~n layer =
  let used = Array.make n false in
  Array.for_all
    (fun (u, v) ->
      u >= 0 && u < n && v >= 0 && v < n && u <> v
      && (not used.(u))
      && (not used.(v))
      &&
      (used.(u) <- true;
       used.(v) <- true;
       true))
    layer

let is_valid g t =
  let n = Graph.num_vertices g in
  List.for_all
    (fun layer ->
      layer_is_matching ~n layer
      && Array.for_all (fun (u, v) -> Graph.mem_edge g u v) layer)
    t

let apply ~n t =
  (* position_of.(token) tracks where each token currently sits. *)
  let position_of = Array.init n (fun v -> v) in
  let token_at = Array.init n (fun v -> v) in
  let do_swap (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Schedule.apply: vertex out of range";
    let a = token_at.(u) and b = token_at.(v) in
    token_at.(u) <- b;
    token_at.(v) <- a;
    position_of.(a) <- v;
    position_of.(b) <- u
  in
  List.iter
    (fun layer ->
      if not (layer_is_matching ~n layer) then
        invalid_arg "Schedule.apply: layer is not a matching";
      Array.iter do_swap layer)
    t;
  Perm.check position_of

let realizes ~n t p = Perm.equal (apply ~n t) p

let inverse t = List.rev t

let of_swaps swap_list = List.map (fun sw -> [| sw |]) swap_list

let swaps t =
  List.concat_map (fun layer -> Array.to_list layer) t

let compact ~n t =
  let last_layer = Array.make n 0 in
  (* layers.(d) collects swaps assigned to layer d+1 (reversed). *)
  let buckets : (int * int) list array ref = ref (Array.make 8 []) in
  let ensure d =
    if d >= Array.length !buckets then begin
      let fresh = Array.make (max (d + 1) (2 * Array.length !buckets)) [] in
      Array.blit !buckets 0 fresh 0 (Array.length !buckets);
      buckets := fresh
    end
  in
  let max_depth = ref 0 in
  List.iter
    (fun (u, v) ->
      let d = max last_layer.(u) last_layer.(v) in
      ensure d;
      !buckets.(d) <- (u, v) :: !buckets.(d);
      last_layer.(u) <- d + 1;
      last_layer.(v) <- d + 1;
      if d + 1 > !max_depth then max_depth := d + 1)
    (swaps t);
  List.init !max_depth (fun d -> Array.of_list (List.rev !buckets.(d)))

let map_vertices f t =
  List.map (fun layer -> Array.map (fun (u, v) -> (f u, f v)) layer) t

let to_string t =
  let layer_line layer =
    Array.to_list layer
    |> List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v)
    |> String.concat " "
  in
  String.concat "\n" (List.map layer_line t)

let of_string text =
  let parse_swap lineno token =
    match String.split_on_char '-' token with
    | [ u; v ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v when u >= 0 && v >= 0 && u <> v -> Ok (u, v)
        | _ -> Error (Printf.sprintf "line %d: bad swap %S" lineno token))
    | _ -> Error (Printf.sprintf "line %d: bad swap %S" lineno token)
  in
  let parse_line lineno line =
    let tokens =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    in
    List.fold_left
      (fun acc token ->
        match acc with
        | Error _ as e -> e
        | Ok swaps -> (
            match parse_swap lineno token with
            | Ok swap -> Ok (swap :: swaps)
            | Error _ as e -> e))
      (Ok []) tokens
    |> Result.map (fun swaps -> Array.of_list (List.rev swaps))
  in
  if String.trim text = "" then Ok []
  else begin
    let lines = String.split_on_char '\n' text in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          match parse_line lineno line with
          | Ok layer -> go (lineno + 1) (layer :: acc) rest
          | Error _ as e -> e)
    in
    go 1 [] lines
  end

let of_string_exn text =
  match of_string text with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schedule.of_string: " ^ msg)

module Json = Qr_obs.Json

let to_json t =
  let swap_json (u, v) = Json.List [ Json.Int u; Json.Int v ] in
  let layer_json layer =
    Json.List (List.map swap_json (Array.to_list layer))
  in
  Json.Obj
    [
      ("depth", Json.Int (depth t));
      ("size", Json.Int (size t));
      ("layers", Json.List (List.map layer_json t));
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let swap_of_json = function
    | Json.List [ Json.Int u; Json.Int v ] when u >= 0 && v >= 0 && u <> v ->
        Ok (u, v)
    | j -> Error (Printf.sprintf "bad swap %s" (Json.to_string j))
  in
  let layer_of_json = function
    | Json.List swaps ->
        let* swaps =
          List.fold_left
            (fun acc j ->
              let* acc = acc in
              let* sw = swap_of_json j in
              Ok (sw :: acc))
            (Ok []) swaps
        in
        Ok (Array.of_list (List.rev swaps))
    | j -> Error (Printf.sprintf "bad layer %s" (Json.to_string j))
  in
  let* layers =
    match Json.member "layers" json with
    | Some (Json.List layers) ->
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* layer = layer_of_json j in
            Ok (layer :: acc))
          (Ok []) layers
        |> Result.map List.rev
    | Some j ->
        Error (Printf.sprintf "layers: expected a list, got %s"
                 (Json.to_string j))
    | None -> Error "missing field layers"
  in
  (* depth/size are redundant but, when present, must agree — a cheap
     integrity check on hand-written or relayed documents. *)
  let* () =
    match Json.member "depth" json with
    | None -> Ok ()
    | Some (Json.Int d) when d = depth layers -> Ok ()
    | Some j ->
        Error (Printf.sprintf "depth %s disagrees with %d layers"
                 (Json.to_string j) (depth layers))
  in
  let* () =
    match Json.member "size" json with
    | None -> Ok ()
    | Some (Json.Int s) when s = size layers -> Ok ()
    | Some j ->
        Error (Printf.sprintf "size %s disagrees with %d swaps"
                 (Json.to_string j) (size layers))
  in
  Ok layers

let of_json_exn json =
  match of_json json with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schedule.of_json: " ^ msg)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i layer ->
      Format.fprintf fmt "layer %d:" i;
      Array.iter (fun (u, v) -> Format.fprintf fmt " (%d %d)" u v) layer;
      Format.fprintf fmt "@,")
    t;
  Format.fprintf fmt "@]"
