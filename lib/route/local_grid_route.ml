module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Grid_perm = Qr_perm.Grid_perm
module Hopcroft_karp = Qr_bipartite.Hopcroft_karp
module Decompose = Qr_bipartite.Decompose
module Bottleneck = Qr_bipartite.Bottleneck
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics
module Cancel = Qr_util.Cancel

type discovery = Doubling | Fixed_band of int | Whole

type assignment = Mcbbm | Arbitrary

let c_band_rounds = Metrics.counter "band_search_rounds"
let c_band_windows = Metrics.counter "band_search_iterations"
let c_matchings = Metrics.counter "matchings_extracted"
let h_band_width = Metrics.histogram "band_width"

let discovery_name = function
  | Doubling -> "doubling"
  | Fixed_band h -> Printf.sprintf "fixed_band:%d" h
  | Whole -> "whole"

let delta cg matching r =
  Array.fold_left
    (fun acc edge ->
      acc
      + abs (Column_graph.src_row cg edge - r)
      + abs (Column_graph.dst_row cg edge - r))
    0 matching

(* Extract perfect matchings from the live edges with source row in
   [lo..hi] until none remains; kill the edges of each matching found. *)
let drain_band hk cg ~live ~lo ~hi found =
  let n = Column_graph.cols cg in
  let cancel = Cancel.ambient () in
  let continue_ = ref true in
  while !continue_ do
    Cancel.poll cancel;
    let band = Column_graph.edges_in_band cg ~live ~lo ~hi in
    if List.length band < n then continue_ := false
    else begin
      let sub = Array.of_list band in
      let sub_edges =
        Array.map
          (fun e -> (Column_graph.src_col cg e, Column_graph.dst_col cg e))
          sub
      in
      let result = Hopcroft_karp.solve_in hk ~nl:n ~nr:n ~edges:sub_edges in
      if result.size < n then continue_ := false
      else begin
        let matching = Array.map (fun k -> sub.(k)) result.left_match in
        Array.iter (fun e -> live.(e) <- false) matching;
        Metrics.incr c_matchings;
        Metrics.observe h_band_width (float_of_int (hi - lo + 1));
        found := matching :: !found
      end
    end
  done

let discover_doubling ?hk ?(initial_width = 0) cg =
  let m = Column_graph.rows cg in
  let cancel = Cancel.ambient () in
  let live = Array.make (Column_graph.num_edges cg) true in
  let found = ref [] in
  let w = ref initial_width in
  while List.length !found < m do
    Metrics.incr c_band_rounds;
    let r0 = ref 0 in
    while !r0 < m && List.length !found < m do
      Metrics.incr c_band_windows;
      Cancel.poll cancel;
      let hi = min (!r0 + !w) (m - 1) in
      drain_band hk cg ~live ~lo:!r0 ~hi found;
      r0 := !r0 + !w + 1
    done;
    w := if !w = 0 then 1 else 2 * !w
  done;
  (* Narrow-band matchings first: they carry the locality. *)
  List.rev !found

let discover_whole hk cg =
  let n = Column_graph.cols cg in
  Decompose.by_extraction_in hk ~nl:n ~nr:n ~edges:(Column_graph.hk_edges cg)

let discover_matchings ?hk discovery cg =
  match discovery with
  | Doubling -> discover_doubling ?hk cg
  | Fixed_band h ->
      if h <= 0 then invalid_arg "Local_grid_route: band height must be positive";
      discover_doubling ?hk ~initial_width:(h - 1) cg
  | Whole -> discover_whole hk cg

let assign_rows assignment cg matchings =
  let m = Column_graph.rows cg in
  match assignment with
  | Arbitrary -> Array.init m (fun k -> k)
  | Mcbbm ->
      let weights =
        Array.of_list
          (List.map
             (fun matching -> Array.init m (fun r -> delta cg matching r))
             matchings)
      in
      let solution = Bottleneck.solve_complete ~weights in
      let assigned = solution.left_match in
      (* A complete bipartite graph always has a perfect matching. *)
      Array.iter (fun r -> assert (r >= 0)) assigned;
      assigned

let sigmas ?ws ?(discovery = Doubling) ?(assignment = Mcbbm) grid pi =
  let cg =
    Trace.with_span "column_graph_build" (fun () ->
        Column_graph.build ?reuse:(Router_workspace.reusable_cg ws) grid pi)
  in
  Option.iter (fun w -> Router_workspace.remember_cg w cg) ws;
  let hk = Router_workspace.hk ws in
  let matchings =
    Trace.with_span "band_search"
      ~attrs:[ ("discovery", Trace.String (discovery_name discovery)) ]
      (fun () -> discover_matchings ?hk discovery cg)
  in
  let assigned_rows =
    Trace.with_span "mcbbm_assign" (fun () -> assign_rows assignment cg matchings)
  in
  Grid_route.sigmas_of_assignment cg ~matchings ~assigned_rows

let route ?ws ?discovery ?assignment grid pi =
  Grid_route.route_with_sigmas grid pi (sigmas ?ws ?discovery ?assignment grid pi)

let route_best_orientation ?ws ?discovery ?assignment grid pi =
  let direct =
    Trace.with_span "orientation_direct" (fun () ->
        route ?ws ?discovery ?assignment grid pi)
  in
  let transposed =
    Trace.with_span "orientation_transposed" (fun () ->
        (* The transposed instance has the same vertex count, so it reuses
           the direct orientation's buffers. *)
        let grid_t = Grid.transpose grid in
        let pi_t = Grid_perm.transpose grid pi in
        route ?ws ?discovery ?assignment grid_t pi_t)
  in
  let lifted =
    Schedule.map_vertices (Grid_perm.untranspose_vertex grid) transposed
  in
  if Schedule.depth lifted < Schedule.depth direct then lifted else direct
