(** Per-engine circuit breakers for the verified-routing ladder.

    A breaker watches a rolling window of an engine's outcomes
    (plan/execute raising, or the schedule failing verification).  When
    failures in the window reach the threshold it {e trips open}:
    requests skip the engine entirely and go straight to the degradation
    chain, so a persistently broken or pathologically slow engine stops
    burning a full failure (and its latency) per request.  After a
    cooldown the breaker goes {e half-open} and admits a single probe
    request; enough probe successes close it again, one probe failure
    re-opens it.

    State machine:
    {v
      Closed --(threshold failures in window)--> Open
      Open --(cooldown elapsed)--> Half_open (one probe in flight)
      Half_open --(probes consecutive probe successes)--> Closed
      Half_open --(probe failure)--> Open (cooldown restarts)
    v}

    Observability: each breaker owns a [router_breaker_state_<engine>]
    gauge (0 closed / 1 open / 2 half-open); trips, rejections and
    recoveries move the [router_breaker_trips] /
    [router_breaker_rejections] / [router_breaker_recoveries] counters
    plus always-on plain tallies ({!trips} &c.) for health reports when
    metrics collection is off.

    {b Domain safety} (DESIGN.md §13): every operation locks the
    breaker's own mutex; the critical sections are a few loads and
    stores, never user code.  Safe from any domain. *)

type t

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed" | "open" | "half_open"]. *)

type config = {
  window : int;  (** Rolling outcome window size. *)
  threshold : int;  (** Failures within the window that trip open. *)
  cooldown_ns : int64;  (** Open → half-open after this long. *)
  probes : int;  (** Probe successes required to close again. *)
}

val default_config : config
(** window 16, threshold 5, cooldown 2 s, probes 2. *)

val create : ?config:config -> string -> t
(** A fresh closed breaker named after its engine (the name is
    sanitized into the state-gauge metric name).
    @raise Invalid_argument on a non-positive window/threshold/probes,
    a threshold exceeding the window, or a negative cooldown. *)

val admit : t -> [ `Admit | `Probe | `Reject ]
(** Ask to send one request through the engine.  [`Admit]: closed,
    report the outcome with {!record}.  [`Probe]: half-open and this
    caller holds the single probe slot — report with {!record_probe}.
    [`Reject]: open (or a probe is already in flight) — skip the engine
    and degrade; report nothing. *)

val record : t -> ok:bool -> unit
(** Outcome of an [`Admit]ted request.  Ignored if the breaker tripped
    while the request was in flight. *)

val record_probe : t -> ok:bool -> unit
(** Outcome of a [`Probe] request: success counts toward closing,
    failure re-opens immediately. *)

val abandon_probe : t -> unit
(** Release the probe slot without recording an outcome — the probe
    request was cancelled, which says nothing about engine health.  The
    breaker stays half-open and the next admitted request probes. *)

val state : t -> state

val name : t -> string

val trips : t -> int
(** Times this breaker has tripped open (metrics-independent tally). *)

val rejections : t -> int
(** Requests this breaker has bounced to the degradation chain. *)

val recoveries : t -> int
(** Times this breaker has closed again after probing. *)

val reset : t -> unit
(** Back to closed with an empty window (tests). *)

(** {2 Global per-engine table}

    The serving layer resolves breakers by engine name so every session
    (and every worker domain) shares one breaker per engine. *)

val get_or_create : ?config:config -> string -> t
(** The process-wide breaker for an engine, created on first use with
    [config] (later calls ignore [config]; the first registration
    wins). *)

val clear_all : unit -> unit
(** Reset and drop every table entry (tests). *)
