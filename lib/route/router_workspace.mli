(** Reusable planning scratch shared across routing calls.

    A workspace bundles the buffers the planning phase would otherwise
    allocate per call — the column multigraph's edge arrays and the
    Hopcroft–Karp scratch — so a batched entry point
    ({!Router_intf.route_many}) or a transpiler issuing one routing call
    per slice can amortize them.  Workspaces are purely an allocation
    optimization: results are bit-identical with or without one.

    {b Domain safety} (DESIGN.md §13): a workspace is strictly owned by
    the domain that called {!create} — one workspace per worker, never
    shared.  The accessors enforce this: used from any other domain,
    {!reusable_cg}/{!hk} return [None] and {!remember_cg} is a no-op, so
    a mis-shared workspace silently degrades to per-call allocation
    instead of racing. *)

type t

val create : unit -> t

(** {2 Plumbing for engine implementations} *)

val remember_cg : t -> Column_graph.t -> unit
(** Store the column graph of the call in flight so the next call can
    cannibalize its arrays ({!Column_graph.build}'s [reuse]). *)

val reusable_cg : t option -> Column_graph.t option
(** The column graph available for reuse, if any. *)

val hk : t option -> Qr_bipartite.Hopcroft_karp.workspace option
(** The Hopcroft–Karp scratch, if a workspace is present. *)

(** {2 Cooperative cancellation}

    The serving layer attaches the in-flight request's
    {!Qr_util.Cancel.t} to the workspace; {!Router_intf.route} installs
    it as the ambient token for the duration of the call so the planning
    hot loops observe deadlines and supervisor kills.  Unlike the
    scratch-buffer accessors, these deliberately skip the ownership
    check: a batch item fanned out to another pool domain shares the
    originating request's workspace reference, and the token itself is
    domain-safe (the kill flag is atomic, the poll stride a benign
    race).  Degrading off-domain would drop cancellation for exactly
    the requests the pool parallelizes. *)

val set_cancel : t -> Qr_util.Cancel.t -> unit
(** Attach the current request's token ({!Qr_util.Cancel.none} to
    detach when the request settles). *)

val cancel : t option -> Qr_util.Cancel.t
(** The attached token, or {!Qr_util.Cancel.none} without a workspace. *)
