(** Reusable planning scratch shared across routing calls.

    A workspace bundles the buffers the planning phase would otherwise
    allocate per call — the column multigraph's edge arrays and the
    Hopcroft–Karp scratch — so a batched entry point
    ({!Router_intf.route_many}) or a transpiler issuing one routing call
    per slice can amortize them.  Workspaces are purely an allocation
    optimization: results are bit-identical with or without one.

    {b Domain safety} (DESIGN.md §13): a workspace is strictly owned by
    the domain that called {!create} — one workspace per worker, never
    shared.  The accessors enforce this: used from any other domain,
    {!reusable_cg}/{!hk} return [None] and {!remember_cg} is a no-op, so
    a mis-shared workspace silently degrades to per-call allocation
    instead of racing. *)

type t

val create : unit -> t

(** {2 Plumbing for engine implementations} *)

val remember_cg : t -> Column_graph.t -> unit
(** Store the column graph of the call in flight so the next call can
    cannibalize its arrays ({!Column_graph.build}'s [reuse]). *)

val reusable_cg : t option -> Column_graph.t option
(** The column graph available for reuse, if any. *)

val hk : t option -> Qr_bipartite.Hopcroft_karp.workspace option
(** The Hopcroft–Karp scratch, if a workspace is present. *)
