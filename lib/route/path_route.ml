module Perm = Qr_perm.Perm
module Metrics = Qr_obs.Metrics

let c_rounds = Metrics.counter "odd_even_rounds"

let route_from_parity start_parity dests =
  if not (Perm.is_permutation dests) then
    invalid_arg "Path_route.route: dests is not a permutation";
  let k = Array.length dests in
  let tokens = Array.copy dests in
  let layers = ref [] in
  let parity = ref start_parity in
  let rounds = ref 0 in
  let sorted () =
    let rec check i = i >= k || (tokens.(i) = i && check (i + 1)) in
    check 0
  in
  (* Odd-even transposition needs at most k rounds from either starting
     parity; k+1 leaves room for a wasted first round. *)
  while (not (sorted ())) && !rounds <= k + 1 do
    Metrics.incr c_rounds;
    let swaps = ref [] in
    let p = ref !parity in
    while !p + 1 < k do
      if tokens.(!p) > tokens.(!p + 1) then begin
        let tmp = tokens.(!p) in
        tokens.(!p) <- tokens.(!p + 1);
        tokens.(!p + 1) <- tmp;
        swaps := (!p, !p + 1) :: !swaps
      end;
      p := !p + 2
    done;
    if !swaps <> [] then layers := List.rev !swaps :: !layers;
    parity := 1 - !parity;
    incr rounds
  done;
  assert (sorted ());
  List.rev !layers

let route dests = route_from_parity 0 dests

let route_min_parity dests =
  let even = route_from_parity 0 dests in
  let odd = route_from_parity 1 dests in
  if List.length odd < List.length even then odd else even

let depth_upper_bound k = k
