module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Json = Qr_obs.Json
module Grid = Qr_graph.Grid
module Fault = Qr_fault.Fault

let table : (string, Router_intf.t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

(* The [engine.plan]/[engine.execute] fault points live inside the leaf
   engines, attached here at registration time — not in the callers — so
   resilience wrappers like {!verified} observe their children's injected
   faults instead of being re-injected themselves.  Alongside the
   generic points each engine gets name-qualified ones —
   [engine.plan.<name>] and [engine.slow]/[engine.slow.<name>] — so a
   chaos plan can break or slow exactly one engine (say the primary)
   while its fallback chain stays healthy; that is what lets a test trip
   one circuit breaker deterministically. *)
let with_fault_points (engine : Router_intf.t) =
  let plan_point = "engine.plan." ^ engine.Router_intf.name in
  let slow_point = "engine.slow." ^ engine.Router_intf.name in
  {
    engine with
    Router_intf.plan =
      (fun ws config input ->
        Fault.point "engine.slow" ~f:(fun () ->
            Fault.point slow_point ~f:(fun () ->
                Fault.point "engine.plan" ~f:(fun () ->
                    Fault.point plan_point ~f:(fun () ->
                        engine.Router_intf.plan ws config input)))));
    execute =
      (fun plan ->
        Fault.point "engine.execute" ~f:(fun () ->
            engine.Router_intf.execute plan));
  }

let register (engine : Router_intf.t) =
  let name = engine.Router_intf.name in
  if name = "" then invalid_arg "Router_registry.register: empty name";
  if Hashtbl.mem table name then
    invalid_arg
      (Printf.sprintf "Router_registry.register: duplicate engine %S" name);
  Hashtbl.replace table name (with_fault_points engine);
  order := name :: !order

let find name = Hashtbl.find_opt table name

let names () = List.rev !order

let all () = List.filter_map find (names ())

let get name =
  match find name with
  | Some engine -> engine
  | None ->
      invalid_arg
        (Printf.sprintf "Router_registry.get: unknown engine %S (registered: %s)"
           name
           (String.concat ", " (names ())))

(* {2 Explicit generic-graph fallback} *)

let c_fallbacks =
  Metrics.counter "router_fallbacks"
    ~help:"Grid-only engines redirected to the generic-graph fallback."

let note_fallback ~from ~to_ =
  Metrics.incr c_fallbacks;
  Log.warn_once
    ~key:("fallback:" ^ from)
    "engine is grid-only; using fallback for generic graphs"
    [ ("engine", Json.String from); ("fallback", Json.String to_) ]

let generic_fallback = "ats"

let route_generic ?ws ?config engine graph dist pi =
  let engine =
    if engine.Router_intf.capabilities.grid_only then begin
      note_fallback ~from:engine.Router_intf.name ~to_:generic_fallback;
      get generic_fallback
    end
    else engine
  in
  Router_intf.route ?ws ?config engine
    (Router_intf.Graph_input (graph, dist, pi))

(* {2 Verified routing with graceful degradation} *)

let c_verify_failures = Metrics.counter "router_verify_failures"
let c_degraded = Metrics.counter "router_degraded"

(* Plain tallies next to the metrics counters: the counters only count
   while Metrics is enabled, but health reports must see degradation
   regardless.  Atomic so worker domains can bump them race-free
   (DESIGN.md §13). *)
let verify_failures_total = Atomic.make 0
let degradations_total = Atomic.make 0
let verify_failures () = Atomic.get verify_failures_total
let degradations () = Atomic.get degradations_total

exception Verification_failed of { engine : string; reason : string }

let () =
  Printexc.register_printer (function
    | Verification_failed { engine; reason } ->
        Some
          (Printf.sprintf "Router_registry.Verification_failed(engine %S: %s)"
             engine reason)
    | _ -> None)

let validate input sched =
  let n = Router_intf.input_size input in
  let pi = Router_intf.input_perm input in
  let graph =
    match input with
    | Router_intf.Grid_input (grid, _) -> Grid.graph grid
    | Router_intf.Graph_input (g, _, _) -> g
  in
  if not (Schedule.is_valid graph sched) then
    Error "a layer is not a matching of the coupling graph"
  else if not (Schedule.realizes ~n sched pi) then
    Error "the schedule does not realize the requested permutation"
  else Ok ()

let default_verify_chain = [ generic_fallback; "naive" ]

let note_verify_failure ~engine ~reason =
  Atomic.incr verify_failures_total;
  Metrics.incr c_verify_failures;
  Log.warn_once ~key:("verify:" ^ engine)
    "engine produced no verified schedule; degrading through the fallback \
     chain"
    [ ("engine", Json.String engine); ("reason", Json.String reason) ]

(* Wrap an engine so every schedule it emits is checked against the
   routing invariant (valid matchings realizing pi) before it can
   escape.  An invalid schedule or a raising engine degrades through
   [chain] — each candidate verified the same way — and only when the
   whole chain is exhausted does the wrapper raise.  With [breaker],
   every primary outcome feeds the engine's circuit breaker, and an
   open breaker skips the primary entirely (straight to the chain) —
   the misbehaving engine stops charging a full failure per request. *)
let verified ?(chain = default_verify_chain) ?breaker engine =
  let attempt ws config input candidate =
    match Router_intf.run_plan ?ws candidate config input with
    | sched -> (
        match validate input sched with
        | Ok () -> Ok sched
        | Error _ as e -> e)
    (* Cancellation is the request's verdict, not the engine's: it must
       not count as an engine failure, feed the breaker, or start a
       degradation walk that would only raise [Cancelled] again. *)
    | exception (Qr_util.Cancel.Cancelled _ as exn) -> raise exn
    | exception exn -> Error (Printexc.to_string exn)
  in
  let degrade ws config input reason =
    let graph_input =
      match input with
      | Router_intf.Graph_input _ -> true
      | Router_intf.Grid_input _ -> false
    in
    let rec go = function
      | [] ->
          raise
            (Verification_failed { engine = engine.Router_intf.name; reason })
      | name :: rest -> (
          let candidate =
            if name = engine.Router_intf.name then None
            else
              match find name with
              | Some e when e.Router_intf.capabilities.grid_only && graph_input
                ->
                  None
              | c -> c
          in
          match candidate with
          | None -> go rest
          | Some fallback -> (
              match attempt ws config input fallback with
              | Ok sched ->
                  Atomic.incr degradations_total;
                  Metrics.incr c_degraded;
                  Trace.add_attr "degraded_to"
                    (Trace.String fallback.Router_intf.name);
                  Router_intf.Ready sched
              | Error reason ->
                  note_verify_failure ~engine:fallback.Router_intf.name ~reason;
                  go rest))
    in
    go chain
  in
  let settle ticket ~ok =
    match (breaker, ticket) with
    | None, _ -> ()
    | Some b, `Admit -> Breaker.record b ~ok
    | Some b, `Probe -> Breaker.record_probe b ~ok
  in
  let plan ws config input =
    let ticket =
      match breaker with None -> `Admit | Some b -> Breaker.admit b
    in
    match ticket with
    | `Reject ->
        (* Breaker open: don't even invoke the primary.  Not a verify
           failure — the rejection tally lives on the breaker. *)
        Trace.add_attr "breaker_rejected" (Trace.Bool true);
        degrade ws config input "circuit breaker open"
    | (`Admit | `Probe) as ticket -> (
        match attempt ws config input engine with
        | Ok sched ->
            settle ticket ~ok:true;
            Router_intf.Ready sched
        | Error reason ->
            settle ticket ~ok:false;
            note_verify_failure ~engine:engine.Router_intf.name ~reason;
            degrade ws config input reason
        | exception (Qr_util.Cancel.Cancelled _ as exn) ->
            (* Hand the probe slot back unjudged so the breaker doesn't
               stay half-open waiting on a probe that will never report. *)
            (match (breaker, ticket) with
            | Some b, `Probe -> Breaker.abandon_probe b
            | _ -> ());
            raise exn)
  in
  { engine with Router_intf.plan; execute = Router_intf.execute_plan }

(* {2 The grid engines} *)

let grid_caps ~transpose =
  {
    Router_intf.grid_only = true;
    supports_transpose = transpose;
    supports_partial = true;
  }

let local =
  {
    Router_intf.name = "local";
    capabilities = grid_caps ~transpose:true;
    plan =
      (fun ws config input ->
        let grid, pi = Router_intf.require_grid ~engine:"local" input in
        let discovery = config.Router_config.discovery in
        let assignment = config.Router_config.assignment in
        if config.Router_config.transpose then
          Router_intf.Ready
            (Local_grid_route.route_best_orientation ?ws ~discovery
               ~assignment grid pi)
        else
          Router_intf.Sigmas
            {
              grid;
              pi;
              sigmas = Local_grid_route.sigmas ?ws ~discovery ~assignment grid pi;
            });
    execute = Router_intf.execute_plan;
  }

let local1 =
  {
    Router_intf.name = "local1";
    capabilities = grid_caps ~transpose:false;
    plan =
      (fun ws config input ->
        let grid, pi = Router_intf.require_grid ~engine:"local1" input in
        let discovery = config.Router_config.discovery in
        let assignment = config.Router_config.assignment in
        Router_intf.Sigmas
          {
            grid;
            pi;
            sigmas = Local_grid_route.sigmas ?ws ~discovery ~assignment grid pi;
          });
    execute = Router_intf.execute_plan;
  }

let naive =
  {
    Router_intf.name = "naive";
    capabilities = grid_caps ~transpose:false;
    plan =
      (fun ws _config input ->
        let grid, pi = Router_intf.require_grid ~engine:"naive" input in
        Router_intf.Sigmas
          { grid; pi; sigmas = Grid_route.naive_sigmas ?ws grid pi });
    execute = Router_intf.execute_plan;
  }

let snake =
  {
    Router_intf.name = "snake";
    capabilities = grid_caps ~transpose:false;
    plan =
      (fun _ws _config input ->
        let grid, pi = Router_intf.require_grid ~engine:"snake" input in
        Router_intf.Ready (Line_route.route grid pi));
    execute = Router_intf.execute_plan;
  }

let default_contenders = [ "local"; "naive" ]

(* Race the configured contenders through the uncounted [run_plan] path and
   keep the shallowest schedule; ties go to the earlier contender, which
   with the default (local before naive) reproduces the paper's
   "no-overhead" combination exactly. *)
let best =
  {
    Router_intf.name = "best";
    capabilities =
      {
        Router_intf.grid_only = false;
        supports_transpose = true;
        supports_partial = true;
      };
    plan =
      (fun ws config input ->
        let wanted =
          match config.Router_config.best_of with
          | Some contenders -> contenders
          | None -> default_contenders
        in
        let wanted = List.filter (fun n -> n <> "best") wanted in
        let contenders = List.map get wanted in
        let usable =
          match input with
          | Router_intf.Grid_input _ -> contenders
          | Router_intf.Graph_input _ ->
              List.filter
                (fun e -> not e.Router_intf.capabilities.grid_only)
                contenders
        in
        match usable with
        | [] -> (
            match input with
            | Router_intf.Graph_input _ ->
                note_fallback ~from:"best" ~to_:generic_fallback;
                Router_intf.Ready
                  (Router_intf.run_plan ?ws (get generic_fallback) config
                     input)
            | Router_intf.Grid_input _ ->
                invalid_arg "Router_registry: best has no contenders")
        | first :: rest ->
            let run e = (e, Router_intf.run_plan ?ws e config input) in
            let winner, sched =
              List.fold_left
                (fun (we, ws_sched) e ->
                  let e, s = run e in
                  if Schedule.depth s < Schedule.depth ws_sched then (e, s)
                  else (we, ws_sched))
                (run first) rest
            in
            Trace.add_attr "winner"
              (Trace.String winner.Router_intf.name);
            Router_intf.Ready sched);
    execute = Router_intf.execute_plan;
  }

let () = List.iter register [ local; local1; naive; snake; best ]
