(** The 3-round GridRoute of Alon–Chung–Graham, parameterized by the
    column-phase permutations [σ_1..σ_n].

    Round 1 routes every column [j] in parallel, sending the qubit at row
    [i] to row [σ_j(i)]; round 2 routes every row in parallel to destination
    columns; round 3 routes every column to destination rows.  Any family of
    [σ]s derived from a perfect-matching decomposition of the column
    multigraph makes rounds 2–3 well-defined ({!sigmas_of_assignment}); the
    naive algorithm uses an arbitrary decomposition with the arbitrary
    assignment "k-th matching → row k", which is exactly the baseline the
    paper's locality-aware selection improves on. *)

type sigmas = int array array
(** [sigmas.(j).(i)] is the round-1 target row of the qubit starting at
    [(i, j)]; each [sigmas.(j)] is a permutation of rows. *)

val sigmas_of_assignment :
  Column_graph.t -> matchings:int array list -> assigned_rows:int array -> sigmas
(** Given perfect matchings of the column multigraph (each an array mapping
    a column to its matched edge id) and [assigned_rows.(k)], the grid row
    assigned to matching [k], derive the [σ]s.  @raise Invalid_argument if
    [assigned_rows] is not a permutation of the rows or the matchings do
    not partition the qubits of each column. *)

val check_sigmas : Qr_graph.Grid.t -> Qr_perm.Perm.t -> sigmas -> bool
(** The GridRoute precondition: after round 1, destination columns are
    distinct within every row. *)

val route_with_sigmas :
  Qr_graph.Grid.t -> Qr_perm.Perm.t -> sigmas -> Schedule.t
(** Run the three rounds with odd–even transposition on each line.  The
    result realizes [π] exactly (asserted internally).
    @raise Invalid_argument when {!check_sigmas} fails. *)

val round_depths :
  Qr_graph.Grid.t -> Qr_perm.Perm.t -> sigmas -> int * int * int
(** Depth of each of the three rounds separately (columns, rows, columns) —
    the breakdown that shows where a sigma family spends its budget: a
    locality-aware choice empties rounds 1 and 3 on row-local
    permutations. *)

type decompose_strategy = Extraction | Euler_split

val naive_sigmas :
  ?ws:Router_workspace.t ->
  ?strategy:decompose_strategy -> Qr_graph.Grid.t -> Qr_perm.Perm.t -> sigmas
(** Arbitrary decomposition, arbitrary row assignment (matching [k] → row
    [k]) — the baseline of [1].  Default strategy: {!Extraction}.  [ws]
    reuses planning buffers across calls (identical results). *)

val route_naive :
  ?ws:Router_workspace.t ->
  ?strategy:decompose_strategy -> Qr_graph.Grid.t -> Qr_perm.Perm.t -> Schedule.t
(** [route_with_sigmas] over {!naive_sigmas}. *)
