module Grid = Qr_graph.Grid
module Graph = Qr_graph.Graph
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics
module Cancel = Qr_util.Cancel

type input =
  | Grid_input of Grid.t * Perm.t
  | Graph_input of Graph.t * Distance.t * Perm.t

type capabilities = {
  grid_only : bool;
  supports_transpose : bool;
  supports_partial : bool;
}

type plan =
  | Sigmas of { grid : Grid.t; pi : Perm.t; sigmas : Grid_route.sigmas }
  | Ready of Schedule.t

type t = {
  name : string;
  capabilities : capabilities;
  plan : Router_workspace.t option -> Router_config.t -> input -> plan;
  execute : plan -> Schedule.t;
}

exception Unsupported_input of { engine : string; reason : string }

let unsupported ~engine ~reason = raise (Unsupported_input { engine; reason })

let () =
  Printexc.register_printer (function
    | Unsupported_input { engine; reason } ->
        Some
          (Printf.sprintf "Router_intf.Unsupported_input(engine %S: %s)"
             engine reason)
    | _ -> None)

let input_size = function
  | Grid_input (grid, _) -> Grid.size grid
  | Graph_input (graph, _, _) -> Graph.num_vertices graph

let input_perm = function
  | Grid_input (_, pi) -> pi
  | Graph_input (_, _, pi) -> pi

let require_grid ~engine = function
  | Grid_input (grid, pi) -> (grid, pi)
  | Graph_input _ ->
      unsupported ~engine
        ~reason:"grid-only engine given a generic graph input"

let execute_plan = function
  | Ready sched -> sched
  | Sigmas { grid; pi; sigmas } -> Grid_route.route_with_sigmas grid pi sigmas

(* Plan + execute + the compaction post-pass, with no span or counters —
   the internal path engines (like [best]) use to race contenders without
   inflating the public per-call metrics. *)
let run_plan ?ws engine config input =
  let plan = engine.plan ws config input in
  let sched = engine.execute plan in
  if config.Router_config.compaction then
    Schedule.compact ~n:(input_size input) sched
  else sched

(* Schedule-quality counters, recorded once per top-level routing call from
   the schedule actually returned — so [swap_layers] always equals the
   emitted [Schedule.depth] even for engines that race others internally. *)
let c_route_calls = Metrics.counter "route_calls"
let c_swap_layers = Metrics.counter "swap_layers"
let c_swaps_total = Metrics.counter "swaps_total"

let route ?ws ?(config = Router_config.default) engine input =
  Trace.with_span "route"
    ~attrs:[ ("strategy", Trace.String engine.name) ]
  @@ fun () ->
  if Trace.enabled () then
    List.iter (fun (k, v) -> Trace.add_attr k v) (Router_config.to_attrs config);
  (* Make the request's cancellation token ambient for the planning hot
     loops.  The workspace token wins when attached (the serving layer
     sets it per request); otherwise whatever token is already ambient
     on this domain stays in force. *)
  let token = Router_workspace.cancel ws in
  let sched =
    if token == Cancel.none then run_plan ?ws engine config input
    else Cancel.with_ambient token (fun () -> run_plan ?ws engine config input)
  in
  if Metrics.enabled () then begin
    Metrics.incr c_route_calls;
    Metrics.add c_swap_layers (Schedule.depth sched);
    Metrics.add c_swaps_total (Schedule.size sched)
  end;
  sched

let route_grid ?ws ?config engine grid pi =
  route ?ws ?config engine (Grid_input (grid, pi))

let route_many ?(config = Router_config.default) engine inputs =
  match inputs with
  | [] -> []
  | inputs ->
      let ws = Router_workspace.create () in
      List.map (fun input -> route ~ws ~config engine input) inputs
