(** Central engine registry.

    Engines ({!Router_intf.t}) self-register at module-initialization time
    under their stable name; the CLI, benchmarks and examples enumerate the
    registry instead of maintaining hand-written strategy lists.  The grid
    engines ([local], [local1], [naive], [snake], [best]) register here;
    the token-swapping engines ([ats], [ats-serial]) live in [qr_token] and
    are registered by the [qroute] umbrella's initialization (or an
    explicit [Qr_token.Engines.register ()]).

    {b Domain safety} (DESIGN.md §13): registration is {e single-threaded
    at init} — all [register] calls must complete (module initialization,
    before any worker domain is spawned) before the registry is read in
    parallel.  After init the registry is effectively frozen; {!find},
    {!get}, {!names}, {!all} and the routing wrappers are then safe from
    any domain.  The degradation tallies ({!verify_failures},
    {!degradations}) are atomics, bumped race-free by workers. *)

val register : Router_intf.t -> unit
(** Add an engine.  Registration order is preserved by {!names}/{!all}.
    The stored engine's plan/execute are wrapped in the [engine.plan] /
    [engine.execute] fault points ({!Qr_fault.Fault}) plus the
    name-qualified [engine.plan.<name>] and
    [engine.slow] / [engine.slow.<name>] points, so injection plans can
    target the leaf computations — or one specific engine — while
    resilience wrappers like {!verified} built on top observe their
    children's faults instead of being re-injected themselves.
    @raise Invalid_argument on a duplicate or empty name. *)

val find : string -> Router_intf.t option

val get : string -> Router_intf.t
(** @raise Invalid_argument for unknown names; the message lists the
    registered engines. *)

val names : unit -> string list
(** Registered names, in registration order. *)

val all : unit -> Router_intf.t list

val route_generic :
  ?ws:Router_workspace.t ->
  ?config:Router_config.t ->
  Router_intf.t ->
  Qr_graph.Graph.t -> Qr_graph.Distance.t -> Qr_perm.Perm.t -> Schedule.t
(** Route on an arbitrary connected coupling graph.  Grid-only engines
    fall back to the generic ["ats"] engine {e explicitly}: the
    [router_fallbacks] counter is bumped and a warning is printed to
    stderr once per engine name.  @raise Invalid_argument if the fallback
    engine is not registered (link the [qroute] umbrella or call
    [Qr_token.Engines.register ()]). *)

val note_fallback : from:string -> to_:string -> unit
(** Record a capability fallback: bump [router_fallbacks] and warn on
    stderr once per [from] name.  Exposed for engines that implement their
    own fallback paths. *)

(** {2 Verified routing}

    The serving stack's "never emit an unroutable schedule" guarantee:
    {!verified} wraps any engine so every schedule it produces is checked
    against the routing invariant before escaping, degrading through a
    fallback chain when the engine misbehaves (DESIGN.md §11). *)

exception Verification_failed of { engine : string; reason : string }
(** Raised by a {!verified} engine when the wrapped engine {e and} every
    fallback in the chain failed to produce a valid schedule. *)

val validate : Router_intf.input -> Schedule.t -> (unit, string) result
(** The invariant itself: every layer a matching of the coupling graph
    ({!Schedule.is_valid}) and the whole schedule realizing the requested
    permutation ({!Schedule.realizes}).  The error says which half
    failed. *)

val verified :
  ?chain:string list -> ?breaker:Breaker.t -> Router_intf.t -> Router_intf.t
(** [verified engine] routes with [engine], checks the result with
    {!validate}, and on an invalid schedule {e or} a raising engine
    retries down [chain] (default [["ats"; "naive"]]; the wrapped
    engine's own name and, on generic-graph inputs, grid-only chain
    members are skipped).  Each failure bumps [router_verify_failures]
    and warns once per engine name; each rescue bumps [router_degraded]
    and records a [degraded_to] span attribute.  Exhausting the chain
    raises {!Verification_failed}.  The wrapper keeps the engine's name
    and capabilities, so plan-cache keys and span attributes are
    unchanged.

    With [breaker], the primary engine's outcome feeds the circuit
    breaker on every request, and while the breaker is open the primary
    is skipped entirely — the request degrades straight down [chain]
    (a [breaker_rejected] span attribute marks it; the chain exhausting
    still raises {!Verification_failed}).  Fallback outcomes never feed
    the breaker — it judges only the engine it guards. *)

val verify_failures : unit -> int
(** Process-wide count of verification failures (primary or fallback),
    counted even when metrics collection is off — the [health] method's
    degradation report. *)

val degradations : unit -> int
(** Process-wide count of requests rescued by a fallback engine. *)

(**/**)

val default_contenders : string list
val default_verify_chain : string list
