(** Central engine registry.

    Engines ({!Router_intf.t}) self-register at module-initialization time
    under their stable name; the CLI, benchmarks and examples enumerate the
    registry instead of maintaining hand-written strategy lists.  The grid
    engines ([local], [local1], [naive], [snake], [best]) register here;
    the token-swapping engines ([ats], [ats-serial]) live in [qr_token] and
    are registered by the [qroute] umbrella's initialization (or an
    explicit [Qr_token.Engines.register ()]). *)

val register : Router_intf.t -> unit
(** Add an engine.  Registration order is preserved by {!names}/{!all}.
    @raise Invalid_argument on a duplicate or empty name. *)

val find : string -> Router_intf.t option

val get : string -> Router_intf.t
(** @raise Invalid_argument for unknown names; the message lists the
    registered engines. *)

val names : unit -> string list
(** Registered names, in registration order. *)

val all : unit -> Router_intf.t list

val route_generic :
  ?ws:Router_workspace.t ->
  ?config:Router_config.t ->
  Router_intf.t ->
  Qr_graph.Graph.t -> Qr_graph.Distance.t -> Qr_perm.Perm.t -> Schedule.t
(** Route on an arbitrary connected coupling graph.  Grid-only engines
    fall back to the generic ["ats"] engine {e explicitly}: the
    [router_fallbacks] counter is bumped and a warning is printed to
    stderr once per engine name.  @raise Invalid_argument if the fallback
    engine is not registered (link the [qroute] umbrella or call
    [Qr_token.Engines.register ()]). *)

val note_fallback : from:string -> to_:string -> unit
(** Record a capability fallback: bump [router_fallbacks] and warn on
    stderr once per [from] name.  Exposed for engines that implement their
    own fallback paths. *)

(**/**)

val default_contenders : string list
