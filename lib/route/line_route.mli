(** The 1-D embedding baseline: route the grid as one long path.

    Embed the grid boustrophedon ("snake"): row 0 left-to-right, row 1
    right-to-left, … — consecutive snake positions are always grid
    neighbours.  Any permutation is then routed with a single odd–even
    transposition pass over the whole snake.

    Depth is Θ(mn) in the worst case versus GridRoute's O(m + n); the
    baseline exists to quantify what the 2-D structure buys (an ablation in
    the benchmarks), and because for 1×n and m×1 grids it {e is} the
    natural optimal router. *)

val snake_order : Qr_graph.Grid.t -> int array
(** [snake_order g].(k) is the flat grid index of the k-th snake position;
    consecutive entries are grid-adjacent. *)

val route : Qr_graph.Grid.t -> Qr_perm.Perm.t -> Schedule.t
(** Route by odd–even transposition on the snake.  Valid on the grid and
    realizes the permutation (asserted). *)
