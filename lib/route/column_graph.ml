module Grid = Qr_graph.Grid

type t = {
  rows : int;
  cols : int;
  src_col : int array;
  dst_col : int array;
  src_row : int array;
  dst_row : int array;
}

let build ?reuse grid pi =
  let n = Grid.size grid in
  if Array.length pi <> n then invalid_arg "Column_graph.build: size mismatch";
  (* Cannibalize a previous column graph of the same vertex count: the four
     edge arrays are overwritten wholesale below, so batch callers avoid
     re-allocating 4n words per permutation. *)
  let src_col, dst_col, src_row, dst_row =
    match reuse with
    | Some prev when Array.length prev.src_col = n ->
        (prev.src_col, prev.dst_col, prev.src_row, prev.dst_row)
    | _ -> (Array.make n 0, Array.make n 0, Array.make n 0, Array.make n 0)
  in
  for v = 0 to n - 1 do
    let r, c = Grid.coord grid v in
    let r', c' = Grid.coord grid pi.(v) in
    src_row.(v) <- r;
    src_col.(v) <- c;
    dst_row.(v) <- r';
    dst_col.(v) <- c'
  done;
  { rows = Grid.rows grid; cols = Grid.cols grid; src_col; dst_col; src_row; dst_row }

let rows t = t.rows

let cols t = t.cols

let num_edges t = Array.length t.src_col

let src_col t e = t.src_col.(e)

let dst_col t e = t.dst_col.(e)

let src_row t e = t.src_row.(e)

let dst_row t e = t.dst_row.(e)

let all_edge_ids t = List.init (num_edges t) (fun e -> e)

let hk_edges t =
  Array.init (num_edges t) (fun e -> (t.src_col.(e), t.dst_col.(e)))

let edges_in_band t ~live ~lo ~hi =
  let acc = ref [] in
  for e = num_edges t - 1 downto 0 do
    if live.(e) && t.src_row.(e) >= lo && t.src_row.(e) <= hi then
      acc := e :: !acc
  done;
  !acc
