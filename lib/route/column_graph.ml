module Grid = Qr_graph.Grid

type t = {
  rows : int;
  cols : int;
  src_col : int array;
  dst_col : int array;
  src_row : int array;
  dst_row : int array;
}

let build grid pi =
  let n = Grid.size grid in
  if Array.length pi <> n then invalid_arg "Column_graph.build: size mismatch";
  let src_col = Array.make n 0 in
  let dst_col = Array.make n 0 in
  let src_row = Array.make n 0 in
  let dst_row = Array.make n 0 in
  for v = 0 to n - 1 do
    let r, c = Grid.coord grid v in
    let r', c' = Grid.coord grid pi.(v) in
    src_row.(v) <- r;
    src_col.(v) <- c;
    dst_row.(v) <- r';
    dst_col.(v) <- c'
  done;
  { rows = Grid.rows grid; cols = Grid.cols grid; src_col; dst_col; src_row; dst_row }

let rows t = t.rows

let cols t = t.cols

let num_edges t = Array.length t.src_col

let src_col t e = t.src_col.(e)

let dst_col t e = t.dst_col.(e)

let src_row t e = t.src_row.(e)

let dst_row t e = t.dst_row.(e)

let all_edge_ids t = List.init (num_edges t) (fun e -> e)

let hk_edges t =
  Array.init (num_edges t) (fun e -> (t.src_col.(e), t.dst_col.(e)))

let edges_in_band t ~live ~lo ~hi =
  let acc = ref [] in
  for e = num_edges t - 1 downto 0 do
    if live.(e) && t.src_row.(e) >= lo && t.src_row.(e) <= hi then
      acc := e :: !acc
  done;
  !acc
