module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm

let buffer_build f =
  let buffer = Buffer.create 256 in
  f buffer;
  Buffer.contents buffer

(* Render the lattice with per-edge glyphs: [horizontal r c] is the glyph
   between (r,c) and (r,c+1), [vertical r c] between (r,c) and (r+1,c). *)
let lattice grid ~vertex ~horizontal ~vertical =
  buffer_build (fun buffer ->
      for r = 0 to Grid.rows grid - 1 do
        for c = 0 to Grid.cols grid - 1 do
          Buffer.add_string buffer (vertex r c);
          if c + 1 < Grid.cols grid then
            Buffer.add_string buffer (horizontal r c)
        done;
        Buffer.add_char buffer '\n';
        if r + 1 < Grid.rows grid then begin
          for c = 0 to Grid.cols grid - 1 do
            Buffer.add_string buffer (vertical r c);
            if c + 1 < Grid.cols grid then Buffer.add_string buffer "   "
          done;
          Buffer.add_char buffer '\n'
        end
      done)

let grid_ascii grid =
  lattice grid
    ~vertex:(fun _ _ -> "o")
    ~horizontal:(fun _ _ -> "---")
    ~vertical:(fun _ _ -> "|")

let permutation_ascii grid pi =
  let width =
    max 2 (String.length (string_of_int (Grid.size grid - 1)) + 1)
  in
  buffer_build (fun buffer ->
      for r = 0 to Grid.rows grid - 1 do
        for c = 0 to Grid.cols grid - 1 do
          let v = Grid.index grid r c in
          let marker = if pi.(v) = v then " " else "*" in
          Buffer.add_string buffer
            (Printf.sprintf "%*d%s" width pi.(v) marker)
        done;
        Buffer.add_char buffer '\n'
      done)

let swaps_of_layer layer =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun (u, v) -> Hashtbl.replace table (min u v, max u v) ())
    layer;
  table

let layer_ascii grid layer =
  let swapped = swaps_of_layer layer in
  let has u v = Hashtbl.mem swapped (min u v, max u v) in
  lattice grid
    ~vertex:(fun _ _ -> "o")
    ~horizontal:(fun r c ->
      if has (Grid.index grid r c) (Grid.index grid r (c + 1)) then "==="
      else "---")
    ~vertical:(fun r c ->
      if has (Grid.index grid r c) (Grid.index grid (r + 1) c) then "#"
      else "|")

let schedule_ascii grid sched =
  buffer_build (fun buffer ->
      List.iteri
        (fun step layer ->
          Buffer.add_string buffer (Printf.sprintf "layer %d:\n" step);
          Buffer.add_string buffer (layer_ascii grid layer))
        sched)

let occupancy_ascii grid sched =
  let counts = Array.make (Grid.size grid) 0 in
  List.iter
    (fun layer ->
      Array.iter
        (fun (u, v) ->
          counts.(u) <- counts.(u) + 1;
          counts.(v) <- counts.(v) + 1)
        layer)
    sched;
  lattice grid
    ~vertex:(fun r c ->
      let k = counts.(Grid.index grid r c) in
      if k > 9 then "+" else string_of_int k)
    ~horizontal:(fun _ _ -> "   ")
    ~vertical:(fun _ _ -> " ")

let graph_dot g =
  buffer_build (fun buffer ->
      Buffer.add_string buffer "graph coupling {\n  node [shape=circle];\n";
      Graph.iter_edges g (fun u v ->
          Buffer.add_string buffer (Printf.sprintf "  %d -- %d;\n" u v));
      Buffer.add_string buffer "}\n")

let schedule_dot grid sched =
  (* First layer index using each edge; unused edges stay gray. *)
  let first_use = Hashtbl.create 64 in
  List.iteri
    (fun step layer ->
      Array.iter
        (fun (u, v) ->
          let key = (min u v, max u v) in
          if not (Hashtbl.mem first_use key) then
            Hashtbl.replace first_use key step)
        layer)
    sched;
  let palette = [| "red"; "orange"; "gold"; "green"; "blue"; "purple" |] in
  buffer_build (fun buffer ->
      Buffer.add_string buffer "graph schedule {\n  node [shape=point];\n";
      for r = 0 to Grid.rows grid - 1 do
        for c = 0 to Grid.cols grid - 1 do
          Buffer.add_string buffer
            (Printf.sprintf "  %d [pos=\"%d,%d!\"];\n" (Grid.index grid r c) c
               (Grid.rows grid - 1 - r))
        done
      done;
      Graph.iter_edges (Grid.graph grid) (fun u v ->
          let key = (min u v, max u v) in
          match Hashtbl.find_opt first_use key with
          | Some step ->
              Buffer.add_string buffer
                (Printf.sprintf "  %d -- %d [color=%s, label=\"%d\"];\n" u v
                   palette.(step mod Array.length palette)
                   step)
          | None ->
              Buffer.add_string buffer
                (Printf.sprintf "  %d -- %d [color=gray80];\n" u v));
      Buffer.add_string buffer "}\n")
