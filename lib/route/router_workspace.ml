module Hopcroft_karp = Qr_bipartite.Hopcroft_karp

type t = {
  mutable cg : Column_graph.t option;
  hk : Hopcroft_karp.workspace;
}

let create () = { cg = None; hk = Hopcroft_karp.workspace () }

let remember_cg t cg = t.cg <- Some cg

let reusable_cg = function None -> None | Some t -> t.cg

let hk = function None -> None | Some t -> Some t.hk
