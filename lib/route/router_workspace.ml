module Hopcroft_karp = Qr_bipartite.Hopcroft_karp
module Cancel = Qr_util.Cancel

(* Domain-safety (DESIGN.md §13): a workspace is owned by the domain
   that created it.  The scratch buffers inside are freely mutated by
   planning calls, so handing one to a second domain would race; instead
   of trusting every caller, the accessors check ownership and degrade
   to "no workspace" off-domain — results are bit-identical either way,
   only the allocation amortization is lost. *)
type t = {
  owner : int;  (* (Domain.self () :> int) at creation *)
  mutable cg : Column_graph.t option;
  hk : Hopcroft_karp.workspace;
  mutable cancel : Cancel.t;  (* current request's token; Cancel.none idle *)
}

let owned t = (Domain.self () :> int) = t.owner

let create () =
  {
    owner = (Domain.self () :> int);
    cg = None;
    hk = Hopcroft_karp.workspace ();
    cancel = Cancel.none;
  }

let remember_cg t cg = if owned t then t.cg <- Some cg

let reusable_cg = function
  | Some t when owned t -> t.cg
  | Some _ | None -> None

let hk = function
  | Some t when owned t -> Some t.hk
  | Some _ | None -> None

(* Cancellation deliberately skips the ownership check: a route_batch
   item fanned to another domain still shares the request's workspace
   reference, and the token itself is domain-safe (the kill flag is
   atomic; the poll stride is a benign race).  Losing cancellation
   off-domain would mean losing exactly the requests the pool fans
   out. *)
let set_cancel t c = t.cancel <- c

let cancel = function Some t -> t.cancel | None -> Cancel.none
