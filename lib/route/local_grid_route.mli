(** The paper's locality-aware routing algorithm (Algorithms 1 and 2).

    Two ideas refine the naive GridRoute baseline:

    - {b Banded discovery} (Algorithm 2, lines 3–18): a doubling search over
      row windows [w = 0, 1, 2, 4, …]; within each band [[r, r+w]] perfect
      matchings of the column multigraph are extracted using only edges
      whose source row lies in the band, so matchings found early touch only
      nearby rows.
    - {b Bottleneck row assignment} (lines 19–20): each matching [M] is
      assigned to a grid row [r] by solving MCBBM on the complete bipartite
      graph weighted by [Δ(M, r) = Σ_j |i_j − r| + Σ_j |i'_j − r|],
      minimizing the worst row-detour any matching's qubits must take.

    Both choices are independently switchable so the ablation benchmarks can
    isolate their contributions. *)

type discovery =
  | Doubling  (** The paper's banded doubling search (w = 0, 1, 2, 4, …). *)
  | Fixed_band of int
      (** Start from bands of the given height instead of single rows, then
          double as usual — for ablating the window schedule.  Height must
          be positive. *)
  | Whole  (** Extract from the whole multigraph (locality-blind). *)

type assignment =
  | Mcbbm  (** Bottleneck assignment by the Δ metric. *)
  | Arbitrary  (** Matching [k] → row [k] (the naive choice). *)

val delta : Column_graph.t -> int array -> int -> int
(** [delta cg matching r] is the paper's Δ(M, r). *)

val discover_matchings :
  ?hk:Qr_bipartite.Hopcroft_karp.workspace ->
  discovery -> Column_graph.t -> int array list
(** Decompose the column multigraph into [m] perfect matchings (edge-id
    arrays indexed by column), banded or not.  The result always partitions
    the edge set ({!Qr_bipartite.Decompose.validate} holds).  [hk] reuses
    matching scratch across the band windows (identical results). *)

val assign_rows : assignment -> Column_graph.t -> int array list -> int array
(** Row assigned to each matching, in list order. *)

val sigmas :
  ?ws:Router_workspace.t ->
  ?discovery:discovery -> ?assignment:assignment ->
  Qr_graph.Grid.t -> Qr_perm.Perm.t -> Grid_route.sigmas
(** Column-phase permutations per Algorithm 2 (default: [Doubling],
    [Mcbbm]).  [ws] reuses planning buffers across calls; schedules are
    identical with or without it. *)

val route :
  ?ws:Router_workspace.t ->
  ?discovery:discovery -> ?assignment:assignment ->
  Qr_graph.Grid.t -> Qr_perm.Perm.t -> Schedule.t
(** Algorithm 2: LocalGridRoute on the grid as given. *)

val route_best_orientation :
  ?ws:Router_workspace.t ->
  ?discovery:discovery -> ?assignment:assignment ->
  Qr_graph.Grid.t -> Qr_perm.Perm.t -> Schedule.t
(** Algorithm 1 (Main Procedure): run LocalGridRoute on [(G, π)] and on the
    transpose [(G^T, π^T)], lift the transposed schedule back, and keep the
    shallower one. *)
