module Trace = Qr_obs.Trace

type t = {
  discovery : Local_grid_route.discovery;
  assignment : Local_grid_route.assignment;
  transpose : bool;
  compaction : bool;
  ats_trials : int;
  seed : int;
  best_of : string list option;
}

let default =
  {
    discovery = Local_grid_route.Doubling;
    assignment = Local_grid_route.Mcbbm;
    transpose = true;
    compaction = false;
    ats_trials = 4;
    seed = 0;
    best_of = None;
  }

let equal a b = a = b

let discovery_to_string = function
  | Local_grid_route.Doubling -> "doubling"
  | Local_grid_route.Fixed_band h -> Printf.sprintf "fixed:%d" h
  | Local_grid_route.Whole -> "whole"

let assignment_to_string = function
  | Local_grid_route.Mcbbm -> "mcbbm"
  | Local_grid_route.Arbitrary -> "arbitrary"

let onoff = function true -> "on" | false -> "off"

let to_string c =
  let base =
    Printf.sprintf
      "discovery=%s,assignment=%s,transpose=%s,compaction=%s,trials=%d,seed=%d"
      (discovery_to_string c.discovery)
      (assignment_to_string c.assignment)
      (onoff c.transpose) (onoff c.compaction) c.ats_trials c.seed
  in
  match c.best_of with
  | None -> base
  | Some names -> base ^ ",best=" ^ String.concat "+" names

let pp fmt c = Format.pp_print_string fmt (to_string c)

let ( let* ) = Result.bind

let discovery_of_string s =
  match String.split_on_char ':' s with
  | [ "doubling" ] -> Ok Local_grid_route.Doubling
  | [ "whole" ] -> Ok Local_grid_route.Whole
  | [ ("fixed" | "fixed_band"); h ] -> (
      match int_of_string_opt h with
      | Some h when h >= 1 -> Ok (Local_grid_route.Fixed_band h)
      | Some _ -> Error "discovery: band height must be >= 1"
      | None -> Error (Printf.sprintf "discovery: bad band height %S" h))
  | _ ->
      Error
        (Printf.sprintf
           "discovery: %S (expected doubling, whole, or fixed:<height>)" s)

let assignment_of_string = function
  | "mcbbm" -> Ok Local_grid_route.Mcbbm
  | "arbitrary" -> Ok Local_grid_route.Arbitrary
  | s -> Error (Printf.sprintf "assignment: %S (expected mcbbm or arbitrary)" s)

let bool_of_onoff key = function
  | "on" | "true" -> Ok true
  | "off" | "false" -> Ok false
  | s -> Error (Printf.sprintf "%s: %S (expected on or off)" key s)

let positive_int key s =
  match int_of_string_opt s with
  | Some v when v >= 1 -> Ok v
  | Some _ -> Error (Printf.sprintf "%s: must be >= 1" key)
  | None -> Error (Printf.sprintf "%s: bad integer %S" key s)

let best_of_string s =
  match String.split_on_char '+' s with
  | names when List.for_all (fun n -> n <> "") names && names <> [] ->
      Ok (Some names)
  | _ -> Error (Printf.sprintf "best: %S (expected name+name+...)" s)

let apply_pair c key value =
  match key with
  | "discovery" ->
      let* d = discovery_of_string value in
      Ok { c with discovery = d }
  | "assignment" ->
      let* a = assignment_of_string value in
      Ok { c with assignment = a }
  | "transpose" ->
      let* b = bool_of_onoff "transpose" value in
      Ok { c with transpose = b }
  | "compaction" ->
      let* b = bool_of_onoff "compaction" value in
      Ok { c with compaction = b }
  | "trials" ->
      let* v = positive_int "trials" value in
      Ok { c with ats_trials = v }
  | "seed" -> (
      match int_of_string_opt value with
      | Some v -> Ok { c with seed = v }
      | None -> Error (Printf.sprintf "seed: bad integer %S" value))
  | "best" ->
      let* names = best_of_string value in
      Ok { c with best_of = names }
  | _ -> Error (Printf.sprintf "unknown key %S" key)

let of_string s =
  let fields =
    String.split_on_char ',' (String.trim s)
    |> List.filter (fun f -> String.trim f <> "")
  in
  List.fold_left
    (fun acc field ->
      let* c = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" field)
      | Some i ->
          let key = String.trim (String.sub field 0 i) in
          let value =
            String.trim
              (String.sub field (i + 1) (String.length field - i - 1))
          in
          apply_pair c key value)
    (Ok default) fields

let of_string_exn s =
  match of_string s with
  | Ok c -> c
  | Error msg -> invalid_arg ("Router_config.of_string: " ^ msg)

let to_attrs c =
  [
    ("discovery", Trace.String (discovery_to_string c.discovery));
    ("assignment", Trace.String (assignment_to_string c.assignment));
    ("transpose", Trace.Bool c.transpose);
    ("compaction", Trace.Bool c.compaction);
    ("ats_trials", Trace.Int c.ats_trials);
    ("seed", Trace.Int c.seed);
  ]
  @
  match c.best_of with
  | None -> []
  | Some names -> [ ("best_of", Trace.String (String.concat "+" names)) ]
