module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm

let snake_order grid =
  let rows = Grid.rows grid and cols = Grid.cols grid in
  Array.init (rows * cols) (fun k ->
      let r = k / cols in
      let offset = k mod cols in
      let c = if r mod 2 = 0 then offset else cols - 1 - offset in
      Grid.index grid r c)

let route grid pi =
  let n = Grid.size grid in
  if Array.length pi <> n then invalid_arg "Line_route.route: size mismatch";
  let order = snake_order grid in
  let position_in_snake = Perm.inverse (Perm.check order) in
  (* Token at snake slot k must reach the snake slot of its grid
     destination. *)
  let dests = Array.init n (fun k -> position_in_snake.(pi.(order.(k)))) in
  let layers = Path_route.route_min_parity (Perm.check dests) in
  let sched =
    List.map
      (fun layer ->
        Array.of_list
          (List.map (fun (a, b) -> (order.(a), order.(b))) layer))
      layers
  in
  assert (Schedule.realizes ~n sched pi);
  sched
