(** Routing schedules in the routing-via-matchings model.

    A schedule is a sequence of {e layers}; each layer is a set of
    vertex-disjoint SWAPs executed in parallel, i.e. a matching of the
    coupling graph.  The schedule's {e depth} (layer count) is the quantity
    the paper minimizes — each layer adds one SWAP-round to the physical
    circuit — and its {e size} is the total SWAP count, the serial
    token-swapping objective. *)

type layer = (int * int) array
(** Disjoint swap pairs; order within a layer is irrelevant. *)

type t = layer list
(** Layers in execution order. *)

val empty : t

val depth : t -> int
(** Number of layers. *)

val size : t -> int
(** Total number of swaps. *)

val concat : t -> t -> t
(** Sequential composition: run the first schedule, then the second. *)

val layer_is_matching : n:int -> layer -> bool
(** Endpoint-disjointness and range check (graph-independent). *)

val is_valid : Qr_graph.Graph.t -> t -> bool
(** Every layer is a matching of the graph: endpoints disjoint, every pair
    an edge. *)

val apply : n:int -> t -> Qr_perm.Perm.t
(** The permutation the schedule realizes on [n] vertices: token starting at
    [v] ends at [(apply ~n t).(v)].  @raise Invalid_argument if a layer
    reuses a vertex or indexes out of range. *)

val realizes : n:int -> t -> Qr_perm.Perm.t -> bool
(** [realizes ~n t p] iff [apply ~n t = p]. *)

val inverse : t -> t
(** Reversed layer order; realizes the inverse permutation (swaps are
    involutions). *)

val of_swaps : (int * int) list -> t
(** One swap per layer — the serial embedding used to lift token-swapping
    outputs. *)

val swaps : t -> (int * int) list
(** All swaps in execution order (layer by layer). *)

val compact : n:int -> t -> t
(** Greedy ASAP re-layering: each swap moves to the earliest layer after the
    last layer that touched either endpoint.  Preserves the realized
    permutation (only commuting swaps are reordered), never increases depth,
    and keeps every swap (size unchanged).  Used both as a post-pass
    (ablation) and to parallelize serial swap lists. *)

val map_vertices : (int -> int) -> t -> t
(** Relabel every endpoint, e.g. to lift a schedule computed on the
    transposed grid (or on a factor of a product) back to the host graph. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Compact text serialization: one layer per line, swaps as ["u-v"]
    separated by spaces; the empty schedule is the empty string.  Stable
    format, round-trips with {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse {!to_string}'s format.  The error names the offending line. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_json : t -> Qr_obs.Json.t
(** [{"depth": d, "size": s, "layers": [[[u,v], ...], ...]}] — the schedule
    payload of the routing service's wire protocol, also handy for bench
    artifacts.  Round-trips exactly through {!of_json}. *)

val of_json : Qr_obs.Json.t -> (t, string) result
(** Parse {!to_json}'s shape.  Only ["layers"] is required; ["depth"] and
    ["size"], when present, must agree with the layers.  Swaps must be
    two-element non-negative integer pairs with distinct endpoints (matching
    and edge validity are separate checks — {!layer_is_matching},
    {!is_valid}). *)

val of_json_exn : Qr_obs.Json.t -> t
(** @raise Invalid_argument on malformed input. *)
