module Graph = Qr_graph.Graph
module Product = Qr_graph.Product
module Bfs = Qr_graph.Bfs
module Perm = Qr_perm.Perm
module Hopcroft_karp = Qr_bipartite.Hopcroft_karp
module Decompose = Qr_bipartite.Decompose
module Bottleneck = Qr_bipartite.Bottleneck

type factor_router = Graph.t -> Perm.t -> Schedule.t

(* Edge [x] of the generalized column multigraph is the qubit starting at
   flat index [x]: endpoints are G2-vertices, labels are G1-vertices. *)
type colgraph = {
  n1 : int;
  n2 : int;
  src_l : int array; (* G1 label of the source, per edge *)
  dst_l : int array;
  src_r : int array; (* G2 endpoint (left side), per edge *)
  dst_r : int array;
}

let build_colgraph product pi =
  let n1 = Graph.num_vertices (Product.left product) in
  let n2 = Graph.num_vertices (Product.right product) in
  let total = n1 * n2 in
  if Array.length pi <> total then invalid_arg "Product_route: size mismatch";
  let src_l = Array.make total 0 and dst_l = Array.make total 0 in
  let src_r = Array.make total 0 and dst_r = Array.make total 0 in
  for x = 0 to total - 1 do
    let u, v = Product.coord product x in
    let u', v' = Product.coord product pi.(x) in
    src_l.(x) <- u;
    dst_l.(x) <- u';
    src_r.(x) <- v;
    dst_r.(x) <- v'
  done;
  { n1; n2; src_l; dst_l; src_r; dst_r }

let hk_edges cg = Array.init (Array.length cg.src_r) (fun x -> (cg.src_r.(x), cg.dst_r.(x)))

let drain_band cg ~live ~member found =
  let n2 = cg.n2 in
  let continue_ = ref true in
  while !continue_ do
    let band = ref [] in
    for x = Array.length cg.src_l - 1 downto 0 do
      if live.(x) && member cg.src_l.(x) then band := x :: !band
    done;
    if List.length !band < n2 then continue_ := false
    else begin
      let sub = Array.of_list !band in
      let sub_edges = Array.map (fun x -> (cg.src_r.(x), cg.dst_r.(x))) sub in
      let result = Hopcroft_karp.solve ~nl:n2 ~nr:n2 ~edges:sub_edges in
      if result.size < n2 then continue_ := false
      else begin
        let matching = Array.map (fun k -> sub.(k)) result.left_match in
        Array.iter (fun x -> live.(x) <- false) matching;
        found := matching :: !found
      end
    end
  done

let discover_doubling cg =
  let n1 = cg.n1 in
  let live = Array.make (Array.length cg.src_l) true in
  let found = ref [] in
  let w = ref 0 in
  while List.length !found < n1 do
    let r0 = ref 0 in
    while !r0 < n1 && List.length !found < n1 do
      let hi = min (!r0 + !w) (n1 - 1) in
      let lo = !r0 in
      drain_band cg ~live ~member:(fun u -> u >= lo && u <= hi) found;
      r0 := !r0 + !w + 1
    done;
    w := if !w = 0 then 1 else 2 * !w
  done;
  List.rev !found

let discover_whole cg =
  Decompose.by_extraction ~nl:cg.n2 ~nr:cg.n2 ~edges:(hk_edges cg)

let assign_mcbbm cg dist1 matchings =
  let n1 = cg.n1 in
  let delta matching r =
    Array.fold_left
      (fun acc x -> acc + dist1 cg.src_l.(x) r + dist1 cg.dst_l.(x) r)
      0 matching
  in
  let weights =
    Array.of_list
      (List.map
         (fun matching -> Array.init n1 (fun r -> delta matching r))
         matchings)
  in
  (Bottleneck.solve_complete ~weights).left_match

let merge_copies lines ~lift =
  let rec peel lines acc =
    let layer = ref [] in
    let rest =
      List.filter_map
        (fun (copy, layers) ->
          match layers with
          | [] -> None
          | first :: tail ->
              Array.iter
                (fun (a, b) -> layer := (lift copy a, lift copy b) :: !layer)
                first;
              if tail = [] then None else Some (copy, tail))
        lines
    in
    if !layer = [] then List.rev acc
    else peel rest (Array.of_list !layer :: acc)
  in
  peel lines []

let apply_layers token_at layers =
  List.iter
    (fun layer ->
      Array.iter
        (fun (u, v) ->
          let tmp = token_at.(u) in
          token_at.(u) <- token_at.(v);
          token_at.(v) <- tmp)
        layer)
    layers

let route ?(locality = true) ~route1 ~route2 product pi =
  let g1 = Product.left product and g2 = Product.right product in
  let n1 = Graph.num_vertices g1 and n2 = Graph.num_vertices g2 in
  let cg = build_colgraph product pi in
  let matchings = if locality then discover_doubling cg else discover_whole cg in
  let assigned =
    if locality then begin
      let table = Bfs.all_pairs g1 in
      assign_mcbbm cg (fun a b -> table.(a).(b)) matchings
    end
    else Array.init n1 (fun k -> k)
  in
  (* sigma: per G2-copy v, the G1-destination of the qubit starting at
     (u, v) in round 1. *)
  let sigma = Array.make_matrix n2 n1 (-1) in
  List.iteri
    (fun k matching ->
      let r = assigned.(k) in
      Array.iteri
        (fun v x ->
          assert (cg.src_r.(x) = v);
          let u = cg.src_l.(x) in
          assert (sigma.(v).(u) = -1);
          sigma.(v).(u) <- r)
        matching)
    matchings;
  Array.iter
    (fun s ->
      if not (Perm.is_permutation s) then
        invalid_arg "Product_route: decomposition did not yield permutations")
    sigma;
  let token_at = Array.init (n1 * n2) (fun x -> x) in
  (* Round 1: inside each copy of G1 (fixed G2-vertex v). *)
  let round1 =
    let lines =
      List.init n2 (fun v -> (v, route1 g1 (Perm.check (Array.copy sigma.(v)))))
    in
    merge_copies lines ~lift:(fun v u -> Product.index product u v)
  in
  apply_layers token_at round1;
  (* Round 2: inside each copy of G2 (fixed G1-vertex u). *)
  let round2 =
    let lines =
      List.init n1 (fun u ->
          let dests =
            Array.init n2 (fun v ->
                let x = token_at.(Product.index product u v) in
                cg.dst_r.(x))
          in
          (u, route2 g2 (Perm.check dests)))
    in
    merge_copies lines ~lift:(fun u v -> Product.index product u v)
  in
  apply_layers token_at round2;
  (* Round 3: inside each copy of G1 again. *)
  let round3 =
    let lines =
      List.init n2 (fun v ->
          let dests =
            Array.init n1 (fun u ->
                let x = token_at.(Product.index product u v) in
                assert (cg.dst_r.(x) = v);
                cg.dst_l.(x))
          in
          (v, route1 g1 (Perm.check dests)))
    in
    merge_copies lines ~lift:(fun v u -> Product.index product u v)
  in
  apply_layers token_at round3;
  Array.iteri (fun x dst -> assert (token_at.(dst) = x)) pi;
  Schedule.concat round1 (Schedule.concat round2 round3)

let route_best_orientation ?locality ~route1 ~route2 product pi =
  let direct = route ?locality ~route1 ~route2 product pi in
  let mirrored = Product.transpose product in
  let total = Product.size product in
  let pi_t = Array.make total 0 in
  for x = 0 to total - 1 do
    pi_t.(Product.transpose_vertex product x) <- Product.transpose_vertex product pi.(x)
  done;
  let swapped =
    route ?locality ~route1:route2 ~route2:route1 mirrored (Perm.check pi_t)
  in
  let lifted =
    Schedule.map_vertices (Product.transpose_vertex mirrored) swapped
  in
  if Schedule.depth lifted < Schedule.depth direct then lifted else direct
