(** Unified routing configuration.

    One record gathers every knob the routing engines expose — the paper's
    ablation axes (discovery schedule, row assignment, transpose trick), the
    post-pass compaction toggle, and the token-swapping parameters — so the
    CLI, the benchmarks and the transpiler all speak the same language.
    Engines read the knobs they understand and ignore the rest.

    The canonical text form is a comma-separated [key=value] list,

    {[discovery=doubling,assignment=mcbbm,transpose=on,compaction=off,trials=4,seed=0]}

    optionally followed by [,best=local+naive] to pick the contenders the
    [best] engine races.  {!of_string} accepts any subset of keys (missing
    keys keep their defaults), so ["transpose=off"] alone is a valid
    configuration string. *)

type t = {
  discovery : Local_grid_route.discovery;
      (** Matching-discovery schedule for the locality-aware engines
          ([doubling], [whole], or [fixed:<height>]). *)
  assignment : Local_grid_route.assignment;
      (** Row assignment for discovered matchings ([mcbbm] or
          [arbitrary]). *)
  transpose : bool;
      (** Race the transposed orientation (Algorithm 1's transpose trick);
          read by engines with the [supports_transpose] capability. *)
  compaction : bool;
      (** Greedy ASAP re-layering ({!Schedule.compact}) as a post-pass on
          the final schedule. *)
  ats_trials : int;
      (** Restart count for parallel ATS (default 4).  Must be >= 1. *)
  seed : int;  (** RNG seed for the token-swapping engines. *)
  best_of : string list option;
      (** Contenders the [best] engine races; [None] means its default
          (local + naive). *)
}

val default : t
(** The paper's defaults: doubling discovery, MCBBM assignment, transpose
    on, compaction off, 4 ATS trials, seed 0. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Canonical form; round-trips through {!of_string}.  [best=] is printed
    only when contenders are explicitly set. *)

val of_string : string -> (t, string) result
(** Parse a [key=value] list over {!default}.  Empty string parses to
    {!default}.  Unknown keys, malformed values, [trials < 1] and band
    heights [< 1] are errors. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

val to_attrs : t -> (string * Qr_obs.Trace.value) list
(** The configuration as span attributes, attached to the [route] span when
    tracing is enabled. *)

(**/**)

val discovery_to_string : Local_grid_route.discovery -> string

val discovery_of_string :
  string -> (Local_grid_route.discovery, string) result
