(** Lower bounds on routing cost, for optimality-gap reporting.

    Any schedule realizing [π] must satisfy:

    - depth ≥ the largest graph distance any token must travel (each layer
      moves a token at most one edge);
    - depth ≥ the {e cut bound}: a layer carries at most one token per cut
      edge in each direction, so if [k] tokens must cross a cut of [w]
      edges rightward, depth ≥ ⌈k / w⌉ (grids: evaluated on every
      vertical and horizontal line cut);
    - size ≥ ⌈Σ_v d(v, π(v)) / 2⌉ (a swap shortens total displacement by
      at most 2).

    The benches report each router's depth against {!depth_lower_bound};
    the tests assert no router ever beats these. *)

val displacement_bound : (int -> int -> int) -> Qr_perm.Perm.t -> int
(** Max token distance under the given metric. *)

val size_lower_bound : (int -> int -> int) -> Qr_perm.Perm.t -> int
(** ⌈Σ distances / 2⌉. *)

val grid_cut_bound : Qr_graph.Grid.t -> Qr_perm.Perm.t -> int
(** Max over all vertical/horizontal line cuts and both directions of
    ⌈crossing tokens / cut width⌉. *)

val depth_lower_bound : Qr_graph.Grid.t -> Qr_perm.Perm.t -> int
(** Max of the displacement and cut bounds on the grid. *)
