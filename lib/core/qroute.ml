module Rng = Qr_util.Rng
module Stats = Qr_util.Stats
module Timer = Qr_util.Timer
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics
module Obs_json = Qr_obs.Json
module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Product = Qr_graph.Product
module Bfs = Qr_graph.Bfs
module Distance = Qr_graph.Distance
module Topology = Qr_graph.Topology
module Perm = Qr_perm.Perm
module Grid_perm = Qr_perm.Grid_perm
module Generators = Qr_perm.Generators
module Partial_perm = Qr_perm.Partial_perm
module Perm_stats = Qr_perm.Perm_stats
module Hopcroft_karp = Qr_bipartite.Hopcroft_karp
module Decompose = Qr_bipartite.Decompose
module Bottleneck = Qr_bipartite.Bottleneck
module Assignment = Qr_bipartite.Assignment
module Schedule = Qr_route.Schedule
module Path_route = Qr_route.Path_route
module Column_graph = Qr_route.Column_graph
module Grid_route = Qr_route.Grid_route
module Local_grid_route = Qr_route.Local_grid_route
module Product_route = Qr_route.Product_route
module Line_route = Qr_route.Line_route
module Bounds = Qr_route.Bounds
module Viz = Qr_route.Viz
module Token_swap = Qr_token.Token_swap
module Parallel_ats = Qr_token.Parallel_ats
module Exact = Qr_token.Exact
module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Qasm = Qr_circuit.Qasm
module Layout = Qr_circuit.Layout
module Transpile = Qr_circuit.Transpile
module Library = Qr_circuit.Library
module Noise = Qr_circuit.Noise
module Placement = Qr_circuit.Placement
module Optimize = Qr_circuit.Optimize
module Sabre_lite = Qr_circuit.Sabre_lite
module Statevector = Qr_sim.Statevector
module Unitary = Qr_sim.Unitary
module Permsim = Qr_sim.Permsim

module Strategy = struct
  type t = Local | Local_single | Naive | Ats | Ats_serial | Snake | Best

  let all = [ Local; Local_single; Naive; Ats; Ats_serial; Snake; Best ]

  let name = function
    | Local -> "local"
    | Local_single -> "local1"
    | Naive -> "naive"
    | Ats -> "ats"
    | Ats_serial -> "ats-serial"
    | Snake -> "snake"
    | Best -> "best"

  let of_name s = List.find_opt (fun strategy -> name strategy = s) all

  (* Schedule-quality counters, recorded once per top-level routing call
     from the schedule actually returned — so [swap_layers] always equals
     the emitted [Schedule.depth] even for strategies (like [Best]) that
     race several routers internally. *)
  let c_route_calls = Qr_obs.Metrics.counter "route_calls"
  let c_swap_layers = Qr_obs.Metrics.counter "swap_layers"
  let c_swaps_total = Qr_obs.Metrics.counter "swaps_total"

  let route strategy grid pi =
    Qr_obs.Trace.with_span "route"
      ~attrs:[ ("strategy", Qr_obs.Trace.String (name strategy)) ]
    @@ fun () ->
    let sched =
      match strategy with
      | Local -> Local_grid_route.route_best_orientation grid pi
      | Local_single -> Local_grid_route.route grid pi
      | Naive -> Grid_route.route_naive grid pi
      | Ats ->
          Parallel_ats.route (Grid.graph grid) (Distance.of_grid grid) pi
      | Ats_serial ->
          Token_swap.schedule (Grid.graph grid) (Distance.of_grid grid) pi
      | Snake -> Line_route.route grid pi
      | Best ->
          let local = Local_grid_route.route_best_orientation grid pi in
          let naive = Grid_route.route_naive grid pi in
          if Schedule.depth naive < Schedule.depth local then naive else local
    in
    if Qr_obs.Metrics.enabled () then begin
      Qr_obs.Metrics.incr c_route_calls;
      Qr_obs.Metrics.add c_swap_layers (Schedule.depth sched);
      Qr_obs.Metrics.add c_swaps_total (Schedule.size sched)
    end;
    sched

  let generic_route strategy g oracle pi =
    match strategy with
    | Ats_serial -> Token_swap.schedule g oracle pi
    | Ats | Local | Local_single | Naive | Snake | Best ->
        Parallel_ats.route g oracle pi
end

let route ?(strategy = Strategy.Best) grid pi = Strategy.route strategy grid pi

let route_partial ?(strategy = Strategy.Best) ?policy grid partial =
  let policy =
    match policy with
    | Some p -> p
    | None -> Partial_perm.Min_total (fun u v -> Grid.manhattan grid u v)
  in
  let pi = Partial_perm.extend policy partial in
  (Strategy.route strategy grid pi, pi)

let transpile ?(strategy = Strategy.Best) ?initial ?(place = false) grid
    circuit =
  let initial =
    match initial with
    | Some _ -> initial
    | None when place ->
        Some
          (Placement.place ~graph:(Grid.graph grid)
             ~dist:(Distance.of_grid grid) circuit)
    | None -> None
  in
  Transpile.run_grid ?initial
    ~router:(fun grid rho -> Strategy.route strategy grid rho)
    grid circuit
