module Rng = Qr_util.Rng
module Stats = Qr_util.Stats
module Timer = Qr_util.Timer
module Resource = Qr_util.Resource
module Trace = Qr_obs.Trace
module Trace_context = Qr_obs.Trace_context
module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Obs_json = Qr_obs.Json
module Fault = Qr_fault.Fault
module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Product = Qr_graph.Product
module Bfs = Qr_graph.Bfs
module Distance = Qr_graph.Distance
module Topology = Qr_graph.Topology
module Perm = Qr_perm.Perm
module Grid_perm = Qr_perm.Grid_perm
module Generators = Qr_perm.Generators
module Partial_perm = Qr_perm.Partial_perm
module Perm_stats = Qr_perm.Perm_stats
module Hopcroft_karp = Qr_bipartite.Hopcroft_karp
module Decompose = Qr_bipartite.Decompose
module Bottleneck = Qr_bipartite.Bottleneck
module Assignment = Qr_bipartite.Assignment
module Schedule = Qr_route.Schedule
module Router_intf = Qr_route.Router_intf
module Router_config = Qr_route.Router_config
module Router_registry = Qr_route.Router_registry
module Router_workspace = Qr_route.Router_workspace
module Path_route = Qr_route.Path_route
module Column_graph = Qr_route.Column_graph
module Grid_route = Qr_route.Grid_route
module Local_grid_route = Qr_route.Local_grid_route
module Product_route = Qr_route.Product_route
module Line_route = Qr_route.Line_route
module Bounds = Qr_route.Bounds
module Viz = Qr_route.Viz
module Token_swap = Qr_token.Token_swap
module Token_engines = Qr_token.Engines
module Parallel_ats = Qr_token.Parallel_ats
module Exact = Qr_token.Exact
module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Qasm = Qr_circuit.Qasm
module Layout = Qr_circuit.Layout
module Transpile = Qr_circuit.Transpile
module Library = Qr_circuit.Library
module Noise = Qr_circuit.Noise
module Placement = Qr_circuit.Placement
module Optimize = Qr_circuit.Optimize
module Sabre_lite = Qr_circuit.Sabre_lite
module Statevector = Qr_sim.Statevector
module Unitary = Qr_sim.Unitary
module Permsim = Qr_sim.Permsim
module Server = Qr_server.Server
module Server_session = Qr_server.Session
module Server_protocol = Qr_server.Protocol
module Server_client = Qr_server.Client
module Plan_cache = Qr_server.Plan_cache
module Deadline = Qr_server.Deadline
module Io_util = Qr_server.Io_util
module Worker_pool = Qr_server.Worker_pool
module Cancel = Qr_util.Cancel
module Breaker = Qr_route.Breaker
module Supervisor = Qr_server.Supervisor

(* Linking the umbrella completes the registry: the grid engines register
   when [Router_registry]'s own initializer runs, the token-swapping ones
   here. *)
let () = Token_engines.register ()

module Strategy = struct
  type t = Local | Local_single | Naive | Ats | Ats_serial | Snake | Best

  let all = [ Local; Local_single; Naive; Ats; Ats_serial; Snake; Best ]

  let name = function
    | Local -> "local"
    | Local_single -> "local1"
    | Naive -> "naive"
    | Ats -> "ats"
    | Ats_serial -> "ats-serial"
    | Snake -> "snake"
    | Best -> "best"

  let of_name s = List.find_opt (fun strategy -> name strategy = s) all

  let engine strategy = Router_registry.get (name strategy)

  let route ?config strategy grid pi =
    Router_intf.route_grid ?config (engine strategy) grid pi

  let generic_route ?config strategy g oracle pi =
    Router_registry.route_generic ?config (engine strategy) g oracle pi
end

let route ?(strategy = Strategy.Best) ?config grid pi =
  Strategy.route ?config strategy grid pi

let route_many ?(strategy = Strategy.Best) ?config grid pis =
  Router_intf.route_many ?config (Strategy.engine strategy)
    (List.map (fun pi -> Router_intf.Grid_input (grid, pi)) pis)

let route_partial ?(strategy = Strategy.Best) ?config ?policy grid partial =
  let policy =
    match policy with
    | Some p -> p
    | None -> Partial_perm.Min_total (fun u v -> Grid.manhattan grid u v)
  in
  let pi = Partial_perm.extend policy partial in
  (Strategy.route ?config strategy grid pi, pi)

let transpile ?(strategy = Strategy.Best) ?config ?initial ?(place = false)
    grid circuit =
  let initial =
    match initial with
    | Some _ -> initial
    | None when place ->
        Some
          (Placement.place ~graph:(Grid.graph grid)
             ~dist:(Distance.of_grid grid) circuit)
    | None -> None
  in
  Transpile.run_grid ?initial ~engine:(Strategy.engine strategy) ?config grid
    circuit
