(** Umbrella API: one import for the whole routing stack.

    Re-exports every sub-library under stable names and adds the
    {!Strategy} front-end — the "which router" switch the CLI, examples and
    benchmarks all share. *)

(** {2 Re-exports} *)

module Rng = Qr_util.Rng
module Stats = Qr_util.Stats
module Timer = Qr_util.Timer
module Resource = Qr_util.Resource
module Trace = Qr_obs.Trace
module Trace_context = Qr_obs.Trace_context
module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Obs_json = Qr_obs.Json
module Fault = Qr_fault.Fault
module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Product = Qr_graph.Product
module Bfs = Qr_graph.Bfs
module Distance = Qr_graph.Distance
module Topology = Qr_graph.Topology
module Perm = Qr_perm.Perm
module Grid_perm = Qr_perm.Grid_perm
module Generators = Qr_perm.Generators
module Partial_perm = Qr_perm.Partial_perm
module Perm_stats = Qr_perm.Perm_stats
module Hopcroft_karp = Qr_bipartite.Hopcroft_karp
module Decompose = Qr_bipartite.Decompose
module Bottleneck = Qr_bipartite.Bottleneck
module Assignment = Qr_bipartite.Assignment
module Schedule = Qr_route.Schedule
module Router_intf = Qr_route.Router_intf
module Router_config = Qr_route.Router_config
module Router_registry = Qr_route.Router_registry
module Router_workspace = Qr_route.Router_workspace
module Path_route = Qr_route.Path_route
module Column_graph = Qr_route.Column_graph
module Grid_route = Qr_route.Grid_route
module Local_grid_route = Qr_route.Local_grid_route
module Product_route = Qr_route.Product_route
module Line_route = Qr_route.Line_route
module Bounds = Qr_route.Bounds
module Viz = Qr_route.Viz
module Token_swap = Qr_token.Token_swap
module Token_engines = Qr_token.Engines
module Parallel_ats = Qr_token.Parallel_ats
module Exact = Qr_token.Exact
module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Qasm = Qr_circuit.Qasm
module Layout = Qr_circuit.Layout
module Transpile = Qr_circuit.Transpile
module Library = Qr_circuit.Library
module Noise = Qr_circuit.Noise
module Placement = Qr_circuit.Placement
module Optimize = Qr_circuit.Optimize
module Sabre_lite = Qr_circuit.Sabre_lite
module Statevector = Qr_sim.Statevector
module Unitary = Qr_sim.Unitary
module Permsim = Qr_sim.Permsim
module Server = Qr_server.Server
module Server_session = Qr_server.Session
module Server_protocol = Qr_server.Protocol
module Server_client = Qr_server.Client
module Plan_cache = Qr_server.Plan_cache
module Deadline = Qr_server.Deadline
module Io_util = Qr_server.Io_util
module Worker_pool = Qr_server.Worker_pool
module Cancel = Qr_util.Cancel
module Breaker = Qr_route.Breaker
module Supervisor = Qr_server.Supervisor

(** {2 Routing strategies}

    Linking this module completes the {!Router_registry}: the grid engines
    register with [qr_route] itself, and the umbrella's initializer adds
    the token-swapping engines ([ats], [ats-serial]).  {!Strategy} is a
    thin compatibility shim over the registry — new code should prefer
    {!Router_registry.get}/{!Router_intf.route} directly, which also cover
    engines registered by third parties. *)

module Strategy : sig
  type t =
    | Local  (** Algorithm 1: LocalGridRoute over both orientations. *)
    | Local_single  (** Algorithm 2 only (no transpose trick). *)
    | Naive  (** Alon et al. GridRoute, arbitrary decomposition. *)
    | Ats  (** Parallel ATS (depth-oriented, 4 trials). *)
    | Ats_serial  (** Serial ATS, ASAP re-layered. *)
    | Snake  (** 1-D boustrophedon odd–even baseline. *)
    | Best  (** min-depth of [Local] and [Naive] — the paper's
                "no-overhead" fallback combination. *)

  val all : t list

  val name : t -> string
  (** Also the {!Router_registry} key of the corresponding engine. *)

  val of_name : string -> t option

  val engine : t -> Router_intf.t
  (** The registered engine behind a strategy. *)

  val route : ?config:Router_config.t -> t -> Grid.t -> Perm.t -> Schedule.t
  (** Route a permutation on a grid.  Every strategy returns a valid
      schedule realizing the permutation. *)

  val generic_route :
    ?config:Router_config.t ->
    t -> Graph.t -> Distance.t -> Perm.t -> Schedule.t
  (** Router for arbitrary connected coupling graphs: token-swapping
      strategies run natively; grid-only strategies fall back to parallel
      ATS {e explicitly} — the [router_fallbacks] counter is bumped and a
      warning printed once per engine ({!Router_registry.route_generic}). *)
end

val route :
  ?strategy:Strategy.t -> ?config:Router_config.t ->
  Grid.t -> Perm.t -> Schedule.t
(** [route grid pi] with the paper's default ([Strategy.Best]). *)

val route_many :
  ?strategy:Strategy.t -> ?config:Router_config.t ->
  Grid.t -> Perm.t list -> Schedule.t list
(** Route a batch of permutations on one grid through a shared planning
    workspace ({!Router_intf.route_many}): same schedules as repeated
    {!route} calls, fewer allocations. *)

val route_partial :
  ?strategy:Strategy.t ->
  ?config:Router_config.t ->
  ?policy:Partial_perm.policy ->
  Grid.t -> Partial_perm.t -> Schedule.t * Perm.t
(** Route a partial permutation (§II's don't-care case): extend it to a
    full permutation (default policy: minimum-total-Manhattan-displacement
    assignment of the don't-cares) and route that.  Returns the schedule
    and the chosen extension. *)

val transpile :
  ?strategy:Strategy.t ->
  ?config:Router_config.t ->
  ?initial:Layout.t ->
  ?place:bool ->
  Grid.t -> Circuit.t -> Transpile.result
(** Transpile a logical circuit onto the grid using the chosen routing
    strategy (default [Strategy.Best]).  With [~place:true] and no explicit
    [initial], the interaction-graph {!Placement} heuristic chooses the
    starting layout. *)
