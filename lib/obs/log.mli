(** Leveled, structured logging for the routing stack.

    Records are single lines — JSON objects or logfmt — on the process's
    monotonic clock, written to a pluggable sink (stderr by default).
    Every record carries [ts_ms] (milliseconds since program start),
    [level], [msg], and the caller's key/value pairs in order.

    {b No-op fast path}: {!would_log} is a single comparison.  Hot paths
    should guard record construction with it
    ([if Log.would_log Info then Log.info ...]) so a disabled level costs
    one branch and no allocation.

    The default level is {!Warn}: warnings and errors print out of the
    box; [info]/[debug] are opt-in (the serving CLI raises the level to
    [Info] so access logs appear). *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> (level, string) result
(** Case-insensitive parse of ["debug" | "info" | "warn" | "error"]. *)

val level_name : level -> string

(** {2 Configuration} *)

val set_level : level -> unit
(** Records below this level are dropped.  Default: {!Warn}. *)

val level : unit -> level

val would_log : level -> bool
(** [true] when a record at this level would be emitted — the hot-path
    guard (a single comparison). *)

type format = Logfmt | Json
(** [Logfmt]: [ts_ms=1.234 level=info msg="..." k=v ...].
    [Json]: [{"ts_ms":1.234,"level":"info","msg":"...","k":v,...}]. *)

val format_of_string : string -> (format, string) result

val set_format : format -> unit
(** Default: {!Logfmt}. *)

val set_sink : (string -> unit) option -> unit
(** Where finished lines (no trailing newline) go.  [None] restores the
    default sink, stderr with a flush per line. *)

(** {2 Emitting}

    Key/value pairs use {!Json.t} values; they follow [ts_ms], [level]
    and [msg] in the record, in the order given. *)

val debug : string -> (string * Json.t) list -> unit
val info : string -> (string * Json.t) list -> unit
val warn : string -> (string * Json.t) list -> unit
val error : string -> (string * Json.t) list -> unit

val warn_once : key:string -> string -> (string * Json.t) list -> unit
(** Like {!warn}, but at most one record per distinct [key] for the
    process lifetime — for per-cause warnings in library code that may
    fire on every request (engine fallbacks, verification failures). *)

val reset_once : unit -> unit
(** Forget which {!warn_once} keys have fired (tests). *)

(** {2 Rendering (tests, previews)} *)

val render : format -> level -> ts_ms:float -> string -> (string * Json.t) list -> string
(** The line {!debug}/{!info}/... would emit, without sending it. *)
