module Rng = Qr_util.Rng
module Timer = Qr_util.Timer

type t = { trace_id : string; parent_id : string }

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let all_zero s = String.for_all (fun c -> c = '0') s

let check_field ~what ~len s =
  if String.length s <> len then
    Error (Printf.sprintf "%s: expected %d hex digits, got %d" what len
             (String.length s))
  else if not (String.for_all is_hex s) then
    Error (Printf.sprintf "%s: not lowercase hex: %S" what s)
  else if all_zero s then
    Error (Printf.sprintf "%s: all-zero ids are invalid" what)
  else Ok ()

let make ~trace_id ~parent_id =
  match check_field ~what:"trace_id" ~len:32 trace_id with
  | Error _ as e -> e
  | Ok () -> (
      match check_field ~what:"parent_id" ~len:16 parent_id with
      | Error _ as e -> e
      | Ok () -> Ok { trace_id; parent_id })

(* ---------------------------------------------------------------- minting *)

(* Seeded lazily from the monotonic clock and the PID so concurrent
   processes mint disjoint streams; [seed] pins it for tests. *)
let stream : Rng.t option ref = ref None

let seed s = stream := Some (Rng.create s)

let rng () =
  match !stream with
  | Some r -> r
  | None ->
      let r =
        Rng.create
          (Int64.to_int (Timer.now_ns ()) lxor (Unix.getpid () * 0x9e3779b9))
      in
      stream := Some r;
      r

let rec hex_word ~digits =
  let r = rng () in
  let raw = Rng.next_int64 r in
  let s =
    String.sub (Printf.sprintf "%016Lx" raw) (16 - digits) digits
  in
  if all_zero s then hex_word ~digits else s

let fresh_trace_id () = hex_word ~digits:16 ^ hex_word ~digits:16

let mint () = { trace_id = fresh_trace_id (); parent_id = hex_word ~digits:16 }

let child t = { t with parent_id = hex_word ~digits:16 }

(* ------------------------------------------------------------- wire form *)

let to_traceparent t = Printf.sprintf "00-%s-%s-01" t.trace_id t.parent_id

let of_traceparent s =
  match String.split_on_char '-' s with
  | [ version; trace_id; parent_id; flags ] ->
      if version <> "00" then
        Error (Printf.sprintf "traceparent: unsupported version %S" version)
      else if String.length flags <> 2 || not (String.for_all is_hex flags)
      then Error (Printf.sprintf "traceparent: bad flags %S" flags)
      else make ~trace_id ~parent_id
  | _ ->
      Error
        (Printf.sprintf
           "traceparent: expected 00-<32 hex>-<16 hex>-<flags>, got %S" s)

let equal a b = a.trace_id = b.trace_id && a.parent_id = b.parent_id
