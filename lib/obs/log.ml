type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | _ -> Error (Printf.sprintf "unknown log level %S" s)

type format = Logfmt | Json

let format_of_string s =
  match String.lowercase_ascii s with
  | "logfmt" -> Ok Logfmt
  | "json" -> Ok Json
  | _ -> Error (Printf.sprintf "unknown log format %S" s)

(* ------------------------------------------------------------- state *)

(* Domain-safety (DESIGN.md §13): level and format are atomics (the
   [would_log] fast path stays a load + compare); the sink reference and
   every emission through it share one mutex, so a [set_sink] swap never
   races an in-flight line and two domains never interleave writes into
   the same sink. *)

let current_level = Atomic.make Warn
let set_level l = Atomic.set current_level l
let level () = Atomic.get current_level
let would_log l = severity l >= severity (Atomic.get current_level)

let current_format = Atomic.make Logfmt
let set_format f = Atomic.set current_format f

let default_sink line = Printf.eprintf "%s\n%!" line
let sink = ref default_sink
let sink_mutex = Mutex.create ()

let set_sink f =
  Mutex.lock sink_mutex;
  (sink := match f with None -> default_sink | Some f -> f);
  Mutex.unlock sink_mutex

(* Monotonic origin for ts_ms; process start, same clock as Trace. *)
let t0_ns = Qr_util.Timer.now_ns ()

let now_ms () =
  Int64.to_float (Int64.sub (Qr_util.Timer.now_ns ()) t0_ns) /. 1e6

(* --------------------------------------------------------- rendering *)

(* logfmt values: bare when safe, JSON-quoted otherwise. *)
let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '"' || c = '=' || c < ' ' || c = '\\')
       s

let add_logfmt_value b (v : Json.t) =
  match v with
  | Json.String s when not (needs_quoting s) -> Buffer.add_string b s
  | Json.String _ | Json.List _ | Json.Obj _ -> Json.to_buffer b v
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ -> Json.to_buffer b v

let render fmt lvl ~ts_ms msg kvs =
  let b = Buffer.create 128 in
  (match fmt with
  | Json ->
      let fields =
        ("ts_ms", Json.Float ts_ms)
        :: ("level", Json.String (level_name lvl))
        :: ("msg", Json.String msg)
        :: kvs
      in
      Json.to_buffer b (Json.Obj fields)
  | Logfmt ->
      Printf.bprintf b "ts_ms=%.3f level=%s msg=" ts_ms (level_name lvl);
      add_logfmt_value b (Json.String msg);
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ' ';
          Buffer.add_string b k;
          Buffer.add_char b '=';
          add_logfmt_value b v)
        kvs);
  Buffer.contents b

(* ---------------------------------------------------------- emitting *)

let emit lvl msg kvs =
  if would_log lvl then begin
    let line = render (Atomic.get current_format) lvl ~ts_ms:(now_ms ()) msg kvs in
    Mutex.lock sink_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock sink_mutex) (fun () ->
        !sink line)
  end

let debug msg kvs = emit Debug msg kvs
let info msg kvs = emit Info msg kvs
let warn msg kvs = emit Warn msg kvs
let error msg kvs = emit Error msg kvs

(* The dedupe table has its own lock (not [sink_mutex]: [emit] takes
   that one).  Membership check and insertion are one critical section,
   so exactly one domain wins the right to emit a given key. *)
let once : (string, unit) Hashtbl.t = Hashtbl.create 16
let once_mutex = Mutex.create ()

let warn_once ~key msg kvs =
  if would_log Warn then begin
    Mutex.lock once_mutex;
    let first = not (Hashtbl.mem once key) in
    if first then Hashtbl.replace once key ();
    Mutex.unlock once_mutex;
    if first then emit Warn msg kvs
  end

let reset_once () =
  Mutex.lock once_mutex;
  Hashtbl.reset once;
  Mutex.unlock once_mutex
