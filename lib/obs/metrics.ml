(* Domain-safety (DESIGN.md §13): counters and gauges are Atomic cells —
   lock-free updates from any domain; histograms carry a per-instrument
   mutex guarding counts/count/sum together so a concurrent reader never
   sees a torn observation; the registry tables (name -> instrument,
   registration order, help strings) share one registry mutex taken by
   registration and whole-registry operations (snapshot, exposition,
   reset).  Handle updates never touch the registry, so the hot path is
   one atomic op (counter/gauge) or one short critical section
   (histogram). *)

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = { g_name : string; g_value : float option Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_mutex : Mutex.t;  (* guards the three fields below *)
  h_counts : int array;  (* length = Array.length h_bounds + 1; last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32

(* Registration order, most recent first. *)
let order : string list ref = ref []

(* Optional one-line help strings for the Prometheus exposition; first
   registration wins. *)
let helps : (string, string) Hashtbl.t = Hashtbl.create 32

(* One lock for registry/order/helps and whole-registry reads. *)
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let set_help name = function
  | Some text when not (Hashtbl.mem helps name) ->
      Hashtbl.replace helps name text
  | _ -> ()

let help name = Hashtbl.find_opt helps name

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let register name help make describe =
  with_registry @@ fun () ->
  set_help name help;
  match Hashtbl.find_opt registry name with
  | None ->
      let instrument = make () in
      Hashtbl.add registry name instrument;
      order := name :: !order;
      instrument
  | Some existing -> (
      match describe existing with
      | Some handle -> handle
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as another kind"
               name))

let counter ?help name =
  match
    register name help
      (fun () -> Counter { c_name = name; c_value = Atomic.make 0 })
      (function Counter c -> Some (Counter c) | _ -> None)
  with
  | Counter c -> c
  | _ -> assert false

let gauge ?help name =
  match
    register name help
      (fun () -> Gauge { g_name = name; g_value = Atomic.make None })
      (function Gauge g -> Some (Gauge g) | _ -> None)
  with
  | Gauge g -> g
  | _ -> assert false

let default_buckets =
  [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]

(* Geometric 1-2.5-5 ladder from 50µs to 10s, in milliseconds — the
   bounds every *_ms histogram should use.  The power-of-two default
   buckets start at 1ms and bucket most request latencies into the first
   bin; these resolve the sub-millisecond range a routing service
   actually lives in. *)
let latency_buckets =
  [|
    0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
    1000.; 2500.; 5000.; 10000.;
  |]

let histogram ?help ?(buckets = default_buckets) name =
  let make () =
    if Array.length buckets = 0 then
      invalid_arg "Metrics.histogram: empty buckets";
    for k = 1 to Array.length buckets - 1 do
      if not (buckets.(k) > buckets.(k - 1)) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing"
    done;
    Histogram
      {
        h_name = name;
        h_bounds = Array.copy buckets;
        h_mutex = Mutex.create ();
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.;
      }
  in
  match
    register name help make
      (function Histogram h -> Some (Histogram h) | _ -> None)
  with
  | Histogram h -> h
  | _ -> assert false

(* -------------------------------------------------------------- updates *)

let incr c = if Atomic.get enabled_flag then Atomic.incr c.c_value

let add c n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)

let set g x = if Atomic.get enabled_flag then Atomic.set g.g_value (Some x)

(* First bucket whose bound admits [x]; the overflow bucket otherwise. *)
let bucket_index bounds x =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  (* Invariant: bounds.(i) < x for i < lo; x <= bounds.(i) for i >= hi. *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h x =
  if Atomic.get enabled_flag then begin
    let idx = bucket_index h.h_bounds x in
    Mutex.lock h.h_mutex;
    h.h_counts.(idx) <- h.h_counts.(idx) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    Mutex.unlock h.h_mutex
  end

(* ---------------------------------------------------------------- reset *)

let reset_instrument = function
  | Counter c -> Atomic.set c.c_value 0
  | Gauge g -> Atomic.set g.g_value None
  | Histogram h ->
      Mutex.lock h.h_mutex;
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_count <- 0;
      h.h_sum <- 0.;
      Mutex.unlock h.h_mutex

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter (fun _ instrument -> reset_instrument instrument) registry

(* -------------------------------------------------------------- reading *)

let value c = Atomic.get c.c_value

let gauge_value g = Atomic.get g.g_value

let histogram_count h = h.h_count

let histogram_sum h = h.h_sum

(* Coherent (counts, count, sum) triple under the histogram's lock. *)
let histogram_snapshot h =
  Mutex.lock h.h_mutex;
  let counts = Array.copy h.h_counts in
  let count = h.h_count and sum = h.h_sum in
  Mutex.unlock h.h_mutex;
  (counts, count, sum)

let bucket_counts h =
  let counts, _, _ = histogram_snapshot h in
  let pairs = ref [] in
  for k = Array.length counts - 1 downto 0 do
    let bound =
      if k < Array.length h.h_bounds then h.h_bounds.(k) else infinity
    in
    pairs := (bound, counts.(k)) :: !pairs
  done;
  !pairs

let find_counter name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some c
  | _ -> None

let to_json () =
  with_registry @@ fun () ->
  let names = List.rev !order in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c ->
          counters := (c.c_name, Json.Int (Atomic.get c.c_value)) :: !counters
      | Gauge g -> (
          match Atomic.get g.g_value with
          | Some v -> gauges := (g.g_name, Json.Float v) :: !gauges
          | None -> ())
      | Histogram h ->
          let counts, count, sum = histogram_snapshot h in
          let buckets = ref [] in
          for k = Array.length counts - 1 downto 0 do
            let bound =
              if k < Array.length h.h_bounds then Json.Float h.h_bounds.(k)
              else Json.String "inf"
            in
            buckets :=
              Json.Obj [ ("le", bound); ("count", Json.Int counts.(k)) ]
              :: !buckets
          done;
          histograms :=
            ( h.h_name,
              Json.Obj
                [
                  ("count", Json.Int count);
                  ("sum", Json.Float sum);
                  ("buckets", Json.List !buckets);
                ] )
            :: !histograms)
    names;
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms));
    ]

(* ----------------------------------------------- Prometheus exposition *)

(* %.12g round-trips every bucket bound we use without trailing-zero
   noise ("0.25", "5", "1000"), matching what Prometheus client
   libraries emit for [le] labels. *)
let pp_float b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.bprintf b "%.0f" x
  else Printf.bprintf b "%.12g" x

let add_header b name kind =
  let text =
    match help name with
    | Some h -> h
    | None -> (
        match kind with
        | "counter" -> "Monotonic event count."
        | "gauge" -> "Last observed value."
        | _ -> "Distribution of observed values.")
  in
  Printf.bprintf b "# HELP %s %s\n" name text;
  Printf.bprintf b "# TYPE %s %s\n" name kind

let to_prometheus () =
  with_registry @@ fun () ->
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c ->
          add_header b name "counter";
          Printf.bprintf b "%s %d\n" c.c_name (Atomic.get c.c_value)
      | Gauge g -> (
          match Atomic.get g.g_value with
          | None -> ()
          | Some v ->
              add_header b name "gauge";
              Printf.bprintf b "%s " g.g_name;
              pp_float b v;
              Buffer.add_char b '\n')
      | Histogram h ->
          add_header b name "histogram";
          let counts, count, sum = histogram_snapshot h in
          let cumulative = ref 0 in
          Array.iteri
            (fun k bound ->
              cumulative := !cumulative + counts.(k);
              Printf.bprintf b "%s_bucket{le=\"" h.h_name;
              pp_float b bound;
              Printf.bprintf b "\"} %d\n" !cumulative)
            h.h_bounds;
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" h.h_name count;
          Printf.bprintf b "%s_sum " h.h_name;
          pp_float b sum;
          Buffer.add_char b '\n';
          Printf.bprintf b "%s_count %d\n" h.h_name count)
    (List.rev !order);
  Buffer.contents b
