(** Minimal JSON tree with a printer and a parser.

    The container ships no JSON library, and the observability layer only
    needs enough JSON to emit Chrome [trace_event] files and metrics
    snapshots — and to parse them back in tests and smoke checks.  Numbers
    are split into [Int] and [Float] so counters survive a round-trip
    exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Append the compact rendering of a value.  Non-finite floats render as
    [null] (JSON has no NaN/infinity). *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit
(** {!to_string} plus a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error message carries a byte offset. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields and non-objects. *)

(** {2 Shape accessors}

    [None] when the value is of a different shape — the building blocks of
    decoders (the routing service's wire protocol is the main consumer).
    [get_float] also accepts [Int], matching JSON's single number type. *)

val get_string : t -> string option
val get_int : t -> int option
val get_bool : t -> bool option
val get_float : t -> float option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option

val equal : t -> t -> bool
(** Structural equality; object fields compare order-sensitively and
    floats bitwise (good enough for round-trip tests). *)
