(** Minimal JSON tree with a printer and a parser.

    The container ships no JSON library, and the observability layer only
    needs enough JSON to emit Chrome [trace_event] files and metrics
    snapshots — and to parse them back in tests and smoke checks.  Numbers
    are split into [Int] and [Float] so counters survive a round-trip
    exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Append the compact rendering of a value.  Non-finite floats render as
    [null] (JSON has no NaN/infinity). *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit
(** {!to_string} plus a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error message carries a byte offset. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields and non-objects. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare order-sensitively and
    floats bitwise (good enough for round-trip tests). *)
