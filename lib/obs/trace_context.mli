(** Request-scoped trace context, W3C-traceparent-shaped.

    A context is the pair the tracing world agrees on: a 128-bit
    [trace_id] naming one end-to-end request (32 lowercase hex digits)
    and a 64-bit [parent_id] naming the caller's span (16 lowercase hex
    digits).  The wire form is the W3C [traceparent] header layout,

    {v 00-<trace_id>-<parent_id>-01 v}

    which the routing service carries in the optional ["trace"] field of
    its request/response envelopes (DESIGN.md §12): clients mint or
    forward a context, the session adopts it so the whole [serve_request]
    span tree carries the caller's trace_id, and responses echo it.

    Minting draws from a SplitMix64 stream seeded from the monotonic
    clock and the PID at first use, so concurrent clients do not collide;
    {!seed} pins the stream for deterministic tests.  All-zero ids are
    invalid per the W3C spec and are never minted and never parsed. *)

type t = {
  trace_id : string;  (** 32 lowercase hex digits, not all zero. *)
  parent_id : string;  (** 16 lowercase hex digits, not all zero. *)
}

val make : trace_id:string -> parent_id:string -> (t, string) result
(** Validate the two fields (length, lowercase hex, not all zero). *)

val mint : unit -> t
(** A fresh context: new trace_id, new parent_id. *)

val child : t -> t
(** Same trace, fresh parent_id — the span id a server would hand to its
    own downstream calls. *)

val seed : int -> unit
(** Re-seed the minting stream (tests; equal seeds yield equal ids). *)

val to_traceparent : t -> string
(** [00-<trace_id>-<parent_id>-01]. *)

val of_traceparent : string -> (t, string) result
(** Parse the wire form.  Only version [00] is accepted; any flags byte
    is tolerated.  Errors say what was malformed. *)

val equal : t -> t -> bool
