(** Span-based tracing for the routing stack.

    A {e span} is a named, nested begin/end interval measured on the
    monotonic clock ({!Qr_util.Timer.now_ns}).  Library code wraps its
    phases in {!with_span}; a driver (CLI, bench harness, test) brackets a
    run with {!start}/{!stop} (or {!run}) and exports the collected spans
    as a Chrome [trace_event] file or a per-phase summary table.

    {b No-op fast path}: while no collection is active, {!with_span} is a
    single branch plus a tail call — instrumented library code stays
    benchmark-clean — and {!add_attr} is a single branch.

    {b Domain safety} (DESIGN.md §13): every domain records into its own
    span buffer (domain-local storage), so {!with_span}/{!add_attr} never
    synchronize with other domains.  {!stop} and {!spans} merge all
    per-domain buffers: the calling domain's spans first (each buffer in
    completion order), so a single-domain collection behaves exactly as
    the historical global buffer did.  {!start}/{!stop} should be driven
    from one coordinating domain; spans still open on a worker when
    {!stop} runs are discarded with that worker's stack.  The trace id
    is likewise per-domain — request-scoped within whichever worker is
    serving the request.

    Span names are lowercase snake_case phase names; see DESIGN.md §8 for
    the naming schema instrumented across the stack. *)

type value = Bool of bool | Int of int | Float of float | String of string
(** Attribute values ([args] in the Chrome trace viewer). *)

type span = {
  name : string;
  depth : int;  (** Nesting depth at entry; outermost spans have depth 0. *)
  start_ns : int64;  (** Monotonic clock at entry. *)
  dur_ns : int64;  (** Inclusive duration. *)
  self_ns : int64;  (** [dur_ns] minus time spent in child spans. *)
  attrs : (string * value) list;
}

val enabled : unit -> bool
(** Whether a collection is active. *)

val set_trace_id : string option -> unit
(** Install (or clear) the request-scoped trace id {e for the calling
    domain}.  While set, every span completed by {!with_span} on this
    domain carries a [("trace_id", String id)] attribute — the hook
    {!Qr_server.Session} uses to stamp a caller's {!Trace_context} onto
    the whole [serve_request] span tree.  Cheap either way (one write to
    domain-local state); independent of {!start}/{!stop}. *)

val trace_id : unit -> string option
(** The trace id currently installed on the calling domain. *)

val start : unit -> unit
(** Begin collecting: clears the buffer and enables {!with_span}. *)

val stop : unit -> span list
(** Disable collection and return the completed spans in completion order
    (children before parents).  Spans still open are discarded. *)

val spans : unit -> span list
(** Completed spans so far, without stopping. *)

val run : (unit -> 'a) -> 'a * span list
(** [run f] brackets [f] with {!start}/{!stop}.  Collection is stopped
    (and the buffer dropped) even if [f] raises. *)

val with_span : string -> ?attrs:(string * value) list -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span is recorded even
    if [f] raises (the exception is re-raised).  When collection is
    disabled this is [f ()] after one branch. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span; a no-op when disabled
    or outside any span.  Use this for values only known mid-span without
    paying for attribute construction on the fast path. *)

(** {2 Exporters} *)

val to_chrome_json : span list -> Json.t
(** Chrome [trace_event] document (["traceEvents"] of complete ["X"]
    events, microsecond timestamps relative to the earliest span) — loads
    in [chrome://tracing] and Perfetto. *)

type row = {
  span_name : string;
  count : int;
  total_ns : int64;  (** Summed inclusive durations. *)
  self_total_ns : int64;  (** Summed self-times; disjoint across rows. *)
  max_ns : int64;  (** Largest single inclusive duration. *)
}

val summary : span list -> row list
(** Aggregate spans by name, in order of first completion. *)

val summary_json : span list -> Json.t
(** {!summary} as a JSON array (durations in float seconds). *)

val summary_table : span list -> string
(** Fixed-width text rendering of {!summary} — the flat per-phase cost
    breakdown printed by [qroute --trace] and [bench phases]. *)
