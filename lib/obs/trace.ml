module Timer = Qr_util.Timer

type value = Bool of bool | Int of int | Float of float | String of string

type span = {
  name : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  self_ns : int64;
  attrs : (string * value) list;
}

type frame = {
  f_name : string;
  f_depth : int;
  f_start : int64;
  mutable f_attrs : (string * value) list;  (* reversed *)
  mutable f_child_ns : int64;
}

(* Domain-safety (DESIGN.md §13): span collection is per-domain.  Each
   domain that traces gets its own buffer — completed spans, the open
   frame stack, and the request-scoped trace id — via domain-local
   storage, so [with_span]/[add_attr] never synchronize.  The buffers
   register themselves (under a mutex) in a global list the first time a
   domain traces; {!stop}/{!spans} merge every registered buffer, the
   collecting domain's spans first and each buffer in completion order —
   so a single-domain collection is byte-identical to the historical
   global-buffer behavior.  Only the enable flag is shared (an atomic):
   {!start}/{!stop} are meant to be called from one coordinating domain
   around a quiescent region; spans still open on another domain when
   {!stop} runs are discarded with the rest of that domain's stack. *)
type buffer = {
  mutable completed : span list;  (* most recent first *)
  mutable stack : frame list;  (* open spans, innermost first *)
  mutable buf_trace_id : string option;
}

let buffers : buffer list ref = ref []
let buffers_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { completed = []; stack = []; buf_trace_id = None } in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let my_buffer () = Domain.DLS.get buffer_key

let enabled_flag = Atomic.make false

let set_trace_id id = (my_buffer ()).buf_trace_id <- id

let trace_id () = (my_buffer ()).buf_trace_id

let enabled () = Atomic.get enabled_flag

(* Snapshot every domain's completed spans: the calling domain's buffer
   first (preserving the single-domain contract), the others in
   registration order. *)
let merged clear =
  let mine = my_buffer () in
  Mutex.lock buffers_mutex;
  let others = List.filter (fun b -> b != mine) (List.rev !buffers) in
  let collected =
    List.concat_map (fun b -> List.rev b.completed) (mine :: others)
  in
  if clear then
    List.iter
      (fun b ->
        b.completed <- [];
        b.stack <- [])
      !buffers;
  Mutex.unlock buffers_mutex;
  collected

let start () =
  ignore (merged true);
  Atomic.set enabled_flag true

let stop () =
  Atomic.set enabled_flag false;
  merged true

let spans () = merged false

let with_span name ?attrs f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let buffer = my_buffer () in
    let base =
      match buffer.buf_trace_id with
      | None -> []
      | Some id -> [ ("trace_id", String id) ]
    in
    let frame =
      {
        f_name = name;
        f_depth = List.length buffer.stack;
        f_start = Timer.now_ns ();
        f_attrs =
          (match attrs with
          | None -> base
          | Some a -> List.rev_append a base);
        f_child_ns = 0L;
      }
    in
    buffer.stack <- frame :: buffer.stack;
    let finish () =
      let dur_ns = Int64.sub (Timer.now_ns ()) frame.f_start in
      (match buffer.stack with
      | top :: rest when top == frame -> buffer.stack <- rest
      | _ ->
          (* Unbalanced exit (an exception skipped a child's finish, which
             Fun.protect prevents; defensive): drop down to our frame. *)
          let rec unwind = function
            | top :: rest when top == frame -> rest
            | _ :: rest -> unwind rest
            | [] -> []
          in
          buffer.stack <- unwind buffer.stack);
      (match buffer.stack with
      | parent :: _ -> parent.f_child_ns <- Int64.add parent.f_child_ns dur_ns
      | [] -> ());
      buffer.completed <-
        {
          name = frame.f_name;
          depth = frame.f_depth;
          start_ns = frame.f_start;
          dur_ns;
          self_ns = Int64.sub dur_ns frame.f_child_ns;
          attrs = List.rev frame.f_attrs;
        }
        :: buffer.completed
    in
    Fun.protect ~finally:finish f
  end

let add_attr key v =
  if Atomic.get enabled_flag then
    match (my_buffer ()).stack with
    | frame :: _ -> frame.f_attrs <- (key, v) :: frame.f_attrs
    | [] -> ()

let run f =
  start ();
  match f () with
  | result -> (result, stop ())
  | exception e ->
      ignore (stop ());
      raise e

(* ------------------------------------------------------------ exporters *)

let micros ns = Int64.to_float ns /. 1e3

let json_of_value = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | String s -> Json.String s

let to_chrome_json spans =
  let base =
    List.fold_left
      (fun acc s -> if s.start_ns < acc then s.start_ns else acc)
      (match spans with [] -> 0L | s :: _ -> s.start_ns)
      spans
  in
  let event s =
    let fields =
      [
        ("name", Json.String s.name);
        ("cat", Json.String "qroute");
        ("ph", Json.String "X");
        ("ts", Json.Float (micros (Int64.sub s.start_ns base)));
        ("dur", Json.Float (micros s.dur_ns));
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
      ]
    in
    let fields =
      if s.attrs = [] then fields
      else
        fields
        @ [
            ( "args",
              Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) s.attrs)
            );
          ]
    in
    Json.Obj fields
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event spans));
      ("displayTimeUnit", Json.String "ms");
    ]

type row = {
  span_name : string;
  count : int;
  total_ns : int64;
  self_total_ns : int64;
  max_ns : int64;
}

let summary spans =
  let table : (string, row ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt table s.name with
      | Some row ->
          row :=
            {
              !row with
              count = !row.count + 1;
              total_ns = Int64.add !row.total_ns s.dur_ns;
              self_total_ns = Int64.add !row.self_total_ns s.self_ns;
              max_ns = (if s.dur_ns > !row.max_ns then s.dur_ns else !row.max_ns);
            }
      | None ->
          let row =
            ref
              {
                span_name = s.name;
                count = 1;
                total_ns = s.dur_ns;
                self_total_ns = s.self_ns;
                max_ns = s.dur_ns;
              }
          in
          Hashtbl.add table s.name row;
          order := s.name :: !order)
    spans;
  List.rev_map (fun name -> !(Hashtbl.find table name)) !order

let seconds ns = Int64.to_float ns /. 1e9

let summary_json spans =
  Json.List
    (List.map
       (fun row ->
         Json.Obj
           [
             ("name", Json.String row.span_name);
             ("count", Json.Int row.count);
             ("total_s", Json.Float (seconds row.total_ns));
             ("self_s", Json.Float (seconds row.self_total_ns));
             ("max_s", Json.Float (seconds row.max_ns));
           ])
       (summary spans))

let summary_table spans =
  let rows = summary spans in
  (* Pad the name column to the longest span name (floor 24, the historic
     width), so names longer than the header never shear the numeric
     columns out of alignment. *)
  let width =
    List.fold_left
      (fun w row -> max w (String.length row.span_name))
      24 rows
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %8s %12s %12s %12s\n" width "span" "count"
       "total(ms)" "self(ms)" "max(ms)");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %8d %12.3f %12.3f %12.3f\n" width row.span_name
           row.count
           (seconds row.total_ns *. 1e3)
           (seconds row.self_total_ns *. 1e3)
           (seconds row.max_ns *. 1e3)))
    rows;
  Buffer.contents buf
