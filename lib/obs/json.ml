type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------- printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest-exact float rendering that still parses back as a float: a
   pure-integer rendering gets ".0" appended so Float 5. does not come
   back as Int 5. *)
let float_to_buffer buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    let s =
      let shorter = Printf.sprintf "%.12g" f in
      if float_of_string shorter = f then shorter else s
    in
    Buffer.add_string buf s;
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to_buffer buf f
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (key, item) ->
          if k > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          to_buffer buf item)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  to_buffer buf json;
  Buffer.contents buf

let to_channel oc json =
  output_string oc (to_string json);
  output_char oc '\n'

(* -------------------------------------------------------------- parsing *)

exception Parse_error of string

let of_string_exn' s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let code =
                  try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                (* UTF-8 encode; lone surrogates pass through naively. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            loop ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let first = !pos in
    let is_int = ref true in
    if !pos < n && s.[!pos] = '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      is_int := false;
      incr pos;
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      is_int := false;
      incr pos;
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
      digits ()
    end;
    let text = String.sub s first (!pos - first) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match s.[!pos] with
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '"' -> String (parse_string ())
      | '[' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = ']' then begin
            incr pos;
            List []
          end
          else begin
            let items = ref [ parse_value () ] in
            skip_ws ();
            while !pos < n && s.[!pos] = ',' do
              incr pos;
              items := parse_value () :: !items;
              skip_ws ()
            done;
            expect ']';
            List (List.rev !items)
          end
      | '{' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              (key, parse_value ())
            in
            let fields = ref [ field () ] in
            skip_ws ();
            while !pos < n && s.[!pos] = ',' do
              incr pos;
              fields := field () :: !fields;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !fields)
          end
      | '-' | '0' .. '9' -> parse_number ()
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  value

let of_string s =
  match of_string_exn' s with
  | value -> Ok value
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string_exn' s with
  | value -> value
  | exception Parse_error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List items -> Some items | _ -> None
let get_obj = function Obj fields -> Some fields | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | _ -> false
