(** Named counters, gauges and histograms for the routing stack.

    Instruments are registered once in a global registry (typically at
    module initialization: [let c = Metrics.counter "hk_calls"]) and
    updated through their handles.  Updates are guarded by a global
    enable flag, so with collection off every update is a single branch —
    safe to leave in hot loops.  Registration itself is always allowed;
    re-registering a name returns the existing instrument.

    {b Domain safety} (DESIGN.md §13): every operation may be called from
    any domain.  Counter and gauge updates are lock-free atomics;
    histogram observations take a per-instrument mutex so
    (buckets, count, sum) can never tear; registration and the
    whole-registry operations ({!to_json}, {!to_prometheus}, {!reset},
    {!find_counter}) serialize on one registry lock.  Snapshots taken
    while other domains update are consistent per instrument (each
    histogram is copied under its own lock), not across instruments.

    Metric names follow the same snake_case schema as span names (see
    DESIGN.md §8). *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
(** Register (or look up) a monotonically increasing integer counter.
    [help] is a one-line description used by {!to_prometheus}; the first
    registration to supply one wins.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : ?help:string -> string -> gauge
(** Register (or look up) a last-value-wins float gauge. *)

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** Register (or look up) a histogram.  [buckets] are strictly increasing
    upper bounds; observations above the last bound land in an implicit
    overflow bucket.  Default: powers of two from 1 to 1024.  On lookup of
    an existing histogram, [buckets] is ignored. *)

val default_buckets : float array
(** Powers of two from 1 to 1024 — the bounds used when [buckets] is not
    given. *)

val latency_buckets : float array
(** Geometric 1-2.5-5 bounds from 0.05 to 10000, intended for
    millisecond-valued histograms ([*_ms]): resolves 50µs at the low end
    and 10s at the high end. *)

(** {2 Updates (single branch when disabled)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Collection control} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every registered instrument (registrations are kept). *)

(** {2 Reading} *)

val value : counter -> int
val gauge_value : gauge -> float option
(** [None] until the first {!set} (or after {!reset}). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** Per-bucket (non-cumulative) counts as [(upper_bound, count)] pairs;
    the final pair has bound [infinity] (the overflow bucket). *)

val find_counter : string -> counter option
(** Look up a counter without registering it. *)

val to_json : unit -> Json.t
(** Snapshot of the whole registry:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}].
    Instruments appear in registration order; gauges never set are
    omitted. *)

val to_prometheus : unit -> string
(** Prometheus text-format exposition of the whole registry.  Each
    instrument gets [# HELP] and [# TYPE] lines; histograms are emitted
    as cumulative [name_bucket{le="..."}] series ending with
    [le="+Inf"], followed by [name_sum] and [name_count].  Gauges never
    set are omitted.  Instruments appear in registration order. *)
