(** Seeded, deterministic fault injection for the routing stack.

    The serving code is threaded with {e named fault points} — call sites
    like [Fault.point "server.write" ~f] that normally just run [f].  A
    {e plan} (a list of {!spec}s, usually parsed from the [QR_FAULTS]
    environment variable) arms points to misbehave: raise an exception,
    raise a specific [Unix] errno, sleep, shorten an I/O length, or hand a
    call-site-supplied corruptor the value about to be returned.  Every
    probabilistic decision draws from a SplitMix64 stream seeded at
    {!arm} time, so a chaos run is reproducible from
    [(QR_FAULTS, QR_FAULTS_SEED)] alone.

    {b Domain safety} (DESIGN.md §13): the armed plan (firing caps,
    tallies) is shared across domains under an internal mutex, but each
    domain draws probabilities from {e its own} stream — derived
    deterministically from [(seed, domain index)] by {!derive_stream} —
    so a domain's draw sequence depends only on its own fault-point
    visits, never on scheduler interleaving.  The main domain is index 0
    and gets the exact historical single-domain stream; worker pools
    assign stable indexes via {!set_domain_index}.

    Disarmed (the default, and the state {!disarm} restores), every
    helper is a single load-and-branch on the global state — safe to
    leave in hot paths; the [phases] benchmark must not be able to tell
    the fault points are there.

    Plan grammar (also produced by {!to_string}):

    {v
    plan  ::= spec (";" spec)*
    spec  ::= point "=" action ["@" prob] ["#" count]
    action ::= "raise" | "raise(injected)" | "raise(eintr)"
             | "raise(eagain)" | "raise(epipe)" | "raise(econnreset)"
             | "delay(" ms ")" | "truncate" | "corrupt"
    v}

    [@prob] fires the fault with the given probability in (0, 1] (default
    1); [#count] caps the number of firings (default unlimited).  The two
    suffixes compose in either order.  Example:

    {v
    QR_FAULTS="engine.plan=raise@0.3;server.write=truncate@0.5;cache.find=corrupt#2"
    v}

    Fault-point names follow the span/metric schema (DESIGN.md §8, §11):
    [subsystem.operation], e.g. [server.write], [session.dispatch],
    [cache.find], [engine.plan]. *)

exception Injected of string
(** Raised by a point armed with [raise]; carries the point name. *)

type action =
  | Raise  (** Raise {!Injected} at the point. *)
  | Raise_errno of Unix.error
      (** Raise [Unix.Unix_error (errno, "fault", point)] — lets a plan
          exercise EINTR/EAGAIN/EPIPE/ECONNRESET handling without a
          misbehaving kernel or peer. *)
  | Delay_ms of int  (** Sleep before running the wrapped computation. *)
  | Truncate
      (** Shorten the length an I/O call is about to use ({!truncate}). *)
  | Corrupt
      (** Apply the call site's corruptor to the value ({!corrupt}). *)

type spec = {
  point : string;
  action : action;
  prob : float;  (** Firing probability in (0, 1]. *)
  max_fires : int option;  (** Firing cap; [None] is unlimited. *)
}

val parse_plan : string -> (spec list, string) result
(** Parse the plan grammar above.  The empty string is the empty plan.
    Errors name the offending spec. *)

val to_string : spec list -> string
(** Canonical text form; round-trips through {!parse_plan}. *)

val arm : ?seed:int -> spec list -> unit
(** Install a plan (replacing any previous one) and reset firing
    tallies.  [seed] (default 0) seeds the probability stream. *)

val env_var : string
(** ["QR_FAULTS"]. *)

val seed_env_var : string
(** ["QR_FAULTS_SEED"]. *)

val arm_from_env : unit -> (bool, string) result
(** Arm from [QR_FAULTS] (+ optional [QR_FAULTS_SEED]).  [Ok false] when
    the variable is unset or empty (nothing armed), [Ok true] when a plan
    was armed, [Error _] on a malformed plan or seed. *)

val disarm : unit -> unit
(** Drop the plan; every point reverts to a no-op. *)

val armed : unit -> bool

val plan : unit -> spec list
(** The currently armed plan ([[]] when disarmed). *)

val fires : string -> int
(** Total times any spec at this point has fired since {!arm}. *)

(** {2 Per-domain probability streams} *)

val set_domain_index : int -> unit
(** Register the calling domain's stable stream index (worker pools call
    this with [worker index + 1] at domain start-up).  The main domain
    defaults to index 0; a domain that never registers falls back to its
    runtime domain id — safe, but not reproducible across runs, since
    runtime ids are never reused.  @raise Invalid_argument when
    negative. *)

val derive_stream : seed:int -> domain:int -> Qr_util.Rng.t
(** The probability stream a domain with the given index draws from
    under an armed plan seeded with [seed].  Index 0 is exactly
    [Rng.create seed] (the historical single-domain stream); index
    [i > 0] is an independent substream, deterministic in
    [(seed, i)].  Exposed for tests asserting reproducibility.
    @raise Invalid_argument when [domain] is negative. *)

(** {2 Call-site helpers}

    Each helper reacts only to the action kinds it can apply ({!point}:
    raising and delaying; {!truncate}: [Truncate]; {!corrupt}:
    [Corrupt]); specs of other kinds at the same point are left for the
    matching helper and do not consume firings or probability draws. *)

val point : string -> f:(unit -> 'a) -> 'a
(** Run [f], after applying any armed delay and raising any armed
    exception ([Raise] → {!Injected}, [Raise_errno e] →
    [Unix.Unix_error]).  Disarmed: exactly [f ()]. *)

val corrupt : string -> ('a -> 'a) -> 'a -> 'a
(** [corrupt name mangle v] is [mangle v] when a [Corrupt] spec fires,
    else [v]. *)

val truncate : string -> int -> int
(** [truncate name len] shortens a proposed I/O length to a uniform
    value in [\[1, len)] when a [Truncate] spec fires, else returns
    [len] unchanged.  Lengths [<= 1] always pass through, so retry
    loops keep making progress. *)
