module Rng = Qr_util.Rng
module Metrics = Qr_obs.Metrics

let c_injections = Metrics.counter "fault_injections"

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected point -> Some (Printf.sprintf "Fault.Injected(%s)" point)
    | _ -> None)

type action =
  | Raise
  | Raise_errno of Unix.error
  | Delay_ms of int
  | Truncate
  | Corrupt

type spec = {
  point : string;
  action : action;
  prob : float;
  max_fires : int option;
}

(* ------------------------------------------------------------- rendering *)

let errno_name = function
  | Unix.EINTR -> "eintr"
  | Unix.EAGAIN -> "eagain"
  | Unix.EPIPE -> "epipe"
  | Unix.ECONNRESET -> "econnreset"
  | e -> Unix.error_message e

let action_to_string = function
  | Raise -> "raise"
  | Raise_errno e -> Printf.sprintf "raise(%s)" (errno_name e)
  | Delay_ms ms -> Printf.sprintf "delay(%d)" ms
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"

let spec_to_string s =
  Printf.sprintf "%s=%s%s%s" s.point
    (action_to_string s.action)
    (if s.prob = 1.0 then "" else Printf.sprintf "@%g" s.prob)
    (match s.max_fires with
    | None -> ""
    | Some n -> Printf.sprintf "#%d" n)

let to_string specs = String.concat ";" (List.map spec_to_string specs)

(* --------------------------------------------------------------- parsing *)

let parse_action text =
  match text with
  | "raise" | "raise(injected)" -> Ok Raise
  | "raise(eintr)" -> Ok (Raise_errno Unix.EINTR)
  | "raise(eagain)" -> Ok (Raise_errno Unix.EAGAIN)
  | "raise(epipe)" -> Ok (Raise_errno Unix.EPIPE)
  | "raise(econnreset)" -> Ok (Raise_errno Unix.ECONNRESET)
  | "truncate" -> Ok Truncate
  | "corrupt" -> Ok Corrupt
  | _ ->
      let n = String.length text in
      if n > 7 && String.sub text 0 6 = "delay(" && text.[n - 1] = ')' then
        match int_of_string_opt (String.sub text 6 (n - 7)) with
        | Some ms when ms >= 0 -> Ok (Delay_ms ms)
        | _ ->
            Error
              (Printf.sprintf "bad delay %S: expected delay(<nonnegative ms>)"
                 text)
      else
        Error
          (Printf.sprintf
             "unknown action %S (raise, raise(eintr|eagain|epipe|econnreset), \
              delay(<ms>), truncate, corrupt)"
             text)

(* One spec: point=action with optional @prob / #count suffixes in either
   order.  Action parameters never contain '@' or '#', so the first of
   either character ends the action text. *)
let parse_spec text =
  let fail msg = Error (Printf.sprintf "spec %S: %s" text msg) in
  match String.index_opt text '=' with
  | None -> fail "expected point=action"
  | Some eq -> (
      let point = String.trim (String.sub text 0 eq) in
      let rhs =
        String.trim (String.sub text (eq + 1) (String.length text - eq - 1))
      in
      if point = "" then fail "empty point name"
      else
        let idx_at = String.index_opt rhs '@' in
        let idx_hash = String.index_opt rhs '#' in
        let action_end =
          match (idx_at, idx_hash) with
          | None, None -> String.length rhs
          | Some i, None | None, Some i -> i
          | Some i, Some j -> min i j
        in
        (* A suffix runs to the start of the other suffix or to the end. *)
        let suffix_of start =
          let stop =
            List.fold_left
              (fun stop -> function
                | Some i when i > start && i < stop -> i
                | _ -> stop)
              (String.length rhs)
              [ idx_at; idx_hash ]
          in
          String.sub rhs (start + 1) (stop - start - 1)
        in
        let prob =
          match idx_at with
          | None -> Ok 1.0
          | Some i -> (
              let s = suffix_of i in
              match float_of_string_opt s with
              | Some p when p > 0.0 && p <= 1.0 -> Ok p
              | _ ->
                  Error
                    (Printf.sprintf "bad probability %S: expected @p with p \
                                     in (0, 1]" s))
        in
        let max_fires =
          match idx_hash with
          | None -> Ok None
          | Some i -> (
              let s = suffix_of i in
              match int_of_string_opt s with
              | Some n when n >= 1 -> Ok (Some n)
              | _ ->
                  Error
                    (Printf.sprintf "bad count %S: expected #n with n >= 1" s))
        in
        match (parse_action (String.sub rhs 0 action_end), prob, max_fires)
        with
        | Ok action, Ok prob, Ok max_fires ->
            Ok { point; action; prob; max_fires }
        | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> fail msg)

let parse_plan text =
  String.split_on_char ';' text
  |> List.filter_map (fun s ->
         let s = String.trim s in
         if s = "" then None else Some s)
  |> List.fold_left
       (fun acc s ->
         match (acc, parse_spec s) with
         | Error _, _ -> acc
         | _, (Error _ as e) -> e
         | Ok specs, Ok spec -> Ok (spec :: specs))
       (Ok [])
  |> Result.map List.rev

(* ----------------------------------------------------------- armed state *)

type armed_spec = { spec : spec; mutable remaining : int option }

(* Domain-safety (DESIGN.md §13): the armed plan is shared by every
   domain — remaining-fire counts and tallies live under [mutex] — but
   each domain draws probabilities from {e its own} SplitMix64 stream,
   derived deterministically from (seed, domain index).  That keeps a
   chaos run reproducible under parallelism: a domain's draw sequence
   depends only on its own fault-point visits, never on how the
   scheduler interleaved the other workers. *)
type state = {
  seed : int;
  mutex : Mutex.t;
  rngs : (int, Rng.t) Hashtbl.t;  (* domain index -> probability stream *)
  table : (string, armed_spec list) Hashtbl.t;
  tally : (string, int) Hashtbl.t;
}

let state : state option Atomic.t = Atomic.make None

(* Stream for [domain]: index 0 (the main domain) gets [Rng.create seed]
   exactly — the historical single-domain stream, so existing seeded
   chaos runs reproduce unchanged — and index i > 0 gets an independent
   substream split off a master advanced i steps. *)
let derive_stream ~seed ~domain =
  if domain < 0 then invalid_arg "Fault.derive_stream: negative domain index";
  if domain = 0 then Rng.create seed
  else begin
    let master = Rng.create seed in
    for _ = 1 to domain do
      ignore (Rng.next_int64 master)
    done;
    Rng.split master
  end

(* Worker pools register a stable per-worker index here; unregistered
   domains fall back to the (unique, never-reused) runtime domain id —
   still safe, just not reproducible across runs.  The main domain is
   index 0 by default. *)
let domain_index_key =
  Domain.DLS.new_key (fun () ->
      if Domain.is_main_domain () then 0 else (Domain.self () :> int))

let set_domain_index idx =
  if idx < 0 then invalid_arg "Fault.set_domain_index: negative index";
  Domain.DLS.set domain_index_key idx

(* The calling domain's stream; call with [st.mutex] held (the table is
   shared). *)
let domain_rng st =
  let idx = Domain.DLS.get domain_index_key in
  match Hashtbl.find_opt st.rngs idx with
  | Some rng -> rng
  | None ->
      let rng = derive_stream ~seed:st.seed ~domain:idx in
      Hashtbl.add st.rngs idx rng;
      rng

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let arm ?(seed = 0) specs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt table spec.point) in
      Hashtbl.replace table spec.point
        (prev @ [ { spec; remaining = spec.max_fires } ]))
    specs;
  Atomic.set state
    (Some
       {
         seed;
         mutex = Mutex.create ();
         rngs = Hashtbl.create 8;
         table;
         tally = Hashtbl.create 8;
       })

let disarm () = Atomic.set state None
let armed () = Atomic.get state <> None

let plan () =
  match Atomic.get state with
  | None -> []
  | Some st ->
      locked st @@ fun () ->
      Hashtbl.fold (fun _ specs acc -> List.map (fun a -> a.spec) specs @ acc)
        st.table []

let fires point =
  match Atomic.get state with
  | None -> 0
  | Some st ->
      locked st @@ fun () ->
      Option.value ~default:0 (Hashtbl.find_opt st.tally point)

let env_var = "QR_FAULTS"
let seed_env_var = "QR_FAULTS_SEED"

let arm_from_env () =
  match Sys.getenv_opt "QR_FAULTS" with
  | None | Some "" -> Ok false
  | Some text -> (
      match parse_plan text with
      | Error _ as e -> (e :> (bool, string) result)
      | Ok specs -> (
          match Sys.getenv_opt "QR_FAULTS_SEED" with
          | None ->
              arm specs;
              Ok true
          | Some s -> (
              match int_of_string_opt s with
              | Some seed ->
                  arm ~seed specs;
                  Ok true
              | None ->
                  Error
                    (Printf.sprintf "QR_FAULTS_SEED %S is not an integer" s))))

(* Fire every armed spec at [point] whose action kind the caller can
   apply: draw probability (from the calling domain's stream), consume a
   firing, bump the tally.  Specs the caller cannot apply are skipped
   entirely (no draw, no firing) so the matching helper still sees them.
   Call with [st.mutex] held. *)
let fire st point ~applies =
  match Hashtbl.find_opt st.table point with
  | None -> []
  | Some armed_specs ->
      let rng = domain_rng st in
      List.filter_map
        (fun a ->
          if not (applies a.spec.action) then None
          else if a.remaining = Some 0 then None
          else if a.spec.prob < 1.0 && Rng.float rng 1.0 >= a.spec.prob
          then None
          else begin
            (match a.remaining with
            | Some n -> a.remaining <- Some (n - 1)
            | None -> ());
            Hashtbl.replace st.tally point
              (1 + Option.value ~default:0 (Hashtbl.find_opt st.tally point));
            Metrics.incr c_injections;
            Some a.spec.action
          end)
        armed_specs

let point name ~f =
  match Atomic.get state with
  | None -> f ()
  | Some st ->
      (* Fire under the lock; sleep and raise outside it. *)
      let actions =
        locked st (fun () ->
            fire st name ~applies:(function
              | Raise | Raise_errno _ | Delay_ms _ -> true
              | Truncate | Corrupt -> false))
      in
      List.iter
        (function
          | Delay_ms ms -> Unix.sleepf (float_of_int ms /. 1000.)
          | Raise -> raise (Injected name)
          | Raise_errno e -> raise (Unix.Unix_error (e, "fault", name))
          | Truncate | Corrupt -> ())
        actions;
      f ()

let corrupt name mangle v =
  match Atomic.get state with
  | None -> v
  | Some st ->
      if
        locked st (fun () ->
            fire st name ~applies:(function Corrupt -> true | _ -> false))
        <> []
      then mangle v
      else v

let truncate name len =
  match Atomic.get state with
  | None -> len
  | Some st ->
      if len <= 1 then len
      else
        locked st (fun () ->
            if
              fire st name ~applies:(function Truncate -> true | _ -> false)
              <> []
            then 1 + Rng.int (domain_rng st) (len - 1)
            else len)
