module Rng = Qr_util.Rng
module Metrics = Qr_obs.Metrics

let c_injections = Metrics.counter "fault_injections"

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected point -> Some (Printf.sprintf "Fault.Injected(%s)" point)
    | _ -> None)

type action =
  | Raise
  | Raise_errno of Unix.error
  | Delay_ms of int
  | Truncate
  | Corrupt

type spec = {
  point : string;
  action : action;
  prob : float;
  max_fires : int option;
}

(* ------------------------------------------------------------- rendering *)

let errno_name = function
  | Unix.EINTR -> "eintr"
  | Unix.EPIPE -> "epipe"
  | Unix.ECONNRESET -> "econnreset"
  | e -> Unix.error_message e

let action_to_string = function
  | Raise -> "raise"
  | Raise_errno e -> Printf.sprintf "raise(%s)" (errno_name e)
  | Delay_ms ms -> Printf.sprintf "delay(%d)" ms
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"

let spec_to_string s =
  Printf.sprintf "%s=%s%s%s" s.point
    (action_to_string s.action)
    (if s.prob = 1.0 then "" else Printf.sprintf "@%g" s.prob)
    (match s.max_fires with
    | None -> ""
    | Some n -> Printf.sprintf "#%d" n)

let to_string specs = String.concat ";" (List.map spec_to_string specs)

(* --------------------------------------------------------------- parsing *)

let parse_action text =
  match text with
  | "raise" | "raise(injected)" -> Ok Raise
  | "raise(eintr)" -> Ok (Raise_errno Unix.EINTR)
  | "raise(epipe)" -> Ok (Raise_errno Unix.EPIPE)
  | "raise(econnreset)" -> Ok (Raise_errno Unix.ECONNRESET)
  | "truncate" -> Ok Truncate
  | "corrupt" -> Ok Corrupt
  | _ ->
      let n = String.length text in
      if n > 7 && String.sub text 0 6 = "delay(" && text.[n - 1] = ')' then
        match int_of_string_opt (String.sub text 6 (n - 7)) with
        | Some ms when ms >= 0 -> Ok (Delay_ms ms)
        | _ ->
            Error
              (Printf.sprintf "bad delay %S: expected delay(<nonnegative ms>)"
                 text)
      else
        Error
          (Printf.sprintf
             "unknown action %S (raise, raise(eintr|epipe|econnreset), \
              delay(<ms>), truncate, corrupt)"
             text)

(* One spec: point=action with optional @prob / #count suffixes in either
   order.  Action parameters never contain '@' or '#', so the first of
   either character ends the action text. *)
let parse_spec text =
  let fail msg = Error (Printf.sprintf "spec %S: %s" text msg) in
  match String.index_opt text '=' with
  | None -> fail "expected point=action"
  | Some eq -> (
      let point = String.trim (String.sub text 0 eq) in
      let rhs =
        String.trim (String.sub text (eq + 1) (String.length text - eq - 1))
      in
      if point = "" then fail "empty point name"
      else
        let idx_at = String.index_opt rhs '@' in
        let idx_hash = String.index_opt rhs '#' in
        let action_end =
          match (idx_at, idx_hash) with
          | None, None -> String.length rhs
          | Some i, None | None, Some i -> i
          | Some i, Some j -> min i j
        in
        (* A suffix runs to the start of the other suffix or to the end. *)
        let suffix_of start =
          let stop =
            List.fold_left
              (fun stop -> function
                | Some i when i > start && i < stop -> i
                | _ -> stop)
              (String.length rhs)
              [ idx_at; idx_hash ]
          in
          String.sub rhs (start + 1) (stop - start - 1)
        in
        let prob =
          match idx_at with
          | None -> Ok 1.0
          | Some i -> (
              let s = suffix_of i in
              match float_of_string_opt s with
              | Some p when p > 0.0 && p <= 1.0 -> Ok p
              | _ ->
                  Error
                    (Printf.sprintf "bad probability %S: expected @p with p \
                                     in (0, 1]" s))
        in
        let max_fires =
          match idx_hash with
          | None -> Ok None
          | Some i -> (
              let s = suffix_of i in
              match int_of_string_opt s with
              | Some n when n >= 1 -> Ok (Some n)
              | _ ->
                  Error
                    (Printf.sprintf "bad count %S: expected #n with n >= 1" s))
        in
        match (parse_action (String.sub rhs 0 action_end), prob, max_fires)
        with
        | Ok action, Ok prob, Ok max_fires ->
            Ok { point; action; prob; max_fires }
        | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> fail msg)

let parse_plan text =
  String.split_on_char ';' text
  |> List.filter_map (fun s ->
         let s = String.trim s in
         if s = "" then None else Some s)
  |> List.fold_left
       (fun acc s ->
         match (acc, parse_spec s) with
         | Error _, _ -> acc
         | _, (Error _ as e) -> e
         | Ok specs, Ok spec -> Ok (spec :: specs))
       (Ok [])
  |> Result.map List.rev

(* ----------------------------------------------------------- armed state *)

type armed_spec = { spec : spec; mutable remaining : int option }

type state = {
  rng : Rng.t;
  table : (string, armed_spec list) Hashtbl.t;
  tally : (string, int) Hashtbl.t;
}

let state : state option ref = ref None

let arm ?(seed = 0) specs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt table spec.point) in
      Hashtbl.replace table spec.point
        (prev @ [ { spec; remaining = spec.max_fires } ]))
    specs;
  state := Some { rng = Rng.create seed; table; tally = Hashtbl.create 8 }

let disarm () = state := None
let armed () = !state <> None

let plan () =
  match !state with
  | None -> []
  | Some st ->
      Hashtbl.fold (fun _ specs acc -> List.map (fun a -> a.spec) specs @ acc)
        st.table []

let fires point =
  match !state with
  | None -> 0
  | Some st -> Option.value ~default:0 (Hashtbl.find_opt st.tally point)

let env_var = "QR_FAULTS"
let seed_env_var = "QR_FAULTS_SEED"

let arm_from_env () =
  match Sys.getenv_opt "QR_FAULTS" with
  | None | Some "" -> Ok false
  | Some text -> (
      match parse_plan text with
      | Error _ as e -> (e :> (bool, string) result)
      | Ok specs -> (
          match Sys.getenv_opt "QR_FAULTS_SEED" with
          | None ->
              arm specs;
              Ok true
          | Some s -> (
              match int_of_string_opt s with
              | Some seed ->
                  arm ~seed specs;
                  Ok true
              | None ->
                  Error
                    (Printf.sprintf "QR_FAULTS_SEED %S is not an integer" s))))

(* Fire every armed spec at [point] whose action kind the caller can
   apply: draw probability, consume a firing, bump the tally.  Specs the
   caller cannot apply are skipped entirely (no draw, no firing) so the
   matching helper still sees them. *)
let fire st point ~applies =
  match Hashtbl.find_opt st.table point with
  | None -> []
  | Some armed_specs ->
      List.filter_map
        (fun a ->
          if not (applies a.spec.action) then None
          else if a.remaining = Some 0 then None
          else if a.spec.prob < 1.0 && Rng.float st.rng 1.0 >= a.spec.prob
          then None
          else begin
            (match a.remaining with
            | Some n -> a.remaining <- Some (n - 1)
            | None -> ());
            Hashtbl.replace st.tally point
              (1 + Option.value ~default:0 (Hashtbl.find_opt st.tally point));
            Metrics.incr c_injections;
            Some a.spec.action
          end)
        armed_specs

let point name ~f =
  match !state with
  | None -> f ()
  | Some st ->
      List.iter
        (function
          | Delay_ms ms -> Unix.sleepf (float_of_int ms /. 1000.)
          | Raise -> raise (Injected name)
          | Raise_errno e -> raise (Unix.Unix_error (e, "fault", name))
          | Truncate | Corrupt -> ())
        (fire st name ~applies:(function
          | Raise | Raise_errno _ | Delay_ms _ -> true
          | Truncate | Corrupt -> false));
      f ()

let corrupt name mangle v =
  match !state with
  | None -> v
  | Some st ->
      if
        fire st name ~applies:(function Corrupt -> true | _ -> false) <> []
      then mangle v
      else v

let truncate name len =
  match !state with
  | None -> len
  | Some st ->
      if len <= 1 then len
      else if
        fire st name ~applies:(function Truncate -> true | _ -> false) <> []
      then 1 + Rng.int st.rng (len - 1)
      else len
