type t = { size : int; dist : int -> int -> int }

let dist t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Distance.dist: vertex out of range";
  t.dist u v

let size t = t.size

let of_grid grid =
  { size = Grid.size grid; dist = (fun u v -> Grid.manhattan grid u v) }

let of_graph g =
  let table = Bfs.all_pairs g in
  { size = Graph.num_vertices g; dist = (fun u v -> table.(u).(v)) }

let of_graph_lazy g =
  let n = Graph.num_vertices g in
  let rows : int array option array = Array.make n None in
  let row u =
    match rows.(u) with
    | Some r -> r
    | None ->
        let r = Bfs.distances g u in
        rows.(u) <- Some r;
        r
  in
  { size = n; dist = (fun u v -> (row u).(v)) }

let of_product d1 d2 =
  let n2 = d2.size in
  let total = d1.size * n2 in
  let product_dist x y =
    let ux = x / n2 and vx = x mod n2 in
    let uy = y / n2 and vy = y mod n2 in
    d1.dist ux uy + d2.dist vx vy
  in
  { size = total; dist = product_dist }
