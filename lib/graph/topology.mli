(** Extra coupling-graph topologies beyond grids and products.

    The paper's motivation (§I) notes that most superconducting layouts are
    planar and "close to" a grid.  The heavy-hex lattice (IBM's production
    topology) is the canonical example: rows of qubits joined by degree-2
    bridge qubits, every vertex of degree ≤ 3.  The matching-based grid
    routers do not apply directly, but the token-swapping strategies (and
    the transpilers) work on any connected graph — these constructors give
    the tests and benchmarks realistic non-grid instances. *)

type heavy_hex = {
  graph : Graph.t;
  data_rows : int;  (** Number of qubit rows. *)
  row_length : int;  (** Qubits per row. *)
  bridges : (int * int * int) list;
      (** Each bridge as [(vertex, upper_neighbor, lower_neighbor)]. *)
}

val heavy_hex : rows:int -> cols:int -> heavy_hex
(** A heavy-hex-style lattice with [rows] paths of [cols] qubits and
    alternating-offset bridge qubits between consecutive rows (period 4,
    offsets 0/2, IBM-style).  Row qubit [(r, c)] has flat index
    [r*cols + c]; bridges are numbered afterwards.  The result is connected
    and has maximum degree 3.  @raise Invalid_argument unless both
    dimensions are positive. *)

val ladder : int -> Graph.t
(** The 2×n grid as a plain graph — a convenience for tests. *)

val ibm_falcon_27 : unit -> Graph.t
(** The 27-qubit IBM Falcon coupling map (e.g. ibmq_mumbai), hard-coded —
    a realistic fixed instance for benchmarks. *)
