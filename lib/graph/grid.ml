type t = { rows : int; cols : int; graph : Graph.t }

let build_edges rows cols =
  let idx r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (idx r c, idx r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (idx r c, idx (r + 1) c) :: !acc
    done
  done;
  !acc

let make ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.make: dimensions must be positive";
  { rows; cols; graph = Graph.of_edges ~n:(rows * cols) (build_edges rows cols) }

let rows t = t.rows

let cols t = t.cols

let size t = t.rows * t.cols

let graph t = t.graph

let in_bounds t r c = r >= 0 && r < t.rows && c >= 0 && c < t.cols

let index t r c =
  if not (in_bounds t r c) then invalid_arg "Grid.index: out of bounds";
  (r * t.cols) + c

let coord t v =
  if v < 0 || v >= size t then invalid_arg "Grid.coord: out of bounds";
  (v / t.cols, v mod t.cols)

let row_of t v = fst (coord t v)

let col_of t v = snd (coord t v)

let manhattan t u v =
  let ru, cu = coord t u and rv, cv = coord t v in
  abs (ru - rv) + abs (cu - cv)

let transpose t = make ~rows:t.cols ~cols:t.rows

let transpose_vertex t v =
  let r, c = coord t v in
  (c * t.rows) + r

let vertices_in_row t r =
  if r < 0 || r >= t.rows then invalid_arg "Grid.vertices_in_row";
  Array.init t.cols (fun c -> (r * t.cols) + c)

let vertices_in_col t c =
  if c < 0 || c >= t.cols then invalid_arg "Grid.vertices_in_col";
  Array.init t.rows (fun r -> (r * t.cols) + c)

let pp fmt t = Format.fprintf fmt "grid(%dx%d)" t.rows t.cols
