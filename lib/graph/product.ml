type t = { left : Graph.t; right : Graph.t; graph : Graph.t }

let build_edges g1 g2 =
  let n2 = Graph.num_vertices g2 in
  let idx u v = (u * n2) + v in
  let acc = ref [] in
  for u = 0 to Graph.num_vertices g1 - 1 do
    Graph.iter_edges g2 (fun v v' -> acc := (idx u v, idx u v') :: !acc)
  done;
  (* One copy of G1 per vertex of G2. *)
  Graph.iter_edges g1 (fun u u' ->
      for v = 0 to n2 - 1 do
        acc := (idx u v, idx u' v) :: !acc
      done);
  !acc

let make g1 g2 =
  let n = Graph.num_vertices g1 * Graph.num_vertices g2 in
  { left = g1; right = g2; graph = Graph.of_edges ~n (build_edges g1 g2) }

let left t = t.left

let right t = t.right

let graph t = t.graph

let size t = Graph.num_vertices t.graph

let index t u v =
  let n1 = Graph.num_vertices t.left and n2 = Graph.num_vertices t.right in
  if u < 0 || u >= n1 || v < 0 || v >= n2 then invalid_arg "Product.index";
  (u * n2) + v

let coord t x =
  if x < 0 || x >= size t then invalid_arg "Product.coord";
  let n2 = Graph.num_vertices t.right in
  (x / n2, x mod n2)

let transpose t = make t.right t.left

let transpose_vertex t x =
  let u, v = coord t x in
  (v * Graph.num_vertices t.left) + u

let of_grid grid = make (Graph.path (Grid.rows grid)) (Graph.path (Grid.cols grid))
