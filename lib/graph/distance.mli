(** Distance oracles: a uniform [dist u v] interface with per-topology
    implementations.

    The token-swapping baseline queries distances inside its innermost loop.
    On grids the closed-form Manhattan metric avoids the O(V²) all-pairs
    table; on Cartesian products distances add across factors; for arbitrary
    graphs we fall back to a precomputed BFS table. *)

type t

val dist : t -> int -> int -> int
(** Shortest-path distance between two flat vertex indices. *)

val size : t -> int
(** Number of vertices the oracle covers. *)

val of_grid : Grid.t -> t
(** O(1) Manhattan metric; no precomputation. *)

val of_graph : Graph.t -> t
(** All-pairs BFS table: O(V·(V+E)) setup, O(1) queries, O(V²) space. *)

val of_graph_lazy : Graph.t -> t
(** Per-source BFS rows computed on first use and memoized: pays only for
    the sources actually queried. *)

val of_product : t -> t -> t
(** [of_product d1 d2] is the oracle for [G1 □ G2] given factor oracles,
    using [dist ((u,v),(u',v')) = d1 u u' + d2 v v'].  Flattening matches
    {!Product.index}. *)
