(** Undirected simple graphs in compressed sparse row (CSR) form.

    Vertices are integers [0..n-1].  The representation is immutable after
    construction: two flat arrays (offsets and concatenated sorted adjacency
    lists), which keeps traversals cache-friendly on the grid sizes the
    benchmarks sweep (thousands of vertices, visited millions of times). *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on [n] vertices.  Self-loops and
    duplicate edges are rejected.  @raise Invalid_argument on loops,
    duplicates, or endpoints outside [0..n-1]. *)

val num_vertices : t -> int

val num_edges : t -> int

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** Sorted array of neighbors (fresh copy; callers may mutate it). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate neighbors in increasing order without allocating. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** Edge test by binary search: O(log degree). *)

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v], in lexicographic order. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val is_connected : t -> bool
(** Whether the graph is connected ([true] for the empty graph). *)

val max_degree : t -> int

(** {2 Standard constructors} *)

val path : int -> t
(** [path n] is P_n: vertices [0..n-1], edges [(i, i+1)]. *)

val cycle : int -> t
(** [cycle n] is C_n; requires [n >= 3]. *)

val complete : int -> t
(** [complete n] is K_n. *)

val star : int -> t
(** [star n] has center 0 joined to [1..n-1]. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering: vertex count and edge list. *)
