let distances g src =
  let n = Graph.num_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let distance g u v = (distances g u).(v)

let parents g src =
  let n = Graph.num_vertices g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  parent.(src) <- src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* Neighbors are iterated in increasing order, so the first discoverer of
       a vertex is its smallest-index predecessor: deterministic paths. *)
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
  done;
  parent

let shortest_path g u v =
  let parent = parents g v in
  if parent.(u) = -1 && u <> v then raise Not_found;
  let rec walk x acc = if x = v then List.rev (v :: acc) else walk parent.(x) (x :: acc) in
  walk u []

let all_pairs g = Array.init (Graph.num_vertices g) (fun v -> distances g v)

let eccentricity g v =
  let dist = distances g v in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Bfs.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  let n = Graph.num_vertices g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (eccentricity g v)
  done;
  !best
