type heavy_hex = {
  graph : Graph.t;
  data_rows : int;
  row_length : int;
  bridges : (int * int * int) list;
}

let heavy_hex ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Topology.heavy_hex: dimensions must be positive";
  let row_index r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 2 do
      edges := (row_index r c, row_index r (c + 1)) :: !edges
    done
  done;
  let bridges = ref [] in
  let next_bridge = ref (rows * cols) in
  for r = 0 to rows - 2 do
    (* Bridge columns every 4 positions, offset alternating 0/2 like the
       IBM lattice; always at least one bridge so the graph is connected. *)
    let offset = if r mod 2 = 0 then 0 else 2 mod cols in
    let columns = ref [] in
    let c = ref offset in
    while !c < cols do
      columns := !c :: !columns;
      c := !c + 4
    done;
    if !columns = [] then columns := [ 0 ];
    List.iter
      (fun c ->
        let bridge = !next_bridge in
        incr next_bridge;
        let upper = row_index r c and lower = row_index (r + 1) c in
        edges := (bridge, upper) :: (bridge, lower) :: !edges;
        bridges := (bridge, upper, lower) :: !bridges)
      !columns
  done;
  {
    graph = Graph.of_edges ~n:!next_bridge !edges;
    data_rows = rows;
    row_length = cols;
    bridges = List.rev !bridges;
  }

let ladder n =
  Grid.graph (Grid.make ~rows:2 ~cols:n)

let ibm_falcon_27 () =
  Graph.of_edges ~n:27
    [
      (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7);
      (7, 10); (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15);
      (13, 14); (14, 16); (15, 18); (16, 19); (17, 18); (18, 21); (19, 20);
      (19, 22); (21, 23); (22, 25); (23, 24); (24, 25); (25, 26);
    ]
