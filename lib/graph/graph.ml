type t = {
  n : int;
  offsets : int array; (* length n+1 *)
  adjacency : int array; (* concatenated sorted neighbor lists *)
}

let num_vertices t = t.n

let num_edges t = Array.length t.adjacency / 2

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbors t v f =
  for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.adjacency.(k)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  iter_neighbors t v (fun u -> acc := f !acc u);
  !acc

let neighbors t v =
  Array.sub t.adjacency t.offsets.(v) (degree t v)

let mem_edge t u v =
  let lo = ref t.offsets.(u) and hi = ref (t.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adjacency.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for u = 0 to t.n - 1 do
    iter_neighbors t u (fun v -> if u < v then f u v)
  done

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative vertex count";
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: self-loop"
  in
  List.iter check edge_list;
  let deg = Array.make n 0 in
  let bump (u, v) =
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  in
  List.iter bump edge_list;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adjacency = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  let place (u, v) =
    adjacency.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    adjacency.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  in
  List.iter place edge_list;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and len = offsets.(v + 1) - offsets.(v) in
    let slice = Array.sub adjacency lo len in
    Array.sort compare slice;
    Array.blit slice 0 adjacency lo len;
    for k = lo + 1 to lo + len - 1 do
      if adjacency.(k) = adjacency.(k - 1) then
        invalid_arg "Graph.of_edges: duplicate edge"
    done
  done;
  { n; offsets; adjacency }

let is_connected t =
  if t.n = 0 then true
  else begin
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      iter_neighbors t u (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            Queue.add v queue
          end)
    done;
    !visited = t.n
  end

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    if degree t v > !best then best := degree t v
  done;
  !best

let path n =
  let rec build i acc = if i >= n - 1 then acc else build (i + 1) ((i, i + 1) :: acc) in
  of_edges ~n (build 0 [])

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need at least 3 vertices";
  let rec build i acc = if i >= n - 1 then acc else build (i + 1) ((i, i + 1) :: acc) in
  of_edges ~n ((0, n - 1) :: build 0 [])

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  of_edges ~n !acc

let star n =
  let rec build i acc = if i >= n then acc else build (i + 1) ((0, i) :: acc) in
  of_edges ~n (build 1 [])

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>graph(n=%d, m=%d:" t.n (num_edges t);
  iter_edges t (fun u v -> Format.fprintf fmt "@ %d-%d" u v);
  Format.fprintf fmt ")@]"
