(** Cartesian products of graphs, the "grid-like" architectures of the paper.

    The product [G1 □ G2] has vertex set [V1 × V2]; [(u, v)] and [(u', v')]
    are adjacent iff [u = u'] and [(v, v') ∈ E2], or [v = v'] and
    [(u, u') ∈ E1].  The [m×n] grid is [path m □ path n].  Vertices are
    flattened as [u * n2 + v] where [n2 = |V2|], mirroring {!Grid}'s
    row-major layout so grid-specific and product-generic code agree. *)

type t

val make : Graph.t -> Graph.t -> t
(** [make g1 g2] is [g1 □ g2]. *)

val left : t -> Graph.t
(** First factor. *)

val right : t -> Graph.t
(** Second factor. *)

val graph : t -> Graph.t
(** The product graph itself. *)

val size : t -> int

val index : t -> int -> int -> int
(** [index p u v] flattens a pair of factor vertices. *)

val coord : t -> int -> int * int
(** Inverse of {!index}. *)

val transpose : t -> t
(** [g2 □ g1]. *)

val transpose_vertex : t -> int -> int
(** Flat index of the mirrored pair in [transpose p]. *)

val of_grid : Grid.t -> t
(** View a grid as [path rows □ path cols]; flat indices coincide. *)
