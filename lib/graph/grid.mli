(** The [rows × cols] grid coupling graph and its coordinate arithmetic.

    Following the paper's convention, the grid is the Cartesian product
    [P_rows □ P_cols]: vertex [(r, c)] with [r] a row index in [0..rows-1]
    and [c] a column index in [0..cols-1].  Internally vertices are flattened
    row-major: [index (r, c) = r * cols + c].  All routing code addresses
    vertices by flat index; this module is the single place that knows the
    encoding. *)

type t

val make : rows:int -> cols:int -> t
(** Build the grid.  @raise Invalid_argument unless both dimensions are
    positive. *)

val rows : t -> int

val cols : t -> int

val size : t -> int
(** [rows * cols]. *)

val graph : t -> Graph.t
(** Underlying coupling graph. *)

val index : t -> int -> int -> int
(** [index g r c] flattens a coordinate.  @raise Invalid_argument when out of
    bounds. *)

val coord : t -> int -> int * int
(** [coord g v] is the [(row, col)] of flat index [v]. *)

val row_of : t -> int -> int

val col_of : t -> int -> int

val in_bounds : t -> int -> int -> bool

val manhattan : t -> int -> int -> int
(** Shortest-path distance between two flat indices (closed form). *)

val transpose : t -> t
(** The [cols × rows] grid. *)

val transpose_vertex : t -> int -> int
(** [transpose_vertex g v] maps flat index [v] of [g] to the flat index of
    the mirrored coordinate [(c, r)] in [transpose g]. *)

val vertices_in_row : t -> int -> int array
(** Flat indices of a row, left to right. *)

val vertices_in_col : t -> int -> int array
(** Flat indices of a column, top to bottom. *)

val pp : Format.formatter -> t -> unit
