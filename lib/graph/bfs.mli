(** Breadth-first search primitives: distances, shortest-path trees, and
    all-pairs tables.  The token-swapping baseline consumes these heavily
    (each swap decision asks "which neighbor is closer to the token's
    destination?"). *)

val distances : Graph.t -> int -> int array
(** [distances g src] maps every vertex to its hop distance from [src];
    unreachable vertices get [max_int]. *)

val distance : Graph.t -> int -> int -> int
(** Single-pair distance via one BFS; [max_int] when unreachable. *)

val parents : Graph.t -> int -> int array
(** Shortest-path tree towards [src]: [parents.(v)] is the next vertex on a
    shortest [v → src] path ([src] maps to itself; unreachable to [-1]).
    Among equal-distance neighbors the smallest index is chosen, making
    paths deterministic. *)

val shortest_path : Graph.t -> int -> int -> int list
(** [shortest_path g u v] lists the vertices of one shortest path, inclusive
    of both endpoints.  @raise Not_found when disconnected. *)

val all_pairs : Graph.t -> int array array
(** [all_pairs g] runs one BFS per vertex: [result.(u).(v)] is the distance.
    O(V·(V+E)) time, O(V²) space — fine for the grids we sweep. *)

val eccentricity : Graph.t -> int -> int
(** Largest finite distance from the vertex.  @raise Invalid_argument if the
    graph is disconnected. *)

val diameter : Graph.t -> int
(** Largest eccentricity.  @raise Invalid_argument if disconnected. *)
