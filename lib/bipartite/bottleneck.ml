module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics

type edge = { l : int; r : int; weight : int }

let c_probes = Metrics.counter "bottleneck_thresholds_probed"

type solution = {
  bottleneck : int;
  pairs : (int * int) list;
  left_match : int array;
}

let matching_size ~nl ~nr kept =
  let edges = Array.of_list (List.map (fun e -> (e.l, e.r)) kept) in
  Hopcroft_karp.solve ~nl ~nr ~edges

let solve ~nl ~nr edge_list =
  Trace.with_span "bottleneck_solve" @@ fun () ->
  List.iter
    (fun e ->
      if e.l < 0 || e.l >= nl || e.r < 0 || e.r >= nr then
        invalid_arg "Bottleneck.solve: endpoint out of range")
    edge_list;
  let full = matching_size ~nl ~nr edge_list in
  let target = full.size in
  if target = 0 then { bottleneck = min_int; pairs = []; left_match = Array.make nl (-1) }
  else begin
    let weights =
      List.sort_uniq compare (List.map (fun e -> e.weight) edge_list)
    in
    let weight_array = Array.of_list weights in
    (* Smallest threshold index whose filtered graph still reaches the
       maximum cardinality. *)
    let feasible idx =
      Metrics.incr c_probes;
      let kept = List.filter (fun e -> e.weight <= weight_array.(idx)) edge_list in
      let result = matching_size ~nl ~nr kept in
      result.size >= target
    in
    let lo = ref 0 and hi = ref (Array.length weight_array - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if feasible mid then hi := mid else lo := mid + 1
    done;
    let threshold = weight_array.(!lo) in
    let kept = List.filter (fun e -> e.weight <= threshold) edge_list in
    let kept_array = Array.of_list kept in
    let edges = Array.map (fun e -> (e.l, e.r)) kept_array in
    let result = Hopcroft_karp.solve ~nl ~nr ~edges in
    assert (result.size = target);
    let left_match = Array.make nl (-1) in
    let pairs = ref [] in
    let bottleneck = ref min_int in
    Array.iteri
      (fun l k ->
        if k >= 0 then begin
          let e = kept_array.(k) in
          left_match.(l) <- e.r;
          pairs := (l, e.r) :: !pairs;
          if e.weight > !bottleneck then bottleneck := e.weight
        end)
      result.left_match;
    { bottleneck = !bottleneck; pairs = List.rev !pairs; left_match }
  end

let solve_complete ~weights =
  let nl = Array.length weights in
  let nr = if nl = 0 then 0 else Array.length weights.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> nr then
        invalid_arg "Bottleneck.solve_complete: ragged matrix")
    weights;
  let edge_list = ref [] in
  for l = nl - 1 downto 0 do
    for r = nr - 1 downto 0 do
      edge_list := { l; r; weight = weights.(l).(r) } :: !edge_list
    done
  done;
  solve ~nl ~nr !edge_list

let brute_force ~nl ~nr edge_list =
  if max nl nr > 10 then invalid_arg "Bottleneck.brute_force: instance too big";
  let full = matching_size ~nl ~nr edge_list in
  let target = full.size in
  let best = ref max_int in
  let used_r = Array.make nr false in
  (* Enumerate all matchings by left vertex, track size and bottleneck. *)
  let by_left = Array.make nl [] in
  List.iter (fun e -> by_left.(e.l) <- e :: by_left.(e.l)) edge_list;
  let rec go l size bottleneck =
    if l = nl then begin
      if size = target && bottleneck < !best then best := bottleneck
    end
    else begin
      (* Option 1: leave l unmatched (only useful if target still
         reachable). *)
      if size + (nl - l - 1) >= target then go (l + 1) size bottleneck;
      List.iter
        (fun e ->
          if not used_r.(e.r) then begin
            used_r.(e.r) <- true;
            go (l + 1) (size + 1) (max bottleneck e.weight);
            used_r.(e.r) <- false
          end)
        by_left.(l)
    end
  in
  go 0 0 min_int;
  !best
