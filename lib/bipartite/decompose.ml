module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics

let c_matchings = Metrics.counter "matchings_extracted"

let check_regular ~nl ~nr ~edges =
  if nl <> nr then invalid_arg "Decompose: sides must have equal size";
  if nl = 0 then 0
  else begin
    let deg_l = Array.make nl 0 and deg_r = Array.make nr 0 in
    Array.iter
      (fun (l, r) ->
        if l < 0 || l >= nl || r < 0 || r >= nr then
          invalid_arg "Decompose: endpoint out of range";
        deg_l.(l) <- deg_l.(l) + 1;
        deg_r.(r) <- deg_r.(r) + 1)
      edges;
    let d = deg_l.(0) in
    Array.iter
      (fun x -> if x <> d then invalid_arg "Decompose: not regular")
      deg_l;
    Array.iter
      (fun x -> if x <> d then invalid_arg "Decompose: not regular")
      deg_r;
    d
  end

(* Extract one perfect matching from the sub-multigraph given by the edge
   indices [live]; return (matching, remaining indices). *)
let extract_one hk ~nl ~nr ~edges live =
  let sub = Array.of_list live in
  let sub_edges = Array.map (fun k -> edges.(k)) sub in
  let result = Hopcroft_karp.solve_in hk ~nl ~nr ~edges:sub_edges in
  if result.size <> nl then
    invalid_arg "Decompose: no perfect matching in regular graph (bug)";
  let matching = Array.map (fun k -> sub.(k)) result.left_match in
  Metrics.incr c_matchings;
  let used = Hashtbl.create (2 * nl) in
  Array.iter (fun k -> Hashtbl.replace used k ()) matching;
  let remaining = List.filter (fun k -> not (Hashtbl.mem used k)) live in
  (matching, remaining)

let by_extraction_in hk ~nl ~nr ~edges =
  Trace.with_span "decompose_extraction" @@ fun () ->
  let d = check_regular ~nl ~nr ~edges in
  let all = List.init (Array.length edges) (fun k -> k) in
  let rec loop live remaining_degree acc =
    if remaining_degree = 0 then List.rev acc
    else begin
      let matching, rest = extract_one hk ~nl ~nr ~edges live in
      loop rest (remaining_degree - 1) (matching :: acc)
    end
  in
  loop all d []

let by_extraction ~nl ~nr ~edges = by_extraction_in None ~nl ~nr ~edges

(* Split an even-regular edge set into two halves of equal degree by
   alternating edges along Euler circuits.  Vertices: lefts are 0..nl-1,
   rights are nl..nl+nr-1. *)
let euler_split ~nl ~nr ~edges live =
  let total = nl + nr in
  let incidence = Array.make total [] in
  List.iter
    (fun k ->
      let l, r = edges.(k) in
      incidence.(l) <- (k, nl + r) :: incidence.(l);
      incidence.(nl + r) <- (k, l) :: incidence.(nl + r))
    live;
  let cursor = Array.map (fun lst -> ref lst) incidence in
  let used = Hashtbl.create (2 * List.length live) in
  let half_a = ref [] and half_b = ref [] in
  let rec next_unused v =
    match !(cursor.(v)) with
    | [] -> None
    | (k, w) :: rest ->
        cursor.(v) := rest;
        if Hashtbl.mem used k then next_unused v else Some (k, w)
  in
  (* Hierholzer, iterative; the circuit's edges are emitted in reverse walk
     order, which is still a circuit, so alternation stays consistent. *)
  let walk_component start =
    let stack = ref [ (start, -1) ] in
    let circuit = ref [] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, via) :: below -> (
          match next_unused v with
          | Some (k, w) ->
              Hashtbl.replace used k ();
              stack := (w, k) :: !stack
          | None ->
              stack := below;
              if via >= 0 then circuit := via :: !circuit)
    done;
    let side = ref true in
    List.iter
      (fun k ->
        if !side then half_a := k :: !half_a else half_b := k :: !half_b;
        side := not !side)
      !circuit
  in
  List.iter
    (fun k ->
      let l, _ = edges.(k) in
      if not (Hashtbl.mem used k) then walk_component l)
    live;
  (!half_a, !half_b)

(* A 1-regular edge set *is* a perfect matching. *)
let matching_of_one_regular ~nl ~edges live =
  let matching = Array.make nl (-1) in
  List.iter
    (fun k ->
      let l, _ = edges.(k) in
      if matching.(l) <> -1 then
        invalid_arg "Decompose: 1-regular set has duplicate left vertex";
      matching.(l) <- k)
    live;
  Array.iter
    (fun k -> if k = -1 then invalid_arg "Decompose: 1-regular set not perfect")
    matching;
  matching

let by_euler_split_in hk ~nl ~nr ~edges =
  Trace.with_span "decompose_euler_split" @@ fun () ->
  let d = check_regular ~nl ~nr ~edges in
  let rec split live remaining_degree =
    if remaining_degree = 0 then []
    else if remaining_degree = 1 then [ matching_of_one_regular ~nl ~edges live ]
    else if remaining_degree mod 2 = 1 then begin
      let matching, rest = extract_one hk ~nl ~nr ~edges live in
      matching :: split rest (remaining_degree - 1)
    end
    else begin
      let half_a, half_b = euler_split ~nl ~nr ~edges live in
      split half_a (remaining_degree / 2) @ split half_b (remaining_degree / 2)
    end
  in
  split (List.init (Array.length edges) (fun k -> k)) d

let by_euler_split ~nl ~nr ~edges = by_euler_split_in None ~nl ~nr ~edges

let validate ~nl ~nr ~edges matchings =
  let num_edges = Array.length edges in
  let covered = Array.make num_edges false in
  let matching_ok matching =
    Array.length matching = nl
    && begin
         let rights = Array.make nr false in
         let ok = ref true in
         Array.iteri
           (fun l k ->
             if k < 0 || k >= num_edges || covered.(k) then ok := false
             else begin
               covered.(k) <- true;
               let el, er = edges.(k) in
               if el <> l || rights.(er) then ok := false
               else rights.(er) <- true
             end)
           matching;
         !ok
       end
  in
  List.for_all matching_ok matchings
  && Array.for_all (fun c -> c) covered
