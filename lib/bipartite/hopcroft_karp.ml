module Metrics = Qr_obs.Metrics

type result = {
  size : int;
  left_match : int array;
  right_match : int array;
}

let c_calls = Metrics.counter "hk_calls"
let c_phases = Metrics.counter "hk_phases"
let c_augmentations = Metrics.counter "hk_augmentations"

let infinity_dist = max_int

(* Build per-left-vertex adjacency as edge-index lists. *)
let build_adjacency ~nl ~nr ~edges =
  let count = Array.make nl 0 in
  Array.iter
    (fun (l, r) ->
      if l < 0 || l >= nl || r < 0 || r >= nr then
        invalid_arg "Hopcroft_karp: endpoint out of range";
      count.(l) <- count.(l) + 1)
    edges;
  let offsets = Array.make (nl + 1) 0 in
  for l = 0 to nl - 1 do
    offsets.(l + 1) <- offsets.(l) + count.(l)
  done;
  let store = Array.make (Array.length edges) 0 in
  let cursor = Array.copy offsets in
  Array.iteri
    (fun k (l, _) ->
      store.(cursor.(l)) <- k;
      cursor.(l) <- cursor.(l) + 1)
    edges;
  (offsets, store)

let solve ~nl ~nr ~edges =
  Metrics.incr c_calls;
  let offsets, adj = build_adjacency ~nl ~nr ~edges in
  let left_match = Array.make nl (-1) in
  let right_match = Array.make nr (-1) in
  let dist = Array.make nl infinity_dist in
  let queue = Queue.create () in
  let matched_left_of_right r =
    match right_match.(r) with -1 -> -1 | k -> fst edges.(k)
  in
  (* Layered BFS from free left vertices; true iff an augmenting path
     exists. *)
  let bfs () =
    Queue.clear queue;
    for l = 0 to nl - 1 do
      if left_match.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      for k = offsets.(l) to offsets.(l + 1) - 1 do
        let edge = adj.(k) in
        let r = snd edges.(edge) in
        match matched_left_of_right r with
        | -1 -> found := true
        | l' ->
            if dist.(l') = infinity_dist then begin
              dist.(l') <- dist.(l) + 1;
              Queue.add l' queue
            end
      done
    done;
    !found
  in
  let rec dfs l =
    let rec try_edges k =
      if k >= offsets.(l + 1) then begin
        dist.(l) <- infinity_dist;
        false
      end
      else begin
        let edge = adj.(k) in
        let r = snd edges.(edge) in
        let advance =
          match matched_left_of_right r with
          | -1 -> true
          | l' -> dist.(l') = dist.(l) + 1 && dfs l'
        in
        if advance then begin
          left_match.(l) <- edge;
          right_match.(r) <- edge;
          true
        end
        else try_edges (k + 1)
      end
    in
    try_edges offsets.(l)
  in
  let size = ref 0 in
  while bfs () do
    Metrics.incr c_phases;
    for l = 0 to nl - 1 do
      if left_match.(l) = -1 && dfs l then begin
        incr size;
        Metrics.incr c_augmentations
      end
    done
  done;
  { size = !size; left_match; right_match }

let is_perfect ~nl ~nr result = nl = nr && result.size = nl

let hall_violator ~nl ~nr ~edges result =
  ignore nr;
  let free = ref [] in
  for l = nl - 1 downto 0 do
    if result.left_match.(l) = -1 then free := l :: !free
  done;
  match !free with
  | [] -> None
  | free_lefts ->
      (* Alternating BFS from all free left vertices: follow any edge
         left→right, then matched edge right→left.  The reachable left set S
         has N(S) = reachable rights, all matched, and |N(S)| = |S| - #free,
         hence a Hall violator. *)
      let seen_l = Array.make nl false in
      let seen_r = Array.make (Array.length result.right_match) false in
      let adjacency = Array.make nl [] in
      Array.iter
        (fun (l, r) -> adjacency.(l) <- r :: adjacency.(l))
        edges;
      let queue = Queue.create () in
      List.iter
        (fun l ->
          seen_l.(l) <- true;
          Queue.add l queue)
        free_lefts;
      while not (Queue.is_empty queue) do
        let l = Queue.pop queue in
        List.iter
          (fun r ->
            if not seen_r.(r) then begin
              seen_r.(r) <- true;
              match result.right_match.(r) with
              | -1 -> () (* impossible for a maximum matching *)
              | k ->
                  let l' = fst edges.(k) in
                  if not seen_l.(l') then begin
                    seen_l.(l') <- true;
                    Queue.add l' queue
                  end
            end)
          adjacency.(l)
      done;
      let violator = ref [] in
      for l = nl - 1 downto 0 do
        if seen_l.(l) then violator := l :: !violator
      done;
      Some !violator
