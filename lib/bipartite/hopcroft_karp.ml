module Metrics = Qr_obs.Metrics
module Cancel = Qr_util.Cancel

type result = {
  size : int;
  left_match : int array;
  right_match : int array;
}

(* Reusable scratch for repeated solves (adjacency build + BFS layers).
   The matched arrays are excluded: they are the result and must survive
   the next call.  Arrays grow monotonically and are never shrunk, so a
   workspace sized by the largest instance serves a whole batch. *)
type workspace = {
  mutable count : int array;
  mutable offsets : int array;
  mutable cursor : int array;
  mutable store : int array;
  mutable dist : int array;
  queue : int Queue.t;
}

let make_workspace () =
  {
    count = [||];
    offsets = [||];
    cursor = [||];
    store = [||];
    dist = [||];
    queue = Queue.create ();
  }

let workspace = make_workspace

let grown arr n = if Array.length arr >= n then arr else Array.make n 0

let c_calls = Metrics.counter "hk_calls"
let c_phases = Metrics.counter "hk_phases"
let c_augmentations = Metrics.counter "hk_augmentations"

let infinity_dist = max_int

(* Build per-left-vertex adjacency as edge-index lists, into the
   workspace's buffers. *)
let build_adjacency ws ~nl ~nr ~edges =
  ws.count <- grown ws.count nl;
  Array.fill ws.count 0 nl 0;
  Array.iter
    (fun (l, r) ->
      if l < 0 || l >= nl || r < 0 || r >= nr then
        invalid_arg "Hopcroft_karp: endpoint out of range";
      ws.count.(l) <- ws.count.(l) + 1)
    edges;
  ws.offsets <- grown ws.offsets (nl + 1);
  ws.offsets.(0) <- 0;
  for l = 0 to nl - 1 do
    ws.offsets.(l + 1) <- ws.offsets.(l) + ws.count.(l)
  done;
  ws.store <- grown ws.store (Array.length edges);
  ws.cursor <- grown ws.cursor nl;
  Array.blit ws.offsets 0 ws.cursor 0 nl;
  Array.iteri
    (fun k (l, _) ->
      ws.store.(ws.cursor.(l)) <- k;
      ws.cursor.(l) <- ws.cursor.(l) + 1)
    edges

let solve_in ws ~nl ~nr ~edges =
  Metrics.incr c_calls;
  (* Cooperative cancellation (DESIGN.md §14): fetched once per solve,
     polled once per BFS phase — the unit of work that is bounded for any
     single instance but repeated without bound across a band search. *)
  let cancel = Cancel.ambient () in
  let ws = match ws with Some ws -> ws | None -> make_workspace () in
  build_adjacency ws ~nl ~nr ~edges;
  let offsets = ws.offsets and adj = ws.store in
  let left_match = Array.make nl (-1) in
  let right_match = Array.make nr (-1) in
  ws.dist <- grown ws.dist nl;
  let dist = ws.dist in
  let queue = ws.queue in
  let matched_left_of_right r =
    match right_match.(r) with -1 -> -1 | k -> fst edges.(k)
  in
  (* Layered BFS from free left vertices; true iff an augmenting path
     exists. *)
  let bfs () =
    Queue.clear queue;
    for l = 0 to nl - 1 do
      if left_match.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      for k = offsets.(l) to offsets.(l + 1) - 1 do
        let edge = adj.(k) in
        let r = snd edges.(edge) in
        match matched_left_of_right r with
        | -1 -> found := true
        | l' ->
            if dist.(l') = infinity_dist then begin
              dist.(l') <- dist.(l) + 1;
              Queue.add l' queue
            end
      done
    done;
    !found
  in
  let rec dfs l =
    let rec try_edges k =
      if k >= offsets.(l + 1) then begin
        dist.(l) <- infinity_dist;
        false
      end
      else begin
        let edge = adj.(k) in
        let r = snd edges.(edge) in
        let advance =
          match matched_left_of_right r with
          | -1 -> true
          | l' -> dist.(l') = dist.(l) + 1 && dfs l'
        in
        if advance then begin
          left_match.(l) <- edge;
          right_match.(r) <- edge;
          true
        end
        else try_edges (k + 1)
      end
    in
    try_edges offsets.(l)
  in
  let size = ref 0 in
  while
    Cancel.poll cancel;
    bfs ()
  do
    Metrics.incr c_phases;
    for l = 0 to nl - 1 do
      if left_match.(l) = -1 && dfs l then begin
        incr size;
        Metrics.incr c_augmentations
      end
    done
  done;
  { size = !size; left_match; right_match }

let solve ~nl ~nr ~edges = solve_in None ~nl ~nr ~edges

let is_perfect ~nl ~nr result = nl = nr && result.size = nl

let hall_violator ~nl ~nr ~edges result =
  ignore nr;
  let free = ref [] in
  for l = nl - 1 downto 0 do
    if result.left_match.(l) = -1 then free := l :: !free
  done;
  match !free with
  | [] -> None
  | free_lefts ->
      (* Alternating BFS from all free left vertices: follow any edge
         left→right, then matched edge right→left.  The reachable left set S
         has N(S) = reachable rights, all matched, and |N(S)| = |S| - #free,
         hence a Hall violator. *)
      let seen_l = Array.make nl false in
      let seen_r = Array.make (Array.length result.right_match) false in
      let adjacency = Array.make nl [] in
      Array.iter
        (fun (l, r) -> adjacency.(l) <- r :: adjacency.(l))
        edges;
      let queue = Queue.create () in
      List.iter
        (fun l ->
          seen_l.(l) <- true;
          Queue.add l queue)
        free_lefts;
      while not (Queue.is_empty queue) do
        let l = Queue.pop queue in
        List.iter
          (fun r ->
            if not seen_r.(r) then begin
              seen_r.(r) <- true;
              match result.right_match.(r) with
              | -1 -> () (* impossible for a maximum matching *)
              | k ->
                  let l' = fst edges.(k) in
                  if not seen_l.(l') then begin
                    seen_l.(l') <- true;
                    Queue.add l' queue
                  end
            end)
          adjacency.(l)
      done;
      let violator = ref [] in
      for l = nl - 1 downto 0 do
        if seen_l.(l) then violator := l :: !violator
      done;
      Some !violator
