(** Minimum-cost perfect assignment (Hungarian algorithm).

    Complements {!Bottleneck}: MCBBM minimizes the {e worst} edge of the
    assignment, this module minimizes the {e sum}.  The routing stack uses
    it to extend partial permutations (the paper's "don't-care" qubits,
    §II): unconstrained qubits are assigned to leftover destinations with
    minimum total displacement, so the router is handed the cheapest
    completion.

    Implementation: the O(n³) shortest-augmenting-path formulation with
    potentials (Jonker–Volgenant style), dense cost matrix. *)

val solve : costs:int array array -> int array * int
(** [solve ~costs] for a square matrix returns [(assignment, total)] where
    [assignment.(row) = column] is a minimum-total-cost perfect assignment.
    Deterministic.  @raise Invalid_argument on a non-square or empty-row
    matrix. *)

val brute_force : costs:int array array -> int
(** Exhaustive minimum total cost; factorial time, for tests on tiny
    instances only.  @raise Invalid_argument beyond 8×8. *)
