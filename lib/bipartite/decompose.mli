(** Decomposition of regular bipartite multigraphs into perfect matchings.

    A [d]-regular bipartite multigraph is the disjoint union of [d] perfect
    matchings (König's edge-coloring theorem, via Hall).  The paper's
    GridRoute step relies on this for the column multigraph [G^[1,m]], which
    is [m]-regular.  Two strategies are provided:

    - {!by_extraction}: repeatedly run Hopcroft–Karp on the remaining edges
      — O(d·E·√V), matching the paper's stated bound; and
    - {!by_euler_split}: recursively halve even-regular graphs along Euler
      circuits, falling back to one extraction per odd level —
      O(E·log d) for the splits, asymptotically faster for large [d].

    Both return the same kind of certificate and are cross-checked in the
    test suite. *)

val check_regular : nl:int -> nr:int -> edges:(int * int) array -> int
(** Return the common degree [d].  @raise Invalid_argument when the
    multigraph is not regular or [nl <> nr]. *)

val by_extraction : nl:int -> nr:int -> edges:(int * int) array -> int array list
(** Decompose a regular multigraph.  Each returned array maps a left vertex
    to the index (into [edges]) of its matched edge; the [d] arrays
    partition the edge-index set.  @raise Invalid_argument if not regular. *)

val by_extraction_in :
  Hopcroft_karp.workspace option ->
  nl:int -> nr:int -> edges:(int * int) array -> int array list
(** {!by_extraction}, reusing Hopcroft–Karp scratch across the repeated
    extractions (identical results either way). *)

val by_euler_split : nl:int -> nr:int -> edges:(int * int) array -> int array list
(** Same contract as {!by_extraction}, Euler-splitting strategy. *)

val by_euler_split_in :
  Hopcroft_karp.workspace option ->
  nl:int -> nr:int -> edges:(int * int) array -> int array list
(** Same contract as {!by_extraction_in}, Euler-splitting strategy. *)

val validate :
  nl:int -> nr:int -> edges:(int * int) array -> int array list -> bool
(** Check a decomposition: every matching perfect, edge indices disjoint and
    jointly covering all edges.  Used by tests and by the router's debug
    assertions. *)
