(** Hopcroft–Karp maximum matching on bipartite (multi)graphs.

    Edges are given positionally: the [k]-th entry of [edges] is the pair
    [(l, r)] with [l ∈ [0..nl)], [r ∈ [0..nr)].  Parallel edges are allowed
    (the paper's column multigraph [G^[a,b]] has them); the matching then
    selects a specific edge index, which is how the router recovers the
    row labels attached to each edge.

    Runs in O(E·√V), the same complexity family as the Kao–Lam–Sung–Ting
    routine the paper cites (see DESIGN.md §4 on this substitution). *)

type result = {
  size : int;  (** Number of matched pairs. *)
  left_match : int array;
      (** [left_match.(l)] is the index into [edges] of the edge matching
          [l], or [-1]. *)
  right_match : int array;  (** Same, indexed by right vertices. *)
}

type workspace
(** Reusable scratch buffers (adjacency build, BFS layers, queue) for
    repeated solves.  The matched arrays returned in {!result} are always
    freshly allocated, so results outlive the workspace's next use.
    Buffers grow monotonically to the largest instance seen. *)

val workspace : unit -> workspace
(** A fresh, empty workspace. *)

val solve : nl:int -> nr:int -> edges:(int * int) array -> result
(** Maximum-cardinality matching.  Deterministic: ties are broken by edge
    order.  @raise Invalid_argument on out-of-range endpoints. *)

val solve_in :
  workspace option -> nl:int -> nr:int -> edges:(int * int) array -> result
(** {!solve}, reusing the given workspace's scratch buffers.  Purely an
    allocation optimization: the matching found is identical.
    [solve_in None] is {!solve}. *)

val is_perfect : nl:int -> nr:int -> result -> bool
(** Whether every vertex on both sides is matched (requires [nl = nr]). *)

val hall_violator :
  nl:int -> nr:int -> edges:(int * int) array -> result -> int list option
(** When the matching is not left-perfect, produce a Hall violator: a set
    [S] of left vertices with [|N(S)| < |S|], as a certificate (built from
    the vertices alternating-reachable from an unmatched left vertex).
    [None] when the matching is left-perfect. *)
