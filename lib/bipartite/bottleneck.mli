(** Maximum-cardinality bottleneck bipartite matching (MCBBM).

    Given an edge-weighted bipartite graph, find a maximum-cardinality
    matching minimizing the largest edge weight used.  The paper solves this
    on the complete graph [H(P, [m])] (matchings × rows, weighted by the
    locality metric Δ) to assign each discovered perfect matching to a row.

    Implementation: binary search over the sorted distinct weights, testing
    each threshold with Hopcroft–Karp — the textbook method; the
    Punnen–Nair [16] bound is an optimization of the same scheme (DESIGN.md
    §4). *)

type edge = { l : int; r : int; weight : int }

type solution = {
  bottleneck : int;
      (** Largest weight in the returned matching; [min_int] when the
          matching is empty. *)
  pairs : (int * int) list;  (** Matched [(l, r)] pairs. *)
  left_match : int array;  (** Right partner per left vertex, or [-1]. *)
}

val solve : nl:int -> nr:int -> edge list -> solution
(** Maximum cardinality first, then minimal bottleneck.
    @raise Invalid_argument on out-of-range endpoints. *)

val solve_complete : weights:int array array -> solution
(** Convenience for the complete-bipartite case: [weights.(l).(r)] gives
    every edge; sides sized by the matrix.  Requires a rectangular matrix. *)

val brute_force : nl:int -> nr:int -> edge list -> int
(** Exhaustive bottleneck value over all maximum matchings — exponential;
    only for cross-checking on tiny instances in tests.
    @raise Invalid_argument if [max nl nr > 10]. *)
