(* Hungarian algorithm, shortest-augmenting-path formulation with row and
   column potentials (the classic 1-indexed presentation).  Cost values are
   plain ints; the algorithm never overflows for |cost| < max_int / (2n). *)

let solve ~costs =
  let n = Array.length costs in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Assignment.solve: matrix must be square")
    costs;
  if n = 0 then ([||], 0)
  else begin
    let inf = max_int / 2 in
    let u = Array.make (n + 1) 0 in
    let v = Array.make (n + 1) 0 in
    let p = Array.make (n + 1) 0 in
    (* p.(j) = row matched to column j *)
    let way = Array.make (n + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (n + 1) inf in
      let used = Array.make (n + 1) false in
      let continue_ = ref true in
      while !continue_ do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref inf in
        let j1 = ref 0 in
        for j = 1 to n do
          if not used.(j) then begin
            let cur = costs.(i0 - 1).(j - 1) - u.(i0) - v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to n do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) + !delta;
            v.(j) <- v.(j) - !delta
          end
          else minv.(j) <- minv.(j) - !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue_ := false
      done;
      (* Augment along the recorded alternating path. *)
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        p.(!j0) <- p.(j1);
        j0 := j1
      done
    done;
    let assignment = Array.make n 0 in
    let total = ref 0 in
    for j = 1 to n do
      assignment.(p.(j) - 1) <- j - 1;
      total := !total + costs.(p.(j) - 1).(j - 1)
    done;
    (assignment, !total)
  end

let brute_force ~costs =
  let n = Array.length costs in
  if n > 8 then invalid_arg "Assignment.brute_force: instance too big";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Assignment.brute_force: matrix must be square")
    costs;
  let used = Array.make n false in
  let best = ref max_int in
  let rec go row acc =
    if row = n then begin
      if acc < !best then best := acc
    end
    else
      for col = 0 to n - 1 do
        if not used.(col) then begin
          used.(col) <- true;
          go (row + 1) (acc + costs.(row).(col));
          used.(col) <- false
        end
      done
  in
  go 0 0;
  if n = 0 then 0 else !best
