(* Tests for the extension modules: Assignment (Hungarian), Partial_perm,
   Perm_stats, Bounds, Line_route (snake baseline), Noise, Placement. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------- Assignment *)

let test_assignment_identity_matrix () =
  let costs = [| [| 0; 9; 9 |]; [| 9; 0; 9 |]; [| 9; 9; 0 |] |] in
  let assignment, total = Assignment.solve ~costs in
  checki "total" 0 total;
  Alcotest.check Alcotest.(array int) "diagonal" [| 0; 1; 2 |] assignment

let test_assignment_antidiagonal () =
  let costs = [| [| 9; 1 |]; [| 1; 9 |] |] in
  let assignment, total = Assignment.solve ~costs in
  checki "total" 2 total;
  Alcotest.check Alcotest.(array int) "anti" [| 1; 0 |] assignment

let test_assignment_forced_expensive () =
  (* Greedy would take (0,0)=1 and then be forced into (1,1)=100;
     the optimum is 2+3=5. *)
  let costs = [| [| 1; 2 |]; [| 3; 100 |] |] in
  let _, total = Assignment.solve ~costs in
  checki "optimal" 5 total

let test_assignment_empty () =
  let assignment, total = Assignment.solve ~costs:[||] in
  checki "empty total" 0 total;
  checki "empty assignment" 0 (Array.length assignment)

let test_assignment_negative_costs () =
  let costs = [| [| -5; 0 |]; [| 0; -5 |] |] in
  let _, total = Assignment.solve ~costs in
  checki "negative total" (-10) total

let test_assignment_rejects_ragged () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Assignment.solve: matrix must be square") (fun () ->
      ignore (Assignment.solve ~costs:[| [| 1 |]; [| 1; 2 |] |]))

let assignment_matches_brute_force =
  QCheck.Test.make ~name:"hungarian = brute force" ~count:200
    QCheck.(pair (int_range 1 6) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let costs =
        Array.init n (fun _ -> Array.init n (fun _ -> Rng.int rng 50))
      in
      let assignment, total = Assignment.solve ~costs in
      let recomputed =
        Array.to_list (Array.mapi (fun i j -> costs.(i).(j)) assignment)
        |> List.fold_left ( + ) 0
      in
      Perm.is_permutation assignment
      && total = Assignment.brute_force ~costs
      && total = recomputed)

(* ------------------------------------------------------------ Partial_perm *)

let test_partial_make_validates () =
  Alcotest.check_raises "dup src"
    (Invalid_argument "Partial_perm.make: duplicate source") (fun () ->
      ignore (Partial_perm.make ~n:4 [ (0, 1); (0, 2) ]));
  Alcotest.check_raises "dup dst"
    (Invalid_argument "Partial_perm.make: duplicate destination") (fun () ->
      ignore (Partial_perm.make ~n:4 [ (0, 1); (2, 1) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Partial_perm.make: value out of range") (fun () ->
      ignore (Partial_perm.make ~n:4 [ (0, 7) ]))

let test_partial_accessors () =
  let p = Partial_perm.make ~n:5 [ (2, 0); (0, 3) ] in
  checki "size" 5 (Partial_perm.size p);
  checki "constrained" 2 (Partial_perm.constrained p);
  checkb "not total" false (Partial_perm.is_total p);
  Alcotest.check
    Alcotest.(list (pair int int))
    "sorted pairs" [ (0, 3); (2, 0) ] (Partial_perm.pairs p)

let test_partial_of_perm_total () =
  let p = Partial_perm.of_perm [| 1; 0; 2 |] in
  checkb "total" true (Partial_perm.is_total p)

let grid5 = Grid.make ~rows:1 ~cols:5
let dist5 u v = Grid.manhattan grid5 u v

let test_partial_extend_honors_constraints () =
  let partial = Partial_perm.make ~n:5 [ (0, 4); (4, 0) ] in
  List.iter
    (fun policy ->
      let perm = Partial_perm.extend policy partial in
      checkb "permutation" true (Perm.is_permutation perm);
      checki "0 -> 4" 4 perm.(0);
      checki "4 -> 0" 0 perm.(4))
    [ Partial_perm.Stay; Partial_perm.Greedy_nearest dist5;
      Partial_perm.Min_total dist5 ]

let test_partial_stay_keeps_free () =
  let partial = Partial_perm.make ~n:5 [ (0, 4) ] in
  let perm = Partial_perm.extend Partial_perm.Stay partial in
  checki "1 stays" 1 perm.(1);
  checki "2 stays" 2 perm.(2);
  checki "3 stays" 3 perm.(3);
  (* destination 4 is taken, vertex 4 takes the leftover 0 *)
  checki "4 displaced to 0" 0 perm.(4)

let test_partial_min_total_is_optimal () =
  (* Brute-force the minimal unconstrained displacement on small grids. *)
  let grid = Grid.make ~rows:2 ~cols:3 in
  let dist u v = Grid.manhattan grid u v in
  let rng = Rng.create 5 in
  for _ = 1 to 25 do
    (* Random partial constraint on 2 sources. *)
    let srcs = Rng.sample_distinct rng 2 6 in
    let dsts = Rng.sample_distinct rng 2 6 in
    let partial = Partial_perm.make ~n:6 (List.combine srcs dsts) in
    let opt = Partial_perm.extend (Partial_perm.Min_total dist) partial in
    let opt_cost = Partial_perm.total_distance dist partial opt in
    (* Exhaustive check over all extensions. *)
    let free_sources =
      List.filter (fun v -> not (List.mem v srcs)) [ 0; 1; 2; 3; 4; 5 ]
    in
    let free_dests =
      List.filter (fun v -> not (List.mem v dsts)) [ 0; 1; 2; 3; 4; 5 ]
    in
    let rec all_assignments sources dests =
      match sources with
      | [] -> [ [] ]
      | s :: rest ->
          List.concat_map
            (fun d ->
              let remaining = List.filter (fun x -> x <> d) dests in
              List.map (fun tail -> (s, d) :: tail)
                (all_assignments rest remaining))
            dests
    in
    let brute =
      List.fold_left
        (fun acc assignment ->
          let cost =
            List.fold_left (fun c (s, d) -> c + dist s d) 0 assignment
          in
          min acc cost)
        max_int
        (all_assignments free_sources free_dests)
    in
    checki "min-total matches brute force" brute opt_cost
  done

let test_partial_greedy_no_worse_than_stay_on_line () =
  let rng = Rng.create 6 in
  for _ = 1 to 20 do
    let src = Rng.int rng 5 and dst = Rng.int rng 5 in
    let partial = Partial_perm.make ~n:5 [ (src, dst) ] in
    let greedy = Partial_perm.extend (Partial_perm.Greedy_nearest dist5) partial in
    let stay = Partial_perm.extend Partial_perm.Stay partial in
    checkb "greedy <= stay (total unconstrained distance)" true
      (Partial_perm.total_distance dist5 partial greedy
      <= Partial_perm.total_distance dist5 partial stay)
  done

let partial_extension_property =
  QCheck.Test.make ~name:"all extension policies honor constraints" ~count:200
    QCheck.(pair (int_range 1 10) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let k = Rng.int rng (n + 1) in
      let srcs = Rng.sample_distinct rng k n in
      let dsts = Rng.sample_distinct rng k n in
      let pairs = List.combine srcs dsts in
      let partial = Partial_perm.make ~n pairs in
      let dist u v = abs (u - v) in
      List.for_all
        (fun policy ->
          let perm = Partial_perm.extend policy partial in
          Perm.is_permutation perm
          && List.for_all (fun (s, d) -> perm.(s) = d) pairs)
        [ Partial_perm.Stay; Partial_perm.Greedy_nearest dist;
          Partial_perm.Min_total dist ])

(* -------------------------------------------------------------- Perm_stats *)

let test_stats_identity () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let s = Perm_stats.compute grid (Perm.identity 9) in
  checki "displaced" 0 s.displaced;
  checki "cycles" 0 s.cycles;
  checki "longest" 0 s.longest_cycle;
  checki "total" 0 s.total_displacement

let test_stats_reversal () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  let s = Perm_stats.compute grid pi in
  checki "all displaced" 4 s.displaced;
  checki "two 2-cycles" 2 s.cycles;
  checki "max displacement" 2 s.max_displacement;
  checki "total" 8 s.total_displacement;
  checkf "mean" 2. s.mean_displacement

let test_stats_histogram () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let h = Perm_stats.displacement_histogram grid (Perm.identity 4) in
  checki "all at zero" 4 h.(0);
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  let h = Perm_stats.displacement_histogram grid pi in
  checki "all at diameter" 4 h.(2);
  checki "histogram sums to n" 4 (Array.fold_left ( + ) 0 h)

let test_stats_bounding_boxes () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  (* A 2-cycle confined to the top-left 2x2 tile. *)
  let pi = Perm.of_cycles 16 [ [ Grid.index grid 0 0; Grid.index grid 1 1 ] ] in
  (match Perm_stats.cycle_bounding_boxes grid pi with
  | [ (h, w) ] ->
      checki "height" 2 h;
      checki "width" 2 w
  | _ -> Alcotest.fail "expected one cycle");
  (* A long skinny horizontal cycle. *)
  let skinny = Perm.of_cycles 16 (
    [ List.init 4 (fun c -> Grid.index grid 0 c) ]) in
  match Perm_stats.cycle_bounding_boxes grid skinny with
  | [ (h, w) ] ->
      checki "thin" 1 h;
      checki "long" 4 w
  | _ -> Alcotest.fail "expected one cycle"

let test_stats_block_local_boxes_small () =
  let grid = Grid.make ~rows:8 ~cols:8 in
  let pi = Generators.generate grid (Generators.Block_local 2) (Rng.create 3) in
  List.iter
    (fun (h, w) ->
      checkb "boxes inside 2x2 tiles" true (h <= 2 && w <= 2))
    (Perm_stats.cycle_bounding_boxes grid pi)

(* ------------------------------------------------------------------ Bounds *)

let test_bounds_identity () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  checki "identity free" 0 (Bounds.depth_lower_bound grid (Perm.identity 16))

let test_bounds_reversal () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  (* displacement bound: corner to corner = 6 *)
  checkb "at least displacement" true (Bounds.depth_lower_bound grid pi >= 6)

let test_bounds_cut () =
  let grid = Grid.make ~rows:2 ~cols:4 in
  (* Swap the left and right halves: 4 tokens must cross the central cut of
     width 2 in each direction -> depth >= 2. *)
  let pi =
    Grid_perm.of_coord_map grid (fun (r, c) -> (r, (c + 2) mod 4))
  in
  checkb "cut bound" true (Bounds.grid_cut_bound grid pi >= 2)

let test_routers_respect_bounds () =
  let grid = Grid.make ~rows:5 ~cols:6 in
  let rng = Rng.create 7 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 30) in
    let lb = Bounds.depth_lower_bound grid pi in
    List.iter
      (fun strategy ->
        let depth = Schedule.depth (Strategy.route strategy grid pi) in
        checkb (Strategy.name strategy ^ " >= lower bound") true (depth >= lb))
      Strategy.all
  done

let test_size_bound_respected () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let dist u v = Grid.manhattan grid u v in
  let rng = Rng.create 8 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 16) in
    let lb = Bounds.size_lower_bound dist pi in
    List.iter
      (fun strategy ->
        let size = Schedule.size (Strategy.route strategy grid pi) in
        checkb (Strategy.name strategy ^ " size >= bound") true (size >= lb))
      Strategy.all
  done

(* -------------------------------------------------------------- Line_route *)

let test_snake_order_adjacent () =
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let order = Line_route.snake_order grid in
      checkb "is permutation" true (Perm.is_permutation order);
      for k = 0 to Array.length order - 2 do
        checkb "consecutive adjacency" true
          (Graph.mem_edge (Grid.graph grid) order.(k) order.(k + 1))
      done)
    [ (1, 5); (5, 1); (3, 4); (4, 3); (2, 2) ]

let test_snake_routes_correctly () =
  let rng = Rng.create 9 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      for _ = 1 to 5 do
        let pi = Perm.check (Rng.permutation rng (m * n)) in
        let s = Line_route.route grid pi in
        checkb "valid" true (Schedule.is_valid (Grid.graph grid) s);
        checkb "realizes" true (Schedule.realizes ~n:(m * n) s pi)
      done)
    [ (1, 6); (3, 3); (4, 5) ]

let test_snake_on_line_equals_path_router () =
  (* On a 1xN grid the snake IS the path; depth must match odd-even. *)
  let grid = Grid.make ~rows:1 ~cols:8 in
  let rng = Rng.create 10 in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 8) in
    let snake = Line_route.route grid pi in
    let direct = Path_route.route_min_parity pi in
    checki "same depth" (List.length direct) (Schedule.depth snake)
  done

let test_snake_much_deeper_on_square () =
  (* The whole point: 1-D embedding wastes the second dimension. *)
  let grid = Grid.make ~rows:8 ~cols:8 in
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  let snake = Schedule.depth (Strategy.route Strategy.Snake grid pi) in
  let local = Schedule.depth (Strategy.route Strategy.Local grid pi) in
  checkb "snake much deeper" true (snake >= 3 * local)

(* ------------------------------------------------------------------- Noise *)

let test_noise_empty_circuit_perfect () =
  let c = Circuit.create ~num_qubits:3 [] in
  checkf "no gates, no errors" 1. (Noise.success_probability Noise.default c)

let test_noise_monotone_in_gates () =
  let c1 = Circuit.create ~num_qubits:2 [ Gate.Two (Gate.CX, 0, 1) ] in
  let c2 =
    Circuit.create ~num_qubits:2
      [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 0, 1) ]
  in
  checkb "more gates, lower success" true
    (Noise.success_probability Noise.default c2
    < Noise.success_probability Noise.default c1)

let test_noise_native_swap_cheaper () =
  let c = Circuit.create ~num_qubits:2 [ Gate.Two (Gate.SWAP, 0, 1) ] in
  let native = { Noise.default with Noise.native_swap = true } in
  checkb "native swap beats 3 CX" true
    (Noise.success_probability native c
    > Noise.success_probability Noise.default c)

let test_noise_gate_counts () =
  let c =
    Circuit.create ~num_qubits:3
      [ Gate.One (Gate.H, 0); Gate.One (Gate.X, 1); Gate.Two (Gate.CX, 0, 1) ]
  in
  let ones, twos = Noise.gate_counts c in
  checki "1q" 2 ones;
  checki "2q" 1 twos

let test_noise_prefers_shallow_routing () =
  (* The motivating claim: lower-depth transpilation gives higher estimated
     success.  Compare local vs snake on the same instance. *)
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pi = Generators.generate grid Generators.Random (Rng.create 3) in
  let to_circuit strategy =
    Circuit.of_schedule ~num_qubits:16 (Strategy.route strategy grid pi)
  in
  checkb "shallower schedule, higher success" true
    (Noise.log_success Noise.default (to_circuit Strategy.Local)
    > Noise.log_success Noise.default (to_circuit Strategy.Snake))

(* --------------------------------------------------------------- Placement *)

let test_placement_valid_layout () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 11 in
  let c = Library.random_two_qubit rng ~num_qubits:9 ~gates:20 in
  let layout =
    Placement.place ~graph:(Grid.graph grid) ~dist:(Distance.of_grid grid) c
  in
  checkb "valid" true (Perm.is_permutation (Layout.to_phys_array layout))

let test_placement_pairs_adjacent_when_possible () =
  (* A circuit interacting only (0,1) and (2,3): placement must make both
     pairs adjacent on a 2x2 grid. *)
  let grid = Grid.make ~rows:2 ~cols:2 in
  let c =
    Circuit.create ~num_qubits:4
      [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 2, 3);
        Gate.Two (Gate.CX, 0, 1) ]
  in
  let layout =
    Placement.place ~graph:(Grid.graph grid) ~dist:(Distance.of_grid grid) c
  in
  let adjacent a b =
    Graph.mem_edge (Grid.graph grid) (Layout.phys layout a) (Layout.phys layout b)
  in
  checkb "0-1 adjacent" true (adjacent 0 1);
  checkb "2-3 adjacent" true (adjacent 2 3)

let test_placement_reduces_cost_vs_worst () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let dist = Distance.of_grid grid in
  let rng = Rng.create 12 in
  let c = Library.random_local_two_qubit rng ~grid ~radius:1 ~gates:40 in
  let placed = Placement.place ~graph:(Grid.graph grid) ~dist c in
  let placed_cost = Placement.placement_cost ~dist c placed in
  (* Compare against the mean of random layouts. *)
  let random_costs =
    Array.init 10 (fun k ->
        Placement.placement_cost ~dist c (Layout.random (Rng.create (50 + k)) 16))
  in
  checkb "beats the average random layout" true
    (placed_cost < Stats.mean random_costs)

let test_placement_interaction_weights () =
  let c =
    Circuit.create ~num_qubits:3
      [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 1, 0);
        Gate.Two (Gate.CZ, 1, 2) ]
  in
  match Placement.interaction_weights c with
  | [ ((0, 1, w01)); ((1, 2, w12)) ] ->
      checkf "pair 0-1 twice" 2. w01;
      checkf "pair 1-2 once" 1. w12
  | other ->
      Alcotest.failf "unexpected weights (%d entries)" (List.length other)

let test_placement_end_to_end_fewer_swaps () =
  (* Place-then-transpile a 1-local circuit: should need at most as many
     swaps as transpiling from a random layout. *)
  let grid = Grid.make ~rows:4 ~cols:4 in
  let dist = Distance.of_grid grid in
  let rng = Rng.create 13 in
  let c = Library.random_local_two_qubit rng ~grid ~radius:1 ~gates:40 in
  let placed = Placement.place ~graph:(Grid.graph grid) ~dist c in
  let swaps initial =
    Circuit.swap_count (transpile ~initial grid c).physical
  in
  let random_swaps = swaps (Layout.random (Rng.create 99) 16) in
  checkb "placement helps the router" true (swaps placed <= random_swaps)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "assignment",
        [
          Alcotest.test_case "identity matrix" `Quick test_assignment_identity_matrix;
          Alcotest.test_case "antidiagonal" `Quick test_assignment_antidiagonal;
          Alcotest.test_case "forced expensive" `Quick
            test_assignment_forced_expensive;
          Alcotest.test_case "empty" `Quick test_assignment_empty;
          Alcotest.test_case "negative costs" `Quick test_assignment_negative_costs;
          Alcotest.test_case "rejects ragged" `Quick test_assignment_rejects_ragged;
          qc assignment_matches_brute_force;
        ] );
      ( "partial_perm",
        [
          Alcotest.test_case "validates" `Quick test_partial_make_validates;
          Alcotest.test_case "accessors" `Quick test_partial_accessors;
          Alcotest.test_case "of_perm" `Quick test_partial_of_perm_total;
          Alcotest.test_case "honors constraints" `Quick
            test_partial_extend_honors_constraints;
          Alcotest.test_case "stay keeps free" `Quick test_partial_stay_keeps_free;
          Alcotest.test_case "min-total optimal" `Quick
            test_partial_min_total_is_optimal;
          Alcotest.test_case "greedy on line" `Quick
            test_partial_greedy_no_worse_than_stay_on_line;
          qc partial_extension_property;
        ] );
      ( "perm_stats",
        [
          Alcotest.test_case "identity" `Quick test_stats_identity;
          Alcotest.test_case "reversal" `Quick test_stats_reversal;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "bounding boxes" `Quick test_stats_bounding_boxes;
          Alcotest.test_case "block-local boxes" `Quick
            test_stats_block_local_boxes_small;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "identity" `Quick test_bounds_identity;
          Alcotest.test_case "reversal" `Quick test_bounds_reversal;
          Alcotest.test_case "cut" `Quick test_bounds_cut;
          Alcotest.test_case "routers respect depth bound" `Quick
            test_routers_respect_bounds;
          Alcotest.test_case "routers respect size bound" `Quick
            test_size_bound_respected;
        ] );
      ( "line_route",
        [
          Alcotest.test_case "snake adjacency" `Quick test_snake_order_adjacent;
          Alcotest.test_case "routes correctly" `Quick test_snake_routes_correctly;
          Alcotest.test_case "1xN = path router" `Quick
            test_snake_on_line_equals_path_router;
          Alcotest.test_case "wasteful on squares" `Quick
            test_snake_much_deeper_on_square;
        ] );
      ( "noise",
        [
          Alcotest.test_case "empty perfect" `Quick test_noise_empty_circuit_perfect;
          Alcotest.test_case "monotone" `Quick test_noise_monotone_in_gates;
          Alcotest.test_case "native swap" `Quick test_noise_native_swap_cheaper;
          Alcotest.test_case "gate counts" `Quick test_noise_gate_counts;
          Alcotest.test_case "prefers shallow" `Quick
            test_noise_prefers_shallow_routing;
        ] );
      ( "placement",
        [
          Alcotest.test_case "valid layout" `Quick test_placement_valid_layout;
          Alcotest.test_case "adjacent pairs" `Quick
            test_placement_pairs_adjacent_when_possible;
          Alcotest.test_case "beats random" `Quick
            test_placement_reduces_cost_vs_worst;
          Alcotest.test_case "interaction weights" `Quick
            test_placement_interaction_weights;
          Alcotest.test_case "end to end" `Quick
            test_placement_end_to_end_fewer_swaps;
        ] );
    ]
