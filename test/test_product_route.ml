(* Tests for Qr_route.Product_route: the Cartesian-product extension. *)

module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Product = Qr_graph.Product
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Path_route = Qr_route.Path_route
module Product_route = Qr_route.Product_route
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Factor router for paths: odd-even transposition. *)
let path_router g pi =
  assert (Graph.num_vertices g = Array.length pi);
  List.map Array.of_list (Path_route.route_min_parity pi)

(* Generic factor router for non-path factors: parallel token swapping. *)
let ats_router g pi =
  Qr_token.Parallel_ats.route ~trials:1 g (Distance.of_graph g) pi

let test_grid_as_product_matches_grid_router () =
  (* path x path routing must be correct and comparable to the native
     grid router. *)
  let rng = Rng.create 1 in
  List.iter
    (fun (m, n) ->
      let p = Product.make (Graph.path m) (Graph.path n) in
      let total = m * n in
      for _ = 1 to 5 do
        let pi = Perm.check (Rng.permutation rng total) in
        let s =
          Product_route.route ~route1:path_router ~route2:path_router p pi
        in
        checkb "valid" true (Schedule.is_valid (Product.graph p) s);
        checkb "realizes" true (Schedule.realizes ~n:total s pi)
      done)
    [ (2, 2); (3, 4); (5, 3); (1, 4); (4, 1) ]

let test_product_flat_indexing_matches_grid () =
  (* The product path x path router's schedules are valid on the grid graph
     itself (same flat indexing). *)
  let rng = Rng.create 2 in
  let grid = Grid.make ~rows:4 ~cols:5 in
  let p = Product.of_grid grid in
  let pi = Perm.check (Rng.permutation rng 20) in
  let s = Product_route.route ~route1:path_router ~route2:path_router p pi in
  checkb "valid on grid graph" true (Schedule.is_valid (Grid.graph grid) s)

let test_cylinder_routing () =
  (* cycle x path: the "grid-like" architecture of the paper's extension. *)
  let rng = Rng.create 3 in
  let p = Product.make (Graph.cycle 4) (Graph.path 3) in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 12) in
    let s = Product_route.route ~route1:ats_router ~route2:path_router p pi in
    checkb "valid" true (Schedule.is_valid (Product.graph p) s);
    checkb "realizes" true (Schedule.realizes ~n:12 s pi)
  done

let test_torus_routing () =
  let rng = Rng.create 4 in
  let p = Product.make (Graph.cycle 3) (Graph.cycle 4) in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 12) in
    let s = Product_route.route ~route1:ats_router ~route2:ats_router p pi in
    checkb "realizes" true (Schedule.realizes ~n:12 s pi)
  done

let test_locality_flag_both_work () =
  let rng = Rng.create 5 in
  let p = Product.make (Graph.path 4) (Graph.cycle 5) in
  let pi = Perm.check (Rng.permutation rng 20) in
  List.iter
    (fun locality ->
      let s =
        Product_route.route ~locality ~route1:path_router ~route2:ats_router p
          pi
      in
      checkb "realizes" true (Schedule.realizes ~n:20 s pi))
    [ true; false ]

let test_best_orientation () =
  let rng = Rng.create 6 in
  let p = Product.make (Graph.path 3) (Graph.path 6) in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 18) in
    let direct =
      Product_route.route ~route1:path_router ~route2:path_router p pi
    in
    let best =
      Product_route.route_best_orientation ~route1:path_router
        ~route2:path_router p pi
    in
    checkb "realizes" true (Schedule.realizes ~n:18 best pi);
    checkb "valid on original product" true
      (Schedule.is_valid (Product.graph p) best);
    checkb "no worse than direct" true
      (Schedule.depth best <= Schedule.depth direct)
  done

let test_identity_is_free () =
  let p = Product.make (Graph.path 3) (Graph.path 3) in
  let s =
    Product_route.route ~route1:path_router ~route2:path_router p
      (Perm.identity 9)
  in
  checki "empty schedule" 0 (Schedule.depth s)

let product_route_property =
  QCheck.Test.make ~name:"product routing correct on random factors"
    ~count:60
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 100000))
    (fun (a, b, seed) ->
      let p = Product.make (Graph.path a) (Graph.path b) in
      let rng = Rng.create seed in
      let pi = Perm.check (Rng.permutation rng (a * b)) in
      let s = Product_route.route ~route1:path_router ~route2:path_router p pi in
      Schedule.is_valid (Product.graph p) s
      && Schedule.realizes ~n:(a * b) s pi)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "product_route"
    [
      ( "product_route",
        [
          Alcotest.test_case "grid as product" `Quick
            test_grid_as_product_matches_grid_router;
          Alcotest.test_case "flat indexing" `Quick
            test_product_flat_indexing_matches_grid;
          Alcotest.test_case "cylinder" `Quick test_cylinder_routing;
          Alcotest.test_case "torus" `Quick test_torus_routing;
          Alcotest.test_case "locality flag" `Quick test_locality_flag_both_work;
          Alcotest.test_case "best orientation" `Quick test_best_orientation;
          Alcotest.test_case "identity free" `Quick test_identity_is_free;
          qc product_route_property;
        ] );
    ]
