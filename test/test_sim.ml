(* Tests for Qr_sim: Statevector and Permsim. *)

module Grid = Qr_graph.Grid
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Library = Qr_circuit.Library
module Schedule = Qr_route.Schedule
module SV = Qr_sim.Statevector
module Permsim = Qr_sim.Permsim
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let circuit n gates = Circuit.create ~num_qubits:n gates

(* ------------------------------------------------------------ Statevector *)

let test_zero_state () =
  let s = SV.zero_state 3 in
  checki "dim" 8 (SV.dim s);
  checkf "amp(0)" 1. (fst (SV.amplitude s 0));
  checkf "norm" 1. (SV.norm s)

let test_x_flips () =
  let s = SV.run_from_zero (circuit 2 [ Gate.One (Gate.X, 0) ]) in
  checkf "now |01> (bit 0 set)" 1. (fst (SV.amplitude s 1))

let test_x_on_second_qubit () =
  let s = SV.run_from_zero (circuit 2 [ Gate.One (Gate.X, 1) ]) in
  checkf "now |10> (bit 1 set)" 1. (fst (SV.amplitude s 2))

let test_h_superposition () =
  let s = SV.run_from_zero (circuit 1 [ Gate.One (Gate.H, 0) ]) in
  let r0, _ = SV.amplitude s 0 and r1, _ = SV.amplitude s 1 in
  checkf "amp0" (sqrt 0.5) r0;
  checkf "amp1" (sqrt 0.5) r1

let test_hh_is_identity () =
  let s =
    SV.run_from_zero (circuit 1 [ Gate.One (Gate.H, 0); Gate.One (Gate.H, 0) ])
  in
  checkb "back to |0>" true (SV.approx_equal s (SV.zero_state 1))

let test_xx_yy_zz_ss_tt_identities () =
  let checks =
    [ ([ Gate.One (Gate.X, 0); Gate.One (Gate.X, 0) ], "XX");
      ([ Gate.One (Gate.Y, 0); Gate.One (Gate.Y, 0) ], "YY");
      ([ Gate.One (Gate.Z, 0); Gate.One (Gate.Z, 0) ], "ZZ");
      ([ Gate.One (Gate.S, 0); Gate.One (Gate.Sdg, 0) ], "S Sdg");
      ([ Gate.One (Gate.T, 0); Gate.One (Gate.Tdg, 0) ], "T Tdg") ]
  in
  let rng = Rng.create 1 in
  List.iter
    (fun (gates, label) ->
      let psi = SV.random_state rng 1 in
      let out = SV.run (circuit 1 gates) psi in
      checkb label true (SV.approx_equal out psi))
    checks

let test_s_equals_tt () =
  let rng = Rng.create 2 in
  let psi = SV.random_state rng 1 in
  let s = SV.run (circuit 1 [ Gate.One (Gate.S, 0) ]) psi in
  let tt = SV.run (circuit 1 [ Gate.One (Gate.T, 0); Gate.One (Gate.T, 0) ]) psi in
  checkb "S = T^2" true (SV.approx_equal s tt)

let test_rotation_composition () =
  let rng = Rng.create 3 in
  let psi = SV.random_state rng 1 in
  let a = SV.run (circuit 1 [ Gate.One (Gate.Rz 0.4, 0); Gate.One (Gate.Rz 0.6, 0) ]) psi in
  let b = SV.run (circuit 1 [ Gate.One (Gate.Rz 1.0, 0) ]) psi in
  checkb "Rz adds angles" true (SV.approx_equal a b)

let test_h_z_h_is_x () =
  let rng = Rng.create 4 in
  let psi = SV.random_state rng 1 in
  let hzh =
    SV.run
      (circuit 1 [ Gate.One (Gate.H, 0); Gate.One (Gate.Z, 0); Gate.One (Gate.H, 0) ])
      psi
  in
  let x = SV.run (circuit 1 [ Gate.One (Gate.X, 0) ]) psi in
  checkb "HZH = X" true (SV.approx_equal hzh x)

let test_cx_action () =
  (* |10> -(CX control 1)-> |11> *)
  let s =
    SV.run_from_zero (circuit 2 [ Gate.One (Gate.X, 1); Gate.Two (Gate.CX, 1, 0) ])
  in
  checkf "flipped to |11>" 1. (fst (SV.amplitude s 3))

let test_cx_control_zero_noop () =
  let s = SV.run_from_zero (circuit 2 [ Gate.Two (Gate.CX, 1, 0) ]) in
  checkf "still |00>" 1. (fst (SV.amplitude s 0))

let test_bell_state () =
  let s =
    SV.run_from_zero (circuit 2 [ Gate.One (Gate.H, 0); Gate.Two (Gate.CX, 0, 1) ])
  in
  let p = SV.measure_probabilities s in
  checkf "p(00)" 0.5 p.(0);
  checkf "p(11)" 0.5 p.(3);
  checkf "p(01)" 0. p.(1)

let test_ghz_probabilities () =
  let s = SV.run_from_zero (Library.ghz 4) in
  let p = SV.measure_probabilities s in
  checkf "p(0000)" 0.5 p.(0);
  checkf "p(1111)" 0.5 p.(15)

let test_cz_symmetric () =
  let rng = Rng.create 5 in
  let psi = SV.random_state rng 2 in
  let a = SV.run (circuit 2 [ Gate.Two (Gate.CZ, 0, 1) ]) psi in
  let b = SV.run (circuit 2 [ Gate.Two (Gate.CZ, 1, 0) ]) psi in
  checkb "CZ operand order irrelevant" true (SV.approx_equal a b)

let test_cp_pi_is_cz () =
  let rng = Rng.create 6 in
  let psi = SV.random_state rng 2 in
  let a = SV.run (circuit 2 [ Gate.Two (Gate.CP Float.pi, 0, 1) ]) psi in
  let b = SV.run (circuit 2 [ Gate.Two (Gate.CZ, 0, 1) ]) psi in
  checkb "CP(pi) = CZ" true (SV.approx_equal a b)

let test_swap_gate () =
  (* |01> -> |10> *)
  let s =
    SV.run_from_zero (circuit 2 [ Gate.One (Gate.X, 0); Gate.Two (Gate.SWAP, 0, 1) ])
  in
  checkf "swapped" 1. (fst (SV.amplitude s 2))

let test_swap_is_3cx () =
  let rng = Rng.create 7 in
  let psi = SV.random_state rng 3 in
  let direct = SV.run (circuit 3 [ Gate.Two (Gate.SWAP, 0, 2) ]) psi in
  let expanded =
    SV.run (Circuit.expand_swaps (circuit 3 [ Gate.Two (Gate.SWAP, 0, 2) ])) psi
  in
  checkb "SWAP = CX CX CX" true (SV.approx_equal direct expanded)

let test_rzz_diagonal () =
  let rng = Rng.create 8 in
  let psi = SV.random_state rng 2 in
  (* RZZ commutes with CZ; and RZZ(0) is identity. *)
  let id0 = SV.run (circuit 2 [ Gate.Two (Gate.RZZ 0., 0, 1) ]) psi in
  checkb "RZZ(0) = id" true (SV.approx_equal id0 psi)

let test_rzz_symmetric () =
  let rng = Rng.create 9 in
  let psi = SV.random_state rng 2 in
  let a = SV.run (circuit 2 [ Gate.Two (Gate.RZZ 0.7, 0, 1) ]) psi in
  let b = SV.run (circuit 2 [ Gate.Two (Gate.RZZ 0.7, 1, 0) ]) psi in
  checkb "RZZ symmetric" true (SV.approx_equal a b)

let test_permute_qubits_identity () =
  let rng = Rng.create 10 in
  let psi = SV.random_state rng 3 in
  checkb "identity relabel" true
    (SV.approx_equal psi (SV.permute_qubits psi [| 0; 1; 2 |]))

let test_permute_qubits_matches_swap () =
  let rng = Rng.create 11 in
  let psi = SV.random_state rng 2 in
  let by_gate = SV.run (circuit 2 [ Gate.Two (Gate.SWAP, 0, 1) ]) psi in
  let by_relabel = SV.permute_qubits psi [| 1; 0 |] in
  checkb "relabel = swap gate" true (SV.approx_equal by_gate by_relabel)

let test_permute_qubits_composition () =
  let rng = Rng.create 12 in
  let psi = SV.random_state rng 4 in
  let p = [| 2; 0; 3; 1 |] in
  let q = [| 1; 3; 0; 2 |] in
  let a = SV.permute_qubits (SV.permute_qubits psi p) q in
  let b = SV.permute_qubits psi (Perm.compose p q) in
  checkb "relabel composes" true (SV.approx_equal a b)

let test_fidelity_global_phase () =
  let rng = Rng.create 13 in
  let psi = SV.random_state rng 2 in
  (* Z on a basis state only adds phases; fidelity with itself is 1. *)
  checkf "self fidelity" 1. (SV.fidelity psi psi)

let test_random_state_normalized () =
  let rng = Rng.create 14 in
  for n = 1 to 6 do
    checkf "norm 1" 1. (SV.norm (SV.random_state rng n))
  done

let test_gates_preserve_norm () =
  let rng = Rng.create 15 in
  let psi = SV.random_state rng 3 in
  let gates =
    [ Gate.One (Gate.H, 0); Gate.One (Gate.Rx 0.3, 1); Gate.One (Gate.Ry 0.9, 2);
      Gate.Two (Gate.CX, 0, 2); Gate.Two (Gate.CP 0.4, 1, 2);
      Gate.Two (Gate.RZZ 0.8, 0, 1); Gate.Two (Gate.SWAP, 1, 2) ]
  in
  let out = SV.run (circuit 3 gates) psi in
  checkf "unitary evolution" 1. (SV.norm out)

(* --------------------------------------------------------------- Permsim *)

let test_permsim_trace_length () =
  let s = [ [| (0, 1) |]; [| (1, 2) |] ] in
  checki "depth+1 snapshots" 3 (List.length (Permsim.trace ~n:3 s))

let test_permsim_final () =
  let s = [ [| (0, 1) |] ] in
  Alcotest.check Alcotest.(array int) "tokens swapped" [| 1; 0; 2 |]
    (Permsim.final ~n:3 s)

let test_permsim_realized_matches_apply () =
  let rng = Rng.create 16 in
  let grid = Grid.make ~rows:3 ~cols:4 in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 12) in
    let s = Qr_route.Local_grid_route.route grid pi in
    checkb "permsim agrees with Schedule.apply" true
      (Perm.equal (Permsim.realized ~n:12 s) (Schedule.apply ~n:12 s));
    checkb "and equals pi" true (Perm.equal (Permsim.realized ~n:12 s) pi)
  done

let test_permsim_max_travel () =
  let grid = Grid.make ~rows:1 ~cols:3 in
  let oracle = Distance.of_grid grid in
  (* Token 0 moves two steps right: travel 2. *)
  let s = [ [| (0, 1) |]; [| (1, 2) |] ] in
  checki "travel" 2 (Permsim.max_token_travel oracle ~n:3 s)

let test_permsim_travel_at_least_displacement () =
  let rng = Rng.create 17 in
  let grid = Grid.make ~rows:4 ~cols:4 in
  let oracle = Distance.of_grid grid in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 16) in
    let s = Qr_route.Grid_route.route_naive grid pi in
    let travel = Permsim.max_token_travel oracle ~n:16 s in
    let disp = Perm.max_distance (fun u v -> Distance.dist oracle u v) pi in
    checkb "travel >= displacement" true (travel >= disp)
  done

let () =
  Alcotest.run "qr_sim"
    [
      ( "statevector",
        [
          Alcotest.test_case "zero state" `Quick test_zero_state;
          Alcotest.test_case "X flips" `Quick test_x_flips;
          Alcotest.test_case "X on q1" `Quick test_x_on_second_qubit;
          Alcotest.test_case "H superposition" `Quick test_h_superposition;
          Alcotest.test_case "HH = id" `Quick test_hh_is_identity;
          Alcotest.test_case "involutions" `Quick test_xx_yy_zz_ss_tt_identities;
          Alcotest.test_case "S = TT" `Quick test_s_equals_tt;
          Alcotest.test_case "Rz composes" `Quick test_rotation_composition;
          Alcotest.test_case "HZH = X" `Quick test_h_z_h_is_x;
          Alcotest.test_case "CX action" `Quick test_cx_action;
          Alcotest.test_case "CX control 0" `Quick test_cx_control_zero_noop;
          Alcotest.test_case "Bell state" `Quick test_bell_state;
          Alcotest.test_case "GHZ" `Quick test_ghz_probabilities;
          Alcotest.test_case "CZ symmetric" `Quick test_cz_symmetric;
          Alcotest.test_case "CP(pi) = CZ" `Quick test_cp_pi_is_cz;
          Alcotest.test_case "SWAP" `Quick test_swap_gate;
          Alcotest.test_case "SWAP = 3CX" `Quick test_swap_is_3cx;
          Alcotest.test_case "RZZ(0) = id" `Quick test_rzz_diagonal;
          Alcotest.test_case "RZZ symmetric" `Quick test_rzz_symmetric;
          Alcotest.test_case "relabel identity" `Quick test_permute_qubits_identity;
          Alcotest.test_case "relabel = swap" `Quick test_permute_qubits_matches_swap;
          Alcotest.test_case "relabel composes" `Quick
            test_permute_qubits_composition;
          Alcotest.test_case "fidelity" `Quick test_fidelity_global_phase;
          Alcotest.test_case "random normalized" `Quick test_random_state_normalized;
          Alcotest.test_case "norm preserved" `Quick test_gates_preserve_norm;
        ] );
      ( "permsim",
        [
          Alcotest.test_case "trace length" `Quick test_permsim_trace_length;
          Alcotest.test_case "final" `Quick test_permsim_final;
          Alcotest.test_case "matches apply" `Quick
            test_permsim_realized_matches_apply;
          Alcotest.test_case "max travel" `Quick test_permsim_max_travel;
          Alcotest.test_case "travel >= displacement" `Quick
            test_permsim_travel_at_least_displacement;
        ] );
    ]
