(* Tests for the readiness-driven serving loop (DESIGN.md §15): the
   event loop's timers (ordering, periodic coalescing), fd interest
   (readable and writable on one descriptor), wakeup accounting, the
   select backend's FD_SETSIZE capacity guard, the bounded
   per-connection write queue — and the two regression scenarios the
   loop exists for: a slow client is closed at its outbox cap instead
   of buffering without bound, and a client that never reads its
   responses no longer head-of-line-blocks every other connection. *)

module Json = Qr_obs.Json
module Metrics = Qr_obs.Metrics
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Sys_poll = Qr_util.Sys_poll
module P = Qr_server.Protocol
module Session = Qr_server.Session
module Server = Qr_server.Server
module Client = Qr_server.Client
module Event_loop = Qr_server.Event_loop
module Write_queue = Qr_server.Write_queue

let () = Qr_token.Engines.register ()
let () = ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* A watchdog for tests that would hang forever under the historical
   blocking-write loop: fail loudly instead of wedging the suite. *)
let with_test_deadline seconds f =
  let prev =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> Alcotest.fail "test deadline expired"))
  in
  ignore (Unix.alarm seconds);
  let finally () =
    ignore (Unix.alarm 0);
    ignore (Sys.signal Sys.sigalrm prev)
  in
  Fun.protect ~finally f

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally:(fun () -> close a; close b) (fun () -> f a b)

let counter_value name =
  match Metrics.find_counter name with
  | Some c -> Metrics.value c
  | None -> Alcotest.failf "counter %s not registered" name

(* ---------------------------------------------------------------- timers *)

let test_timer_ordering () =
  let loop = Event_loop.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  (* Registration order is the reverse of due order. *)
  ignore (Event_loop.add_timer loop ~delay_ns:30_000_000L (note "slow"));
  ignore (Event_loop.add_timer loop ~delay_ns:10_000_000L (note "fast"));
  Event_loop.run loop ~stop:(fun () -> List.length !fired >= 2);
  checkb "due order, not registration order" true
    (List.rev !fired = [ "fast"; "slow" ])

let test_timer_coalescing () =
  let loop = Event_loop.create () in
  let ticks = ref 0 in
  let t =
    Event_loop.add_timer loop ~period_ns:20_000_000L ~delay_ns:20_000_000L
      (fun () -> incr ticks)
  in
  (* Miss several periods before the loop first runs: a coalescing timer
     fires once and reschedules from now — never burst-fires to catch
     up. *)
  Unix.sleepf 0.1;
  Event_loop.run_once loop;
  checki "missed periods coalesce into one tick" 1 !ticks;
  (* The period keeps ticking from now. *)
  Event_loop.run_once loop;
  checki "periodic timer re-arms" 2 !ticks;
  (* A cancelled timer never fires again; a one-shot bounds the wait. *)
  Event_loop.cancel_timer loop t;
  ignore (Event_loop.add_timer loop ~delay_ns:30_000_000L (fun () -> ()));
  Event_loop.run_once loop;
  checki "cancelled timer is silent" 2 !ticks

let test_wakeup_accounting () =
  let loop = Event_loop.create () in
  checki "no wakeups before running" 0 (Event_loop.wakeups loop);
  ignore (Event_loop.add_timer loop ~delay_ns:1_000_000L (fun () -> ()));
  Event_loop.run_once loop;
  checki "one kernel return, one wakeup" 1 (Event_loop.wakeups loop)

(* ----------------------------------------------------------- fd interest *)

let test_readable_and_writable () =
  with_socketpair @@ fun a b ->
  Unix.set_nonblock a;
  let loop = Event_loop.create () in
  let got = ref (false, false) in
  let h =
    Event_loop.watch loop ~readable:true ~writable:true a
      (fun ~readable ~writable -> got := (readable, writable))
  in
  checki "one fd watched" 1 (Event_loop.fd_count loop);
  ignore (Unix.write_substring b "ping\n" 0 5);
  Event_loop.run_once loop;
  checkb "readable and writable fire together" true (!got = (true, true));
  (* Dropping write interest leaves only the readable report. *)
  Event_loop.set_interest loop h ~writable:false ();
  got := (false, false);
  ignore (Unix.write_substring b "more\n" 0 5);
  Event_loop.run_once loop;
  checkb "writable interest disarmed" true (!got = (true, false));
  Event_loop.unwatch loop h;
  checki "unwatch forgets the fd" 0 (Event_loop.fd_count loop)

let test_select_capacity_guard () =
  (* The select fallback must refuse to watch past FD_SETSIZE instead of
     letting Unix.select die with EINVAL mid-serve. *)
  let loop = Event_loop.create ~backend:Event_loop.Select () in
  (match Event_loop.capacity loop with
  | Some cap -> checki "select capacity is FD_SETSIZE" 1024 cap
  | None -> Alcotest.fail "select backend must report a capacity");
  let pairs = ref [] in
  let finally () =
    List.iter
      (fun (a, b) ->
        (try Unix.close a with Unix.Unix_error _ -> ());
        try Unix.close b with Unix.Unix_error _ -> ())
      !pairs
  in
  Fun.protect ~finally @@ fun () ->
  (try
     while not (Event_loop.at_capacity loop) do
       let a, b =
         Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
       in
       pairs := (a, b) :: !pairs;
       ignore (Event_loop.watch loop a (fun ~readable:_ ~writable:_ -> ()));
       if not (Event_loop.at_capacity loop) then
         ignore (Event_loop.watch loop b (fun ~readable:_ ~writable:_ -> ()))
     done
   with Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
     Alcotest.fail "fd limit below FD_SETSIZE; raise ulimit -n");
  checki "guard trips exactly at capacity" 1024 (Event_loop.fd_count loop);
  with_socketpair @@ fun extra _ ->
  checkb "watch past capacity refuses" true
    (try
       ignore (Event_loop.watch loop extra (fun ~readable:_ ~writable:_ -> ()));
       false
     with Invalid_argument _ -> true)

(* ----------------------------------------------------------- write queue *)

let read_all_nonblock fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | k ->
        Buffer.add_subbytes buf chunk 0 k;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let test_write_queue_round_trip () =
  with_socketpair @@ fun a b ->
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  let wq = Write_queue.create ~cap_bytes:1024 a in
  checkb "fresh queue is empty" true (Write_queue.is_empty wq);
  checkb "enqueue under cap" true (Write_queue.enqueue wq "hello" = `Ok);
  checki "newline counted" 6 (Write_queue.pending_bytes wq);
  checkb "flush drains" true (Write_queue.flush wq = `Idle);
  checkb "drained" true (Write_queue.is_empty wq);
  Alcotest.check Alcotest.string "bytes arrive with the newline" "hello\n"
    (read_all_nonblock b)

let test_write_queue_cap () =
  with_socketpair @@ fun a _b ->
  Unix.set_nonblock a;
  let wq = Write_queue.create ~cap_bytes:100 a in
  let line = String.make 40 'x' in
  checkb "first line fits" true (Write_queue.enqueue wq line = `Ok);
  checkb "second line fits" true (Write_queue.enqueue wq line = `Ok);
  (* 82 bytes queued; a third 41-byte line would cross the cap — it is
     refused and NOT queued. *)
  checkb "cap refuses the overflowing line" true
    (Write_queue.enqueue wq line = `Overflow);
  checki "refused line not queued" 82 (Write_queue.pending_bytes wq)

let test_write_queue_peer_gone () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.close b;
  Fun.protect ~finally:(fun () -> try Unix.close a with Unix.Unix_error _ -> ())
  @@ fun () ->
  let wq = Write_queue.create ~cap_bytes:1024 a in
  checkb "enqueue still accepts" true (Write_queue.enqueue wq "late" = `Ok);
  checkb "flush reports the dead peer" true (Write_queue.flush wq = `Closed)

(* ------------------------------------------------------ slow-client close *)

let route_line ?(id = 1) () =
  Printf.sprintf
    {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": [8,7,6,5,4,3,2,1,0], "engine": "local"}}|}
    id

let test_slow_client_closed_at_cap () =
  (* serve_fd with a tiny outbox cap and a shrunken kernel send buffer:
     the peer writes a pipeline of requests and never reads a byte.
     Once the kernel buffer is full the responses accumulate in the
     write queue; at the cap the connection is declared slow and closed
     — serve_fd returns instead of buffering (or blocking) forever. *)
  with_test_deadline 30 @@ fun () ->
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ())
  @@ fun () ->
  let before = counter_value "server_slow_client_closes" in
  with_socketpair @@ fun server_fd client_fd ->
  Unix.setsockopt_int server_fd Unix.SO_SNDBUF 4096;
  (* Queue the whole pipeline up front as one contiguous write (well
     within the request-side kernel buffer), then let the server
     discover the stalled reader.  150 responses comfortably exceed the
     4KB send buffer plus the 2KB outbox cap. *)
  let pipeline =
    String.concat ""
      (List.init 150 (fun i -> route_line ~id:(i + 1) () ^ "\n"))
  in
  let rec write_all off =
    if off < String.length pipeline then
      let k =
        Unix.write_substring client_fd pipeline off
          (String.length pipeline - off)
      in
      write_all (off + k)
  in
  write_all 0;
  let config = { Session.default_config with Session.max_outbox_bytes = 2048 } in
  Server.serve_fd ~config server_fd;
  checki "slow client counted" (before + 1)
    (counter_value "server_slow_client_closes")

(* --------------------------------------------------- slow-reader isolation *)

let await_socket path =
  let rec go tries =
    if tries = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go 250

let counter_of stats name =
  match Json.member "counters" stats with
  | Some (Json.Obj fields) -> (
      match List.assoc_opt name fields with
      | Some (Json.Int n) -> n
      | Some _ -> Alcotest.failf "counter %s not an int" name
      | None -> 0)
  | _ -> Alcotest.fail "metrics carries no counters"

let member_exn name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

let with_forked_server ?(config = Session.default_config) ?workers tag f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d.sock" tag (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (try Server.run_socket ~config ?workers ~path () with _ -> ());
      Unix._exit 0
  | child ->
      let finally () =
        (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      await_socket path;
      f path

let test_slow_reader_does_not_block_others () =
  (* The head-of-line-blocking regression (satellite of DESIGN.md §15):
     one client floods the server with pipelined requests and never
     reads a response.  Under the historical blocking write_all the
     accept loop wedged inside write(2) to that client, so every other
     connection starved.  The readiness loop keeps serving: the healthy
     client is answered within the test deadline and the staller is
     closed at its outbox cap. *)
  with_test_deadline 60 @@ fun () ->
  let config =
    { Session.default_config with Session.max_outbox_bytes = 32_768 }
  in
  with_forked_server ~config "qr_evloop_stall" @@ fun path ->
  let staller = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close staller with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect staller (Unix.ADDR_UNIX path);
  (* Elicit far more response bytes than kernel buffer + cap can hold.
     The server closes the staller mid-pipeline, so the remaining
     writes fail — that is the success condition, not an error. *)
  let closed_early = ref false in
  (try
     for id = 1 to 4000 do
       let line = route_line ~id () ^ "\n" in
       ignore (Unix.write_substring staller line 0 (String.length line))
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     closed_early := true);
  (* A healthy client on the same server answers while the staller's
     backlog is still queued. *)
  let req id meth = P.request ~id:(Json.Int id) ~meth (Json.Obj []) in
  (match Client.rpc_retry ~path (req 1 "health") with
  | Client.Response envelope -> (
      match P.response_result envelope with
      | Ok health ->
          checkb "healthy client served alongside the staller" true
            (member_exn "status" health = Json.String "ok")
      | Error err -> Alcotest.failf "health errored: %s" err.P.message)
  | Client.Server_error (err, _) ->
      Alcotest.failf "health errored: %s" err.P.message
  | Client.Transport_failure msg -> Alcotest.failf "transport failure: %s" msg);
  (* The staller was (or is about to be) closed at the cap. *)
  let rec await_close tries =
    if tries = 0 then Alcotest.fail "staller never closed at the cap";
    match Client.rpc_retry ~path (req 2 "metrics") with
    | Client.Response envelope -> (
        match P.response_result envelope with
        | Ok metrics ->
            if counter_of metrics "server_slow_client_closes" >= 1 then ()
            else begin
              Unix.sleepf 0.05;
              await_close (tries - 1)
            end
        | Error err -> Alcotest.failf "metrics errored: %s" err.P.message)
    | _ -> Alcotest.fail "metrics request failed"
  in
  await_close 100;
  checkb "staller observed the close or was closed after its burst" true
    (!closed_early
    ||
    (* Drain whatever was flushed before the close; EOF/reset follows. *)
    (Unix.shutdown staller Unix.SHUTDOWN_SEND;
     let chunk = Bytes.create 65536 in
     let rec drain () =
       match Unix.read staller chunk 0 65536 with
       | 0 -> true
       | _ -> drain ()
       | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
     in
     drain ()))

(* ------------------------------------------------- many-connection scaling *)

let test_beyond_select_capacity () =
  (* The poll backend serves more concurrent connections than
     FD_SETSIZE allows — the scenario that killed the select loop with
     EINVAL.  Gated on the fd limit: a constrained environment skips
     rather than fails. *)
  if not Sys_poll.available then
    checkb "poll unavailable; nothing to test" true true
  else
    with_test_deadline 120 @@ fun () ->
    with_forked_server "qr_evloop_many" @@ fun path ->
    let conns = ref [] in
    let finally () =
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !conns
    in
    Fun.protect ~finally @@ fun () ->
    let target = 1100 in
    let opened =
      try
        for _ = 1 to target do
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          conns := fd :: !conns;
          Unix.connect fd (Unix.ADDR_UNIX path)
        done;
        target
      with Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        List.length !conns
    in
    if opened < target then
      (* fd limit too low to exercise the scenario; connections close in
         [finally], the server just drains. *)
      checkb "skipped: fd limit below the 1100-connection target" true true
    else begin
      (* Every connection is idle-open; the newest one still gets
         answered — the server is past FD_SETSIZE and serving. *)
      let fd = List.hd !conns in
      let line = route_line ~id:9999 () ^ "\n" in
      ignore (Unix.write_substring fd line 0 (String.length line));
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec read_line () =
        if String.contains (Buffer.contents buf) '\n' then ()
        else
          match Unix.read fd chunk 0 4096 with
          | 0 -> Alcotest.fail "server closed the 1100th connection"
          | k ->
              Buffer.add_subbytes buf chunk 0 k;
              read_line ()
      in
      read_line ();
      let data = Buffer.contents buf in
      let response = String.sub data 0 (String.index data '\n') in
      match P.response_result (Json.of_string_exn response) with
      | Ok _ -> checkb "served beyond FD_SETSIZE" true true
      | Error err ->
          Alcotest.failf "route failed at 1100 connections: %s" err.P.message
    end

(* -------------------------------------------------------------------- run *)

let () =
  Alcotest.run "qr_evloop"
    [
      ( "timers",
        [
          Alcotest.test_case "due order" `Quick test_timer_ordering;
          Alcotest.test_case "periodic coalescing" `Quick test_timer_coalescing;
          Alcotest.test_case "wakeup accounting" `Quick test_wakeup_accounting;
        ] );
      ( "interest",
        [
          Alcotest.test_case "readable+writable on one fd" `Quick
            test_readable_and_writable;
          Alcotest.test_case "select capacity guard" `Slow
            test_select_capacity_guard;
        ] );
      ( "write_queue",
        [
          Alcotest.test_case "round trip" `Quick test_write_queue_round_trip;
          Alcotest.test_case "byte cap" `Quick test_write_queue_cap;
          Alcotest.test_case "peer gone" `Quick test_write_queue_peer_gone;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "slow client closed at cap" `Slow
            test_slow_client_closed_at_cap;
          Alcotest.test_case "slow reader does not block others" `Slow
            test_slow_reader_does_not_block_others;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "beyond FD_SETSIZE" `Slow
            test_beyond_select_capacity;
        ] );
    ]
