(* Tests for the hardware-flavoured additions: Unitary extraction,
   non-grid topologies (heavy-hex, Falcon-27), annealed placement. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------------------------------------------------------- Unitary *)

let test_unitary_identity () =
  let u = Unitary.of_circuit (Circuit.create ~num_qubits:2 []) in
  checkb "is unitary" true (Unitary.is_unitary u);
  Alcotest.check (Alcotest.float 1e-12) "diag" 1. (fst (Unitary.entry u ~row:0 ~col:0));
  Alcotest.check (Alcotest.float 1e-12) "off-diag" 0.
    (fst (Unitary.entry u ~row:1 ~col:0))

let test_unitary_x_matrix () =
  let u =
    Unitary.of_circuit (Circuit.create ~num_qubits:1 [ Gate.One (Gate.X, 0) ])
  in
  Alcotest.check (Alcotest.float 1e-12) "X01" 1. (fst (Unitary.entry u ~row:1 ~col:0));
  Alcotest.check (Alcotest.float 1e-12) "X00" 0. (fst (Unitary.entry u ~row:0 ~col:0))

let test_unitary_all_library_circuits_unitary () =
  List.iter
    (fun c -> checkb "unitary" true (Unitary.is_unitary (Unitary.of_circuit c)))
    [ Library.qft 4; Library.ghz 5;
      Library.ising_trotter_2d (Grid.make ~rows:2 ~cols:2) ~steps:2 ~theta:0.7;
      Library.random_two_qubit (Rng.create 1) ~num_qubits:5 ~gates:20 ]

let test_unitary_global_phase_equivalence () =
  (* Z = e^{i pi/2} Rz(pi): equal only up to phase. *)
  let z = Unitary.of_circuit (Circuit.create ~num_qubits:1 [ Gate.One (Gate.Z, 0) ]) in
  let rz =
    Unitary.of_circuit
      (Circuit.create ~num_qubits:1 [ Gate.One (Gate.Rz Float.pi, 0) ])
  in
  checkb "Z ~ Rz(pi)" true (Unitary.equal_up_to_phase z rz);
  let x = Unitary.of_circuit (Circuit.create ~num_qubits:1 [ Gate.One (Gate.X, 0) ]) in
  checkb "Z <> X" false (Unitary.equal_up_to_phase z x)

let test_unitary_transpiled_qft_exact () =
  (* The strongest end-to-end statement: transpiled QFT's unitary equals
     the logical QFT's unitary after relabeling by the layouts. *)
  let grid = Grid.make ~rows:2 ~cols:3 in
  let logical = Library.qft 6 in
  let result = transpile grid logical in
  let u_logical = Unitary.of_circuit logical in
  let u_physical = Unitary.of_circuit result.physical in
  (* Exhaustive basis-state comparison (equivalent to matrix equality,
     layout relabelings included), plus unitarity of both matrices. *)
  let n = 6 in
  let ok = ref true in
  for k = 0 to (1 lsl n) - 1 do
    let psi = Statevector.basis_state n k in
    let out_logical = Statevector.run logical psi in
    let placed =
      Statevector.permute_qubits psi (Layout.to_phys_array result.initial)
    in
    let out_phys = Statevector.run result.physical placed in
    let back = Array.init n (fun v -> Layout.logical result.final v) in
    if
      not
        (Statevector.approx_equal out_logical
           (Statevector.permute_qubits out_phys back))
    then ok := false
  done;
  checkb "exact on every basis state" true !ok;
  checkb "physical matrix is unitary" true (Unitary.is_unitary u_physical);
  checkb "logical matrix is unitary" true (Unitary.is_unitary u_logical)

let test_unitary_qubit_permutation_matches_relabeled_circuit () =
  (* Conjugating by a relabeling = the unitary of the circuit with its
     wires renamed. *)
  let p = [| 1; 2; 0 |] in
  let c =
    Circuit.create ~num_qubits:3
      [ Gate.One (Gate.H, 0); Gate.Two (Gate.CX, 0, 1); Gate.One (Gate.T, 2) ]
  in
  let relabeled = Unitary.apply_qubit_permutation (Unitary.of_circuit c) p in
  let renamed = Unitary.of_circuit (Circuit.map_qubits (fun q -> p.(q)) c) in
  checkb "conjugation = wire renaming" true
    (Unitary.equal_up_to_phase relabeled renamed);
  (* And conjugating the identity circuit is a no-op. *)
  let u_id = Unitary.of_circuit (Circuit.create ~num_qubits:3 []) in
  checkb "identity fixed" true
    (Unitary.equal_up_to_phase u_id (Unitary.apply_qubit_permutation u_id p))

let test_unitary_rejects_large () =
  Alcotest.check_raises "too big"
    (Invalid_argument "Unitary.of_circuit: too many qubits") (fun () ->
      ignore (Unitary.of_circuit (Circuit.create ~num_qubits:9 [])))

(* --------------------------------------------------------------- Topology *)

let test_heavy_hex_structure () =
  let hh = Topology.heavy_hex ~rows:3 ~cols:5 in
  checkb "connected" true (Graph.is_connected hh.graph);
  checkb "max degree 3" true (Graph.max_degree hh.graph <= 3);
  checki "row qubits first" 15 (hh.data_rows * hh.row_length);
  List.iter
    (fun (bridge, upper, lower) ->
      checki "bridge degree 2" 2 (Graph.degree hh.graph bridge);
      checkb "bridge edges exist" true
        (Graph.mem_edge hh.graph bridge upper
        && Graph.mem_edge hh.graph bridge lower))
    hh.bridges

let test_heavy_hex_small () =
  let hh = Topology.heavy_hex ~rows:2 ~cols:1 in
  checkb "still connected" true (Graph.is_connected hh.graph)

let test_heavy_hex_routable () =
  let hh = Topology.heavy_hex ~rows:3 ~cols:4 in
  let g = hh.graph in
  let n = Graph.num_vertices g in
  let oracle = Distance.of_graph g in
  let rng = Rng.create 3 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng n) in
    let sched = Parallel_ats.route ~trials:1 g oracle pi in
    checkb "valid" true (Schedule.is_valid g sched);
    checkb "realizes" true (Schedule.realizes ~n sched pi)
  done

let test_falcon_27 () =
  let g = Topology.ibm_falcon_27 () in
  checki "qubits" 27 (Graph.num_vertices g);
  checki "couplers" 28 (Graph.num_edges g);
  checkb "connected" true (Graph.is_connected g);
  checkb "max degree 3" true (Graph.max_degree g <= 3)

let test_falcon_transpile () =
  let g = Topology.ibm_falcon_27 () in
  let oracle = Distance.of_graph g in
  let rng = Rng.create 4 in
  let c = Library.random_two_qubit rng ~num_qubits:27 ~gates:60 in
  let r = Sabre_lite.run ~graph:g ~dist:oracle c in
  checkb "feasible on falcon" true (Circuit.is_feasible g r.physical);
  checki "gates preserved" (Circuit.size c)
    (Circuit.size r.physical - Circuit.swap_count r.physical)

let test_ladder () =
  let g = Topology.ladder 5 in
  checki "vertices" 10 (Graph.num_vertices g);
  checki "edges" 13 (Graph.num_edges g)

(* --------------------------------------------------------------- Annealing *)

let test_anneal_never_worse () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let dist = Distance.of_grid grid in
  let rng = Rng.create 5 in
  for seed = 0 to 4 do
    let c = Library.random_local_two_qubit rng ~grid ~radius:2 ~gates:40 in
    let start = Layout.random (Rng.create (70 + seed)) 16 in
    let annealed =
      Placement.anneal ~iterations:2000 ~rng:(Rng.create seed) ~dist c start
    in
    checkb "valid layout" true
      (Perm.is_permutation (Layout.to_phys_array annealed));
    checkb "cost never worse" true
      (Placement.placement_cost ~dist c annealed
      <= Placement.placement_cost ~dist c start)
  done

let test_anneal_improves_greedy_or_ties () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let dist = Distance.of_grid grid in
  let rng = Rng.create 6 in
  let c = Library.random_local_two_qubit rng ~grid ~radius:1 ~gates:60 in
  let greedy = Placement.place ~graph:(Grid.graph grid) ~dist c in
  let refined =
    Placement.anneal ~iterations:5000 ~rng:(Rng.create 1) ~dist c greedy
  in
  checkb "refinement monotone" true
    (Placement.placement_cost ~dist c refined
    <= Placement.placement_cost ~dist c greedy)

let test_anneal_trivial_cases () =
  let grid = Grid.make ~rows:1 ~cols:1 in
  let dist = Distance.of_grid grid in
  let c = Circuit.create ~num_qubits:1 [] in
  let layout = Layout.identity 1 in
  let out = Placement.anneal ~iterations:10 ~rng:(Rng.create 0) ~dist c layout in
  checkb "singleton survives" true (Layout.equal out layout)

let () =
  Alcotest.run "hardware"
    [
      ( "unitary",
        [
          Alcotest.test_case "identity" `Quick test_unitary_identity;
          Alcotest.test_case "X matrix" `Quick test_unitary_x_matrix;
          Alcotest.test_case "library unitary" `Quick
            test_unitary_all_library_circuits_unitary;
          Alcotest.test_case "global phase" `Quick
            test_unitary_global_phase_equivalence;
          Alcotest.test_case "transpiled qft exact" `Quick
            test_unitary_transpiled_qft_exact;
          Alcotest.test_case "conjugation = renaming" `Quick
            test_unitary_qubit_permutation_matches_relabeled_circuit;
          Alcotest.test_case "rejects large" `Quick test_unitary_rejects_large;
        ] );
      ( "topology",
        [
          Alcotest.test_case "heavy-hex structure" `Quick test_heavy_hex_structure;
          Alcotest.test_case "heavy-hex small" `Quick test_heavy_hex_small;
          Alcotest.test_case "heavy-hex routable" `Quick test_heavy_hex_routable;
          Alcotest.test_case "falcon-27" `Quick test_falcon_27;
          Alcotest.test_case "falcon transpile" `Quick test_falcon_transpile;
          Alcotest.test_case "ladder" `Quick test_ladder;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "never worse" `Quick test_anneal_never_worse;
          Alcotest.test_case "refines greedy" `Quick
            test_anneal_improves_greedy_or_ties;
          Alcotest.test_case "trivial" `Quick test_anneal_trivial_cases;
        ] );
    ]
