(* Tests for Qr_route.Schedule. *)

module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_empty () =
  checki "depth" 0 (Schedule.depth Schedule.empty);
  checki "size" 0 (Schedule.size Schedule.empty);
  checkb "realizes identity" true
    (Schedule.realizes ~n:4 Schedule.empty (Perm.identity 4))

let test_depth_size () =
  let s = [ [| (0, 1); (2, 3) |]; [| (1, 2) |] ] in
  checki "depth" 2 (Schedule.depth s);
  checki "size" 3 (Schedule.size s)

let test_apply_single_swap () =
  let s = [ [| (0, 1) |] ] in
  Alcotest.check
    Alcotest.(array int)
    "transposition" [| 1; 0; 2 |] (Schedule.apply ~n:3 s)

let test_apply_sequencing () =
  (* (0,1) then (1,2): token 0 -> 1 -> 2; token 1 -> 0; token 2 -> 1. *)
  let s = [ [| (0, 1) |]; [| (1, 2) |] ] in
  Alcotest.check
    Alcotest.(array int)
    "three-cycle" [| 2; 0; 1 |] (Schedule.apply ~n:3 s)

let test_apply_rejects_overlap () =
  Alcotest.check_raises "overlapping layer"
    (Invalid_argument "Schedule.apply: layer is not a matching") (fun () ->
      ignore (Schedule.apply ~n:3 [ [| (0, 1); (1, 2) |] ]))

let test_layer_is_matching () =
  checkb "ok" true (Schedule.layer_is_matching ~n:4 [| (0, 1); (2, 3) |]);
  checkb "vertex reuse" false (Schedule.layer_is_matching ~n:4 [| (0, 1); (1, 2) |]);
  checkb "loop" false (Schedule.layer_is_matching ~n:4 [| (2, 2) |]);
  checkb "range" false (Schedule.layer_is_matching ~n:4 [| (0, 9) |])

let test_is_valid_checks_edges () =
  let g = Graph.path 4 in
  checkb "path edges ok" true (Schedule.is_valid g [ [| (0, 1); (2, 3) |] ]);
  checkb "chord rejected" false (Schedule.is_valid g [ [| (0, 2) |] ])

let test_inverse_realizes_inverse () =
  let rng = Rng.create 1 in
  let grid = Grid.make ~rows:3 ~cols:3 in
  let pi = Perm.check (Rng.permutation rng 9) in
  let s = Qr_route.Local_grid_route.route grid pi in
  let inv = Schedule.inverse s in
  checkb "inverse schedule" true
    (Schedule.realizes ~n:9 inv (Perm.inverse pi))

let test_of_swaps_and_swaps_roundtrip () =
  let swaps = [ (0, 1); (1, 2); (0, 3) ] in
  let s = Schedule.of_swaps swaps in
  checki "one per layer" 3 (Schedule.depth s);
  Alcotest.check
    Alcotest.(list (pair int int))
    "roundtrip" swaps (Schedule.swaps s)

let test_concat () =
  let a = [ [| (0, 1) |] ] and b = [ [| (2, 3) |] ] in
  let s = Schedule.concat a b in
  checki "depth adds" 2 (Schedule.depth s)

let test_compact_packs_disjoint () =
  let s = Schedule.of_swaps [ (0, 1); (2, 3); (4, 5) ] in
  let c = Schedule.compact ~n:6 s in
  checki "single layer" 1 (Schedule.depth c);
  checki "size kept" 3 (Schedule.size c)

let test_compact_respects_conflicts () =
  let s = Schedule.of_swaps [ (0, 1); (1, 2); (2, 3) ] in
  let c = Schedule.compact ~n:4 s in
  checki "chain stays serial" 3 (Schedule.depth c)

let test_compact_preserves_permutation () =
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    let n = 6 in
    let swaps =
      List.init 15 (fun _ ->
          let a = Rng.int rng n in
          let b = (a + 1 + Rng.int rng (n - 1)) mod n in
          (a, b))
    in
    let s = Schedule.of_swaps swaps in
    let c = Schedule.compact ~n s in
    checkb "same permutation" true
      (Perm.equal (Schedule.apply ~n s) (Schedule.apply ~n c));
    checkb "never deeper" true (Schedule.depth c <= Schedule.depth s);
    checki "same size" (Schedule.size s) (Schedule.size c)
  done

let test_json_shape () =
  let s = [ [| (0, 1); (2, 3) |]; [| (1, 2) |] ] in
  Alcotest.check Alcotest.string "wire shape"
    {|{"depth":2,"size":3,"layers":[[[0,1],[2,3]],[[1,2]]]}|}
    (Qr_obs.Json.to_string (Schedule.to_json s));
  Alcotest.check Alcotest.string "empty schedule"
    {|{"depth":0,"size":0,"layers":[]}|}
    (Qr_obs.Json.to_string (Schedule.to_json Schedule.empty))

let test_of_json_validates () =
  let module Json = Qr_obs.Json in
  let is_error doc = Result.is_error (Schedule.of_json doc) in
  let parse text = Json.of_string_exn text in
  checkb "missing layers" true (is_error (Json.Obj []));
  checkb "layers not a list" true
    (is_error (parse {|{"layers": 3}|}));
  checkb "loop swap" true
    (is_error (parse {|{"layers": [[[1,1]]]}|}));
  checkb "negative endpoint" true
    (is_error (parse {|{"layers": [[[-1,0]]]}|}));
  checkb "three-element swap" true
    (is_error (parse {|{"layers": [[[0,1,2]]]}|}));
  checkb "depth disagrees" true
    (is_error (parse {|{"depth": 5, "layers": [[[0,1]]]}|}));
  checkb "size disagrees" true
    (is_error (parse {|{"size": 5, "layers": [[[0,1]]]}|}));
  (* depth/size optional; an empty layer is a valid (wasteful) layer. *)
  checkb "layers alone suffice" true
    (Schedule.of_json (parse {|{"layers": [[], [[0,1]]]}|})
    = Ok [ [||]; [| (0, 1) |] ])

let json_roundtrip_exact =
  QCheck.Test.make
    ~name:"to_json/of_json round-trips exactly (through the printer)"
    ~count:200
    QCheck.(small_list (small_list (pair (int_bound 7) (int_bound 7))))
    (fun raw ->
      let s =
        List.map
          (fun layer ->
            Array.of_list (List.filter (fun (a, b) -> a <> b) layer))
          raw
      in
      let doc = Schedule.to_json s in
      (* Structural round-trip, and byte-level through print/parse. *)
      Schedule.of_json doc = Ok s
      && Schedule.of_json_exn
           (Qr_obs.Json.of_string_exn (Qr_obs.Json.to_string doc))
         = s)

let test_map_vertices () =
  let s = [ [| (0, 1) |] ] in
  let m = Schedule.map_vertices (fun v -> v + 2) s in
  Alcotest.check
    Alcotest.(array int)
    "shifted" [| 0; 1; 3; 2 |] (Schedule.apply ~n:4 m)

let compact_idempotent =
  QCheck.Test.make ~name:"compact is idempotent" ~count:200
    QCheck.(small_list (pair (int_bound 7) (int_bound 7)))
    (fun pairs ->
      let swaps = List.filter (fun (a, b) -> a <> b) pairs in
      let c = Schedule.compact ~n:8 (Schedule.of_swaps swaps) in
      let cc = Schedule.compact ~n:8 c in
      Schedule.depth c = Schedule.depth cc && Schedule.size c = Schedule.size cc)

let compact_layers_are_matchings =
  QCheck.Test.make ~name:"compact yields matching layers" ~count:200
    QCheck.(small_list (pair (int_bound 7) (int_bound 7)))
    (fun pairs ->
      let swaps = List.filter (fun (a, b) -> a <> b) pairs in
      let c = Schedule.compact ~n:8 (Schedule.of_swaps swaps) in
      List.for_all (fun layer -> Schedule.layer_is_matching ~n:8 layer) c)

let apply_of_inverse_composes_to_identity =
  QCheck.Test.make ~name:"schedule then inverse = identity" ~count:100
    QCheck.(small_list (pair (int_bound 5) (int_bound 5)))
    (fun pairs ->
      let swaps = List.filter (fun (a, b) -> a <> b) pairs in
      let s = Schedule.of_swaps swaps in
      let round_trip = Schedule.concat s (Schedule.inverse s) in
      Perm.is_identity (Schedule.apply ~n:6 round_trip))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "schedule"
    [
      ( "schedule",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "depth/size" `Quick test_depth_size;
          Alcotest.test_case "apply single" `Quick test_apply_single_swap;
          Alcotest.test_case "apply sequencing" `Quick test_apply_sequencing;
          Alcotest.test_case "apply rejects overlap" `Quick
            test_apply_rejects_overlap;
          Alcotest.test_case "layer_is_matching" `Quick test_layer_is_matching;
          Alcotest.test_case "is_valid edges" `Quick test_is_valid_checks_edges;
          Alcotest.test_case "inverse" `Quick test_inverse_realizes_inverse;
          Alcotest.test_case "of_swaps/swaps" `Quick
            test_of_swaps_and_swaps_roundtrip;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "compact packs" `Quick test_compact_packs_disjoint;
          Alcotest.test_case "compact conflicts" `Quick
            test_compact_respects_conflicts;
          Alcotest.test_case "compact preserves" `Quick
            test_compact_preserves_permutation;
          Alcotest.test_case "map_vertices" `Quick test_map_vertices;
          Alcotest.test_case "json shape" `Quick test_json_shape;
          Alcotest.test_case "of_json validates" `Quick test_of_json_validates;
          qc json_roundtrip_exact;
          qc compact_idempotent;
          qc compact_layers_are_matchings;
          qc apply_of_inverse_composes_to_identity;
        ] );
    ]
