(* Tests for the supervision & overload-control plane (DESIGN.md §14):
   cooperative cancellation tokens and their bit-transparency, the
   worker watchdog's kill → lost escalation, per-engine circuit
   breakers, adaptive admission and memory brownout, the oversized-line
   cap — plus the two acceptance chaos demos: a hung worker answered by
   the watchdog and respawned mid-service, and a breaker tripping under
   a plan that breaks exactly one engine, then recovering through
   half-open probes. *)

module Json = Qr_obs.Json
module Metrics = Qr_obs.Metrics
module Log = Qr_obs.Log
module Rng = Qr_util.Rng
module Timer = Qr_util.Timer
module Cancel = Qr_util.Cancel
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Router_intf = Qr_route.Router_intf
module Router_registry = Qr_route.Router_registry
module Breaker = Qr_route.Breaker
module Fault = Qr_fault.Fault
module Io_util = Qr_server.Io_util
module P = Qr_server.Protocol
module Deadline = Qr_server.Deadline
module Plan_cache = Qr_server.Plan_cache
module Supervisor = Qr_server.Supervisor
module Session = Qr_server.Session
module Server = Qr_server.Server
module Client = Qr_server.Client

let () = Qr_token.Engines.register ()
let () = ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let with_plan ?(seed = 0) plan f =
  (match Fault.parse_plan plan with
  | Ok specs -> Fault.arm ~seed specs
  | Error msg -> Alcotest.failf "bad test plan %S: %s" plan msg);
  Fun.protect ~finally:Fault.disarm f

let rev9 = Perm.check [| 8; 7; 6; 5; 4; 3; 2; 1; 0 |]

let route_line ?(id = 1) ?(engine = "local") pi =
  Printf.sprintf
    {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": %s, "engine": "%s"}}|}
    id
    (Json.to_string (P.perm_to_json pi))
    engine

let result_of line =
  match P.response_result (Json.of_string_exn line) with
  | Ok result -> result
  | Error err -> Alcotest.failf "error response: %s" err.P.message

let member_exn name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" name (Json.to_string doc)

(* -------------------------------------------------------------- deadline *)

let test_deadline_saturates () =
  (* A huge budget must saturate at the far future, not wrap past the
     monotonic clock into the instantly-expired past. *)
  let d = Deadline.after_ms max_int in
  checkb "huge budget not expired" false (Deadline.expired d);
  checkb "huge budget has an instant" true (Deadline.absolute_ns d <> None);
  let d2 = Deadline.after_ms (max_int / 1_000) in
  checkb "near-overflow budget not expired" false (Deadline.expired d2);
  checkb "zero budget expired" true (Deadline.expired (Deadline.after_ms 0));
  checkb "negative budget expired" true
    (Deadline.expired (Deadline.after_ms (-5)));
  checkb "none never expires" false (Deadline.expired Deadline.none);
  checkb "none has no instant" true (Deadline.absolute_ns Deadline.none = None)

(* ---------------------------------------------------------- cancel token *)

let test_cancel_kill_and_deadline () =
  (* poll on the shared [none] token is free and never raises. *)
  for _ = 1 to 1_000 do
    Cancel.poll Cancel.none
  done;
  (* A killed token aborts within one polling stride. *)
  let t = Cancel.create () in
  Cancel.kill t;
  (match
     for _ = 1 to 200 do
       Cancel.poll t
     done
   with
  | () -> Alcotest.fail "killed token never fired"
  | exception Cancel.Cancelled Cancel.Killed -> ());
  (* An expired deadline aborts within one clock-check stride. *)
  let t2 = Cancel.create ~deadline_ns:(Timer.now_ns ()) () in
  (match
     for _ = 1 to 1_000 do
       Cancel.poll t2
     done
   with
  | () -> Alcotest.fail "expired token never fired"
  | exception Cancel.Cancelled Cancel.Deadline -> ());
  (* The progress word advances while a live token is polled. *)
  let t3 = Cancel.create () in
  let before = Cancel.progress t3 in
  for _ = 1 to 1_000 do
    Cancel.poll t3
  done;
  checkb "progress advanced" true (Cancel.progress t3 > before);
  (* with_ambient restores the previous token even on exceptions. *)
  checkb "ambient defaults to none" true (Cancel.ambient () == Cancel.none);
  (try
     Cancel.with_ambient t3 (fun () ->
         checkb "ambient installed" true (Cancel.ambient () == t3);
         failwith "boom")
   with Failure _ -> ());
  checkb "ambient restored" true (Cancel.ambient () == Cancel.none)

(* The checkpoints must be pure observation: for every registry engine,
   routing under a live (but never-cancelled) ambient token returns a
   bit-identical schedule to routing with no token at all. *)
let cancellation_is_transparent =
  QCheck.Test.make ~name:"cancellation checkpoints never change schedules"
    ~count:30
    QCheck.(triple (int_range 2 5) (int_range 2 5) (int_range 0 10_000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation (Rng.create seed) (m * n)) in
      List.for_all
        (fun engine ->
          let bare = Router_intf.route_grid engine grid pi in
          let watched =
            Cancel.with_ambient (Cancel.create ()) (fun () ->
                Router_intf.route_grid engine grid pi)
          in
          Json.to_string (Schedule.to_json bare)
          = Json.to_string (Schedule.to_json watched))
        (Router_registry.all ()))

(* ------------------------------------------------------------ hardened IO *)

let socketpair () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0

let drain fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k ->
        Buffer.add_subbytes buf chunk 0 k;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let test_write_all_truncate_terminates () =
  (* Regression: a truncate fault shortening every attempted write must
     never stall the write_all loop — the attempted length is clamped to
     at least one byte, so the payload always lands whole.  The payload
     fits the kernel socket buffer, so no concurrent reader is needed. *)
  let client, server = socketpair () in
  let payload = String.init 4_096 (fun i -> Char.chr (33 + (i mod 90))) in
  with_plan "server.write=truncate" (fun () ->
      (match Io_util.write_all ~fault:"server.write" server payload with
      | Ok () -> ()
      | Error `Closed -> Alcotest.fail "peer vanished under truncate");
      checkb "truncate actually fired" true (Fault.fires "server.write" > 0));
  Unix.shutdown server Unix.SHUTDOWN_SEND;
  Unix.close server;
  let received = drain client in
  Unix.close client;
  checkb "payload byte-identical" true (received = payload)

(* --------------------------------------------------------------- breaker *)

let breaker_cfg =
  {
    Breaker.window = 4;
    threshold = 2;
    cooldown_ns = 30_000_000L (* 30ms *);
    probes = 2;
  }

let test_breaker_state_machine () =
  let b = Breaker.create ~config:breaker_cfg "unit" in
  checkb "starts closed" true (Breaker.state b = Breaker.Closed);
  checkb "admits closed" true (Breaker.admit b = `Admit);
  Breaker.record b ~ok:true;
  checkb "still closed after success" true (Breaker.state b = Breaker.Closed);
  (* Two failures in the window trip it open. *)
  ignore (Breaker.admit b);
  Breaker.record b ~ok:false;
  ignore (Breaker.admit b);
  Breaker.record b ~ok:false;
  checkb "tripped open" true (Breaker.state b = Breaker.Open);
  checki "one trip" 1 (Breaker.trips b);
  checkb "open rejects" true (Breaker.admit b = `Reject);
  checki "rejection tallied" 1 (Breaker.rejections b);
  (* Cooldown elapses: half-open, one probe slot. *)
  Unix.sleepf 0.04;
  checkb "probe offered" true (Breaker.admit b = `Probe);
  checkb "second caller rejected while probe in flight" true
    (Breaker.admit b = `Reject);
  Breaker.record_probe b ~ok:true;
  checkb "one probe is not enough" true (Breaker.state b = Breaker.Half_open);
  checkb "next probe offered" true (Breaker.admit b = `Probe);
  Breaker.record_probe b ~ok:true;
  checkb "closed again" true (Breaker.state b = Breaker.Closed);
  checki "recovery tallied" 1 (Breaker.recoveries b);
  (* A probe failure re-opens immediately. *)
  ignore (Breaker.admit b);
  Breaker.record b ~ok:false;
  ignore (Breaker.admit b);
  Breaker.record b ~ok:false;
  checkb "tripped again" true (Breaker.state b = Breaker.Open);
  Unix.sleepf 0.04;
  checkb "probe offered again" true (Breaker.admit b = `Probe);
  Breaker.record_probe b ~ok:false;
  checkb "probe failure re-opens" true (Breaker.state b = Breaker.Open);
  checki "re-trip tallied" 3 (Breaker.trips b);
  (* An abandoned probe (the request was cancelled) releases the slot
     without a verdict: still half-open, the next caller probes. *)
  Unix.sleepf 0.04;
  checkb "probe offered after re-trip" true (Breaker.admit b = `Probe);
  Breaker.abandon_probe b;
  checkb "abandon keeps half-open" true (Breaker.state b = Breaker.Half_open);
  checkb "slot released for next caller" true (Breaker.admit b = `Probe);
  checki "abandon records nothing" 3 (Breaker.trips b)

let test_breaker_trips_and_recovers_in_session () =
  (* Acceptance demo: a chaos plan breaks exactly one engine
     ([engine.plan.local]); verified routing degrades every request, the
     breaker trips after [threshold] failures so the broken engine stops
     being invoked at all, and once the plan is disarmed the half-open
     probes close it again.  Distinct permutations per request keep the
     plan cache out of the loop. *)
  Breaker.clear_all ();
  let finally () = Breaker.clear_all () in
  Fun.protect ~finally @@ fun () ->
  let config =
    {
      Session.default_config with
      Session.verify = true;
      breaker = Some { breaker_cfg with probes = 1 };
    }
  in
  let session = Session.create ~config () in
  let perm k = Perm.check (Rng.permutation (Rng.create k) 9) in
  let route k =
    let r = result_of (Session.handle_line session (route_line ~id:k (perm k))) in
    match Schedule.of_json (member_exn "schedule" r) with
    | Ok sched ->
        checkb
          (Printf.sprintf "request %d realizes" k)
          true
          (Schedule.realizes ~n:9 sched (perm k))
    | Error msg -> Alcotest.failf "request %d: bad schedule: %s" k msg
  in
  with_plan "engine.plan.local=raise" (fun () ->
      (* threshold failures: both answered by the degradation chain. *)
      route 1;
      route 2;
      let b = Breaker.get_or_create "local" in
      checkb "tripped open" true (Breaker.state b = Breaker.Open);
      checki "one trip" 1 (Breaker.trips b);
      (* While open the primary is never invoked: the fault point's
         firing count freezes even though requests keep succeeding. *)
      let fires_before = Fault.fires "engine.plan.local" in
      route 3;
      route 4;
      checki "broken engine not invoked while open" fires_before
        (Fault.fires "engine.plan.local");
      checkb "rejections recorded" true (Breaker.rejections b >= 2));
  (* Plan disarmed: after the cooldown the probe succeeds and the
     breaker closes — the engine serves again. *)
  Unix.sleepf 0.04;
  route 5;
  let b = Breaker.get_or_create "local" in
  checkb "closed after probe" true (Breaker.state b = Breaker.Closed);
  checki "recovery recorded" 1 (Breaker.recoveries b);
  route 6;
  checkb "still closed" true (Breaker.state b = Breaker.Closed)

(* ------------------------------------------------------------ supervisor *)

let test_watchdog_escalation () =
  (* kill at hung_ms, lost after another hung_ms of frozen progress;
     the watchdog wins the settle race and fires the abort. *)
  let sup = Supervisor.create ~hung_ms:30 ~workers:2 () in
  let cancel = Cancel.create () in
  let aborted = ref false in
  let tk =
    Supervisor.enter sup ~worker:1 ~cancel ~abort:(fun () -> aborted := true)
  in
  checkb "fresh request not hung" true (Supervisor.monitor sup = []);
  checkb "not killed yet" false (Cancel.killed cancel);
  Unix.sleepf 0.045;
  checkb "kill is not yet lost" true (Supervisor.monitor sup = []);
  checkb "token killed" true (Cancel.killed cancel);
  checki "hung tallied" 1 (Supervisor.hung sup);
  Unix.sleepf 0.045;
  (match Supervisor.monitor sup with
  | [ 1 ] -> ()
  | l -> Alcotest.failf "expected worker 1 lost, got %d" (List.length l));
  checkb "abort fired" true !aborted;
  checkb "worker's late settle loses" false (Supervisor.settle tk);
  Supervisor.leave sup tk;
  checkb "slot cleared" true (Supervisor.monitor sup = [])

let test_watchdog_settle_race_protects_worker () =
  (* A slow-but-alive worker notices the kill flag at its next poll and
     aborts through its normal error plumbing — settling first.  The
     watchdog's later settle attempt loses the CAS, so the worker is
     never declared lost and its domain survives, however long the
     grace period has been over. *)
  let sup = Supervisor.create ~hung_ms:30 ~workers:1 () in
  let cancel = Cancel.create () in
  let tk =
    Supervisor.enter sup ~worker:0 ~cancel ~abort:(fun () ->
        Alcotest.fail "self-aborting worker must not be aborted")
  in
  Unix.sleepf 0.045;
  ignore (Supervisor.monitor sup);
  checkb "killed" true (Cancel.killed cancel);
  (match Cancel.poll cancel with
  | () -> Alcotest.fail "poll must honor the kill flag"
  | exception Cancel.Cancelled Cancel.Killed -> ());
  (* The worker's abort path: claim the reply slot, clear the slot. *)
  checkb "worker settles first" true (Supervisor.settle tk);
  Supervisor.leave sup tk;
  Unix.sleepf 0.045;
  checkb "never declared lost" true (Supervisor.monitor sup = []);
  checki "kill still tallied" 1 (Supervisor.hung sup)

let test_adaptive_admission () =
  let sup = Supervisor.create ~queue_delay_target_ms:5 ~workers:1 () in
  checkb "no shed before samples" true (Supervisor.should_shed sup = None);
  for _ = 1 to 10 do
    Supervisor.note_queue_delay sup 80_000_000L (* 80ms *)
  done;
  checkb "ewma above target" true (Supervisor.queue_delay_ms sup > 5.);
  (match Supervisor.should_shed sup with
  | Some hint ->
      checkb "hint within bounds" true (hint >= 1 && hint <= 60_000);
      checkb "hint tracks ewma" true
        (float_of_int hint >= Supervisor.queue_delay_ms sup)
  | None -> Alcotest.fail "overloaded supervisor must shed");
  checkb "hint exposed alone" true (Supervisor.retry_hint_ms sup >= 1);
  (* Once the backlog drains (no further samples), the EWMA must decay
     and admission reopen — a burst's spike cannot shed forever. *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec recovers () =
    match Supervisor.should_shed sup with
    | None -> true
    | Some _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.021 (* > 4x the 5ms target between consults *);
          recovers ()
        end
  in
  checkb "ewma decays once idle" true (recovers ());
  checkb "ewma back under target" true (Supervisor.queue_delay_ms sup <= 5.);
  (* A supervisor without a target never sheds, whatever the delays. *)
  let off = Supervisor.create ~workers:1 () in
  for _ = 1 to 10 do
    Supervisor.note_queue_delay off 80_000_000L
  done;
  checkb "no target, no shed" true (Supervisor.should_shed off = None)

let test_memory_brownout () =
  (* Any live OCaml process has a max RSS far beyond 1 MB, so the
     brownout trips deterministically: the cache limit shrinks and
     batch requests are rejected with [overloaded]. *)
  let finally () = Supervisor.reset_brownout () in
  Fun.protect ~finally @@ fun () ->
  Supervisor.reset_brownout ();
  let cache = Plan_cache.create ~capacity:64 () in
  let sup = Supervisor.create ~max_rss_mb:1 ~workers:1 () in
  checkb "not active before check" false (Supervisor.brownout_active ());
  Supervisor.check_memory sup ~cache;
  checkb "brownout active" true (Supervisor.brownout_active ());
  checki "cache limit shrunk" 8 (Plan_cache.limit cache);
  let session = Session.create () in
  let batch =
    {|{"id": 9, "method": "route_batch", "params": {"grid": {"rows": 2, "cols": 2}, "perms": [[3,2,1,0]]}}|}
  in
  (match P.response_result (Json.of_string_exn (Session.handle_line session batch)) with
  | Error err -> checkb "batch rejected overloaded" true (err.P.code = P.Overloaded)
  | Ok _ -> Alcotest.fail "brownout must reject batch work");
  (* Plain routes still serve during a brownout. *)
  ignore (result_of (Session.handle_line session (route_line rev9)))

let test_poll_interval () =
  let sup = Supervisor.create ~hung_ms:100 ~workers:1 () in
  checkb "interval is hung/4" true
    (abs_float (Supervisor.poll_interval_s sup -. 0.025) < 1e-9);
  let fast = Supervisor.create ~hung_ms:1 ~workers:1 () in
  checkb "clamped below" true (Supervisor.poll_interval_s fast >= 0.01);
  let off = Supervisor.create ~workers:1 () in
  checkb "1s when off" true (Supervisor.poll_interval_s off = 1.0)

(* ----------------------------------------------------- protocol plumbing *)

let test_retry_after_ms_round_trips () =
  let line = Session.overloaded_response_line ~retry_after_ms:250 {|{"id": 7}|} in
  let doc = Json.of_string_exn line in
  checkb "id recovered" true (Json.member "id" doc = Some (Json.Int 7));
  (match P.response_result doc with
  | Error err ->
      checkb "overloaded" true (err.P.code = P.Overloaded);
      checkb "hint on the wire" true (err.P.retry_after_ms = Some 250)
  | Ok _ -> Alcotest.fail "expected an error envelope");
  (* Without the hint the field is absent, not null. *)
  let bare = Session.overloaded_response_line {|{"id": 8}|} in
  match P.response_result (Json.of_string_exn bare) with
  | Error err -> checkb "no hint" true (err.P.retry_after_ms = None)
  | Ok _ -> Alcotest.fail "expected an error envelope"

(* -------------------------------------------------------- oversized lines *)

let serve_fd_script ?(config = Session.default_config) lines =
  let client, server = socketpair () in
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  (match Io_util.write_all client payload with
  | Ok () -> ()
  | Error `Closed -> Alcotest.fail "test harness could not write requests");
  Unix.shutdown client Unix.SHUTDOWN_SEND;
  Server.serve_fd ~config server;
  Unix.close server;
  let out = drain client in
  Unix.close client;
  String.split_on_char '\n' out |> List.filter (fun s -> String.trim s <> "")

let test_oversized_line_closes_connection () =
  let config = { Session.default_config with Session.max_line_bytes = 512 } in
  let big = String.make 600 'x' in
  let responses =
    serve_fd_script ~config [ route_line ~id:1 rev9; big; route_line ~id:3 rev9 ]
  in
  (* The in-bound line before the oversized one is answered, then the
     goodbye — and nothing after. *)
  checki "two responses" 2 (List.length responses);
  checkb "first request served" true
    (Json.member "schedule" (result_of (List.nth responses 0)) <> None);
  match P.response_result (Json.of_string_exn (List.nth responses 1)) with
  | Error err ->
      checkb "invalid_request goodbye" true (err.P.code = P.Invalid_request)
  | Ok _ -> Alcotest.fail "oversized line must be refused"

let test_oversized_fragment_closes_connection () =
  (* No newline at all: the buffered fragment alone must trip the cap —
     a stuck client cannot grow the buffer without bound. *)
  let config = { Session.default_config with Session.max_line_bytes = 256 } in
  let client, server = socketpair () in
  let fragment = String.make 1_000 'y' in
  (match Io_util.write_all client fragment with
  | Ok () -> ()
  | Error `Closed -> Alcotest.fail "harness write failed");
  Unix.shutdown client Unix.SHUTDOWN_SEND;
  Server.serve_fd ~config server;
  Unix.close server;
  let out = drain client in
  Unix.close client;
  match
    String.split_on_char '\n' out |> List.filter (fun s -> String.trim s <> "")
  with
  | [ goodbye ] -> (
      match P.response_result (Json.of_string_exn goodbye) with
      | Error err ->
          checkb "invalid_request goodbye" true
            (err.P.code = P.Invalid_request)
      | Ok _ -> Alcotest.fail "fragment must be refused")
  | l -> Alcotest.failf "expected exactly the goodbye, got %d lines" (List.length l)

(* ------------------------------------------------- watchdog chaos demo *)

let await_socket path =
  let rec go tries =
    if tries = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go 250

let fast_retry attempts =
  { Client.attempts; base_delay_ms = 1.; max_delay_ms = 2.; budget_ms = 500. }

let counter_of stats name =
  match Json.member "counters" (member_exn "metrics" stats) with
  | Some (Json.Obj fields) -> (
      match List.assoc_opt name fields with
      | Some (Json.Int n) -> n
      | Some _ -> Alcotest.failf "counter %s not an int" name
      | None -> 0)
  | _ -> Alcotest.fail "stats carries no metrics.counters"

let test_hung_worker_answered_and_respawned () =
  (* The acceptance scenario: a pool worker wedges (worker.hang delays
     the whole job past the watchdog budget, no polling).  The watchdog
     cancels, declares the worker lost, answers that client with a typed
     internal_error, and respawns the domain — while the server keeps
     serving correct schedules on the same socket.  The oversized-line
     cap is exercised against the same live server. *)
  let tag = Printf.sprintf "qr_supervision_%d" (Unix.getpid ()) in
  let path = Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock") in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let config =
    {
      Session.default_config with
      Session.hung_request_ms = Some 100;
      max_line_bytes = 4_096;
    }
  in
  with_plan "worker.hang=delay(1200)#1" @@ fun () ->
  match Unix.fork () with
  | 0 ->
      (try Server.run_socket ~config ~workers:2 ~path () with _ -> ());
      Unix._exit 0
  | child ->
      let finally () =
        (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      await_socket path;
      (* Request 1 hangs its worker; the watchdog answers. *)
      let req id pi =
        P.request ~id:(Json.Int id) ~meth:"route"
          (Json.Obj
             [
               ("grid", P.grid_to_json (Grid.make ~rows:3 ~cols:3));
               ("perm", P.perm_to_json pi);
               ("engine", Json.String "local");
             ])
      in
      (match Client.rpc_retry ~retry:(fast_retry 2) ~path (req 1 rev9) with
      | Client.Server_error (err, _) ->
          checkb "typed internal_error from the watchdog" true
            (err.P.code = P.Internal_error)
      | Client.Response _ -> Alcotest.fail "hung request cannot succeed"
      | Client.Transport_failure msg ->
          Alcotest.failf "transport failure: %s" msg);
      (* The same socket keeps serving correct schedules. *)
      let pi2 = Perm.check (Rng.permutation (Rng.create 42) 9) in
      (match Client.rpc_retry ~retry:(fast_retry 4) ~path (req 2 pi2) with
      | Client.Response envelope -> (
          match P.response_result envelope with
          | Ok result -> (
              match Schedule.of_json (member_exn "schedule" result) with
              | Ok sched ->
                  checkb "post-hang schedule realizes" true
                    (Schedule.realizes ~n:9 sched pi2)
              | Error msg -> Alcotest.failf "bad schedule: %s" msg)
          | Error err -> Alcotest.failf "error after respawn: %s" err.P.message)
      | Client.Server_error (err, _) ->
          Alcotest.failf "error after respawn: %s" err.P.message
      | Client.Transport_failure msg ->
          Alcotest.failf "transport failure after respawn: %s" msg);
      (* The supervision events are visible in the metrics. *)
      (match
         Client.rpc_retry ~retry:(fast_retry 4) ~path
           (P.request ~id:(Json.Int 3) ~meth:"stats" (Json.Obj []))
       with
      | Client.Response envelope -> (
          match P.response_result envelope with
          | Ok stats ->
              checkb "hung request counted" true
                (counter_of stats "server_hung_requests" >= 1);
              checkb "worker respawned" true
                (counter_of stats "server_worker_restarts" >= 1)
          | Error err -> Alcotest.failf "stats error: %s" err.P.message)
      | _ -> Alcotest.fail "stats request failed");
      (* Oversized line against the live pool server: typed refusal. *)
      match Client.call ~path (String.make 8_192 'z') with
      | Ok goodbye -> (
          match P.response_result (Json.of_string_exn goodbye) with
          | Error err ->
              checkb "pool oversized goodbye" true
                (err.P.code = P.Invalid_request)
          | Ok _ -> Alcotest.fail "oversized line must be refused")
      | Error msg -> Alcotest.failf "oversized call failed: %s" msg

(* ------------------------------------------------------------------ run *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "supervision"
    [
      ( "deadline",
        [ Alcotest.test_case "after_ms saturates" `Quick test_deadline_saturates ] );
      ( "cancel",
        [
          Alcotest.test_case "kill and deadline fire" `Quick
            test_cancel_kill_and_deadline;
          qc cancellation_is_transparent;
        ] );
      ( "io",
        [
          Alcotest.test_case "write_all survives truncate storms" `Quick
            test_write_all_truncate_terminates;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "trips and recovers in session" `Quick
            test_breaker_trips_and_recovers_in_session;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "watchdog escalation" `Quick
            test_watchdog_escalation;
          Alcotest.test_case "settle race protects workers" `Quick
            test_watchdog_settle_race_protects_worker;
          Alcotest.test_case "adaptive admission" `Quick
            test_adaptive_admission;
          Alcotest.test_case "memory brownout" `Quick test_memory_brownout;
          Alcotest.test_case "poll interval" `Quick test_poll_interval;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "retry_after_ms round-trips" `Quick
            test_retry_after_ms_round_trips;
        ] );
      ( "oversized",
        [
          Alcotest.test_case "line cap closes connection" `Quick
            test_oversized_line_closes_connection;
          Alcotest.test_case "fragment cap closes connection" `Quick
            test_oversized_fragment_closes_connection;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "hung worker answered and respawned" `Quick
            test_hung_worker_answered_and_respawned;
        ] );
    ]
