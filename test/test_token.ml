(* Tests for Qr_token: Token_swap, Parallel_ats, Exact, Parallelize. *)

module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Generators = Qr_perm.Generators
module Schedule = Qr_route.Schedule
module Token_swap = Qr_token.Token_swap
module Parallel_ats = Qr_token.Parallel_ats
module Exact = Qr_token.Exact
module Parallelize = Qr_token.Parallelize
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let apply_swaps n pi swaps =
  let dest_at = Array.copy pi in
  List.iter
    (fun (u, v) ->
      let tmp = dest_at.(u) in
      dest_at.(u) <- dest_at.(v);
      dest_at.(v) <- tmp)
    swaps;
  Perm.is_identity (Perm.check dest_at) && n = Array.length pi

(* ------------------------------------------------------------- Token_swap *)

let test_serial_identity () =
  let g = Graph.path 5 in
  let swaps = Token_swap.serial g (Distance.of_graph g) (Perm.identity 5) in
  checki "no swaps" 0 (List.length swaps)

let test_serial_adjacent_transposition () =
  let g = Graph.path 3 in
  let pi = Perm.transposition 3 0 1 in
  let swaps = Token_swap.serial g (Distance.of_graph g) pi in
  Alcotest.check Alcotest.(list (pair int int)) "single swap" [ (0, 1) ] swaps

let test_serial_swaps_are_edges () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let g = Grid.graph grid in
  let rng = Rng.create 1 in
  let pi = Perm.check (Rng.permutation rng 16) in
  let swaps = Token_swap.serial g (Distance.of_grid grid) pi in
  List.iter (fun (u, v) -> checkb "edge" true (Graph.mem_edge g u v)) swaps;
  checkb "realizes" true (apply_swaps 16 pi swaps)

let test_serial_respects_4x_bound_on_small () =
  (* Against the exact optimum on small instances (theoretical guarantee). *)
  let graphs = [ Graph.path 5; Graph.cycle 5; Graph.star 5;
                 Grid.graph (Grid.make ~rows:2 ~cols:3) ] in
  let rng = Rng.create 2 in
  List.iter
    (fun g ->
      let n = Graph.num_vertices g in
      let oracle = Distance.of_graph g in
      for _ = 1 to 10 do
        let pi = Perm.check (Rng.permutation rng n) in
        let opt = Exact.min_swaps g pi in
        let ats = List.length (Token_swap.serial g oracle pi) in
        checkb "within 4x of optimum" true (ats <= 4 * max 1 opt);
        checkb "at least optimum" true (ats >= opt)
      done)
    graphs

let test_serial_lower_bound () =
  let grid = Grid.make ~rows:5 ~cols:5 in
  let g = Grid.graph grid in
  let oracle = Distance.of_grid grid in
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 25) in
    let lb = Token_swap.swap_count_lower_bound oracle pi in
    let ats = List.length (Token_swap.serial g oracle pi) in
    checkb ">= sum-distance/2" true (ats >= lb)
  done

let test_serial_trials_never_worse () =
  let grid = Grid.make ~rows:5 ~cols:5 in
  let g = Grid.graph grid in
  let oracle = Distance.of_grid grid in
  let rng = Rng.create 4 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 25) in
    let one = List.length (Token_swap.serial ~trials:1 g oracle pi) in
    let four = List.length (Token_swap.serial ~trials:4 ~seed:7 g oracle pi) in
    checkb "extra trials can only help" true (four <= one)
  done

let test_serial_rejects_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Token_swap.serial: graph must be connected") (fun () ->
      ignore (Token_swap.serial g (Distance.of_graph g) (Perm.identity 4)))

let test_serial_reversal_on_path_is_optimal_class () =
  (* Reversal of P_n costs exactly n(n-1)/2 swaps (bubble sort bound); the
     4-approx should stay within 4x, and in practice lands exactly there. *)
  let g = Graph.path 6 in
  let pi = Perm.check (Array.init 6 (fun i -> 5 - i)) in
  let swaps = Token_swap.serial g (Distance.of_graph g) pi in
  checkb "within 4x of 15" true (List.length swaps <= 60);
  checkb ">= 15" true (List.length swaps >= 15);
  checkb "realizes" true (apply_swaps 6 pi swaps)

let serial_property =
  QCheck.Test.make ~name:"serial ATS realizes pi with edge swaps" ~count:150
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 0 100000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let g = Grid.graph grid in
      let rng = Rng.create seed in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      let swaps = Token_swap.serial g (Distance.of_grid grid) pi in
      apply_swaps (m * n) pi swaps
      && List.for_all (fun (u, v) -> Graph.mem_edge g u v) swaps)

(* ----------------------------------------------------------- Parallel_ats *)

let test_parallel_realizes () =
  let rng = Rng.create 5 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let g = Grid.graph grid in
      let oracle = Distance.of_grid grid in
      List.iter
        (fun kind ->
          let pi = Generators.generate grid kind rng in
          let s = Parallel_ats.route ~trials:2 g oracle pi in
          checkb "valid" true (Schedule.is_valid g s);
          checkb "realizes" true (Schedule.realizes ~n:(m * n) s pi))
        (Generators.paper_kinds grid))
    [ (2, 2); (4, 4); (3, 5); (1, 6) ]

let test_parallel_identity_free () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let s =
    Parallel_ats.route (Grid.graph grid) (Distance.of_grid grid)
      (Perm.identity 9)
  in
  checki "no layers" 0 (Schedule.depth s)

let test_parallel_deterministic () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let g = Grid.graph grid in
  let oracle = Distance.of_grid grid in
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  let a = Parallel_ats.route ~trials:2 ~seed:3 g oracle pi in
  let b = Parallel_ats.route ~trials:2 ~seed:3 g oracle pi in
  checki "same depth for same seed" (Schedule.depth a) (Schedule.depth b);
  checki "same size for same seed" (Schedule.size a) (Schedule.size b)

let test_parallel_depth_at_least_displacement () =
  let grid = Grid.make ~rows:5 ~cols:5 in
  let g = Grid.graph grid in
  let oracle = Distance.of_grid grid in
  let rng = Rng.create 6 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 25) in
    let s = Parallel_ats.route ~trials:1 g oracle pi in
    checkb "depth >= max displacement" true
      (Schedule.depth s >= Perm.max_distance (fun u v -> Distance.dist oracle u v) pi)
  done

(* ------------------------------------------------------------------ Exact *)

let test_exact_identity () =
  checki "zero" 0 (Exact.min_swaps (Graph.path 4) (Perm.identity 4));
  checki "zero depth" 0 (Exact.min_depth (Graph.path 4) (Perm.identity 4))

let test_exact_transposition () =
  let g = Graph.path 3 in
  checki "adjacent" 1 (Exact.min_swaps g (Perm.transposition 3 0 1));
  (* Swapping the two endpoints of P_3 takes 3 swaps. *)
  checki "endpoints" 3 (Exact.min_swaps g (Perm.transposition 3 0 2))

let test_exact_reversal_path () =
  let g = Graph.path 4 in
  let pi = Perm.check [| 3; 2; 1; 0 |] in
  checki "bubble count" 6 (Exact.min_swaps g pi);
  (* Odd-even achieves reversal of P_4 in 4 matchings; optimal is 4
     (routing number of reversal on P_n is n). *)
  checki "depth" 4 (Exact.min_depth g pi)

let test_exact_depth_leq_swaps () =
  let rng = Rng.create 7 in
  let g = Grid.graph (Grid.make ~rows:2 ~cols:3) in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 6) in
    checkb "depth <= swaps" true (Exact.min_depth g pi <= Exact.min_swaps g pi)
  done

let test_exact_rejects_large () =
  let g = Graph.path 11 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Exact: graph too large for exhaustive search")
    (fun () -> ignore (Exact.min_swaps g (Perm.identity 11)))

let test_matchings_of_path () =
  (* P_3 has edges (0,1),(1,2): non-empty matchings = {01},{12} -> 2. *)
  checki "P3" 2 (List.length (Exact.matchings_of_graph (Graph.path 3)));
  (* P_4: {01},{12},{23},{01,23} -> 4. *)
  checki "P4" 4 (List.length (Exact.matchings_of_graph (Graph.path 4)))

let exact_vs_routers_property =
  QCheck.Test.make ~name:"routers never beat the exact depth" ~count:40
    QCheck.(pair (int_range 2 3) (int_range 0 10000))
    (fun (n, seed) ->
      let grid = Grid.make ~rows:2 ~cols:n in
      let g = Grid.graph grid in
      let rng = Rng.create seed in
      let pi = Perm.check (Rng.permutation rng (2 * n)) in
      let optimal = Exact.min_depth g pi in
      let local = Qr_route.Local_grid_route.route_best_orientation grid pi in
      let ats = Parallel_ats.route ~trials:1 g (Distance.of_grid grid) pi in
      Schedule.depth local >= optimal && Schedule.depth ats >= optimal)

(* ------------------------------------------------------------ Parallelize *)

let test_parallelize_schedule () =
  let swaps = [ (0, 1); (2, 3); (1, 2) ] in
  let s = Parallelize.schedule ~n:4 swaps in
  checki "two layers" 2 (Schedule.depth s);
  checki "all swaps" 3 (Schedule.size s)

let test_parallelism_metric () =
  let s = [ [| (0, 1); (2, 3) |]; [| (1, 2) |] ] in
  Alcotest.check (Alcotest.float 1e-9) "avg" 1.5 (Parallelize.parallelism s);
  Alcotest.check (Alcotest.float 1e-9) "empty" 0.
    (Parallelize.parallelism Schedule.empty)

let test_layer_sizes () =
  let s = [ [| (0, 1); (2, 3) |]; [| (1, 2) |] ] in
  Alcotest.check Alcotest.(array int) "sizes" [| 2; 1 |] (Parallelize.layer_sizes s)

let test_critical_path_equals_asap_depth () =
  let rng = Rng.create 8 in
  for _ = 1 to 50 do
    let n = 8 in
    let swaps =
      List.init 20 (fun _ ->
          let a = Rng.int rng n in
          let b = (a + 1 + Rng.int rng (n - 1)) mod n in
          (a, b))
    in
    checki "asap achieves critical path"
      (Parallelize.critical_path ~n swaps)
      (Schedule.depth (Parallelize.schedule ~n swaps))
  done

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qr_token"
    [
      ( "token_swap",
        [
          Alcotest.test_case "identity" `Quick test_serial_identity;
          Alcotest.test_case "adjacent transposition" `Quick
            test_serial_adjacent_transposition;
          Alcotest.test_case "swaps are edges" `Quick test_serial_swaps_are_edges;
          Alcotest.test_case "4x bound" `Quick test_serial_respects_4x_bound_on_small;
          Alcotest.test_case "lower bound" `Quick test_serial_lower_bound;
          Alcotest.test_case "trials help" `Quick test_serial_trials_never_worse;
          Alcotest.test_case "rejects disconnected" `Quick
            test_serial_rejects_disconnected;
          Alcotest.test_case "path reversal" `Quick
            test_serial_reversal_on_path_is_optimal_class;
          qc serial_property;
        ] );
      ( "parallel_ats",
        [
          Alcotest.test_case "realizes" `Quick test_parallel_realizes;
          Alcotest.test_case "identity free" `Quick test_parallel_identity_free;
          Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "depth lower bound" `Quick
            test_parallel_depth_at_least_displacement;
        ] );
      ( "exact",
        [
          Alcotest.test_case "identity" `Quick test_exact_identity;
          Alcotest.test_case "transposition" `Quick test_exact_transposition;
          Alcotest.test_case "path reversal" `Quick test_exact_reversal_path;
          Alcotest.test_case "depth <= swaps" `Quick test_exact_depth_leq_swaps;
          Alcotest.test_case "rejects large" `Quick test_exact_rejects_large;
          Alcotest.test_case "matchings of path" `Quick test_matchings_of_path;
          qc exact_vs_routers_property;
        ] );
      ( "parallelize",
        [
          Alcotest.test_case "schedule" `Quick test_parallelize_schedule;
          Alcotest.test_case "parallelism" `Quick test_parallelism_metric;
          Alcotest.test_case "layer sizes" `Quick test_layer_sizes;
          Alcotest.test_case "critical path" `Quick
            test_critical_path_equals_asap_depth;
        ] );
    ]
