(* End-to-end integration tests: the routing stack, the transpiler and the
   statevector simulator must all agree with each other. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* The canonical transpilation correctness statement: running the physical
   circuit from a state whose qubits are placed by the initial layout, then
   undoing the final layout, must reproduce the logical circuit's output on
   every input state. *)
let transpilation_equivalent grid logical (result : Transpile.result) seed =
  let n = Grid.size grid in
  let rng = Rng.create seed in
  let psi = Statevector.random_state rng n in
  let out_logical = Statevector.run logical psi in
  let psi_phys =
    Statevector.permute_qubits psi (Layout.to_phys_array result.initial)
  in
  let out_phys = Statevector.run result.physical psi_phys in
  let back = Array.init n (fun v -> Layout.logical result.final v) in
  Statevector.approx_equal out_logical
    (Statevector.permute_qubits out_phys back)

let test_qft_all_strategies () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let logical = Library.qft 9 in
  List.iter
    (fun strategy ->
      let result = transpile ~strategy grid logical in
      checkb
        ("feasible: " ^ Strategy.name strategy)
        true
        (Transpile.verify_feasible (Grid.graph grid) result);
      checkb
        ("unitary-equivalent: " ^ Strategy.name strategy)
        true
        (transpilation_equivalent grid logical result 42))
    [ Strategy.Local; Strategy.Naive; Strategy.Ats; Strategy.Best ]

let test_qft_on_line () =
  (* The paper's worst case: QFT on a path. *)
  let grid = Grid.make ~rows:1 ~cols:7 in
  let logical = Library.qft 7 in
  let result = transpile grid logical in
  checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) result);
  checkb "equivalent" true (transpilation_equivalent grid logical result 1)

let test_ising_trotter_random_initial_layout () =
  let grid = Grid.make ~rows:2 ~cols:4 in
  let logical = Library.ising_trotter_2d grid ~steps:2 ~theta:0.37 in
  let rng = Rng.create 7 in
  for seed = 0 to 2 do
    let initial = Layout.random rng 8 in
    let result = transpile ~initial grid logical in
    checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) result);
    checkb "equivalent under random initial layout" true
      (transpilation_equivalent grid logical result seed)
  done

let test_random_circuits_equivalence () =
  let grid = Grid.make ~rows:2 ~cols:4 in
  let rng = Rng.create 11 in
  for seed = 0 to 4 do
    let logical = Library.random_two_qubit rng ~num_qubits:8 ~gates:30 in
    let result = transpile grid logical in
    checkb "equivalent" true (transpilation_equivalent grid logical result seed)
  done

let test_random_local_circuits_cheaper () =
  (* Local circuits should need fewer swaps than global ones of the same
     size: the locality claim at transpiler level. *)
  let grid = Grid.make ~rows:4 ~cols:4 in
  let rng = Rng.create 13 in
  let global = Library.random_two_qubit rng ~num_qubits:16 ~gates:60 in
  let local = Library.random_local_two_qubit rng ~grid ~radius:2 ~gates:60 in
  let swaps c = Circuit.swap_count (transpile grid c).physical in
  checkb "locality pays" true (swaps local <= swaps global)

let test_schedule_as_swap_circuit_matches_relabeling () =
  (* A schedule realizing pi, interpreted as SWAP gates, must act on the
     statevector exactly as relabeling qubits by pi. *)
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 17 in
  for seed = 0 to 4 do
    let pi = Perm.check (Rng.permutation (Rng.create (100 + seed)) 9) in
    let sched = route grid pi in
    let circuit = Circuit.of_schedule ~num_qubits:9 sched in
    let psi = Statevector.random_state rng 9 in
    let by_circuit = Statevector.run circuit psi in
    let by_relabel = Statevector.permute_qubits psi pi in
    checkb "swap circuit = qubit relabeling" true
      (Statevector.approx_equal by_circuit by_relabel)
  done

let test_permutation_circuit_matches_relabeling () =
  let rng = Rng.create 19 in
  for n = 2 to 8 do
    let pi = Perm.check (Rng.permutation rng n) in
    let psi = Statevector.random_state rng n in
    let by_circuit = Statevector.run (Library.permutation_circuit pi) psi in
    let by_relabel = Statevector.permute_qubits psi pi in
    checkb "perm circuit = relabeling" true
      (Statevector.approx_equal by_circuit by_relabel)
  done

let test_all_routers_agree_on_realized_permutation () =
  let grid = Grid.make ~rows:6 ~cols:7 in
  let rng = Rng.create 23 in
  List.iter
    (fun kind ->
      let pi = Generators.generate grid kind rng in
      List.iter
        (fun strategy ->
          let s = Strategy.route strategy grid pi in
          checkb
            (Strategy.name strategy ^ " on " ^ Generators.name kind)
            true
            (Perm.equal (Permsim.realized ~n:42 s) pi))
        Strategy.all)
    (Generators.paper_kinds grid)

let test_expanded_swaps_still_equivalent () =
  (* After 3-CX expansion the transpiled circuit must still be correct. *)
  let grid = Grid.make ~rows:2 ~cols:3 in
  let logical = Library.qft 6 in
  let result = transpile grid logical in
  let expanded = Circuit.expand_swaps result.physical in
  let rng = Rng.create 29 in
  let psi = Statevector.random_state rng 6 in
  let a = Statevector.run result.physical psi in
  let b = Statevector.run expanded psi in
  checkb "3-CX expansion preserves semantics" true (Statevector.approx_equal a b)

let test_qasm_end_to_end () =
  let grid = Grid.make ~rows:2 ~cols:3 in
  let logical = Library.qft 6 in
  let text = Qasm.print logical in
  let reparsed = Qasm.parse_exn text in
  let result = transpile grid reparsed in
  checkb "parse -> transpile -> verify" true
    (transpilation_equivalent grid reparsed result 3)

let test_best_strategy_is_min_of_local_and_naive () =
  let grid = Grid.make ~rows:8 ~cols:8 in
  let rng = Rng.create 31 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 64) in
    let best = Schedule.depth (Strategy.route Strategy.Best grid pi) in
    let local = Schedule.depth (Strategy.route Strategy.Local grid pi) in
    let naive = Schedule.depth (Strategy.route Strategy.Naive grid pi) in
    checki "best = min(local, naive)" (min local naive) best
  done

let test_paper_headline_random_workload () =
  (* Figure 4's headline: on random permutations the locality-aware router
     beats parallel ATS in depth (here on a 12x12 grid, 3 seeds). *)
  let grid = Grid.make ~rows:12 ~cols:12 in
  for seed = 0 to 2 do
    let pi =
      Generators.generate grid Generators.Random (Rng.create (500 + seed))
    in
    let local = Schedule.depth (Strategy.route Strategy.Local grid pi) in
    let ats = Schedule.depth (Strategy.route Strategy.Ats grid pi) in
    checkb
      (Printf.sprintf "local (%d) < ats (%d)" local ats)
      true (local < ats)
  done

let test_paper_block_local_comparable () =
  (* Figure 4's second claim: on block-local permutations the two are
     comparable (within 2x either way here). *)
  let grid = Grid.make ~rows:12 ~cols:12 in
  for seed = 0 to 2 do
    let pi =
      Generators.generate grid (Generators.Block_local 3)
        (Rng.create (600 + seed))
    in
    let local = Schedule.depth (Strategy.route Strategy.Local grid pi) in
    let ats = Schedule.depth (Strategy.route Strategy.Ats grid pi) in
    checkb
      (Printf.sprintf "comparable: local=%d ats=%d" local ats)
      true
      (local <= 2 * ats && ats <= 2 * local)
  done

let test_product_router_on_cylinder_torus () =
  (* The grid-like extension end to end, checked by token simulation. *)
  let rng = Rng.create 37 in
  let path_router g pi =
    assert (Graph.num_vertices g = Array.length pi);
    List.map Array.of_list (Path_route.route_min_parity pi)
  in
  let ats_router g pi =
    Parallel_ats.route ~trials:1 g (Distance.of_graph g) pi
  in
  let cases =
    [ ("cylinder", Product.make (Graph.cycle 5) (Graph.path 4), ats_router, path_router);
      ("torus", Product.make (Graph.cycle 4) (Graph.cycle 5), ats_router, ats_router) ]
  in
  List.iter
    (fun (label, p, r1, r2) ->
      for _ = 1 to 3 do
        let pi = Perm.check (Rng.permutation rng (Product.size p)) in
        let s = Product_route.route ~route1:r1 ~route2:r2 p pi in
        checkb (label ^ " valid") true (Schedule.is_valid (Product.graph p) s);
        checkb (label ^ " realizes") true
          (Perm.equal (Permsim.realized ~n:(Product.size p) s) pi)
      done)
    cases

let () =
  Alcotest.run "integration"
    [
      ( "transpile+simulate",
        [
          Alcotest.test_case "qft all strategies" `Quick test_qft_all_strategies;
          Alcotest.test_case "qft on line" `Quick test_qft_on_line;
          Alcotest.test_case "ising random layout" `Quick
            test_ising_trotter_random_initial_layout;
          Alcotest.test_case "random circuits" `Quick
            test_random_circuits_equivalence;
          Alcotest.test_case "locality pays" `Quick
            test_random_local_circuits_cheaper;
          Alcotest.test_case "expanded swaps" `Quick
            test_expanded_swaps_still_equivalent;
          Alcotest.test_case "qasm end to end" `Quick test_qasm_end_to_end;
        ] );
      ( "routing semantics",
        [
          Alcotest.test_case "schedule = relabeling" `Quick
            test_schedule_as_swap_circuit_matches_relabeling;
          Alcotest.test_case "perm circuit = relabeling" `Quick
            test_permutation_circuit_matches_relabeling;
          Alcotest.test_case "routers agree" `Quick
            test_all_routers_agree_on_realized_permutation;
          Alcotest.test_case "best = min" `Quick
            test_best_strategy_is_min_of_local_and_naive;
          Alcotest.test_case "products" `Quick test_product_router_on_cylinder_torus;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "random: local wins" `Quick
            test_paper_headline_random_workload;
          Alcotest.test_case "block-local comparable" `Quick
            test_paper_block_local_comparable;
        ] );
    ]
