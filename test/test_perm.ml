(* Tests for Qr_perm: Perm, Grid_perm, Generators. *)

module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Grid_perm = Qr_perm.Grid_perm
module Generators = Qr_perm.Generators
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_arr = Alcotest.check Alcotest.(array int)

(* ----------------------------------------------------------------- Perm *)

let test_is_permutation () =
  checkb "valid" true (Perm.is_permutation [| 2; 0; 1 |]);
  checkb "repeat" false (Perm.is_permutation [| 0; 0; 2 |]);
  checkb "out of range" false (Perm.is_permutation [| 0; 3; 1 |]);
  checkb "negative" false (Perm.is_permutation [| 0; -1; 1 |]);
  checkb "empty" true (Perm.is_permutation [||])

let test_identity () =
  let p = Perm.identity 5 in
  checkb "is identity" true (Perm.is_identity p);
  check_arr "values" [| 0; 1; 2; 3; 4 |] p

let test_inverse () =
  let p = [| 2; 0; 1 |] in
  check_arr "inverse" [| 1; 2; 0 |] (Perm.inverse p);
  checkb "inv of inv" true (Perm.equal p (Perm.inverse (Perm.inverse p)))

let test_compose_order () =
  (* compose p q applies p first: i -> p i -> q (p i) *)
  let p = [| 1; 2; 0 |] and q = [| 0; 2; 1 |] in
  check_arr "p then q" [| 2; 1; 0 |] (Perm.compose p q)

let test_compose_with_inverse_is_identity () =
  let rng = Rng.create 1 in
  for n = 1 to 20 do
    let p = Rng.permutation rng n in
    checkb "p . p^-1 = id" true
      (Perm.is_identity (Perm.compose p (Perm.inverse p)))
  done

let test_transposition () =
  let p = Perm.transposition 4 1 3 in
  check_arr "swap" [| 0; 3; 2; 1 |] p;
  checki "parity odd" 1 (Perm.parity p)

let test_of_cycles () =
  let p = Perm.of_cycles 5 [ [ 0; 2; 4 ] ] in
  check_arr "3-cycle" [| 2; 1; 4; 3; 0 |] p

let test_of_cycles_rejects_repeat () =
  Alcotest.check_raises "repeat"
    (Invalid_argument "Perm.of_cycles: repeated element") (fun () ->
      ignore (Perm.of_cycles 4 [ [ 0; 1 ]; [ 1; 2 ] ]))

let test_cycles_roundtrip () =
  let rng = Rng.create 2 in
  for n = 1 to 25 do
    let p = Rng.permutation rng n in
    let rebuilt = Perm.of_cycles n (Perm.cycles p) in
    checkb "of_cycles . cycles = id" true (Perm.equal p rebuilt)
  done

let test_cycles_canonical () =
  let p = Perm.of_cycles 6 [ [ 4; 5 ]; [ 0; 2; 1 ] ] in
  Alcotest.check
    Alcotest.(list (list int))
    "sorted, min-first" [ [ 0; 2; 1 ]; [ 4; 5 ] ] (Perm.cycles p)

let test_fixpoints_support () =
  let p = Perm.of_cycles 5 [ [ 1; 3 ] ] in
  Alcotest.check Alcotest.(list int) "fixpoints" [ 0; 2; 4 ] (Perm.fixpoints p);
  checki "support" 2 (Perm.support_size p)

let test_parity () =
  checki "identity even" 0 (Perm.parity (Perm.identity 4));
  checki "3-cycle even" 0 (Perm.parity (Perm.of_cycles 5 [ [ 0; 1; 2 ] ]));
  checki "transposition odd" 1 (Perm.parity (Perm.transposition 5 0 4))

let test_total_and_max_distance () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let dist u v = Grid.manhattan grid u v in
  let p = Perm.of_cycles 4 [ [ 0; 3 ] ] in
  checki "total" 4 (Perm.total_distance dist p);
  checki "max" 2 (Perm.max_distance dist p)

let test_extend_partial_identity_bias () =
  let p = Perm.extend_partial ~n:5 [ (0, 3) ] in
  checki "constrained" 3 p.(0);
  checki "free stays" 1 p.(1);
  checki "free stays" 2 p.(2);
  checki "free stays" 4 p.(4);
  checki "displaced" 0 p.(3)

let test_extend_partial_full_spec () =
  let p = Perm.extend_partial ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  check_arr "exact" [| 1; 2; 0 |] p

let test_extend_partial_rejects_dup_source () =
  Alcotest.check_raises "dup src"
    (Invalid_argument "Perm.extend_partial: duplicate source") (fun () ->
      ignore (Perm.extend_partial ~n:3 [ (0, 1); (0, 2) ]))

let test_extend_partial_rejects_dup_dest () =
  Alcotest.check_raises "dup dst"
    (Invalid_argument "Perm.extend_partial: duplicate destination") (fun () ->
      ignore (Perm.extend_partial ~n:3 [ (0, 1); (2, 1) ]))

let test_extend_partial_nearest () =
  let grid = Grid.make ~rows:1 ~cols:5 in
  let dist u v = Grid.manhattan grid u v in
  let p = Perm.extend_partial ~dist ~n:5 [ (0, 1) ] in
  checki "nearest slot" 0 p.(1)

let test_pp () =
  Alcotest.check Alcotest.string "cycle notation" "(0 1)"
    (Perm.to_string (Perm.transposition 2 0 1));
  Alcotest.check Alcotest.string "identity" "id"
    (Perm.to_string (Perm.identity 3))

let extend_partial_always_permutation =
  QCheck.Test.make ~name:"extend_partial yields a permutation" ~count:300
    QCheck.(
      pair (int_range 1 12) (small_list (pair (int_bound 11) (int_bound 11))))
    (fun (n, raw_pairs) ->
      let seen_src = Hashtbl.create 8 and seen_dst = Hashtbl.create 8 in
      let pairs =
        List.filter_map
          (fun (s, d) ->
            let s = s mod n and d = d mod n in
            if Hashtbl.mem seen_src s || Hashtbl.mem seen_dst d then None
            else begin
              Hashtbl.replace seen_src s ();
              Hashtbl.replace seen_dst d ();
              Some (s, d)
            end)
          raw_pairs
      in
      let p = Perm.extend_partial ~n pairs in
      Perm.is_permutation p && List.for_all (fun (s, d) -> p.(s) = d) pairs)

(* ------------------------------------------------------------ Grid_perm *)

let test_grid_perm_of_coord_map () =
  let g = Grid.make ~rows:2 ~cols:3 in
  let p = Grid_perm.of_coord_map g (fun (r, c) -> (1 - r, c)) in
  checki "(0,0)->(1,0)" (Grid.index g 1 0) p.(Grid.index g 0 0);
  checkb "involution" true (Perm.is_identity (Perm.compose p p))

let test_grid_perm_of_coord_map_rejects () =
  let g = Grid.make ~rows:2 ~cols:2 in
  Alcotest.check_raises "collapse is rejected"
    (Invalid_argument "Perm.check: not a permutation") (fun () ->
      ignore (Grid_perm.of_coord_map g (fun (_, c) -> (0, c))))

let test_grid_perm_transpose_definition () =
  (* pi^T(c, r) = (c', r') iff pi(r, c) = (r', c') *)
  let g = Grid.make ~rows:3 ~cols:4 in
  let rng = Rng.create 5 in
  let p = Perm.check (Rng.permutation rng (Grid.size g)) in
  let pt = Grid_perm.transpose g p in
  let gt = Grid.transpose g in
  for v = 0 to Grid.size g - 1 do
    let r, c = Grid.coord g v in
    let r', c' = Grid.coord g p.(v) in
    let tc, tr = Grid.coord gt pt.(Grid.index gt c r) in
    checki "transposed row" c' tc;
    checki "transposed col" r' tr
  done

let test_grid_perm_transpose_involution () =
  let g = Grid.make ~rows:3 ~cols:5 in
  let rng = Rng.create 6 in
  let p = Perm.check (Rng.permutation rng (Grid.size g)) in
  let back =
    Grid_perm.transpose (Grid.transpose g) (Grid_perm.transpose g p)
  in
  checkb "double transpose" true (Perm.equal p back)

let test_untranspose_vertex () =
  let g = Grid.make ~rows:2 ~cols:5 in
  for v = 0 to Grid.size g - 1 do
    checki "roundtrip" v
      (Grid_perm.untranspose_vertex g (Grid.transpose_vertex g v))
  done

let test_locality_radius () =
  let g = Grid.make ~rows:4 ~cols:4 in
  checki "identity radius" 0 (Grid_perm.locality_radius g (Perm.identity 16));
  let rev = Generators.generate g Generators.Reversal (Rng.create 0) in
  checki "reversal radius" 6 (Grid_perm.locality_radius g rev)

let test_coord_pairs () =
  let g = Grid.make ~rows:2 ~cols:2 in
  let p = Perm.transposition 4 0 3 in
  Alcotest.check
    Alcotest.(list (pair (pair int int) (pair int int)))
    "pairs"
    [ ((0, 0), (1, 1)); ((1, 1), (0, 0)) ]
    (Grid_perm.coord_pairs g p)

(* ----------------------------------------------------------- Generators *)

let all_kinds g =
  Generators.paper_kinds g
  @ [
      Generators.Identity; Generators.Reversal; Generators.Row_shift 1;
      Generators.Col_shift 2; Generators.Mirror_rows;
    ]

let test_generators_always_permutations () =
  let rng = Rng.create 7 in
  List.iter
    (fun (m, n) ->
      let g = Grid.make ~rows:m ~cols:n in
      List.iter
        (fun kind ->
          let p = Generators.generate g kind rng in
          checkb (Generators.name kind) true (Perm.is_permutation p))
        (all_kinds g))
    [ (1, 1); (1, 7); (4, 4); (3, 8); (5, 5) ]

let test_generator_identity () =
  let g = Grid.make ~rows:3 ~cols:3 in
  checkb "identity kind" true
    (Perm.is_identity (Generators.generate g Generators.Identity (Rng.create 0)))

let test_generator_block_local_confinement () =
  let g = Grid.make ~rows:8 ~cols:8 in
  let rng = Rng.create 11 in
  let p = Generators.generate g (Generators.Block_local 4) rng in
  for v = 0 to 63 do
    let r, c = Grid.coord g v in
    let r', c' = Grid.coord g p.(v) in
    checki "same row block" (r / 4) (r' / 4);
    checki "same col block" (c / 4) (c' / 4)
  done

let test_generator_block_ragged () =
  let g = Grid.make ~rows:5 ~cols:5 in
  let p = Generators.generate g (Generators.Block_local 3) (Rng.create 13) in
  for v = 0 to 24 do
    let r, c = Grid.coord g v in
    let r', c' = Grid.coord g p.(v) in
    checki "row block" (r / 3) (r' / 3);
    checki "col block" (c / 3) (c' / 3)
  done

let test_generator_overlap_valid () =
  let g = Grid.make ~rows:8 ~cols:8 in
  let p =
    Generators.generate g (Generators.Overlapping_blocks (3, 0)) (Rng.create 17)
  in
  checkb "permutes" true (Perm.is_permutation p);
  checkb "non-identity" false (Perm.is_identity p)

let test_generator_row_shift () =
  let g = Grid.make ~rows:4 ~cols:3 in
  let p = Generators.generate g (Generators.Row_shift 1) (Rng.create 0) in
  checki "(0,0)->(1,0)" (Grid.index g 1 0) p.(Grid.index g 0 0);
  checki "(3,2)->(0,2)" (Grid.index g 0 2) p.(Grid.index g 3 2)

let test_generator_negative_shift () =
  let g = Grid.make ~rows:4 ~cols:3 in
  let p = Generators.generate g (Generators.Row_shift (-1)) (Rng.create 0) in
  checki "(0,0)->(3,0)" (Grid.index g 3 0) p.(Grid.index g 0 0)

let test_generator_reversal_involution () =
  let g = Grid.make ~rows:5 ~cols:4 in
  let p = Generators.generate g Generators.Reversal (Rng.create 0) in
  checkb "involution" true (Perm.is_identity (Perm.compose p p))

let test_generator_names_roundtrip () =
  let kinds =
    [
      Generators.Identity; Generators.Random; Generators.Block_local 4;
      Generators.Overlapping_blocks (4, 32); Generators.Long_skinny 8;
      Generators.Reversal; Generators.Row_shift 2; Generators.Col_shift 3;
      Generators.Mirror_rows;
    ]
  in
  List.iter
    (fun kind ->
      match Generators.of_name (Generators.name kind) with
      | Some parsed -> checkb (Generators.name kind) true (parsed = kind)
      | None -> Alcotest.failf "no parse for %s" (Generators.name kind))
    kinds

let test_generator_of_name_garbage () =
  checkb "garbage" true (Generators.of_name "nonsense" = None);
  checkb "bad param" true (Generators.of_name "block:x" = None);
  checkb "bad overlap" true (Generators.of_name "overlap:4" = None)

let test_generator_deterministic_for_seed () =
  let g = Grid.make ~rows:6 ~cols:6 in
  let p1 = Generators.generate g Generators.Random (Rng.create 99) in
  let p2 = Generators.generate g Generators.Random (Rng.create 99) in
  checkb "same seed, same permutation" true (Perm.equal p1 p2)

let test_paper_kinds_cover_figure4 () =
  let g = Grid.make ~rows:16 ~cols:16 in
  let names = List.map Generators.name (Generators.paper_kinds g) in
  checki "four workloads" 4 (List.length names);
  checkb "has random" true (List.mem "random" names)

let generators_valid_property =
  QCheck.Test.make ~name:"every generator yields valid permutations" ~count:100
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 0 1000))
    (fun (m, n, seed) ->
      let g = Grid.make ~rows:m ~cols:n in
      let rng = Rng.create seed in
      List.for_all
        (fun kind -> Perm.is_permutation (Generators.generate g kind rng))
        (Generators.paper_kinds g))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qr_perm"
    [
      ( "perm",
        [
          Alcotest.test_case "is_permutation" `Quick test_is_permutation;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "compose order" `Quick test_compose_order;
          Alcotest.test_case "compose inverse" `Quick
            test_compose_with_inverse_is_identity;
          Alcotest.test_case "transposition" `Quick test_transposition;
          Alcotest.test_case "of_cycles" `Quick test_of_cycles;
          Alcotest.test_case "of_cycles rejects" `Quick
            test_of_cycles_rejects_repeat;
          Alcotest.test_case "cycles roundtrip" `Quick test_cycles_roundtrip;
          Alcotest.test_case "cycles canonical" `Quick test_cycles_canonical;
          Alcotest.test_case "fixpoints/support" `Quick test_fixpoints_support;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "distances" `Quick test_total_and_max_distance;
          Alcotest.test_case "extend identity bias" `Quick
            test_extend_partial_identity_bias;
          Alcotest.test_case "extend full spec" `Quick
            test_extend_partial_full_spec;
          Alcotest.test_case "extend dup src" `Quick
            test_extend_partial_rejects_dup_source;
          Alcotest.test_case "extend dup dst" `Quick
            test_extend_partial_rejects_dup_dest;
          Alcotest.test_case "extend nearest" `Quick test_extend_partial_nearest;
          Alcotest.test_case "pp" `Quick test_pp;
          qc extend_partial_always_permutation;
        ] );
      ( "grid_perm",
        [
          Alcotest.test_case "of_coord_map" `Quick test_grid_perm_of_coord_map;
          Alcotest.test_case "of_coord_map rejects" `Quick
            test_grid_perm_of_coord_map_rejects;
          Alcotest.test_case "transpose definition" `Quick
            test_grid_perm_transpose_definition;
          Alcotest.test_case "transpose involution" `Quick
            test_grid_perm_transpose_involution;
          Alcotest.test_case "untranspose vertex" `Quick test_untranspose_vertex;
          Alcotest.test_case "locality radius" `Quick test_locality_radius;
          Alcotest.test_case "coord pairs" `Quick test_coord_pairs;
        ] );
      ( "generators",
        [
          Alcotest.test_case "always permutations" `Quick
            test_generators_always_permutations;
          Alcotest.test_case "identity kind" `Quick test_generator_identity;
          Alcotest.test_case "block confinement" `Quick
            test_generator_block_local_confinement;
          Alcotest.test_case "block ragged" `Quick test_generator_block_ragged;
          Alcotest.test_case "overlap valid" `Quick test_generator_overlap_valid;
          Alcotest.test_case "row shift" `Quick test_generator_row_shift;
          Alcotest.test_case "negative shift" `Quick test_generator_negative_shift;
          Alcotest.test_case "reversal involution" `Quick
            test_generator_reversal_involution;
          Alcotest.test_case "names roundtrip" `Quick test_generator_names_roundtrip;
          Alcotest.test_case "of_name garbage" `Quick test_generator_of_name_garbage;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic_for_seed;
          Alcotest.test_case "paper kinds" `Quick test_paper_kinds_cover_figure4;
          qc generators_valid_property;
        ] );
    ]
