(* Tests for the engine layer: registry, unified configuration, the
   plan/execute pipeline, batched routing, and the golden behavior of the
   registered engines. *)

open Qroute

(* Module aliases alone do not force the umbrella's initializer; complete
   the registry explicitly (idempotent). *)
let () = Token_engines.register ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Every test leaves the global sinks disabled so suites can run in any
   order. *)
let with_clean_sinks f =
  let finally () =
    ignore (Trace.stop ());
    Metrics.disable ();
    Metrics.reset ()
  in
  Fun.protect ~finally f

(* ------------------------------------------------------------- registry *)

let test_registry_names () =
  let names = Router_registry.names () in
  checki "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* Every Strategy name resolves to an engine of the same name. *)
  List.iter
    (fun strategy ->
      let name = Strategy.name strategy in
      match Router_registry.find name with
      | Some engine -> checks name name engine.Router_intf.name
      | None -> Alcotest.failf "strategy %s has no registered engine" name)
    Strategy.all;
  (* all () follows registration order and agrees with names (). *)
  checkb "all agrees with names" true
    (List.map (fun e -> e.Router_intf.name) (Router_registry.all ()) = names)

let test_registry_get_unknown () =
  match Router_registry.get "no-such-engine" with
  | exception Invalid_argument msg ->
      checkb "message lists registry" true
        (String.length msg > 0
        && List.for_all
             (fun n ->
               (* A substring check without Str: the error must mention
                  every registered name. *)
               let re = n in
               let found = ref false in
               let nl = String.length re and ml = String.length msg in
               for i = 0 to ml - nl do
                 if String.sub msg i nl = re then found := true
               done;
               !found)
             (Router_registry.names ()))
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_registry_duplicate_rejected () =
  let local = Router_registry.get "local" in
  match Router_registry.register local with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration must raise"

(* --------------------------------------------------------------- config *)

let config_gen =
  let open QCheck.Gen in
  let discovery =
    oneof
      [
        return Local_grid_route.Doubling;
        return Local_grid_route.Whole;
        map (fun h -> Local_grid_route.Fixed_band h) (int_range 1 6);
      ]
  in
  let best_of =
    oneof
      [
        return None;
        map (fun k -> Some (List.filteri (fun i _ -> i <= k)
                              [ "local"; "naive"; "snake" ]))
          (int_range 0 2);
      ]
  in
  let* discovery = discovery in
  let* assignment =
    oneofl [ Local_grid_route.Mcbbm; Local_grid_route.Arbitrary ]
  in
  let* transpose = bool in
  let* compaction = bool in
  let* ats_trials = int_range 1 9 in
  let* seed = int_range (-3) 999 in
  let* best_of = best_of in
  return
    {
      Router_config.discovery;
      assignment;
      transpose;
      compaction;
      ats_trials;
      seed;
      best_of;
    }

let config_arbitrary =
  QCheck.make ~print:Router_config.to_string config_gen

let config_roundtrip =
  QCheck.Test.make ~name:"Router_config round-trips through its text form"
    ~count:200 config_arbitrary (fun config ->
      match Router_config.of_string (Router_config.to_string config) with
      | Ok parsed -> Router_config.equal config parsed
      | Error msg -> QCheck.Test.fail_reportf "no parse: %s" msg)

let test_config_defaults_and_partial () =
  checkb "empty string is default" true
    (Router_config.of_string "" = Ok Router_config.default);
  checkb "partial override" true
    (Router_config.of_string "transpose=off"
    = Ok { Router_config.default with transpose = false });
  checkb "fixed_band alias accepted" true
    (Router_config.of_string "discovery=fixed_band:3"
    = Ok
        {
          Router_config.default with
          discovery = Local_grid_route.Fixed_band 3;
        });
  checks "canonical default"
    "discovery=doubling,assignment=mcbbm,transpose=on,compaction=off,trials=4,seed=0"
    (Router_config.to_string Router_config.default)

let test_config_parse_errors () =
  let rejects s =
    match Router_config.of_string s with Error _ -> true | Ok _ -> false
  in
  checkb "unknown key" true (rejects "bogus=1");
  checkb "missing =" true (rejects "transpose");
  checkb "trials=0" true (rejects "trials=0");
  checkb "band 0" true (rejects "discovery=fixed:0");
  checkb "bad discovery" true (rejects "discovery=quantum");
  checkb "empty best" true (rejects "best=");
  checkb "bad seed" true (rejects "seed=x")

(* --------------------------------------------------- plan/execute + caps *)

let test_every_engine_routes () =
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation (Rng.create 7) (m * n)) in
      List.iter
        (fun engine ->
          let sched = Router_intf.route_grid engine grid pi in
          checkb
            (Printf.sprintf "%s %dx%d valid" engine.Router_intf.name m n)
            true
            (Schedule.is_valid (Grid.graph grid) sched);
          checkb
            (Printf.sprintf "%s %dx%d realizes" engine.Router_intf.name m n)
            true
            (Schedule.realizes ~n:(m * n) sched pi))
        (Router_registry.all ()))
    [ (1, 6); (4, 4); (3, 5) ]

(* The registry-wide routing invariant, as a property: whatever the grid
   shape and permutation, every registered engine emits a schedule that is
   executable on the grid's coupling graph and realizes the permutation. *)
let every_engine_valid_on_random_grids =
  QCheck.Test.make
    ~name:"every registry engine emits valid realizing schedules"
    ~count:40
    QCheck.(triple (int_range 1 6) (int_range 2 6) (int_range 0 10_000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation (Rng.create seed) (m * n)) in
      List.for_all
        (fun engine ->
          let sched = Router_intf.route_grid engine grid pi in
          Schedule.is_valid (Grid.graph grid) sched
          && Schedule.realizes ~n:(m * n) sched pi)
        (Router_registry.all ()))

let test_grid_only_rejects_graph_input () =
  let g = Graph.path 6 in
  let oracle = Distance.of_graph g in
  let pi = Perm.check [| 5; 4; 3; 2; 1; 0 |] in
  List.iter
    (fun engine ->
      if engine.Router_intf.capabilities.Router_intf.grid_only then
        match
          Router_intf.route engine (Router_intf.Graph_input (g, oracle, pi))
        with
        | exception Router_intf.Unsupported_input _ -> ()
        | _ ->
            Alcotest.failf "%s must reject Graph_input"
              engine.Router_intf.name)
    (Router_registry.all ())

let test_generic_fallback_counted () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let g = Graph.path 6 in
  let oracle = Distance.of_graph g in
  let pi = Perm.check [| 5; 4; 3; 2; 1; 0 |] in
  let sched =
    Router_registry.route_generic (Router_registry.get "local") g oracle pi
  in
  checkb "fallback schedule realizes" true
    (Schedule.realizes ~n:6 sched pi);
  (match Metrics.find_counter "router_fallbacks" with
  | Some c -> checki "one fallback" 1 (Metrics.value c)
  | None -> Alcotest.fail "router_fallbacks counter not registered");
  (* Generic-capable engines take no fallback. *)
  let sched2 =
    Router_registry.route_generic (Router_registry.get "ats") g oracle pi
  in
  checkb "ats native" true (Schedule.realizes ~n:6 sched2 pi);
  match Metrics.find_counter "router_fallbacks" with
  | Some c -> checki "still one fallback" 1 (Metrics.value c)
  | None -> Alcotest.fail "router_fallbacks counter not registered"

let test_best_of_contenders_and_winner_attr () =
  with_clean_sinks @@ fun () ->
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pi = Generators.generate grid Generators.Random (Rng.create 11) in
  let best = Router_registry.get "best" in
  let config =
    { Router_config.default with best_of = Some [ "snake" ] }
  in
  Trace.start ();
  let sched = Router_intf.route_grid ~config best grid pi in
  let spans = Trace.stop () in
  let snake =
    Router_intf.route_grid (Router_registry.get "snake") grid pi
  in
  checki "best-of-snake equals snake" (Schedule.depth snake)
    (Schedule.depth sched);
  let route_span =
    List.find (fun s -> s.Trace.name = "route") spans
  in
  (match List.assoc_opt "winner" route_span.Trace.attrs with
  | Some (Trace.String w) -> checks "winner recorded" "snake" w
  | _ -> Alcotest.fail "no winner attribute on the route span");
  match List.assoc_opt "strategy" route_span.Trace.attrs with
  | Some (Trace.String s) -> checks "strategy attr" "best" s
  | _ -> Alcotest.fail "no strategy attribute on the route span"

let test_best_unknown_contender_rejected () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let pi = Perm.identity 9 in
  let config =
    { Router_config.default with best_of = Some [ "no-such" ] }
  in
  match Router_intf.route_grid ~config (Router_registry.get "best") grid pi with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown contender must raise"

let test_transpose_off_equals_local1 () =
  let grid = Grid.make ~rows:5 ~cols:8 in
  let pi = Generators.generate grid Generators.Random (Rng.create 4) in
  let off = { Router_config.default with transpose = false } in
  let a =
    Router_intf.route_grid ~config:off (Router_registry.get "local") grid pi
  in
  let b = Router_intf.route_grid (Router_registry.get "local1") grid pi in
  checkb "identical schedules" true (a = b)

let test_compaction_never_deeper () =
  let grid = Grid.make ~rows:6 ~cols:6 in
  let on = { Router_config.default with compaction = true } in
  List.iter
    (fun seed ->
      let pi = Generators.generate grid Generators.Random (Rng.create seed) in
      List.iter
        (fun engine ->
          let plain = Router_intf.route_grid engine grid pi in
          let compacted = Router_intf.route_grid ~config:on engine grid pi in
          checkb
            (Printf.sprintf "%s seed %d" engine.Router_intf.name seed)
            true
            (Schedule.depth compacted <= Schedule.depth plain
            && Schedule.realizes ~n:36 compacted pi))
        [ Router_registry.get "local"; Router_registry.get "naive" ])
    [ 0; 1; 2 ]

(* --------------------------------------------------------------- batching *)

let route_many_matches_sequential =
  QCheck.Test.make
    ~name:"route_many equals per-call route (shared workspace is invisible)"
    ~count:30
    QCheck.(
      triple (int_range 2 6) (int_range 2 6) (int_range 0 1000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let rng = Rng.create seed in
      let pis =
        List.init 5 (fun _ -> Perm.check (Rng.permutation rng (m * n)))
      in
      List.for_all
        (fun engine ->
          let batched =
            Router_intf.route_many engine
              (List.map (fun pi -> Router_intf.Grid_input (grid, pi)) pis)
          in
          let sequential =
            List.map (fun pi -> Router_intf.route_grid engine grid pi) pis
          in
          batched = sequential)
        [
          Router_registry.get "local";
          Router_registry.get "local1";
          Router_registry.get "naive";
          Router_registry.get "best";
        ])

let test_route_many_mixed_sizes () =
  (* One batch spanning different grid shapes: the workspace must regrow
     and shrink between calls without contaminating results. *)
  let engine = Router_registry.get "local" in
  let inputs =
    List.map
      (fun (m, n, seed) ->
        let grid = Grid.make ~rows:m ~cols:n in
        let pi = Perm.check (Rng.permutation (Rng.create seed) (m * n)) in
        Router_intf.Grid_input (grid, pi))
      [ (5, 7, 0); (2, 2, 1); (7, 5, 2); (1, 9, 3); (6, 6, 4) ]
  in
  let batched = Router_intf.route_many engine inputs in
  let sequential =
    List.map (fun input -> Router_intf.route engine input) inputs
  in
  checkb "mixed-size batch matches" true (batched = sequential)

let test_route_many_empty () =
  (* Regression: an empty batch must return [] immediately — no workspace,
     no engine calls (observable as route_calls staying at zero). *)
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let engine = Router_registry.get "local" in
  checkb "engine-level empty batch" true
    (Router_intf.route_many engine [] = []);
  checkb "umbrella-level empty batch" true
    (route_many (Grid.make ~rows:3 ~cols:3) [] = []);
  match Metrics.find_counter "route_calls" with
  | Some c -> checki "no engine invocations" 0 (Metrics.value c)
  | None -> ()

let test_route_many_counts_per_call () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pis =
    List.init 3 (fun k -> Perm.check (Rng.permutation (Rng.create k) 16))
  in
  let scheds = route_many grid pis in
  (match Metrics.find_counter "route_calls" with
  | Some c -> checki "route_calls = batch size" 3 (Metrics.value c)
  | None -> Alcotest.fail "route_calls not registered");
  match Metrics.find_counter "swap_layers" with
  | Some c ->
      checki "swap_layers sums depths"
        (List.fold_left (fun acc s -> acc + Schedule.depth s) 0 scheds)
        (Metrics.value c)
  | None -> Alcotest.fail "swap_layers not registered"

(* ----------------------------------------------------------------- golden *)

(* Depth/swap pairs captured from the pre-refactor Strategy dispatcher
   (workload: Generators.Random, default configuration).  The engine
   refactor must not change any default-config schedule. *)
let golden =
  [
    ("local", 8, 8, [| (19, 299); (19, 260); (20, 265) |]);
    ("local", 5, 9, [| (18, 161); (18, 171); (19, 157) |]);
    ("local1", 8, 8, [| (21, 299); (19, 260); (20, 265) |]);
    ("local1", 5, 9, [| (18, 161); (18, 171); (19, 157) |]);
    ("naive", 8, 8, [| (22, 289); (20, 246); (23, 261) |]);
    ("naive", 5, 9, [| (18, 161); (16, 159); (17, 153) |]);
    ("snake", 8, 8, [| (52, 1029); (56, 918); (55, 973) |]);
    ("snake", 5, 9, [| (34, 489); (43, 541); (38, 555) |]);
    ("best", 8, 8, [| (19, 299); (19, 260); (20, 265) |]);
    ("best", 5, 9, [| (18, 161); (16, 159); (17, 153) |]);
    ("ats", 8, 8, [| (87, 245); (75, 270); (60, 265) |]);
    ("ats", 5, 9, [| (41, 155); (55, 173); (46, 143) |]);
    ("ats-serial", 8, 8, [| (103, 263); (77, 254); (67, 249) |]);
    ("ats-serial", 5, 9, [| (45, 157); (49, 159); (47, 155) |]);
  ]

let test_golden_depths () =
  List.iter
    (fun (name, rows, cols, expected) ->
      let grid = Grid.make ~rows ~cols in
      let engine = Router_registry.get name in
      Array.iteri
        (fun seed (depth, swaps) ->
          let pi =
            Generators.generate grid Generators.Random (Rng.create seed)
          in
          let sched = Router_intf.route_grid engine grid pi in
          checki
            (Printf.sprintf "%s %dx%d seed %d depth" name rows cols seed)
            depth (Schedule.depth sched);
          checki
            (Printf.sprintf "%s %dx%d seed %d swaps" name rows cols seed)
            swaps (Schedule.size sched))
        expected)
    golden

(* ------------------------------------------------------- transpile/sabre *)

let test_transpile_with_engine () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let c = Library.qft 9 in
  List.iter
    (fun name ->
      let engine = Router_registry.get name in
      let r = Transpile.run_grid ~engine grid c in
      checkb (name ^ " feasible") true
        (Transpile.verify_feasible (Grid.graph grid) r))
    [ "local"; "naive"; "ats" ]

let test_sabre_unwind () =
  let grid = Grid.make ~rows:3 ~cols:4 in
  let c =
    Library.random_two_qubit (Rng.create 9) ~num_qubits:12 ~gates:30
  in
  let plain = Sabre_lite.run_grid grid c in
  let unwound =
    Sabre_lite.run_grid ~unwind:(Router_registry.get "local") grid c
  in
  checkb "unwound feasible" true
    (Transpile.verify_feasible (Grid.graph grid) unwound);
  checkb "final equals initial" true
    (Layout.equal unwound.Transpile.final unwound.Transpile.initial);
  checkb "only swaps appended" true
    (Circuit.size unwound.Transpile.physical
     - Circuit.swap_count unwound.Transpile.physical
    = Circuit.size plain.Transpile.physical
      - Circuit.swap_count plain.Transpile.physical);
  checkb "unwind layers accounted" true
    (unwound.Transpile.swap_layers >= plain.Transpile.swap_layers)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "registry",
        [
          Alcotest.test_case "names unique, strategies covered" `Quick
            test_registry_names;
          Alcotest.test_case "unknown name lists registry" `Quick
            test_registry_get_unknown;
          Alcotest.test_case "duplicate rejected" `Quick
            test_registry_duplicate_rejected;
        ] );
      ( "config",
        [
          qc config_roundtrip;
          Alcotest.test_case "defaults and partial parse" `Quick
            test_config_defaults_and_partial;
          Alcotest.test_case "parse errors" `Quick test_config_parse_errors;
        ] );
      ( "engines",
        [
          Alcotest.test_case "every engine routes" `Quick
            test_every_engine_routes;
          qc every_engine_valid_on_random_grids;
          Alcotest.test_case "grid-only rejects graph input" `Quick
            test_grid_only_rejects_graph_input;
          Alcotest.test_case "generic fallback is explicit" `Quick
            test_generic_fallback_counted;
          Alcotest.test_case "best honors contenders, records winner" `Quick
            test_best_of_contenders_and_winner_attr;
          Alcotest.test_case "best rejects unknown contenders" `Quick
            test_best_unknown_contender_rejected;
          Alcotest.test_case "transpose=off equals local1" `Quick
            test_transpose_off_equals_local1;
          Alcotest.test_case "compaction never deeper" `Quick
            test_compaction_never_deeper;
        ] );
      ( "batching",
        [
          qc route_many_matches_sequential;
          Alcotest.test_case "mixed-size batch" `Quick
            test_route_many_mixed_sizes;
          Alcotest.test_case "empty batch" `Quick test_route_many_empty;
          Alcotest.test_case "counters per call" `Quick
            test_route_many_counts_per_call;
        ] );
      ( "golden",
        [ Alcotest.test_case "default-config schedules" `Quick
            test_golden_depths ] );
      ( "transpile",
        [
          Alcotest.test_case "engine-driven transpile" `Quick
            test_transpile_with_engine;
          Alcotest.test_case "sabre unwind" `Quick test_sabre_unwind;
        ] );
    ]
