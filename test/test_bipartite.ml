(* Tests for Qr_bipartite: Hopcroft_karp, Decompose, Bottleneck. *)

module HK = Qr_bipartite.Hopcroft_karp
module Decompose = Qr_bipartite.Decompose
module Bottleneck = Qr_bipartite.Bottleneck
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Matching sanity: distinct lefts, distinct rights, edges exist. *)
let matching_consistent ~edges (result : HK.result) =
  let ok = ref true in
  Array.iteri
    (fun l k ->
      if k >= 0 then begin
        let el, er = edges.(k) in
        if el <> l then ok := false;
        if result.right_match.(er) <> k then ok := false
      end)
    result.left_match;
  !ok

(* ----------------------------------------------------------- Hopcroft_karp *)

let test_hk_perfect_on_identity () =
  let edges = Array.init 5 (fun i -> (i, i)) in
  let r = HK.solve ~nl:5 ~nr:5 ~edges in
  checki "size" 5 r.size;
  checkb "perfect" true (HK.is_perfect ~nl:5 ~nr:5 r);
  checkb "consistent" true (matching_consistent ~edges r)

let test_hk_empty_graph () =
  let r = HK.solve ~nl:3 ~nr:3 ~edges:[||] in
  checki "no matching" 0 r.size

let test_hk_star_saturates_one () =
  (* All lefts point to right 0: matching size 1. *)
  let edges = Array.init 4 (fun l -> (l, 0)) in
  let r = HK.solve ~nl:4 ~nr:3 ~edges in
  checki "size 1" 1 r.size

let test_hk_known_maximum () =
  (* Bipartite graph where greedy can fail but HK must find 3:
     L0-{R0,R1}, L1-{R0}, L2-{R1,R2}. *)
  let edges = [| (0, 0); (0, 1); (1, 0); (2, 1); (2, 2) |] in
  let r = HK.solve ~nl:3 ~nr:3 ~edges in
  checki "maximum 3" 3 r.size;
  checkb "consistent" true (matching_consistent ~edges r)

let test_hk_parallel_edges () =
  let edges = [| (0, 0); (0, 0); (1, 1) |] in
  let r = HK.solve ~nl:2 ~nr:2 ~edges in
  checki "multigraph ok" 2 r.size

let test_hk_rejects_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Hopcroft_karp: endpoint out of range") (fun () ->
      ignore (HK.solve ~nl:2 ~nr:2 ~edges:[| (0, 5) |]))

let test_hk_rectangular () =
  let edges = [| (0, 0); (1, 1); (2, 2); (3, 3) |] in
  let r = HK.solve ~nl:4 ~nr:6 ~edges in
  checki "size" 4 r.size;
  checkb "not perfect (nl<>nr)" false (HK.is_perfect ~nl:4 ~nr:6 r)

(* Brute-force maximum matching for cross-checking. *)
let brute_max_matching ~nl ~nr ~edges =
  let by_left = Array.make nl [] in
  Array.iter (fun (l, r) -> by_left.(l) <- r :: by_left.(l)) edges;
  let used = Array.make nr false in
  let rec go l =
    if l = nl then 0
    else begin
      let skip = go (l + 1) in
      let best = ref skip in
      List.iter
        (fun r ->
          if not used.(r) then begin
            used.(r) <- true;
            let candidate = 1 + go (l + 1) in
            used.(r) <- false;
            if candidate > !best then best := candidate
          end)
        by_left.(l);
      !best
    end
  in
  go 0

let hk_matches_brute_force =
  QCheck.Test.make ~name:"HK = brute force on random bipartite graphs"
    ~count:200
    QCheck.(small_list (pair (int_bound 4) (int_bound 4)))
    (fun pairs ->
      let edges = Array.of_list pairs in
      let r = HK.solve ~nl:5 ~nr:5 ~edges in
      r.size = brute_max_matching ~nl:5 ~nr:5 ~edges
      && matching_consistent ~edges r)

let test_hall_violator_none_when_perfect () =
  let edges = Array.init 3 (fun i -> (i, i)) in
  let r = HK.solve ~nl:3 ~nr:3 ~edges in
  checkb "no violator" true (HK.hall_violator ~nl:3 ~nr:3 ~edges r = None)

let test_hall_violator_found () =
  (* L0, L1 both only see R0: violator must include both. *)
  let edges = [| (0, 0); (1, 0); (2, 1) |] in
  let r = HK.solve ~nl:3 ~nr:3 ~edges in
  match HK.hall_violator ~nl:3 ~nr:3 ~edges r with
  | None -> Alcotest.fail "expected a violator"
  | Some s ->
      (* |N(S)| < |S| must hold. *)
      let neighborhood = Hashtbl.create 4 in
      List.iter
        (fun l ->
          Array.iter
            (fun (el, er) -> if el = l then Hashtbl.replace neighborhood er ())
            edges)
        s;
      checkb "violates Hall" true (Hashtbl.length neighborhood < List.length s)

(* -------------------------------------------------------------- Decompose *)

let random_regular_multigraph rng n d =
  (* Union of d random perfect matchings = d-regular bipartite multigraph. *)
  let edges = ref [] in
  for _ = 1 to d do
    let p = Rng.permutation rng n in
    Array.iteri (fun l r -> edges := (l, r) :: !edges) p
  done;
  Array.of_list !edges

let test_check_regular () =
  let edges = [| (0, 0); (0, 1); (1, 0); (1, 1) |] in
  checki "2-regular" 2 (Decompose.check_regular ~nl:2 ~nr:2 ~edges)

let test_check_regular_rejects () =
  Alcotest.check_raises "irregular" (Invalid_argument "Decompose: not regular")
    (fun () ->
      ignore (Decompose.check_regular ~nl:2 ~nr:2 ~edges:[| (0, 0); (0, 1) |]))

let test_decompose_extraction_valid () =
  let rng = Rng.create 3 in
  for trial = 0 to 14 do
    let n = 2 + (trial mod 5) and d = 1 + (trial mod 4) in
    let edges = random_regular_multigraph rng n d in
    let ms = Decompose.by_extraction ~nl:n ~nr:n ~edges in
    checki "d matchings" d (List.length ms);
    checkb "valid partition" true (Decompose.validate ~nl:n ~nr:n ~edges ms)
  done

let test_decompose_euler_valid () =
  let rng = Rng.create 4 in
  for trial = 0 to 14 do
    let n = 2 + (trial mod 5) and d = 1 + (trial mod 6) in
    let edges = random_regular_multigraph rng n d in
    let ms = Decompose.by_euler_split ~nl:n ~nr:n ~edges in
    checki "d matchings" d (List.length ms);
    checkb "valid partition" true (Decompose.validate ~nl:n ~nr:n ~edges ms)
  done

let test_decompose_parallel_heavy () =
  (* All d edges between the same pair: d copies of a 1-vertex matching
     per side — the extreme multigraph case. *)
  let edges = Array.init 4 (fun _ -> (0, 0)) in
  let ms = Decompose.by_extraction ~nl:1 ~nr:1 ~edges in
  checki "4 matchings" 4 (List.length ms);
  checkb "valid" true (Decompose.validate ~nl:1 ~nr:1 ~edges ms)

let test_validate_catches_overlap () =
  let edges = [| (0, 0); (0, 1); (1, 0); (1, 1) |] in
  (* Reuse the same matching twice: must fail validation. *)
  let m = [| 0; 3 |] in
  checkb "reused edges rejected" false
    (Decompose.validate ~nl:2 ~nr:2 ~edges [ m; m ])

let test_validate_catches_incomplete () =
  let edges = [| (0, 0); (0, 1); (1, 0); (1, 1) |] in
  let m = [| 0; 3 |] in
  checkb "not all edges covered" false (Decompose.validate ~nl:2 ~nr:2 ~edges [ m ])

let decompose_strategies_agree_on_validity =
  QCheck.Test.make ~name:"extraction and euler-split both valid" ~count:100
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 0 10000))
    (fun (n, d, seed) ->
      let rng = Rng.create seed in
      let edges = random_regular_multigraph rng n d in
      let a = Decompose.by_extraction ~nl:n ~nr:n ~edges in
      let b = Decompose.by_euler_split ~nl:n ~nr:n ~edges in
      Decompose.validate ~nl:n ~nr:n ~edges a
      && Decompose.validate ~nl:n ~nr:n ~edges b
      && List.length a = d
      && List.length b = d)

(* -------------------------------------------------------------- Bottleneck *)

let test_bottleneck_simple () =
  let edges =
    [
      Bottleneck.{ l = 0; r = 0; weight = 1 };
      Bottleneck.{ l = 0; r = 1; weight = 10 };
      Bottleneck.{ l = 1; r = 0; weight = 10 };
      Bottleneck.{ l = 1; r = 1; weight = 2 };
    ]
  in
  let s = Bottleneck.solve ~nl:2 ~nr:2 edges in
  checki "bottleneck" 2 s.bottleneck;
  checki "matched pairs" 2 (List.length s.pairs)

let test_bottleneck_forced_heavy () =
  (* The only perfect matching uses the heavy edge. *)
  let edges =
    [
      Bottleneck.{ l = 0; r = 0; weight = 100 };
      Bottleneck.{ l = 1; r = 0; weight = 1 };
      Bottleneck.{ l = 1; r = 1; weight = 1 };
    ]
  in
  let s = Bottleneck.solve ~nl:2 ~nr:2 edges in
  checki "forced" 100 s.bottleneck

let test_bottleneck_prefers_cardinality () =
  (* A lighter non-maximum matching must not win. *)
  let edges =
    [
      Bottleneck.{ l = 0; r = 0; weight = 1 };
      Bottleneck.{ l = 1; r = 0; weight = 50 };
      Bottleneck.{ l = 1; r = 1; weight = 50 };
    ]
  in
  let s = Bottleneck.solve ~nl:2 ~nr:2 edges in
  checki "two pairs" 2 (List.length s.pairs);
  checki "bottleneck 50" 50 s.bottleneck

let test_bottleneck_empty () =
  let s = Bottleneck.solve ~nl:2 ~nr:2 [] in
  checki "no pairs" 0 (List.length s.pairs);
  checkb "sentinel bottleneck" true (s.bottleneck = min_int)

let test_bottleneck_complete_matrix () =
  let weights = [| [| 3; 1 |]; [| 1; 3 |] |] in
  let s = Bottleneck.solve_complete ~weights in
  checki "anti-diagonal" 1 s.bottleneck

let test_bottleneck_negative_weights () =
  let edges =
    [
      Bottleneck.{ l = 0; r = 0; weight = -5 };
      Bottleneck.{ l = 1; r = 1; weight = -3 };
    ]
  in
  let s = Bottleneck.solve ~nl:2 ~nr:2 edges in
  checki "negative ok" (-3) s.bottleneck

let bottleneck_matches_brute_force =
  QCheck.Test.make ~name:"bottleneck = brute force on random instances"
    ~count:150
    QCheck.(small_list (triple (int_bound 3) (int_bound 3) (int_bound 20)))
    (fun triples ->
      let edges =
        List.map (fun (l, r, w) -> Bottleneck.{ l; r; weight = w }) triples
      in
      let s = Bottleneck.solve ~nl:4 ~nr:4 edges in
      let brute = Bottleneck.brute_force ~nl:4 ~nr:4 edges in
      if edges = [] then s.bottleneck = min_int
      else s.bottleneck = brute)

let mcbbm_assignment_is_permutation =
  QCheck.Test.make ~name:"complete-matrix MCBBM is a perfect assignment"
    ~count:100
    QCheck.(pair (int_range 1 6) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let weights =
        Array.init n (fun _ -> Array.init n (fun _ -> Rng.int rng 50))
      in
      let s = Bottleneck.solve_complete ~weights in
      List.length s.pairs = n
      && Qr_perm.Perm.is_permutation s.left_match)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qr_bipartite"
    [
      ( "hopcroft_karp",
        [
          Alcotest.test_case "identity perfect" `Quick test_hk_perfect_on_identity;
          Alcotest.test_case "empty" `Quick test_hk_empty_graph;
          Alcotest.test_case "star" `Quick test_hk_star_saturates_one;
          Alcotest.test_case "known maximum" `Quick test_hk_known_maximum;
          Alcotest.test_case "parallel edges" `Quick test_hk_parallel_edges;
          Alcotest.test_case "rejects range" `Quick test_hk_rejects_range;
          Alcotest.test_case "rectangular" `Quick test_hk_rectangular;
          Alcotest.test_case "hall none" `Quick test_hall_violator_none_when_perfect;
          Alcotest.test_case "hall found" `Quick test_hall_violator_found;
          qc hk_matches_brute_force;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "check_regular" `Quick test_check_regular;
          Alcotest.test_case "check_regular rejects" `Quick
            test_check_regular_rejects;
          Alcotest.test_case "extraction valid" `Quick
            test_decompose_extraction_valid;
          Alcotest.test_case "euler valid" `Quick test_decompose_euler_valid;
          Alcotest.test_case "parallel heavy" `Quick test_decompose_parallel_heavy;
          Alcotest.test_case "validate catches overlap" `Quick
            test_validate_catches_overlap;
          Alcotest.test_case "validate catches incomplete" `Quick
            test_validate_catches_incomplete;
          qc decompose_strategies_agree_on_validity;
        ] );
      ( "bottleneck",
        [
          Alcotest.test_case "simple" `Quick test_bottleneck_simple;
          Alcotest.test_case "forced heavy" `Quick test_bottleneck_forced_heavy;
          Alcotest.test_case "cardinality first" `Quick
            test_bottleneck_prefers_cardinality;
          Alcotest.test_case "empty" `Quick test_bottleneck_empty;
          Alcotest.test_case "complete matrix" `Quick test_bottleneck_complete_matrix;
          Alcotest.test_case "negative weights" `Quick
            test_bottleneck_negative_weights;
          qc bottleneck_matches_brute_force;
          qc mcbbm_assignment_is_permutation;
        ] );
    ]
