(* Tests for the routing service: wire protocol codecs, the plan cache,
   deadlines, session dispatch, and the channel serving loop — all without
   opening a real socket (the loop is driven over an in-memory pipe pair). *)

module Json = Qr_obs.Json
module Metrics = Qr_obs.Metrics
module Trace = Qr_obs.Trace
module Trace_context = Qr_obs.Trace_context
module Log = Qr_obs.Log
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Router_config = Qr_route.Router_config
module Router_registry = Qr_route.Router_registry
module P = Qr_server.Protocol
module Plan_cache = Qr_server.Plan_cache
module Deadline = Qr_server.Deadline
module Session = Qr_server.Session
module Server = Qr_server.Server

(* Session.create completes the registry, but the protocol tests touch it
   first; make registration explicit (idempotent). *)
let () = Qr_token.Engines.register ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Every test leaves the global sinks disabled so suites can run in any
   order. *)
let with_clean_sinks f =
  let finally () =
    ignore (Trace.stop ());
    Metrics.disable ();
    Metrics.reset ()
  in
  Fun.protect ~finally f

(* Error code of a response envelope, [None] for success responses. *)
let error_code_of line =
  match P.response_result (Json.of_string_exn line) with
  | Ok _ -> None
  | Error err -> Some err.P.code

let result_of line =
  match P.response_result (Json.of_string_exn line) with
  | Ok result -> result
  | Error err -> Alcotest.failf "error response: %s" err.P.message

let member_exn name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" name (Json.to_string doc)

(* ------------------------------------------------------------- protocol *)

let all_codes =
  [
    P.Parse_error; P.Invalid_request; P.Unknown_method; P.Invalid_params;
    P.Unsupported_input; P.Deadline_exceeded; P.Overloaded; P.Internal_error;
  ]

let test_error_code_names () =
  List.iter
    (fun code ->
      let name = P.code_to_string code in
      checkb ("snake_case: " ^ name) true
        (String.lowercase_ascii name = name && not (String.contains name ' '));
      checkb ("round-trips: " ^ name) true
        (P.code_of_string name = Some code))
    all_codes;
  checkb "unknown name" true (P.code_of_string "teapot" = None)

let test_request_of_json () =
  let parse text = P.request_of_json (Json.of_string_exn text) in
  (match parse {|{"id": 7, "method": "route", "params": {"x": 1}, "deadline_ms": 50}|} with
  | Ok req ->
      checkb "id" true (req.P.id = Json.Int 7);
      checks "method" "route" req.P.meth;
      checkb "params" true (Json.member "x" req.P.params = Some (Json.Int 1));
      checkb "deadline" true (req.P.deadline_ms = Some 50)
  | Error err -> Alcotest.failf "rejected valid envelope: %s" err.P.message);
  (match parse {|{"method": "health"}|} with
  | Ok req ->
      checkb "missing id is null" true (req.P.id = Json.Null);
      checkb "missing params is {}" true (req.P.params = Json.Obj []);
      checkb "no deadline" true (req.P.deadline_ms = None)
  | Error err -> Alcotest.failf "rejected minimal envelope: %s" err.P.message);
  (match parse {|{"id": "abc", "method": "health"}|} with
  | Ok req -> checkb "string id" true (req.P.id = Json.String "abc")
  | Error _ -> Alcotest.fail "string ids are valid");
  let rejected text =
    match parse text with
    | Error { P.code = P.Invalid_request; _ } -> true
    | _ -> false
  in
  checkb "missing method" true (rejected {|{"id": 1}|});
  checkb "non-string method" true (rejected {|{"id": 1, "method": 3}|});
  checkb "bool id" true (rejected {|{"id": true, "method": "health"}|});
  checkb "non-object params" true
    (rejected {|{"method": "health", "params": [1]}|});
  checkb "negative deadline" true
    (rejected {|{"method": "health", "deadline_ms": -1}|});
  checkb "non-int deadline" true
    (rejected {|{"method": "health", "deadline_ms": "soon"}|})

let test_request_id_recovery () =
  let id text = P.request_id (Json.of_string_exn text) in
  checkb "int id" true (id {|{"id": 3, "bogus": true}|} = Json.Int 3);
  checkb "string id" true (id {|{"id": "x"}|} = Json.String "x");
  checkb "bad id type" true (id {|{"id": [1]}|} = Json.Null);
  checkb "non-object" true (id "[1,2]" = Json.Null)

let test_request_envelope_roundtrip () =
  let req =
    P.request ~id:(Json.Int 9) ~deadline_ms:25 ~meth:"route"
      (Json.Obj [ ("k", Json.Int 1) ])
  in
  (match P.request_of_json (P.request_to_json req) with
  | Ok again -> checkb "round-trip" true (again = req)
  | Error err -> Alcotest.failf "round-trip rejected: %s" err.P.message);
  checkb "non-object params rejected" true
    (try
       ignore (P.request ~meth:"route" (Json.Int 1));
       false
     with Invalid_argument _ -> true)

let test_response_envelopes () =
  let ok = P.ok_response ~id:(Json.Int 1) (Json.Bool true) in
  checkb "ok destructures" true (P.response_result ok = Ok (Json.Bool true));
  let err = P.error_response ~id:(Json.Int 1) (P.error P.Overloaded "full") in
  (match P.response_result err with
  | Error { P.code = P.Overloaded; message; _ } -> checks "message" "full" message
  | _ -> Alcotest.fail "expected overloaded error");
  (match P.response_result (Json.Obj [ ("id", Json.Int 1) ]) with
  | Error { P.code = P.Internal_error; _ } -> ()
  | _ -> Alcotest.fail "malformed envelope decodes as internal_error")

let test_grid_codec () =
  let grid = Grid.make ~rows:3 ~cols:5 in
  checks "shape" {|{"rows":3,"cols":5}|} (Json.to_string (P.grid_to_json grid));
  (match P.grid_of_json (P.grid_to_json grid) with
  | Ok g -> checkb "round-trip" true (Grid.rows g = 3 && Grid.cols g = 5)
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg);
  let bad text = Result.is_error (P.grid_of_json (Json.of_string_exn text)) in
  checkb "missing cols" true (bad {|{"rows": 3}|});
  checkb "zero rows" true (bad {|{"rows": 0, "cols": 5}|});
  checkb "non-object" true (bad "[3,5]")

let test_perm_codec () =
  let pi = Perm.check [| 2; 0; 1 |] in
  checks "list form" "[2,0,1]" (Json.to_string (P.perm_to_json pi));
  (match P.perm_of_json ~expect_size:3 (P.perm_to_json pi) with
  | Ok again -> checkb "round-trip" true (Perm.equal pi again)
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg);
  let bad ?expect_size text =
    Result.is_error (P.perm_of_json ?expect_size (Json.of_string_exn text))
  in
  checkb "repeated image" true (bad "[0,0,1]");
  checkb "out of range" true (bad "[0,3,1]");
  checkb "non-int entry" true (bad {|[0,"x",1]|});
  checkb "size mismatch" true (bad ~expect_size:4 "[2,0,1]");
  checkb "non-list" true (bad {|{"perm": [0,1]}|})

let test_config_codec () =
  (* Default config round-trips through the object form. *)
  (match P.config_of_json (P.config_to_json Router_config.default) with
  | Ok c -> checkb "default round-trip" true (c = Router_config.default)
  | Error msg -> Alcotest.failf "default rejected: %s" msg);
  (* A subset of keys patches the defaults, exactly like the text form. *)
  (match P.config_of_json (Json.of_string_exn {|{"transpose": false}|}) with
  | Ok c ->
      checks "object subset = text form"
        (Router_config.to_string
           (Router_config.of_string_exn "transpose=off"))
        (Router_config.to_string c)
  | Error msg -> Alcotest.failf "subset rejected: %s" msg);
  (* The canonical text form is accepted as a plain string. *)
  (match P.config_of_json (Json.String "trials=7,seed=3") with
  | Ok c ->
      checks "string form"
        (Router_config.to_string (Router_config.of_string_exn "trials=7,seed=3"))
        (Router_config.to_string c)
  | Error msg -> Alcotest.failf "string form rejected: %s" msg);
  checkb "unknown key" true
    (Result.is_error (P.config_of_json (Json.of_string_exn {|{"warp": 9}|})));
  checkb "bad value type" true
    (Result.is_error
       (P.config_of_json (Json.of_string_exn {|{"trials": "many"}|})))

let test_engines_json () =
  let doc = P.engines_json () in
  match member_exn "engines" doc with
  | Json.List entries ->
      checki "one entry per registered engine"
        (List.length (Router_registry.names ()))
        (List.length entries);
      let names =
        List.map
          (fun e ->
            match member_exn "name" e with
            | Json.String s -> s
            | _ -> Alcotest.fail "name must be a string")
          entries
      in
      List.iter
        (fun required ->
          checkb ("lists " ^ required) true (List.mem required names))
        [ "local"; "naive"; "best"; "ats" ];
      List.iter
        (fun e ->
          (match member_exn "inputs" e with
          | Json.String ("grid" | "any") -> ()
          | j -> Alcotest.failf "bad inputs: %s" (Json.to_string j));
          checkb "transpose is a bool" true
            (match member_exn "transpose" e with
            | Json.Bool _ -> true
            | _ -> false))
        entries
  | _ -> Alcotest.fail "expected an engines list"

(* ----------------------------------------------------------- plan cache *)

let sched_a = [ [| (0, 1) |] ]
let sched_b = [ [| (2, 3) |]; [| (0, 1) |] ]

let key_for ?(engine = "local") ?(config = Router_config.default) seed =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let pi = Perm.check (Qr_util.Rng.permutation (Qr_util.Rng.create seed) 4) in
  Plan_cache.key ~grid ~pi ~engine ~config

let test_cache_hit_miss () =
  let cache = Plan_cache.create ~capacity:4 () in
  let k = key_for 0 in
  checkb "cold lookup misses" true (Plan_cache.find cache k = None);
  Plan_cache.add cache k sched_a;
  checkb "warm lookup hits" true (Plan_cache.find cache k = Some sched_a);
  checki "hits" 1 (Plan_cache.hits cache);
  checki "misses" 1 (Plan_cache.misses cache);
  checki "length" 1 (Plan_cache.length cache);
  let s1, cached1 = Plan_cache.find_or_add cache (key_for 1) (fun () -> sched_b) in
  checkb "find_or_add computes on miss" true ((s1, cached1) = (sched_b, false));
  let s2, cached2 =
    Plan_cache.find_or_add cache (key_for 1) (fun () ->
        Alcotest.fail "must not recompute on a hit")
  in
  checkb "find_or_add returns stored value" true ((s2, cached2) = (sched_b, true))

let test_cache_lru_eviction () =
  let cache = Plan_cache.create ~capacity:2 () in
  let ka = key_for 10 and kb = key_for 11 and kc = key_for 12 in
  Plan_cache.add cache ka sched_a;
  Plan_cache.add cache kb sched_b;
  (* Touch [ka] so [kb] is the least recently used entry. *)
  checkb "refresh a" true (Plan_cache.find cache ka <> None);
  Plan_cache.add cache kc sched_a;
  checki "capacity kept" 2 (Plan_cache.length cache);
  checki "one eviction" 1 (Plan_cache.evictions cache);
  checkb "lru (b) evicted" true (Plan_cache.find cache kb = None);
  checkb "recent (a) kept" true (Plan_cache.find cache ka <> None);
  checkb "new (c) kept" true (Plan_cache.find cache kc <> None)

let test_cache_key_discriminates () =
  let cache = Plan_cache.create () in
  Plan_cache.add cache (key_for 0) sched_a;
  checkb "different engine" true
    (Plan_cache.find cache (key_for ~engine:"naive" 0) = None);
  checkb "different config" true
    (Plan_cache.find cache
       (key_for ~config:(Router_config.of_string_exn "transpose=off") 0)
    = None);
  (* Same quadruple built from fresh values still hits (keys are by value,
     not identity). *)
  checkb "fresh equal key hits" true (Plan_cache.find cache (key_for 0) <> None)

let test_cache_zero_capacity () =
  let cache = Plan_cache.create ~capacity:0 () in
  let k = key_for 0 in
  let _, cached = Plan_cache.find_or_add cache k (fun () -> sched_a) in
  checkb "never caches" true (not cached);
  let _, cached = Plan_cache.find_or_add cache k (fun () -> sched_a) in
  checkb "still misses" true (not cached);
  checki "stores nothing" 0 (Plan_cache.length cache);
  checkb "negative capacity rejected" true
    (try
       ignore (Plan_cache.create ~capacity:(-1) ());
       false
     with Invalid_argument _ -> true)

let test_cache_clear_keeps_counters () =
  let cache = Plan_cache.create () in
  Plan_cache.add cache (key_for 0) sched_a;
  ignore (Plan_cache.find cache (key_for 0));
  Plan_cache.clear cache;
  checki "emptied" 0 (Plan_cache.length cache);
  checki "hits kept" 1 (Plan_cache.hits cache);
  checkb "entries gone" true (Plan_cache.find cache (key_for 0) = None)

let test_cache_metrics_counters () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let cache = Plan_cache.create ~capacity:1 () in
  ignore (Plan_cache.find_or_add cache (key_for 0) (fun () -> sched_a));
  ignore (Plan_cache.find_or_add cache (key_for 0) (fun () -> sched_a));
  Plan_cache.add cache (key_for 1) sched_b;
  let counter name =
    match Metrics.find_counter name with
    | Some c -> Metrics.value c
    | None -> Alcotest.failf "counter %s not registered" name
  in
  checki "global hits" 1 (counter "plan_cache_hits");
  checki "global misses" 1 (counter "plan_cache_misses");
  checki "global evictions" 1 (counter "plan_cache_evictions")

(* ------------------------------------------------------------ deadlines *)

let test_deadline_none () =
  checkb "never expires" true (not (Deadline.expired Deadline.none));
  Deadline.check Deadline.none;
  checkb "no remaining bound" true (Deadline.remaining_ms Deadline.none = None);
  checkb "of_budget None" true (not (Deadline.expired (Deadline.of_budget_ms None)))

let test_deadline_zero_budget () =
  let d = Deadline.after_ms 0 in
  checkb "0 ms is already expired" true (Deadline.expired d);
  checkb "check raises" true
    (try
       Deadline.check d;
       false
     with Deadline.Exceeded -> true);
  checkb "remaining clamps at 0" true (Deadline.remaining_ms d = Some 0);
  checkb "negative budget clamps" true (Deadline.expired (Deadline.after_ms (-5)));
  checkb "of_budget Some 0" true (Deadline.expired (Deadline.of_budget_ms (Some 0)))

let test_deadline_future () =
  let d = Deadline.after_ms 60_000 in
  checkb "not yet expired" true (not (Deadline.expired d));
  Deadline.check d;
  match Deadline.remaining_ms d with
  | Some ms -> checkb "remaining within budget" true (ms > 0 && ms <= 60_000)
  | None -> Alcotest.fail "finite deadline must report remaining time"

(* -------------------------------------------------------------- session *)

let route_line ?(id = 1) () =
  Printf.sprintf
    {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": [8,7,6,5,4,3,2,1,0], "engine": "local"}}|}
    id

let test_session_repeated_route_hits_cache () =
  (* Acceptance: a repeated identical route request is answered from the
     plan cache — hit counter increments, response bytes identical. *)
  let session = Session.create () in
  let first = Session.handle_line session (route_line ()) in
  let second = Session.handle_line session (route_line ()) in
  checki "one miss" 1 (Plan_cache.misses (Session.cache session));
  checki "hit counter incremented" 1 (Plan_cache.hits (Session.cache session));
  let body line =
    let result = result_of line in
    (member_exn "cached" result, Json.to_string (member_exn "schedule" result))
  in
  let cached1, sched1 = body first and cached2, sched2 = body second in
  checkb "first is a miss" true (cached1 = Json.Bool false);
  checkb "second is a hit" true (cached2 = Json.Bool true);
  checks "identical schedule bytes" sched1 sched2;
  checki "served" 2 (Session.requests_served session)

let test_session_zero_deadline () =
  (* Acceptance: a 0 ms deadline returns the deadline_exceeded envelope. *)
  let session = Session.create () in
  let response =
    Session.handle_line session
      {|{"id": 9, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": [8,7,6,5,4,3,2,1,0]}, "deadline_ms": 0}|}
  in
  checkb "deadline_exceeded" true
    (error_code_of response = Some P.Deadline_exceeded);
  checkb "id echoed" true
    (Json.member "id" (Json.of_string_exn response) = Some (Json.Int 9));
  checki "nothing cached" 0 (Plan_cache.length (Session.cache session))

let test_session_error_envelopes () =
  let session = Session.create () in
  let code line = error_code_of (Session.handle_line session line) in
  checkb "non-json" true (code "not json" = Some P.Parse_error);
  checkb "invalid envelope" true (code {|{"id": 4}|} = Some P.Invalid_request);
  checkb "unknown method" true
    (code {|{"id": 4, "method": "teleport"}|} = Some P.Unknown_method);
  checkb "bad params" true
    (code {|{"id": 4, "method": "route", "params": {"grid": {"rows": 2, "cols": 2}, "perm": [0,0,0,0]}}|}
    = Some P.Invalid_params);
  checkb "unknown engine" true
    (code {|{"id": 4, "method": "route", "params": {"grid": {"rows": 2, "cols": 2}, "perm": [3,2,1,0], "engine": "warp"}}|}
    = Some P.Invalid_params);
  (* The id from an invalid envelope is still echoed. *)
  let response = Session.handle_line session {|{"id": "abc"}|} in
  checkb "id recovered" true
    (Json.member "id" (Json.of_string_exn response) = Some (Json.String "abc"))

let test_session_route_batch () =
  let config = { Session.default_config with Session.max_batch = 2 } in
  let session = Session.create ~config () in
  let response =
    Session.handle_line session
      {|{"id": 1, "method": "route_batch", "params": {"grid": {"rows": 2, "cols": 2}, "perms": [[3,2,1,0], [3,2,1,0]], "engine": "local"}}|}
  in
  let result = result_of response in
  (match member_exn "cached" result with
  | Json.List [ Json.Bool false; Json.Bool true ] -> ()
  | j -> Alcotest.failf "expected [false,true], got %s" (Json.to_string j));
  (match member_exn "schedules" result with
  | Json.List [ s1; s2 ] ->
      checks "batch items share the plan" (Json.to_string s1) (Json.to_string s2);
      checkb "schedules decode" true (Result.is_ok (Schedule.of_json s1))
  | j -> Alcotest.failf "expected two schedules, got %s" (Json.to_string j));
  (* One over max_batch is shed with the overloaded error. *)
  let over =
    Session.handle_line session
      {|{"id": 2, "method": "route_batch", "params": {"grid": {"rows": 2, "cols": 2}, "perms": [[3,2,1,0], [2,3,0,1], [1,0,3,2]]}}|}
  in
  checkb "overloaded" true (error_code_of over = Some P.Overloaded)

let test_session_transpile () =
  let session = Session.create () in
  let response =
    Session.handle_line session
      {|{"id": 1, "method": "transpile", "params": {"grid": {"rows": 2, "cols": 2}, "circuit": "qubits 4\nh 0\ncx 0 3\ncx 1 2\n", "engine": "local"}}|}
  in
  let result = result_of response in
  (match member_exn "physical" result with
  | Json.String text ->
      checkb "physical circuit parses back" true
        (Result.is_ok (Qr_circuit.Qasm.parse text))
  | _ -> Alcotest.fail "physical must be circuit text");
  checkb "swap accounting present" true
    (match member_exn "swaps" result with Json.Int n -> n >= 0 | _ -> false);
  (* Qubit-count mismatches are parameter errors, not crashes. *)
  let bad =
    Session.handle_line session
      {|{"id": 2, "method": "transpile", "params": {"grid": {"rows": 2, "cols": 2}, "circuit": "qubits 2\ncx 0 1\n"}}|}
  in
  checkb "qubit mismatch" true (error_code_of bad = Some P.Invalid_params)

let test_session_introspection_methods () =
  let session = Session.create () in
  (* engines: exactly the protocol payload. *)
  let engines = result_of (Session.handle_line session {|{"id": 1, "method": "engines"}|}) in
  checkb "engines payload" true (Json.equal engines (P.engines_json ()));
  (* health: status/requests/plan_cache stats. *)
  ignore (Session.handle_line session (route_line ()));
  let health = result_of (Session.handle_line session {|{"id": 2, "method": "health"}|}) in
  checkb "status ok" true (member_exn "status" health = Json.String "ok");
  (match member_exn "requests" health with
  | Json.Int n -> checki "requests counted" 3 n
  | _ -> Alcotest.fail "requests must be an int");
  (match member_exn "plan_cache" health with
  | Json.Obj _ as pc ->
      checkb "cache misses reported" true
        (member_exn "misses" pc = Json.Int 1)
  | _ -> Alcotest.fail "plan_cache must be an object");
  (* metrics: a Metrics.to_json snapshot. *)
  let metrics = result_of (Session.handle_line session {|{"id": 3, "method": "metrics"}|}) in
  checkb "metrics sections" true
    (Json.member "counters" metrics <> None
    && Json.member "histograms" metrics <> None)

let test_session_shared_cache () =
  (* Two sessions over one cache: the socket server's arrangement. *)
  let cache = Plan_cache.create () in
  let s1 = Session.create ~cache () in
  let s2 = Session.create ~cache () in
  let r1 = result_of (Session.handle_line s1 (route_line ())) in
  let r2 = result_of (Session.handle_line s2 (route_line ())) in
  checkb "first connection plans" true (member_exn "cached" r1 = Json.Bool false);
  checkb "second connection hits" true (member_exn "cached" r2 = Json.Bool true)

let test_overloaded_response_line () =
  let line = Session.overloaded_response_line {|{"id": 42, "method": "route"}|} in
  checkb "overloaded code" true (error_code_of line = Some P.Overloaded);
  checkb "id echoed" true
    (Json.member "id" (Json.of_string_exn line) = Some (Json.Int 42));
  let junk = Session.overloaded_response_line "garbage" in
  checkb "null id for junk" true
    (Json.member "id" (Json.of_string_exn junk) = Some Json.Null)

(* ------------------------------------------------------ telemetry plane *)

let tp_example = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
let tid_example = "0123456789abcdef0123456789abcdef"

let test_protocol_trace_codec () =
  (* Envelope round-trip with a trace context attached. *)
  let trace = Result.get_ok (Trace_context.of_traceparent tp_example) in
  let req =
    P.request ~id:(Json.Int 1) ~trace ~meth:"health" (Json.Obj [])
  in
  let json = P.request_to_json req in
  checkb "trace field rendered" true
    (Json.member "trace" json = Some (Json.String tp_example));
  (match P.request_of_json json with
  | Ok again ->
      checkb "trace round-trips" true
        (match again.P.trace with
        | Some t -> Trace_context.equal t trace
        | None -> false)
  | Error err -> Alcotest.failf "round-trip rejected: %s" err.P.message);
  (* Malformed trace strings are invalid_request, not silently dropped. *)
  let rejected text =
    match P.request_of_json (Json.of_string_exn text) with
    | Error { P.code = P.Invalid_request; _ } -> true
    | _ -> false
  in
  checkb "garbage trace" true
    (rejected {|{"method": "health", "trace": "zz"}|});
  checkb "all-zero trace" true
    (rejected
       {|{"method": "health", "trace": "00-00000000000000000000000000000000-0123456789abcdef-01"}|});
  checkb "non-string trace" true
    (rejected {|{"method": "health", "trace": 7}|})

let test_response_trace_meta () =
  let trace = Result.get_ok (Trace_context.of_traceparent tp_example) in
  let resp =
    P.ok_response ~trace ~server_ms:1.25 ~id:(Json.Int 1) (Json.Bool true)
  in
  (match P.response_trace resp with
  | Some t -> checkb "trace decodes" true (Trace_context.equal t trace)
  | None -> Alcotest.fail "missing trace on response");
  checkb "server_ms decodes" true (P.response_server_ms resp = Some 1.25);
  (* Error responses carry the same metadata. *)
  let err =
    P.error_response ~trace ~server_ms:0.5 ~id:Json.Null
      (P.error P.Overloaded "full")
  in
  checkb "error response trace" true (P.response_trace err <> None);
  (* And both fields are optional. *)
  let bare = P.ok_response ~id:(Json.Int 1) (Json.Bool true) in
  checkb "no trace by default" true (P.response_trace bare = None);
  checkb "no server_ms by default" true (P.response_server_ms bare = None)

let traced_route_line ?(id = 1) () =
  Printf.sprintf
    {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": [8,7,6,5,4,3,2,1,0], "engine": "local"}, "trace": "%s"}|}
    id tp_example

let test_session_trace_echo () =
  (* Tentpole acceptance: the caller's trace context comes back in the
     envelope, a server_ms timing rides along, and every span of the
     request tree is stamped with the trace_id. *)
  with_clean_sinks @@ fun () ->
  let session = Session.create () in
  Trace.start ();
  let response = Session.handle_line session (traced_route_line ()) in
  let spans = Trace.stop () in
  let doc = Json.of_string_exn response in
  checkb "trace echoed verbatim" true
    (Json.member "trace" doc = Some (Json.String tp_example));
  (match P.response_server_ms doc with
  | Some ms -> checkb "server_ms nonnegative" true (ms >= 0.)
  | None -> Alcotest.fail "missing server_ms");
  checkb "spans recorded" true (List.length spans > 0);
  List.iter
    (fun (s : Trace.span) ->
      checkb (s.Trace.name ^ " carries trace_id") true
        (List.assoc_opt "trace_id" s.Trace.attrs
        = Some (Trace.String tid_example)))
    spans;
  (* The adoption is scoped to the request: a traceless request after it
     produces unstamped spans. *)
  Trace.start ();
  ignore (Session.handle_line session (route_line ~id:2 ()));
  let after = Trace.stop () in
  checkb "context restored" true
    (List.for_all
       (fun (s : Trace.span) ->
         not (List.mem_assoc "trace_id" s.Trace.attrs))
       after)

(* Capture access-log records; restores global log state afterwards. *)
let with_access_log f =
  let captured = ref [] in
  Log.set_sink (Some (fun line -> captured := line :: !captured));
  Log.set_level Log.Info;
  Log.set_format Log.Json;
  let finally () =
    Log.set_sink None;
    Log.set_level Log.Warn;
    Log.set_format Log.Logfmt
  in
  Fun.protect ~finally (fun () -> f captured)

let access_records captured =
  List.rev_map Json.of_string_exn !captured
  |> List.filter (fun doc ->
         Json.member "msg" doc = Some (Json.String "request"))

let test_session_access_log () =
  with_clean_sinks @@ fun () ->
  with_access_log @@ fun captured ->
  let session = Session.create () in
  let response = Session.handle_line session (traced_route_line ()) in
  ignore (Session.handle_line session "not json");
  match access_records captured with
  | [ ok_rec; err_rec ] ->
      checkb "method" true
        (Json.member "method" ok_rec = Some (Json.String "route"));
      checkb "status ok" true
        (Json.member "status" ok_rec = Some (Json.String "ok"));
      checkb "trace_id correlates" true
        (Json.member "trace_id" ok_rec = Some (Json.String tid_example));
      checkb "cache outcome" true
        (Json.member "cached" ok_rec = Some (Json.Bool false));
      checkb "bytes is the response length" true
        (Json.member "bytes" ok_rec
        = Some (Json.Int (String.length response)));
      checkb "ms nonnegative" true
        (match Json.member "ms" ok_rec with
        | Some (Json.Float ms) -> ms >= 0.
        | _ -> false);
      checkb "parse error logged" true
        (Json.member "status" err_rec = Some (Json.String "parse_error"));
      checkb "unparsed method is ?" true
        (Json.member "method" err_rec = Some (Json.String "?"))
  | other -> Alcotest.failf "expected 2 access records, got %d" (List.length other)

let test_session_health_telemetry () =
  let session = Session.create ~inflight_probe:(fun () -> 5) () in
  let health =
    result_of (Session.handle_line session {|{"id": 1, "method": "health"}|})
  in
  checkb "uptime_ms" true
    (match member_exn "uptime_ms" health with
    | Json.Float ms -> ms >= 0.
    | _ -> false);
  checkb "inflight from probe" true
    (member_exn "inflight" health = Json.Int 5);
  (match member_exn "plan_cache" health with
  | pc ->
      checkb "hits" true (Json.member "hits" pc <> None);
      checkb "misses" true (Json.member "misses" pc <> None);
      checkb "evictions" true (Json.member "evictions" pc <> None))

let test_session_stats_method () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let session = Session.create () in
  ignore (Session.handle_line session (route_line ()));
  let stats =
    result_of (Session.handle_line session {|{"id": 2, "method": "stats"}|})
  in
  let health = member_exn "health" stats in
  checkb "health inside" true (Json.member "status" health <> None);
  checkb "plan_cache inside" true
    (match member_exn "plan_cache" stats with
    | pc -> member_exn "misses" pc = Json.Int 1);
  let metrics = member_exn "metrics" stats in
  checkb "metrics inside" true (Json.member "counters" metrics <> None);
  (* The stats call refreshes the process gauges. *)
  (match Json.member "gauges" metrics with
  | Some gauges ->
      checkb "process uptime gauge" true
        (match Json.member "process_uptime_seconds" gauges with
        | Some (Json.Float s) -> s >= 0.
        | _ -> false);
      checkb "rss gauge" true
        (match Json.member "process_max_rss_kb" gauges with
        | Some (Json.Float kb) -> kb > 0.
        | _ -> false)
  | None -> Alcotest.fail "missing gauges")

let test_metrics_file_snapshot () =
  (* The stdio loop writes a parseable Prometheus exposition at EOF. *)
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let path = Filename.temp_file "qr_metrics" ".prom" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  let reqs = Unix.out_channel_of_descr req_write in
  output_string reqs (route_line () ^ "\n");
  close_out reqs;
  let ic = Unix.in_channel_of_descr req_read in
  let oc = Unix.out_channel_of_descr resp_write in
  Server.serve_channels ~metrics_file:path ic oc;
  close_out oc;
  close_in ic;
  let responses = Unix.in_channel_of_descr resp_read in
  ignore (input_line responses);
  close_in responses;
  let content = In_channel.with_open_text path In_channel.input_all in
  let lines = String.split_on_char '\n' content in
  checkb "histogram type line" true
    (List.mem "# TYPE server_request_ms histogram" lines);
  checkb "requests counted" true (List.mem "server_requests 1" lines);
  checkb "cumulative +Inf present" true
    (List.mem "server_request_ms_bucket{le=\"+Inf\"} 1" lines);
  checkb "no torn tmp file left" true (not (Sys.file_exists (path ^ ".tmp")))

(* --------------------------------------------------------- serving loop *)

let serve_script lines =
  (* Drive Server.serve_channels over an in-memory pipe pair: requests are
     written up front (well within pipe capacity), the loop runs to EOF,
     and the responses are read back — no sockets, no subprocess. *)
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  let reqs = Unix.out_channel_of_descr req_write in
  List.iter (fun line -> output_string reqs (line ^ "\n")) lines;
  close_out reqs;
  let ic = Unix.in_channel_of_descr req_read in
  let oc = Unix.out_channel_of_descr resp_write in
  Server.serve_channels ic oc;
  close_out oc;
  close_in ic;
  let responses = Unix.in_channel_of_descr resp_read in
  let rec read acc =
    match input_line responses with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read [] in
  close_in responses;
  out

let test_serve_channels_end_to_end () =
  with_clean_sinks @@ fun () ->
  let responses =
    serve_script
      [
        route_line ~id:1 ();
        "";
        route_line ~id:2 ();
        "not json";
        {|{"id": 3, "method": "health"}|};
      ]
  in
  (* The blank line is skipped; every request gets exactly one response,
     in request order. *)
  checki "four responses" 4 (List.length responses);
  let nth = List.nth responses in
  let id_of line = Json.member "id" (Json.of_string_exn line) in
  checkb "order preserved" true
    (id_of (nth 0) = Some (Json.Int 1)
    && id_of (nth 1) = Some (Json.Int 2)
    && id_of (nth 3) = Some (Json.Int 3));
  checkb "repeat served from cache" true
    (member_exn "cached" (result_of (nth 1)) = Json.Bool true);
  checkb "parse error mid-stream" true
    (error_code_of (nth 2) = Some P.Parse_error);
  let health = result_of (nth 3) in
  (match member_exn "plan_cache" health with
  | pc ->
      checkb "hit visible in health" true (member_exn "hits" pc = Json.Int 1));
  (* Identical requests, identical bytes — ids differ, schedules must not. *)
  let sched line = Json.to_string (member_exn "schedule" (result_of line)) in
  checks "cache hit is byte-identical" (sched (nth 0)) (sched (nth 1))

let () =
  Alcotest.run "qr_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "error code names" `Quick test_error_code_names;
          Alcotest.test_case "request validation" `Quick test_request_of_json;
          Alcotest.test_case "id recovery" `Quick test_request_id_recovery;
          Alcotest.test_case "envelope round-trip" `Quick
            test_request_envelope_roundtrip;
          Alcotest.test_case "response envelopes" `Quick test_response_envelopes;
          Alcotest.test_case "grid codec" `Quick test_grid_codec;
          Alcotest.test_case "perm codec" `Quick test_perm_codec;
          Alcotest.test_case "config codec" `Quick test_config_codec;
          Alcotest.test_case "engines payload" `Quick test_engines_json;
          Alcotest.test_case "trace codec" `Quick test_protocol_trace_codec;
          Alcotest.test_case "response trace metadata" `Quick
            test_response_trace_meta;
        ] );
      ( "plan_cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "key discriminates" `Quick
            test_cache_key_discriminates;
          Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
          Alcotest.test_case "clear keeps counters" `Quick
            test_cache_clear_keeps_counters;
          Alcotest.test_case "metrics counters" `Quick
            test_cache_metrics_counters;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "none" `Quick test_deadline_none;
          Alcotest.test_case "zero budget" `Quick test_deadline_zero_budget;
          Alcotest.test_case "future budget" `Quick test_deadline_future;
        ] );
      ( "session",
        [
          Alcotest.test_case "repeat hits cache" `Quick
            test_session_repeated_route_hits_cache;
          Alcotest.test_case "0ms deadline" `Quick test_session_zero_deadline;
          Alcotest.test_case "error envelopes" `Quick
            test_session_error_envelopes;
          Alcotest.test_case "route_batch" `Quick test_session_route_batch;
          Alcotest.test_case "transpile" `Quick test_session_transpile;
          Alcotest.test_case "engines/health/metrics" `Quick
            test_session_introspection_methods;
          Alcotest.test_case "shared cache" `Quick test_session_shared_cache;
          Alcotest.test_case "overloaded line" `Quick
            test_overloaded_response_line;
          Alcotest.test_case "trace echo + adoption" `Quick
            test_session_trace_echo;
          Alcotest.test_case "access log" `Quick test_session_access_log;
          Alcotest.test_case "health telemetry" `Quick
            test_session_health_telemetry;
          Alcotest.test_case "stats method" `Quick test_session_stats_method;
        ] );
      ( "serve",
        [
          Alcotest.test_case "channel loop end-to-end" `Quick
            test_serve_channels_end_to_end;
          Alcotest.test_case "metrics file snapshot" `Quick
            test_metrics_file_snapshot;
        ] );
    ]
