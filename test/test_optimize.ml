(* Tests for the peephole optimizer, schedule serialization, and the
   partial-routing / placement entry points of the umbrella API. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let circuit n gates = Circuit.create ~num_qubits:n gates

let equivalent c1 c2 seed =
  let n = Circuit.num_qubits c1 in
  let psi = Statevector.random_state (Rng.create seed) n in
  Statevector.approx_equal (Statevector.run c1 psi) (Statevector.run c2 psi)

(* ---------------------------------------------------------------- Optimize *)

let test_optimize_cancels_double_swap () =
  let c = circuit 3 [ Gate.Two (Gate.SWAP, 0, 1); Gate.Two (Gate.SWAP, 1, 0) ] in
  checki "everything cancels" 0 (Circuit.size (Optimize.run c))

let test_optimize_cancels_double_cx_same_orientation () =
  let c = circuit 2 [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 0, 1) ] in
  checki "cancels" 0 (Circuit.size (Optimize.run c))

let test_optimize_keeps_flipped_cx () =
  let c = circuit 2 [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 1, 0) ] in
  checki "different orientation is kept" 2 (Circuit.size (Optimize.run c))

let test_optimize_fuses_rotations () =
  let c =
    circuit 1 [ Gate.One (Gate.Rz 0.25, 0); Gate.One (Gate.Rz 0.5, 0) ]
  in
  (match Circuit.gates (Optimize.run c) with
  | [ Gate.One (Gate.Rz a, 0) ] ->
      Alcotest.check (Alcotest.float 1e-12) "fused" 0.75 a
  | _ -> Alcotest.fail "expected one fused Rz")

let test_optimize_fused_zero_vanishes () =
  let c =
    circuit 1 [ Gate.One (Gate.Rz 0.25, 0); Gate.One (Gate.Rz (-0.25), 0) ]
  in
  checki "vanishes" 0 (Circuit.size (Optimize.run c))

let test_optimize_drops_zero_rotation () =
  let c = circuit 2 [ Gate.Two (Gate.CP 0., 0, 1); Gate.One (Gate.H, 0) ] in
  checki "only H left" 1 (Circuit.size (Optimize.run c))

let test_optimize_commutes_past_disjoint () =
  (* H on qubit 2 sits between the two SWAPs but shares no qubit: the
     SWAPs must still cancel. *)
  let c =
    circuit 3
      [ Gate.Two (Gate.SWAP, 0, 1); Gate.One (Gate.H, 2);
        Gate.Two (Gate.SWAP, 0, 1) ]
  in
  checki "swaps cancel across disjoint gate" 1 (Circuit.size (Optimize.run c))

let test_optimize_blocked_by_shared_qubit () =
  (* X on qubit 0 between the SWAPs touches them: no cancellation. *)
  let c =
    circuit 2
      [ Gate.Two (Gate.SWAP, 0, 1); Gate.One (Gate.X, 0);
        Gate.Two (Gate.SWAP, 0, 1) ]
  in
  checki "kept" 3 (Circuit.size (Optimize.run c))

let test_optimize_chain_to_fixed_point () =
  (* X X X X collapses completely (needs iteration). *)
  let c = circuit 1 (List.init 4 (fun _ -> Gate.One (Gate.X, 0))) in
  checki "chain gone" 0 (Circuit.size (Optimize.run c))

let test_optimize_s_sdg_t_tdg () =
  let c =
    circuit 1
      [ Gate.One (Gate.S, 0); Gate.One (Gate.Sdg, 0); Gate.One (Gate.T, 0);
        Gate.One (Gate.Tdg, 0) ]
  in
  checki "all cancel" 0 (Circuit.size (Optimize.run c))

let test_optimize_symmetric_operand_order () =
  let c = circuit 2 [ Gate.Two (Gate.CZ, 0, 1); Gate.Two (Gate.CZ, 1, 0) ] in
  checki "CZ symmetric cancel" 0 (Circuit.size (Optimize.run c))

let test_optimize_preserves_semantics_random () =
  let rng = Rng.create 3 in
  for seed = 0 to 9 do
    (* Random circuits over the rewrite-prone gate set. *)
    let gate k =
      let q = Rng.int rng 4 in
      let q' = (q + 1 + Rng.int rng 3) mod 4 in
      match k mod 6 with
      | 0 -> Gate.One (Gate.H, q)
      | 1 -> Gate.One (Gate.Rz (Rng.float rng 1.), q)
      | 2 -> Gate.Two (Gate.CX, q, q')
      | 3 -> Gate.Two (Gate.SWAP, q, q')
      | 4 -> Gate.One (Gate.X, q)
      | _ -> Gate.Two (Gate.CP (Rng.float rng 1.), q, q')
    in
    let c = circuit 4 (List.init 40 gate) in
    let optimized = Optimize.run c in
    checkb "unitary equivalent" true (equivalent c optimized seed);
    checkb "never grows" true (Circuit.size optimized <= Circuit.size c)
  done

let test_optimize_on_transpiled_circuit () =
  let grid = Grid.make ~rows:2 ~cols:3 in
  let result = transpile grid (Library.qft 6) in
  let optimized = Optimize.run result.physical in
  checkb "still feasible" true (Circuit.is_feasible (Grid.graph grid) optimized);
  checkb "equivalent" true (equivalent result.physical optimized 5);
  checkb "no growth" true
    (Circuit.size optimized <= Circuit.size result.physical)

let optimize_idempotent =
  QCheck.Test.make ~name:"optimize is idempotent" ~count:100
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let gate _ =
        let q = Rng.int rng 3 in
        let q' = (q + 1 + Rng.int rng 2) mod 3 in
        match Rng.int rng 4 with
        | 0 -> Gate.One (Gate.H, q)
        | 1 -> Gate.One (Gate.Rz 0.5, q)
        | 2 -> Gate.Two (Gate.CX, q, q')
        | _ -> Gate.Two (Gate.SWAP, q, q')
      in
      let c = circuit 3 (List.init 20 gate) in
      let once = Optimize.run c in
      Circuit.equal once (Optimize.run once))

(* --------------------------------------------------- Schedule serialization *)

let test_schedule_roundtrip () =
  let s = [ [| (0, 1); (2, 3) |]; [| (1, 2) |] ] in
  (match Schedule.of_string (Schedule.to_string s) with
  | Ok parsed ->
      checkb "roundtrip" true
        (Perm.equal (Schedule.apply ~n:4 s) (Schedule.apply ~n:4 parsed));
      checki "same depth" (Schedule.depth s) (Schedule.depth parsed)
  | Error msg -> Alcotest.failf "parse failed: %s" msg)

let test_schedule_empty_roundtrip () =
  match Schedule.of_string (Schedule.to_string Schedule.empty) with
  | Ok parsed -> checki "empty" 0 (Schedule.depth parsed)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_schedule_parse_errors () =
  checkb "garbage" true (Result.is_error (Schedule.of_string "0-1 x-2"));
  checkb "self swap" true (Result.is_error (Schedule.of_string "3-3"));
  checkb "negative" true (Result.is_error (Schedule.of_string "1--2"))

let test_schedule_of_string_exn () =
  Alcotest.check_raises "exn"
    (Invalid_argument "Schedule.of_string: line 1: bad swap \"junk\"")
    (fun () -> ignore (Schedule.of_string_exn "junk"))

let schedule_roundtrip_property =
  QCheck.Test.make ~name:"router schedules round-trip through text" ~count:50
    QCheck.(pair (int_range 2 5) (int_range 0 100000))
    (fun (side, seed) ->
      let grid = Grid.make ~rows:side ~cols:side in
      let pi =
        Perm.check (Rng.permutation (Rng.create seed) (Grid.size grid))
      in
      let s = route grid pi in
      match Schedule.of_string (Schedule.to_string s) with
      | Ok parsed -> Schedule.realizes ~n:(Grid.size grid) parsed pi
      | Error _ -> false)

(* -------------------------------------------------------- route_partial *)

let test_route_partial_honors_constraints () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let partial =
    Partial_perm.make ~n:16
      [ (Grid.index grid 0 0, Grid.index grid 3 3);
        (Grid.index grid 3 3, Grid.index grid 0 0) ]
  in
  let sched, extension = route_partial grid partial in
  checkb "constraints in extension" true
    (extension.(Grid.index grid 0 0) = Grid.index grid 3 3);
  checkb "schedule realizes extension" true
    (Schedule.realizes ~n:16 sched extension)

let test_route_partial_default_policy_moves_little () =
  (* With one constrained pair, the min-total extension displaces at most
     the qubits on the direct path: unconstrained total displacement equals
     the constrained pair's length (the displaced chain). *)
  let grid = Grid.make ~rows:1 ~cols:6 in
  let partial = Partial_perm.make ~n:6 [ (0, 5) ] in
  let _, extension = route_partial grid partial in
  let unconstrained_cost =
    Partial_perm.total_distance (fun u v -> Grid.manhattan grid u v) partial
      extension
  in
  checkb "cheap completion" true (unconstrained_cost <= 5)

let test_route_partial_policies_differ_but_both_work () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let partial = Partial_perm.make ~n:9 [ (0, 8); (8, 4) ] in
  List.iter
    (fun policy ->
      let sched, extension = route_partial ~policy grid partial in
      checkb "valid extension" true (Perm.is_permutation extension);
      checkb "routed" true (Schedule.realizes ~n:9 sched extension))
    [ Partial_perm.Stay;
      Partial_perm.Greedy_nearest (fun u v -> Grid.manhattan grid u v) ]

(* ------------------------------------------------------ transpile ~place *)

let test_transpile_with_placement () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 17 in
  let c = Library.random_local_two_qubit rng ~grid ~radius:1 ~gates:30 in
  let placed = transpile ~place:true grid c in
  checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) placed);
  (* Placement must not be ignored: initial layout differs from identity
     in general, and the run is still correct. *)
  let psi = Statevector.random_state (Rng.create 1) 9 in
  let out_logical = Statevector.run c psi in
  let placed_in =
    Statevector.permute_qubits psi (Layout.to_phys_array placed.initial)
  in
  let out_phys = Statevector.run placed.physical placed_in in
  let back = Array.init 9 (fun v -> Layout.logical placed.final v) in
  checkb "equivalent" true
    (Statevector.approx_equal out_logical
       (Statevector.permute_qubits out_phys back))

let test_transpile_explicit_initial_wins_over_place () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let c = Circuit.create ~num_qubits:4 [ Gate.Two (Gate.CX, 0, 1) ] in
  let initial = Layout.of_phys_of_logical [| 3; 2; 1; 0 |] in
  let r = transpile ~initial ~place:true grid c in
  checkb "explicit layout respected" true (Layout.equal r.initial initial)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "optimize"
    [
      ( "optimize",
        [
          Alcotest.test_case "double swap" `Quick test_optimize_cancels_double_swap;
          Alcotest.test_case "double cx" `Quick
            test_optimize_cancels_double_cx_same_orientation;
          Alcotest.test_case "flipped cx kept" `Quick test_optimize_keeps_flipped_cx;
          Alcotest.test_case "fuse rotations" `Quick test_optimize_fuses_rotations;
          Alcotest.test_case "fused zero" `Quick test_optimize_fused_zero_vanishes;
          Alcotest.test_case "drop zero rotation" `Quick
            test_optimize_drops_zero_rotation;
          Alcotest.test_case "commutes past disjoint" `Quick
            test_optimize_commutes_past_disjoint;
          Alcotest.test_case "blocked by shared" `Quick
            test_optimize_blocked_by_shared_qubit;
          Alcotest.test_case "fixed point chain" `Quick
            test_optimize_chain_to_fixed_point;
          Alcotest.test_case "s/t inverses" `Quick test_optimize_s_sdg_t_tdg;
          Alcotest.test_case "symmetric operands" `Quick
            test_optimize_symmetric_operand_order;
          Alcotest.test_case "random semantics" `Quick
            test_optimize_preserves_semantics_random;
          Alcotest.test_case "transpiled circuit" `Quick
            test_optimize_on_transpiled_circuit;
          qc optimize_idempotent;
        ] );
      ( "schedule text",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "empty" `Quick test_schedule_empty_roundtrip;
          Alcotest.test_case "errors" `Quick test_schedule_parse_errors;
          Alcotest.test_case "exn" `Quick test_schedule_of_string_exn;
          qc schedule_roundtrip_property;
        ] );
      ( "route_partial",
        [
          Alcotest.test_case "honors constraints" `Quick
            test_route_partial_honors_constraints;
          Alcotest.test_case "cheap completion" `Quick
            test_route_partial_default_policy_moves_little;
          Alcotest.test_case "all policies" `Quick
            test_route_partial_policies_differ_but_both_work;
        ] );
      ( "placement transpile",
        [
          Alcotest.test_case "place:true" `Quick test_transpile_with_placement;
          Alcotest.test_case "explicit wins" `Quick
            test_transpile_explicit_initial_wins_over_place;
        ] );
    ]
