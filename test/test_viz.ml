(* Tests for Viz, statevector sampling, the transpile trace hook, and the
   fixed-band discovery ablation switch. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* -------------------------------------------------------------------- Viz *)

let test_grid_ascii_shape () =
  let grid = Grid.make ~rows:2 ~cols:3 in
  let text = Viz.grid_ascii grid in
  checkb "vertices" true (contains text "o---o---o");
  (* 2 vertex rows + 1 edge row *)
  checki "lines" 3 (List.length (String.split_on_char '\n' (String.trim text)))

let test_permutation_ascii_marks_displaced () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let text = Viz.permutation_ascii grid (Perm.transposition 4 0 3) in
  checkb "star on displaced" true (contains text "3*");
  checkb "no star on fixed" true (contains text "1 ")

let test_layer_ascii_draws_swaps () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let horizontal = Viz.layer_ascii grid [| (0, 1) |] in
  checkb "horizontal swap" true (contains horizontal "o===o");
  let vertical = Viz.layer_ascii grid [| (0, 2) |] in
  checkb "vertical swap" true (contains vertical "#")

let test_schedule_ascii_counts_layers () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let sched = [ [| (0, 1) |]; [| (1, 3) |] ] in
  let text = Viz.schedule_ascii grid sched in
  checkb "layer 0" true (contains text "layer 0:");
  checkb "layer 1" true (contains text "layer 1:")

let test_occupancy_counts () =
  let grid = Grid.make ~rows:1 ~cols:3 in
  let sched = [ [| (0, 1) |]; [| (1, 2) |] ] in
  let text = Viz.occupancy_ascii grid sched in
  (* vertex 1 participates twice, 0 and 2 once. *)
  checkb "pattern" true (contains text "1   2   1")

let test_graph_dot_wellformed () =
  let text = Viz.graph_dot (Graph.path 3) in
  checkb "header" true (contains text "graph coupling {");
  checkb "edge" true (contains text "0 -- 1;");
  checkb "closed" true (contains text "}")

let test_schedule_dot_colors_used_edges () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let sched = [ [| (0, 1) |] ] in
  let text = Viz.schedule_dot grid sched in
  checkb "used edge colored" true (contains text "0 -- 1 [color=red");
  checkb "unused edge gray" true (contains text "color=gray80")

(* --------------------------------------------------------------- Sampling *)

let test_sample_basis_state () =
  let rng = Rng.create 1 in
  let s = Statevector.basis_state 3 5 in
  for _ = 1 to 20 do
    checki "deterministic outcome" 5 (Statevector.sample rng s)
  done

let test_sample_counts_sum () =
  let rng = Rng.create 2 in
  let s = Statevector.run_from_zero (Library.ghz 3) in
  let counts = Statevector.sample_counts rng s ~shots:200 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  checki "all shots accounted" 200 total;
  (* GHZ: only |000> and |111> appear. *)
  List.iter
    (fun (k, _) -> checkb "support" true (k = 0 || k = 7))
    counts;
  checki "both outcomes seen" 2 (List.length counts)

let test_sample_counts_roughly_balanced () =
  let rng = Rng.create 3 in
  let s = Statevector.run_from_zero (Library.ghz 2) in
  let counts = Statevector.sample_counts rng s ~shots:1000 in
  List.iter
    (fun (_, c) -> checkb "within 40-60%" true (c > 400 && c < 600))
    counts

(* ------------------------------------------------------------- Trace hook *)

let test_on_route_observes_everything () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  (* No final reversal: the logical circuit then has no SWAPs of its own,
     so every SWAP in the output is router-inserted. *)
  let c = Library.qft_no_reversal 9 in
  let observed = ref 0 in
  let swap_total = ref 0 in
  let result =
    Transpile.run_grid
      ~on_route:(fun rho sched ->
        incr observed;
        checkb "schedule realizes rho" true (Schedule.realizes ~n:9 sched rho);
        swap_total := !swap_total + Schedule.size sched)
      grid c
  in
  checkb "router was called" true (!observed > 0);
  checki "hook saw every swap" (Circuit.swap_count result.physical) !swap_total

let test_on_route_silent_when_feasible () =
  let grid = Grid.make ~rows:2 ~cols:3 in
  let c = Library.ising_trotter_2d grid ~steps:1 ~theta:0.1 in
  let observed = ref 0 in
  ignore (Transpile.run_grid ~on_route:(fun _ _ -> incr observed) grid c);
  checki "never called" 0 !observed

(* ------------------------------------------------------------- Fixed band *)

let test_fixed_band_routes_correctly () =
  let rng = Rng.create 4 in
  let grid = Grid.make ~rows:8 ~cols:8 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 64) in
    List.iter
      (fun h ->
        let sched =
          Local_grid_route.route
            ~discovery:(Local_grid_route.Fixed_band h) grid pi
        in
        checkb
          (Printf.sprintf "band %d realizes" h)
          true
          (Schedule.realizes ~n:64 sched pi))
      [ 1; 2; 4; 8 ]
  done

let test_fixed_band_partitions () =
  let rng = Rng.create 5 in
  let grid = Grid.make ~rows:6 ~cols:5 in
  let pi = Perm.check (Rng.permutation rng 30) in
  let cg = Column_graph.build grid pi in
  let matchings =
    Local_grid_route.discover_matchings (Local_grid_route.Fixed_band 3) cg
  in
  checki "m matchings" 6 (List.length matchings);
  checkb "valid partition" true
    (Decompose.validate ~nl:5 ~nr:5 ~edges:(Column_graph.hk_edges cg) matchings)

let test_fixed_band_one_equals_doubling_start () =
  (* Band height 1 = the paper's doubling schedule from w = 0: identical
     discovery on a row-local permutation. *)
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pi = Qroute.Grid_perm.of_coord_map grid (fun (r, c) -> (r, (c + 1) mod 4)) in
  let cg = Column_graph.build grid pi in
  let a = Local_grid_route.discover_matchings Local_grid_route.Doubling cg in
  let b =
    Local_grid_route.discover_matchings (Local_grid_route.Fixed_band 1) cg
  in
  checkb "same matchings" true (a = b)

let test_fixed_band_rejects_nonpositive () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let cg = Column_graph.build grid (Perm.identity 4) in
  Alcotest.check_raises "zero band"
    (Invalid_argument "Local_grid_route: band height must be positive")
    (fun () ->
      ignore
        (Local_grid_route.discover_matchings (Local_grid_route.Fixed_band 0) cg))

let () =
  Alcotest.run "viz_and_hooks"
    [
      ( "viz",
        [
          Alcotest.test_case "grid ascii" `Quick test_grid_ascii_shape;
          Alcotest.test_case "permutation ascii" `Quick
            test_permutation_ascii_marks_displaced;
          Alcotest.test_case "layer ascii" `Quick test_layer_ascii_draws_swaps;
          Alcotest.test_case "schedule ascii" `Quick
            test_schedule_ascii_counts_layers;
          Alcotest.test_case "occupancy" `Quick test_occupancy_counts;
          Alcotest.test_case "graph dot" `Quick test_graph_dot_wellformed;
          Alcotest.test_case "schedule dot" `Quick
            test_schedule_dot_colors_used_edges;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "basis state" `Quick test_sample_basis_state;
          Alcotest.test_case "counts sum" `Quick test_sample_counts_sum;
          Alcotest.test_case "balanced" `Quick test_sample_counts_roughly_balanced;
        ] );
      ( "trace hook",
        [
          Alcotest.test_case "observes" `Quick test_on_route_observes_everything;
          Alcotest.test_case "silent when feasible" `Quick
            test_on_route_silent_when_feasible;
        ] );
      ( "fixed band",
        [
          Alcotest.test_case "routes" `Quick test_fixed_band_routes_correctly;
          Alcotest.test_case "partitions" `Quick test_fixed_band_partitions;
          Alcotest.test_case "band1 = doubling" `Quick
            test_fixed_band_one_equals_doubling_start;
          Alcotest.test_case "rejects zero" `Quick test_fixed_band_rejects_nonpositive;
        ] );
    ]
