(* Domain-safety tests for the multicore serving stack (DESIGN.md §13):
   metrics under contention, per-domain trace buffers, once-only logging
   across domains, the locked plan cache hammered from several domains,
   the worker pool's ordering/shedding/shutdown contracts, pool-mode
   route_batch equivalence, and the determinism of per-domain fault
   streams.  Everything here must hold on a single-core box too — the
   schedulers just interleave more coarsely. *)

module Json = Qr_obs.Json
module Metrics = Qr_obs.Metrics
module Trace = Qr_obs.Trace
module Log = Qr_obs.Log
module Fault = Qr_fault.Fault
module Rng = Qr_util.Rng
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Router_config = Qr_route.Router_config
module P = Qr_server.Protocol
module Plan_cache = Qr_server.Plan_cache
module Session = Qr_server.Session
module Worker_pool = Qr_server.Worker_pool

let () = Qr_token.Engines.register ()

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let spawn_all fs = List.map Domain.spawn fs
let join_all ds = List.map Domain.join ds

(* ------------------------------------------------------------- metrics *)

let test_counter_contention () =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
  @@ fun () ->
  let c = Metrics.counter ~help:"contended" "par_test_counter" in
  let domains = 4 and per_domain = 2000 in
  ignore
    (join_all
       (spawn_all
          (List.init domains (fun _ () ->
               for _ = 1 to per_domain do
                 Metrics.incr c
               done))));
  checki "no lost increments" (domains * per_domain) (Metrics.value c)

let test_histogram_contention () =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
  @@ fun () ->
  let h = Metrics.histogram ~help:"contended" "par_test_histogram" in
  let domains = 4 and per_domain = 500 in
  ignore
    (join_all
       (spawn_all
          (List.init domains (fun d () ->
               for i = 1 to per_domain do
                 Metrics.observe h (float_of_int ((d * per_domain) + i))
               done))));
  checki "no lost observations" (domains * per_domain)
    (Metrics.histogram_count h);
  (* Every observation lands in the +Inf bucket, whatever its value. *)
  let total = domains * per_domain in
  let sum_expected =
    float_of_int (total * (total + 1)) /. 2.
  in
  checkb "sum consistent" true
    (abs_float (Metrics.histogram_sum h -. sum_expected) < 1e-6)

(* --------------------------------------------------------------- trace *)

let test_trace_per_domain_merge () =
  Trace.start ();
  let spans =
    Fun.protect ~finally:(fun () -> ignore (Trace.stop ()))
    @@ fun () ->
    Trace.with_span "main_span" (fun () -> ());
    ignore
      (join_all
         (spawn_all
            (List.init 2 (fun d () ->
                 Trace.set_trace_id (Some (Printf.sprintf "tid-%d" d));
                 Trace.with_span (Printf.sprintf "domain_span_%d" d)
                   (fun () -> ())))));
    Trace.stop ()
  in
  let names = List.map (fun s -> s.Trace.name) spans in
  List.iter
    (fun expected ->
      checkb (expected ^ " merged") true (List.mem expected names))
    [ "main_span"; "domain_span_0"; "domain_span_1" ];
  (* Each worker's trace id stamped its own spans only. *)
  let tid_of s =
    match List.assoc_opt "trace_id" s.Trace.attrs with
    | Some (Trace.String id) -> Some id
    | _ -> None
  in
  List.iter
    (fun s ->
      match s.Trace.name with
      | "main_span" -> checkb "main unstamped" true (tid_of s = None)
      | "domain_span_0" -> checkb "d0 stamped" true (tid_of s = Some "tid-0")
      | "domain_span_1" -> checkb "d1 stamped" true (tid_of s = Some "tid-1")
      | _ -> ())
    spans

(* ----------------------------------------------------------------- log *)

let test_warn_once_across_domains () =
  let lines = ref [] in
  let lines_mutex = Mutex.create () in
  Log.reset_once ();
  Log.set_sink
    (Some
       (fun line ->
         Mutex.lock lines_mutex;
         lines := line :: !lines;
         Mutex.unlock lines_mutex));
  Fun.protect ~finally:(fun () ->
      Log.set_sink None;
      Log.reset_once ())
  @@ fun () ->
  ignore
    (join_all
       (spawn_all
          (List.init 4 (fun _ () ->
               for _ = 1 to 50 do
                 Log.warn_once ~key:"par-once" "deduped warning" []
               done))));
  checki "warned exactly once across domains" 1 (List.length !lines)

(* ---------------------------------------------------------- plan cache *)

(* Hammer one cache from several domains with a mixed find/add/remove
   workload over a key space four times the capacity.  The invariants
   that must survive any interleaving: a hit returns exactly the value
   stored under that key (never another key's schedule), hits + misses
   equals the number of finds, and the LRU bound holds. *)
let test_plan_cache_hammer () =
  let capacity = 8 and key_space = 32 in
  let grid = Grid.make ~rows:6 ~cols:6 in
  let n = Grid.size grid in
  let cache = Plan_cache.create ~capacity () in
  let perm_of j =
    let a = Array.init n (fun q -> q) in
    a.(j) <- j + 1;
    a.(j + 1) <- j;
    Perm.check a
  in
  let key_of j =
    Plan_cache.key ~grid ~pi:(perm_of j) ~engine:"local"
      ~config:Router_config.default
  in
  let keys = Array.init key_space key_of in
  let sched_of j = [ [| (j, j + 1) |] ] in
  let domains = 4 and iterations = 500 in
  let results =
    join_all
      (spawn_all
         (List.init domains (fun d () ->
              let finds = ref 0 and bad = ref 0 in
              for i = 0 to iterations - 1 do
                (* Two-thirds of the traffic hammers a hot set smaller
                   than the capacity (guaranteed hits), the rest sweeps
                   the whole key space (guaranteed evictions). *)
                let j =
                  if i mod 3 < 2 then i mod 4
                  else ((d * 7) + (i * 13)) mod key_space
                in
                (match i mod 11 with
                | 10 -> Plan_cache.remove cache keys.(j)
                | _ -> (
                    incr finds;
                    match Plan_cache.find cache keys.(j) with
                    | Some sched ->
                        if sched <> sched_of j then incr bad
                    | None -> Plan_cache.add cache keys.(j) (sched_of j)))
              done;
              (!finds, !bad))))
  in
  let total_finds = List.fold_left (fun acc (f, _) -> acc + f) 0 results in
  let total_bad = List.fold_left (fun acc (_, b) -> acc + b) 0 results in
  checki "no cross-key value leaks" 0 total_bad;
  checki "hits + misses = finds" total_finds
    (Plan_cache.hits cache + Plan_cache.misses cache);
  checkb "LRU bound holds" true (Plan_cache.length cache <= capacity);
  checkb "some hits happened" true (Plan_cache.hits cache > 0);
  checkb "some evictions happened" true (Plan_cache.evictions cache > 0)

(* ----------------------------------------------------------- worker pool *)

let test_pool_map_tasks_order () =
  let pool = Worker_pool.create ~workers:4 () in
  Fun.protect ~finally:(fun () -> Worker_pool.shutdown pool)
  @@ fun () ->
  let items = List.init 50 (fun i -> i) in
  let squares = Worker_pool.map_tasks pool (fun i -> i * i) items in
  checkb "results in submission order" true
    (squares = List.map (fun i -> i * i) items);
  (* The caller is not a worker; a task may run either on a worker
     domain (stamped with its index) or on the caller itself, which
     helps while awaiting — so [None] is legitimate for tasks. *)
  checkb "caller has no worker index" true (Worker_pool.worker_index () = None);
  let indices =
    Worker_pool.map_tasks pool
      (fun _ -> Worker_pool.worker_index ())
      [ (); (); () ]
  in
  checkb "task worker indices in range" true
    (List.for_all
       (function Some k -> k >= 0 && k < 4 | None -> true)
       indices);
  (* Jobs, unlike tasks, are only ever popped by worker domains, so the
     index stamp is deterministic there. *)
  let idx = Atomic.make (-1) in
  let m = Mutex.create () and c = Condition.create () in
  let finished = ref false in
  checkb "job accepted" true
    (Worker_pool.submit pool (fun () ->
         (match Worker_pool.worker_index () with
         | Some k -> Atomic.set idx k
         | None -> ());
         Mutex.lock m;
         finished := true;
         Condition.signal c;
         Mutex.unlock m));
  Mutex.lock m;
  while not !finished do
    Condition.wait c m
  done;
  Mutex.unlock m;
  checkb "jobs see a worker index" true
    (let k = Atomic.get idx in
     k >= 0 && k < 4)

exception Task_boom

let test_pool_map_tasks_exception () =
  let pool = Worker_pool.create ~workers:2 () in
  Fun.protect ~finally:(fun () -> Worker_pool.shutdown pool)
  @@ fun () ->
  (match
     Worker_pool.map_tasks pool
       (fun i -> if i = 3 then raise Task_boom else i)
       [ 0; 1; 2; 3; 4 ]
   with
  | _ -> Alcotest.fail "expected the task's exception to propagate"
  | exception Task_boom -> ());
  (* The pool survives a failed batch. *)
  checkb "pool still works" true
    (Worker_pool.map_tasks pool (fun i -> i + 1) [ 1; 2 ] = [ 2; 3 ])

let test_pool_submit_sheds_when_full () =
  let gate = Mutex.create () and gate_open = Condition.create () in
  let opened = ref false in
  let pool = Worker_pool.create ~workers:1 ~queue_bound:2 () in
  Fun.protect ~finally:(fun () -> Worker_pool.shutdown pool)
  @@ fun () ->
  (* Park the lone worker on a gate, so further jobs pile up in the
     bounded queue. *)
  let started = Atomic.make false in
  let blocker () =
    Atomic.set started true;
    Mutex.lock gate;
    while not !opened do
      Condition.wait gate_open gate
    done;
    Mutex.unlock gate
  in
  checkb "blocker accepted" true (Worker_pool.submit pool blocker);
  (* Wait until the worker has actually taken the blocker job off the
     queue, so the bound below is exercised deterministically. *)
  let rec settle tries =
    if (not (Atomic.get started)) && tries > 0 then (
      Unix.sleepf 0.01;
      settle (tries - 1))
  in
  settle 500;
  checkb "worker picked up the blocker" true (Atomic.get started);
  checkb "first queued job accepted" true
    (Worker_pool.submit pool (fun () -> ()));
  checkb "second queued job accepted" true
    (Worker_pool.submit pool (fun () -> ()));
  checkb "bound reached: submit refuses" false
    (Worker_pool.submit pool (fun () -> ()));
  Mutex.lock gate;
  opened := true;
  Condition.broadcast gate_open;
  Mutex.unlock gate

let test_pool_graceful_shutdown () =
  let ran = Atomic.make 0 in
  let pool = Worker_pool.create ~workers:2 () in
  let accepted = ref 0 in
  for _ = 1 to 20 do
    if Worker_pool.submit pool (fun () -> Atomic.incr ran) then incr accepted
  done;
  Worker_pool.shutdown pool;
  checki "every accepted job ran before shutdown returned" !accepted
    (Atomic.get ran);
  checkb "submit after shutdown refuses" false
    (Worker_pool.submit pool (fun () -> ()));
  (* Idempotent. *)
  Worker_pool.shutdown pool

(* --------------------------------------------------- pool-mode sessions *)

(* The same route_batch request answered by a plain session and by a
   pool-backed one must agree on everything but timing. *)
let test_route_batch_pool_equals_serial () =
  let line =
    {|{"id": 1, "method": "route_batch", "params": {"grid": {"rows": 3, "cols": 3}, "perms": [[8,7,6,5,4,3,2,1,0], [1,0,3,2,5,4,7,6,8], [2,0,1,5,3,4,8,6,7]], "engine": "local"}}|}
  in
  let result_of response =
    match P.response_result (Json.of_string_exn response) with
    | Ok result -> result
    | Error err -> Alcotest.failf "error response: %s" err.P.message
  in
  let serial = result_of (Session.handle_line (Session.create ()) line) in
  let pool = Worker_pool.create ~workers:2 () in
  let pooled =
    Fun.protect ~finally:(fun () -> Worker_pool.shutdown pool)
    @@ fun () -> result_of (Session.handle_line (Session.create ~pool ()) line)
  in
  let member name doc =
    match Json.member name doc with
    | Some v -> v
    | None -> Alcotest.failf "missing %s in %s" name (Json.to_string doc)
  in
  List.iter
    (fun field ->
      Alcotest.check Alcotest.string field
        (Json.to_string (member field serial))
        (Json.to_string (member field pooled)))
    [ "engine"; "schedules"; "cached"; "completed" ]

(* -------------------------------------------------------- fault streams *)

let qc = QCheck_alcotest.to_alcotest

let draws rng k = List.init k (fun _ -> Rng.next_int64 rng)

let prop_fault_streams_deterministic =
  QCheck.Test.make ~name:"derive_stream deterministic per (seed, domain)"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_bound 8))
    (fun (seed, domain) ->
      draws (Fault.derive_stream ~seed ~domain) 5
      = draws (Fault.derive_stream ~seed ~domain) 5)

let prop_fault_streams_distinct =
  QCheck.Test.make ~name:"derive_stream distinct across domain indices"
    ~count:100
    QCheck.(triple (int_bound 100_000) (int_bound 8) (int_bound 8))
    (fun (seed, d1, d2) ->
      QCheck.assume (d1 <> d2);
      draws (Fault.derive_stream ~seed ~domain:d1) 5
      <> draws (Fault.derive_stream ~seed ~domain:d2) 5)

let test_fault_stream_domain_zero_is_legacy () =
  (* Domain 0 must draw exactly the single-domain sequence, so armed
     chaos plans replay identically under [--workers 1]. *)
  checkb "domain 0 = Rng.create seed" true
    (draws (Fault.derive_stream ~seed:1234 ~domain:0) 8
    = draws (Rng.create 1234) 8)

(* ------------------------------------------------------------------ run *)

let () =
  Alcotest.run "qr_parallel"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter contention" `Quick
            test_counter_contention;
          Alcotest.test_case "histogram contention" `Quick
            test_histogram_contention;
        ] );
      ( "trace",
        [
          Alcotest.test_case "per-domain merge" `Quick
            test_trace_per_domain_merge;
        ] );
      ( "log",
        [
          Alcotest.test_case "warn_once across domains" `Quick
            test_warn_once_across_domains;
        ] );
      ( "plan_cache",
        [ Alcotest.test_case "concurrent hammer" `Quick test_plan_cache_hammer ]
      );
      ( "worker_pool",
        [
          Alcotest.test_case "map_tasks order" `Quick
            test_pool_map_tasks_order;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_map_tasks_exception;
          Alcotest.test_case "bounded queue sheds" `Quick
            test_pool_submit_sheds_when_full;
          Alcotest.test_case "graceful shutdown" `Quick
            test_pool_graceful_shutdown;
        ] );
      ( "session",
        [
          Alcotest.test_case "route_batch pool = serial" `Quick
            test_route_batch_pool_equals_serial;
        ] );
      ( "fault_streams",
        [
          qc prop_fault_streams_deterministic;
          qc prop_fault_streams_distinct;
          Alcotest.test_case "domain 0 is the legacy stream" `Quick
            test_fault_stream_domain_zero_is_legacy;
        ] );
    ]
