(* Tests for the robustness layer: the Qr_fault injection substrate, the
   hardened I/O helpers, verified routing with graceful degradation, the
   self-healing session, client retries, and a battery of seeded chaos
   scenarios driven through the real serving loop over a socketpair. *)

module Json = Qr_obs.Json
module Metrics = Qr_obs.Metrics
module Trace = Qr_obs.Trace
module Trace_context = Qr_obs.Trace_context
module Log = Qr_obs.Log
module Rng = Qr_util.Rng
module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Schedule = Qr_route.Schedule
module Router_intf = Qr_route.Router_intf
module Router_registry = Qr_route.Router_registry
module Fault = Qr_fault.Fault
module Io_util = Qr_server.Io_util
module P = Qr_server.Protocol
module Plan_cache = Qr_server.Plan_cache
module Session = Qr_server.Session
module Server = Qr_server.Server
module Client = Qr_server.Client

let () = Qr_token.Engines.register ()

(* Chaos plans make servers write into dead peers on purpose; the EPIPE
   must arrive as an errno, not a signal. *)
let () = ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let with_clean_sinks f =
  let finally () =
    ignore (Trace.stop ());
    Metrics.disable ();
    Metrics.reset ()
  in
  Fun.protect ~finally f

(* Every test disarms on the way out so suites can run in any order. *)
let with_plan ?(seed = 0) plan f =
  (match Fault.parse_plan plan with
  | Ok specs -> Fault.arm ~seed specs
  | Error msg -> Alcotest.failf "bad test plan %S: %s" plan msg);
  Fun.protect ~finally:Fault.disarm f

let counter name =
  match Metrics.find_counter name with
  | Some c -> Metrics.value c
  | None -> Alcotest.failf "counter %s not registered" name

(* ------------------------------------------------------------- plan DSL *)

let test_parse_plan () =
  let ok text =
    match Fault.parse_plan text with
    | Ok specs -> specs
    | Error msg -> Alcotest.failf "rejected %S: %s" text msg
  in
  (match ok "server.write=raise" with
  | [ { Fault.point = "server.write"; action = Fault.Raise; prob; max_fires } ]
    ->
      checkb "default prob" true (prob = 1.0);
      checkb "default unlimited" true (max_fires = None)
  | _ -> Alcotest.fail "one raise spec expected");
  (match ok "cache.find=corrupt@0.25#3" with
  | [ { Fault.action = Fault.Corrupt; prob; max_fires; _ } ] ->
      checkb "prob parsed" true (prob = 0.25);
      checkb "count parsed" true (max_fires = Some 3)
  | _ -> Alcotest.fail "corrupt spec expected");
  (* The two suffixes compose in either order. *)
  (match ok "p=raise#2@0.5" with
  | [ { Fault.prob; max_fires; _ } ] ->
      checkb "suffix order" true (prob = 0.5 && max_fires = Some 2)
  | _ -> Alcotest.fail "suffixes in either order");
  (match ok "a=raise(eintr); b=delay(40) ; c=truncate" with
  | [ a; b; c ] ->
      checkb "eintr errno" true (a.Fault.action = Fault.Raise_errno Unix.EINTR);
      checkb "delay ms" true (b.Fault.action = Fault.Delay_ms 40);
      checkb "truncate" true (c.Fault.action = Fault.Truncate)
  | _ -> Alcotest.fail "three specs expected");
  checkb "empty plan" true (Fault.parse_plan "" = Ok []);
  let rejects text = Result.is_error (Fault.parse_plan text) in
  checkb "missing =" true (rejects "serverwrite");
  checkb "empty point" true (rejects "=raise");
  checkb "unknown action" true (rejects "p=explode");
  checkb "prob zero" true (rejects "p=raise@0");
  checkb "prob above one" true (rejects "p=raise@1.5");
  checkb "count zero" true (rejects "p=raise#0");
  checkb "negative delay" true (rejects "p=delay(-1)")

let test_plan_roundtrip () =
  List.iter
    (fun text ->
      match Fault.parse_plan text with
      | Error msg -> Alcotest.failf "no parse for %S: %s" text msg
      | Ok specs -> (
          checks "canonical text" text (Fault.to_string specs);
          match Fault.parse_plan (Fault.to_string specs) with
          | Ok again -> checkb "round-trip" true (again = specs)
          | Error msg -> Alcotest.failf "no re-parse: %s" msg))
    [
      "server.write=raise";
      "engine.plan=raise@0.3;cache.find=corrupt#2";
      "server.read=raise(eintr)#5;io=truncate@0.5;x=delay(10)";
      "p=raise(epipe);q=raise(econnreset)";
    ]

(* ----------------------------------------------------------- primitives *)

let test_disarmed_noops () =
  Fault.disarm ();
  checkb "not armed" true (not (Fault.armed ()));
  checki "point passthrough" 41 (Fault.point "x" ~f:(fun () -> 41));
  checki "corrupt passthrough" 7 (Fault.corrupt "x" (fun v -> v * 2) 7);
  checki "truncate passthrough" 100 (Fault.truncate "x" 100);
  checki "no fires" 0 (Fault.fires "x")

let test_point_raises () =
  with_plan "boom=raise" @@ fun () ->
  checkb "raises Injected" true
    (match Fault.point "boom" ~f:(fun () -> 0) with
    | _ -> false
    | exception Fault.Injected "boom" -> true);
  checkb "other points untouched" true
    (Fault.point "calm" ~f:(fun () -> true))

let test_point_errno () =
  with_plan "io=raise(epipe)" @@ fun () ->
  match Fault.point "io" ~f:(fun () -> 0) with
  | _ -> Alcotest.fail "expected Unix_error"
  | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()

let test_fire_count_caps () =
  with_plan "p=raise#2" @@ fun () ->
  let attempt () =
    match Fault.point "p" ~f:(fun () -> `Ran) with
    | v -> v
    | exception Fault.Injected _ -> `Injected
  in
  checkb "fires twice then stops" true
    (attempt () = `Injected && attempt () = `Injected && attempt () = `Ran
    && attempt () = `Ran);
  checki "tally" 2 (Fault.fires "p")

let test_action_applicability () =
  (* A truncate spec must not fire (or consume draws) at Fault.point, and
     vice versa — each helper only sees its own action kinds. *)
  with_plan "p=truncate#1;p=raise#1" @@ fun () ->
  (match Fault.point "p" ~f:(fun () -> ()) with
  | () -> Alcotest.fail "raise spec must fire at the point helper"
  | exception Fault.Injected _ -> ());
  checkb "truncate spec still live for the truncate helper" true
    (Fault.truncate "p" 1000 < 1000);
  checki "both fired" 2 (Fault.fires "p")

let test_truncate_bounds () =
  with_plan "w=truncate" @@ fun () ->
  for len = 2 to 64 do
    let t = Fault.truncate "w" len in
    checkb (Printf.sprintf "1 <= t < %d" len) true (t >= 1 && t < len)
  done;
  checki "len 1 passes through" 1 (Fault.truncate "w" 1);
  checki "len 0 passes through" 0 (Fault.truncate "w" 0)

let test_corrupt_applies_mangler () =
  with_plan "c=corrupt#1" @@ fun () ->
  checki "mangled once" 20 (Fault.corrupt "c" (fun v -> v * 2) 10);
  checki "then passthrough" 10 (Fault.corrupt "c" (fun v -> v * 2) 10)

let test_probability_deterministic () =
  let draw seed =
    (match Fault.parse_plan "p=raise@0.5" with
    | Ok specs -> Fault.arm ~seed specs
    | Error msg -> Alcotest.failf "bad plan: %s" msg);
    let pattern =
      List.init 64 (fun _ ->
          match Fault.point "p" ~f:(fun () -> false) with
          | v -> v
          | exception Fault.Injected _ -> true)
    in
    Fault.disarm ();
    pattern
  in
  let a = draw 42 and b = draw 42 and c = draw 43 in
  checkb "same seed, same firing pattern" true (a = b);
  checkb "seed varies the pattern" true (a <> c);
  checkb "roughly half fire" true
    (let fired = List.length (List.filter Fun.id a) in
     fired > 16 && fired < 48)

let test_arm_from_env () =
  let finally () =
    Unix.putenv "QR_FAULTS" "";
    Unix.putenv "QR_FAULTS_SEED" "";
    Fault.disarm ()
  in
  Fun.protect ~finally @@ fun () ->
  Unix.putenv "QR_FAULTS" "";
  checkb "empty env arms nothing" true (Fault.arm_from_env () = Ok false);
  Unix.putenv "QR_FAULTS" "p=raise#1";
  Unix.putenv "QR_FAULTS_SEED" "7";
  (match Fault.arm_from_env () with
  | Ok true -> checkb "armed" true (Fault.armed ())
  | other ->
      Alcotest.failf "expected Ok true, got %s"
        (match other with
        | Ok false -> "Ok false"
        | Error m -> "Error " ^ m
        | Ok true -> assert false));
  Unix.putenv "QR_FAULTS" "p=explode";
  checkb "bad plan rejected" true (Result.is_error (Fault.arm_from_env ()));
  Unix.putenv "QR_FAULTS" "p=raise";
  Unix.putenv "QR_FAULTS_SEED" "many";
  checkb "bad seed rejected" true (Result.is_error (Fault.arm_from_env ()))

(* ----------------------------------------------------------- hardened IO *)

let socketpair () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0

let drain fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k ->
        Buffer.add_subbytes buf chunk 0 k;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let test_write_all_torn_writes () =
  (* Truncate faults shorten every attempted write; the loop must still
     deliver the full payload, byte-identical. *)
  let a, b = socketpair () in
  let payload = String.init 8192 (fun i -> Char.chr (i mod 251)) in
  with_plan "w=truncate" (fun () ->
      checkb "write completes" true
        (Io_util.write_all ~fault:"w" a payload = Ok ());
      checkb "faults actually fired" true (Fault.fires "w" > 0));
  Unix.close a;
  let got = drain b in
  Unix.close b;
  checkb "payload intact" true (got = payload)

let test_write_all_eintr_storm () =
  let a, b = socketpair () in
  with_plan "w=raise(eintr)#5" (fun () ->
      checkb "write survives the storm" true
        (Io_util.write_all ~fault:"w" a "hello\n" = Ok ());
      checki "five interrupts" 5 (Fault.fires "w"));
  Unix.close a;
  checks "payload intact" "hello\n" (drain b);
  Unix.close b

let test_write_all_real_epipe () =
  (* A genuinely dead peer: close the other end, then write enough to
     defeat kernel buffering.  The error must come back as a value. *)
  let a, b = socketpair () in
  Unix.close b;
  let payload = String.make (1 lsl 20) 'x' in
  let result = Io_util.write_all a payload in
  Unix.close a;
  checkb "peer gone is Error `Closed" true (result = Error `Closed)

let test_write_all_injected_epipe () =
  let a, b = socketpair () in
  with_plan "w=raise(epipe)#1" (fun () ->
      checkb "injected epipe is Error `Closed" true
        (Io_util.write_all ~fault:"w" a "data" = Error `Closed));
  Unix.close a;
  Unix.close b

let test_read_chunk_eintr_and_reset () =
  let a, b = socketpair () in
  ignore (Unix.write_substring a "ping" 0 4);
  let buf = Bytes.create 64 in
  with_plan "r=raise(eintr)#3" (fun () ->
      (match Io_util.read_chunk ~fault:"r" b buf with
      | Io_util.Read 4 -> checks "data" "ping" (Bytes.sub_string buf 0 4)
      | _ -> Alcotest.fail "expected Read 4 after the interrupts");
      checki "three interrupts retried" 3 (Fault.fires "r"));
  with_plan "r=raise(econnreset)#1" (fun () ->
      checkb "injected reset is Closed" true
        (Io_util.read_chunk ~fault:"r" b buf = Io_util.Closed));
  Unix.close a;
  checkb "orderly eof" true (Io_util.read_chunk b buf = Io_util.Eof);
  Unix.close b

let test_read_chunk_eagain () =
  (* EAGAIN/EWOULDBLOCK on a read is a {e state} of a nonblocking fd,
     not a transient to spin through: the old retry loop burned a whole
     core re-reading an idle descriptor.  read_chunk must surface
     Would_block (once per kernel report — one fire, not a retry storm)
     so the event loop can park the connection until poll(2) says
     readable. *)
  let a, b = socketpair () in
  ignore (Unix.write_substring a "pong" 0 4);
  let buf = Bytes.create 64 in
  with_plan "r=raise(eagain)#2" (fun () ->
      checkb "wouldblock surfaces" true
        (Io_util.read_chunk ~fault:"r" b buf = Io_util.Would_block);
      checki "one report, one fire (no spin)" 1 (Fault.fires "r");
      checkb "second wouldblock surfaces" true
        (Io_util.read_chunk ~fault:"r" b buf = Io_util.Would_block);
      (* Plan exhausted: the buffered bytes come through untouched. *)
      match Io_util.read_chunk ~fault:"r" b buf with
      | Io_util.Read 4 -> checks "data" "pong" (Bytes.sub_string buf 0 4)
      | _ -> Alcotest.fail "expected Read 4 once the plan is spent");
  (* A real (not injected) EAGAIN on a genuinely nonblocking fd. *)
  Unix.set_nonblock b;
  checkb "kernel wouldblock surfaces" true
    (Io_util.read_chunk b buf = Io_util.Would_block);
  Unix.clear_nonblock b;
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------ verified routing *)

(* A deliberately broken engine: always emits a single non-adjacent swap,
   so Schedule.is_valid fails on any grid larger than 1x2.  Registered
   once so fallback chains can also be pointed at real engines. *)
let () =
  try
    Router_registry.register
      {
        Router_intf.name = "evil";
        capabilities =
          {
            Router_intf.grid_only = false;
            supports_transpose = false;
            supports_partial = false;
          };
        plan =
          (fun _ _ input ->
            Router_intf.Ready [ [| (0, Router_intf.input_size input - 1) |] ]);
        execute = Router_intf.execute_plan;
      }
  with Invalid_argument _ -> ()

let grid3 = Grid.make ~rows:3 ~cols:3
let rev9 = Perm.check [| 8; 7; 6; 5; 4; 3; 2; 1; 0 |]

let test_validate () =
  let input = Router_intf.Grid_input (grid3, rev9) in
  let good = Router_intf.route_grid (Router_registry.get "local") grid3 rev9 in
  checkb "good schedule validates" true
    (Router_registry.validate input good = Ok ());
  (match Router_registry.validate input [ [| (0, 8) |] ] with
  | Error reason -> checkb "invalid layer reported" true (reason <> "")
  | Ok () -> Alcotest.fail "non-adjacent swap must not validate");
  match Router_registry.validate input [] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty schedule does not realize a reversal"

let test_verified_degrades_bad_engine () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let failures0 = Router_registry.verify_failures () in
  let degraded0 = Router_registry.degradations () in
  let v = Router_registry.verified (Router_registry.get "evil") in
  checks "wrapper keeps the name" "evil" v.Router_intf.name;
  let sched = Router_intf.route_grid v grid3 rev9 in
  checkb "rescued schedule is valid" true
    (Schedule.is_valid (Grid.graph grid3) sched);
  checkb "rescued schedule realizes" true
    (Schedule.realizes ~n:9 sched rev9);
  checkb "failure tallied" true
    (Router_registry.verify_failures () > failures0);
  checkb "degradation tallied" true
    (Router_registry.degradations () > degraded0);
  checkb "metrics observable" true
    (counter "router_verify_failures" >= 1 && counter "router_degraded" >= 1)

let test_verified_rescues_raising_engine () =
  let degraded0 = Router_registry.degradations () in
  with_plan "engine.plan=raise#1" @@ fun () ->
  let v = Router_registry.verified (Router_registry.get "local") in
  let sched = Router_intf.route_grid v grid3 rev9 in
  checkb "fallback schedule realizes" true (Schedule.realizes ~n:9 sched rev9);
  checkb "one rescue" true (Router_registry.degradations () = degraded0 + 1)

let test_verified_chain_exhaustion () =
  (* Unlimited raises take down the engine and every fallback. *)
  with_plan "engine.plan=raise" @@ fun () ->
  let v = Router_registry.verified (Router_registry.get "local") in
  match Router_intf.route_grid v grid3 rev9 with
  | _ -> Alcotest.fail "expected Verification_failed"
  | exception Router_registry.Verification_failed { engine = "local"; _ } -> ()

let test_verified_pass_through () =
  (* A healthy engine under verification: same schedule, no degradation. *)
  let degraded0 = Router_registry.degradations () in
  let plain = Router_intf.route_grid (Router_registry.get "local") grid3 rev9 in
  let v = Router_registry.verified (Router_registry.get "local") in
  checkb "identical schedule" true (Router_intf.route_grid v grid3 rev9 = plain);
  checki "no degradation" degraded0 (Router_registry.degradations ())

(* --------------------------------------------------------------- session *)

let route_line ?(id = 1) ?(engine = "local") ?deadline_ms pi =
  let deadline =
    match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf {|, "deadline_ms": %d|} ms
  in
  Printf.sprintf
    {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": %s, "engine": "%s"}%s}|}
    id
    (Json.to_string (P.perm_to_json pi))
    engine deadline

let result_of line =
  match P.response_result (Json.of_string_exn line) with
  | Ok result -> result
  | Error err -> Alcotest.failf "error response: %s" err.P.message

let error_code_of line =
  match P.response_result (Json.of_string_exn line) with
  | Ok _ -> None
  | Error err -> Some err.P.code

let member_exn name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" name (Json.to_string doc)

let verify_config = { Session.default_config with Session.verify = true }

let test_session_cache_corruption_self_heals () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let session = Session.create ~config:verify_config () in
  let warm = result_of (Session.handle_line session (route_line rev9)) in
  checkb "first plans" true (member_exn "cached" warm = Json.Bool false);
  with_plan "cache.find=corrupt" (fun () ->
      let healed = result_of (Session.handle_line session (route_line rev9)) in
      (* The hit was corrupted, detected, evicted and replanned — the
         response is a fresh (uncached) valid schedule, not the mangled
         one. *)
      checkb "corrupted hit replanned" true
        (member_exn "cached" healed = Json.Bool false);
      match Schedule.of_json (member_exn "schedule" healed) with
      | Ok sched -> checkb "healed realizes" true (Schedule.realizes ~n:9 sched rev9)
      | Error msg -> Alcotest.failf "bad schedule json: %s" msg);
  checkb "invalid hits counted" true (counter "plan_cache_invalid" >= 1);
  (* After disarming, the re-stored entry serves hits again. *)
  let after = result_of (Session.handle_line session (route_line rev9)) in
  checkb "healed entry hits" true (member_exn "cached" after = Json.Bool true)

let test_session_cache_errors_are_misses () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let session = Session.create () in
  with_plan "cache.find=raise;cache.insert=raise" (fun () ->
      let r = result_of (Session.handle_line session (route_line rev9)) in
      checkb "request still answered" true
        (member_exn "cached" r = Json.Bool false));
  checkb "cache errors counted" true (counter "plan_cache_errors" >= 2);
  checki "nothing stored" 0 (Plan_cache.length (Session.cache session))

let test_session_dispatch_crash_isolated () =
  let session = Session.create () in
  with_plan "session.dispatch=raise#1" (fun () ->
      let r = Session.handle_line session (route_line ~id:5 rev9) in
      checkb "typed internal_error" true
        (error_code_of r = Some P.Internal_error);
      checkb "id echoed" true
        (Json.member "id" (Json.of_string_exn r) = Some (Json.Int 5)));
  (* The session survives: the very next request succeeds. *)
  let ok = result_of (Session.handle_line session (route_line rev9)) in
  checkb "next request fine" true (Json.member "schedule" ok <> None)

let test_session_consecutive_errors () =
  let session = Session.create () in
  checki "starts clean" 0 (Session.consecutive_errors session);
  ignore (Session.handle_line session "junk");
  ignore (Session.handle_line session {|{"id": 1}|});
  checki "errors accumulate" 2 (Session.consecutive_errors session);
  ignore (Session.handle_line session (route_line rev9));
  checki "success resets" 0 (Session.consecutive_errors session)

let test_batch_deadline_aborts_mid_plan () =
  let session = Session.create () in
  let perms =
    List.init 3 (fun k -> Perm.check (Rng.permutation (Rng.create k) 9))
  in
  with_plan "engine.plan=delay(60)" @@ fun () ->
  let line =
    Printf.sprintf
      {|{"id": 1, "method": "route_batch", "params": {"grid": {"rows": 3, "cols": 3}, "perms": [%s], "engine": "local"}, "deadline_ms": 25}|}
      (String.concat ","
         (List.map (fun pi -> Json.to_string (P.perm_to_json pi)) perms))
  in
  let result = result_of (Session.handle_line session line) in
  (* Cooperative cancellation: the deadline fires {e inside} the first
     item's plan (the engine polls the request's cancel token between
     sweeps), so the expired item aborts mid-plan instead of running to
     completion — nothing completes, every item reports the typed
     error. *)
  checkb "nothing completed" true (member_exn "completed" result = Json.Int 0);
  (match member_exn "schedules" result with
  | Json.List ([ _; _; _ ] as items) ->
      List.iter
        (fun item ->
          match Json.member "error" item with
          | Some err ->
              checkb "item is deadline_exceeded" true
                (Json.member "code" err
                = Some (Json.String "deadline_exceeded"))
          | None -> Alcotest.fail "expired items must carry errors")
        items
  | j -> Alcotest.failf "expected three items, got %s" (Json.to_string j));
  match member_exn "cached" result with
  | Json.List [ Json.Null; Json.Null; Json.Null ] -> ()
  | j -> Alcotest.failf "cached mirrors completion: %s" (Json.to_string j)

let test_batch_zero_deadline_all_items_error () =
  let session = Session.create () in
  let line =
    {|{"id": 1, "method": "route_batch", "params": {"grid": {"rows": 2, "cols": 2}, "perms": [[3,2,1,0], [2,3,0,1]]}, "deadline_ms": 0}|}
  in
  let result = result_of (Session.handle_line session line) in
  checkb "nothing completed" true (member_exn "completed" result = Json.Int 0);
  match member_exn "schedules" result with
  | Json.List items ->
      checki "both items present" 2 (List.length items);
      List.iter
        (fun item ->
          checkb "item is an error object" true (Json.member "error" item <> None))
        items
  | j -> Alcotest.failf "expected a list, got %s" (Json.to_string j)

let test_session_verify_health_report () =
  let session = Session.create ~config:verify_config () in
  ignore (Session.handle_line session (route_line ~engine:"evil" rev9));
  let health =
    result_of (Session.handle_line session {|{"id": 2, "method": "health"}|})
  in
  checkb "degraded status surfaces" true
    (member_exn "status" health = Json.String "degraded");
  let verify = member_exn "verify" health in
  checkb "verify enabled" true (member_exn "enabled" verify = Json.Bool true);
  (match member_exn "failures" verify with
  | Json.Int n -> checkb "failures reported" true (n >= 1)
  | _ -> Alcotest.fail "failures must be an int");
  checkb "faults_armed reported" true
    (member_exn "faults_armed" health = Json.Bool false)

let test_session_verify_serves_evil_engine () =
  (* End to end: a route request naming the broken engine still gets a
     correct schedule (the ladder rescued it), not a garbage response. *)
  let session = Session.create ~config:verify_config () in
  let r = result_of (Session.handle_line session (route_line ~engine:"evil" rev9)) in
  match Schedule.of_json (member_exn "schedule" r) with
  | Ok sched ->
      checkb "valid" true (Schedule.is_valid (Grid.graph grid3) sched);
      checkb "realizes" true (Schedule.realizes ~n:9 sched rev9)
  | Error msg -> Alcotest.failf "bad schedule json: %s" msg

let test_session_unverified_evil_exhaustion_is_typed () =
  (* With the ladder poisoned too, the failure surfaces as a typed
     internal_error envelope — never an unhandled exception. *)
  let session = Session.create ~config:verify_config () in
  with_plan "engine.plan=raise" @@ fun () ->
  let r = Session.handle_line session (route_line rev9) in
  checkb "typed internal_error" true (error_code_of r = Some P.Internal_error)

(* ------------------------------------------------------------ serving fd *)

(* Drive Server.serve_fd over a socketpair: requests written up front,
   the loop runs to EOF (or a fault kills the connection), responses read
   back.  Unlike the channel loop, this path exercises the server.read /
   server.write fault points against a real descriptor. *)
let serve_fd_script ?(config = Session.default_config) lines =
  let client, server = socketpair () in
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  (match Io_util.write_all client payload with
  | Ok () -> ()
  | Error `Closed -> Alcotest.fail "test harness could not write requests");
  Unix.shutdown client Unix.SHUTDOWN_SEND;
  Server.serve_fd ~config server;
  Unix.close server;
  let out = drain client in
  Unix.close client;
  String.split_on_char '\n' out |> List.filter (fun s -> String.trim s <> "")

let test_serve_fd_end_to_end () =
  let responses =
    serve_fd_script [ route_line ~id:1 rev9; {|{"id": 2, "method": "health"}|} ]
  in
  checki "two responses" 2 (List.length responses);
  checkb "route answered" true
    (Json.member "schedule" (result_of (List.nth responses 0)) <> None)

let test_serve_fd_peer_closes_mid_response () =
  (* Satellite regression: the peer vanishes after sending its request;
     the response write hits EPIPE and the loop must return cleanly. *)
  let client, server = socketpair () in
  let line = route_line ~id:1 rev9 ^ "\n" in
  ignore (Unix.write_substring client line 0 (String.length line));
  Unix.close client;
  Server.serve_fd server;
  (* Reaching this point is the assertion: no exception, no hang. *)
  Unix.close server;
  checkb "loop survived the dead peer" true true

let test_serve_fd_error_budget_sheds () =
  (* Three junk lines against a budget of 2: the loop must shed the
     connection by itself — without the client half-closing — and all
     shed responses are typed parse errors. *)
  let client, server = socketpair () in
  let payload = "junk one\njunk two\njunk three\n" in
  ignore (Unix.write_substring client payload 0 (String.length payload));
  (* No shutdown: if the budget is broken this read-loop blocks forever
     and the test times out, which is the failure we want to catch. *)
  let config = { Session.default_config with Session.error_budget = 2 } in
  Server.serve_fd ~config server;
  Unix.close server;
  let responses =
    drain client |> String.split_on_char '\n'
    |> List.filter (fun s -> String.trim s <> "")
  in
  Unix.close client;
  checkb "responses before the close" true (List.length responses >= 2);
  List.iter
    (fun line ->
      checkb "typed parse error" true
        (error_code_of line = Some P.Parse_error))
    responses

(* ------------------------------------------------------- chaos scenarios *)

let chaos_grid = grid3

let chaos_pis =
  List.init 8 (fun k -> (k, Perm.check (Rng.permutation (Rng.create (100 + k)) 9)))

(* Every line the server managed to emit must be either a typed error
   envelope or a result whose schedule(s) still satisfy the routing
   invariant — a chaos plan may degrade service, never corrupt it. *)
let check_chaos_response pis line =
  let json =
    match Json.of_string line with
    | Ok json -> json
    | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg
  in
  match P.response_result json with
  | Error err ->
      checkb "typed error code" true
        (P.code_of_string (P.code_to_string err.P.code) <> None)
  | Ok result -> (
      (match Json.member "schedule" result with
      | Some sj -> (
          let id =
            match Json.member "id" json with Some (Json.Int i) -> i | _ -> -1
          in
          match (Schedule.of_json sj, List.assoc_opt id pis) with
          | Ok sched, Some pi ->
              checkb "chaos schedule valid" true
                (Schedule.is_valid (Grid.graph chaos_grid) sched);
              checkb "chaos schedule realizes" true
                (Schedule.realizes ~n:9 sched pi)
          | Ok _, None -> Alcotest.failf "unknown response id in %s" line
          | Error msg, _ -> Alcotest.failf "bad schedule json: %s" msg)
      | None -> ());
      match Json.member "schedules" result with
      | Some (Json.List items) ->
          List.iter
            (fun item ->
              match Json.member "error" item with
              | Some _ -> ()
              | None -> (
                  match Schedule.of_json item with
                  | Ok sched ->
                      checkb "chaos batch schedule valid" true
                        (Schedule.is_valid (Grid.graph chaos_grid) sched)
                  | Error msg ->
                      Alcotest.failf "bad batch schedule json: %s" msg))
            items
      | _ -> ())

let chaos_case ~plan ~seed () =
  let lines = List.map (fun (id, pi) -> route_line ~id pi) chaos_pis in
  let responses =
    with_plan ~seed plan (fun () ->
        serve_fd_script ~config:verify_config lines)
  in
  checkb "no extra responses" true
    (List.length responses <= List.length lines);
  List.iter (check_chaos_response chaos_pis) responses;
  (* Recovery: with the plan disarmed, a fresh connection must serve a
     full success response. *)
  match serve_fd_script ~config:verify_config [ route_line ~id:0 (snd (List.hd chaos_pis)) ] with
  | [ line ] -> ignore (result_of line)
  | other -> Alcotest.failf "follow-up: expected one response, got %d" (List.length other)

let chaos_scenarios =
  [
    ("flaky planner", "engine.plan=raise@0.5", 1);
    ("executor dies once", "engine.execute=raise#1", 2);
    ("cache read corruption", "cache.find=corrupt", 3);
    ("cache insert failing", "cache.insert=raise", 4);
    ("dispatch crashes", "session.dispatch=raise@0.3", 5);
    ("torn response writes", "server.write=truncate@0.7", 6);
    ("eintr storm", "server.read=raise(eintr)#3;server.write=raise(eintr)#3", 7);
    ("peer vanishes mid-response", "server.write=raise(epipe)#1", 8);
    ("slow planner", "engine.plan=delay(2)@0.5", 9);
  ]

let test_chaos_repeat_hits_under_corruption () =
  (* Repeated identical requests while the cache lies: every response
     must carry a correct schedule (heal-and-replan), and the healed
     entry must serve again once the plan is disarmed. *)
  let pi = snd (List.hd chaos_pis) in
  let lines = List.init 6 (fun id -> route_line ~id pi) in
  let pis = List.init 6 (fun id -> (id, pi)) in
  let responses =
    with_plan ~seed:21 "cache.find=corrupt@0.5" (fun () ->
        serve_fd_script ~config:verify_config lines)
  in
  checki "all answered" 6 (List.length responses);
  List.iter (check_chaos_response pis) responses;
  List.iter (fun line -> ignore (result_of line)) responses

let test_chaos_soak_mixed_faults () =
  (* The multi-fault soak: several subsystems misbehaving at once, over
     several seeds, with batches mixed in.  The loop must survive every
     seed and never emit an invalid schedule. *)
  let batch_line ~id =
    Printf.sprintf
      {|{"id": %d, "method": "route_batch", "params": {"grid": {"rows": 3, "cols": 3}, "perms": [[8,7,6,5,4,3,2,1,0],[1,0,3,2,5,4,7,6,8]], "engine": "local"}}|}
      id
  in
  let lines =
    List.concat_map
      (fun (id, pi) -> [ route_line ~id pi; batch_line ~id:(id + 100) ])
      chaos_pis
  in
  List.iter
    (fun seed ->
      let responses =
        with_plan ~seed
          "engine.plan=raise@0.2;cache.find=corrupt@0.3;server.write=truncate@0.5;session.dispatch=raise@0.1"
          (fun () -> serve_fd_script ~config:verify_config lines)
      in
      List.iter (check_chaos_response chaos_pis) responses)
    [ 11; 12; 13 ];
  (* Recovery after the soak. *)
  match serve_fd_script ~config:verify_config [ route_line ~id:0 rev9 ] with
  | [ line ] -> ignore (result_of line)
  | other -> Alcotest.failf "post-soak: expected one response, got %d" (List.length other)

(* ---------------------------------------------------------------- client *)

let test_retryable_classification () =
  checkb "overloaded retries" true (Client.retryable_code P.Overloaded);
  List.iter
    (fun code ->
      checkb
        ("never retried: " ^ P.code_to_string code)
        false
        (Client.retryable_code code))
    [
      P.Parse_error; P.Invalid_request; P.Unknown_method; P.Invalid_params;
      P.Unsupported_input; P.Deadline_exceeded; P.Internal_error;
    ]

let fast_retry attempts =
  { Client.attempts; base_delay_ms = 1.; max_delay_ms = 2.; budget_ms = 500. }

let test_client_retries_dead_socket () =
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let request = P.request ~meth:"health" (Json.Obj []) in
  match
    Client.rpc_retry ~retry:(fast_retry 3) ~path:"/nonexistent/qroute.sock"
      request
  with
  | Client.Transport_failure _ ->
      checki "two retries recorded" 2 (counter "client_retries")
  | _ -> Alcotest.fail "a dead socket must be a transport failure"

let test_client_retry_budget_caps () =
  with_clean_sinks @@ fun () ->
  let retry =
    { Client.attempts = 100; base_delay_ms = 50.; max_delay_ms = 50.;
      budget_ms = 120. }
  in
  let request = P.request ~meth:"health" (Json.Obj []) in
  let t0 = Unix.gettimeofday () in
  (match Client.rpc_retry ~retry ~path:"/nonexistent/qroute.sock" request with
  | Client.Transport_failure _ -> ()
  | _ -> Alcotest.fail "expected transport failure");
  let elapsed = Unix.gettimeofday () -. t0 in
  checkb "budget bounds total time" true (elapsed < 2.0)

let test_client_recovers_via_retry () =
  (* A real server behind a real socket; the first two connects are
     injected to fail, the third succeeds — reconnect-per-attempt in
     action.  The server runs in a forked child and drains on SIGTERM. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qr_fault_test_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
      (try Server.run_socket ~path () with _ -> ());
      Unix._exit 0
  | child ->
      let finally () =
        (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] child);
        try Unix.unlink path with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      (* Wait for the child to bind. *)
      let rec await tries =
        if tries = 0 then Alcotest.fail "server socket never appeared";
        if not (Sys.file_exists path) then begin
          Unix.sleepf 0.02;
          await (tries - 1)
        end
      in
      await 250;
      let request = P.request ~id:(Json.Int 1) ~meth:"health" (Json.Obj []) in
      with_plan "client.connect=raise(econnreset)#2" @@ fun () ->
      (match Client.rpc_retry ~retry:(fast_retry 4) ~path request with
      | Client.Response _ -> ()
      | Client.Server_error (err, _) ->
          Alcotest.failf "server error: %s" err.P.message
      | Client.Transport_failure msg ->
          Alcotest.failf "transport failure despite retries: %s" msg);
      checki "both injected failures consumed" 2 (Fault.fires "client.connect")

(* ------------------------------------------------------------- telemetry *)

let tp_example = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
let tid_example = "0123456789abcdef0123456789abcdef"

let traced_evil_route_line ?(id = 1) pi =
  Printf.sprintf
    {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": %s, "engine": "evil"}, "trace": "%s"}|}
    id
    (Json.to_string (P.perm_to_json pi))
    tp_example

let test_degraded_request_trace_correlation () =
  (* The acceptance scenario: a request naming the broken engine degrades
     through the verification ladder, and the caller's trace_id still
     reaches (a) every span of the request tree, (b) the access-log
     record — which also flags the degradation — and (c) the echoed
     response envelope. *)
  with_clean_sinks @@ fun () ->
  let captured = ref [] in
  Log.set_sink (Some (fun line -> captured := line :: !captured));
  Log.set_level Log.Info;
  Log.set_format Log.Json;
  let finally () =
    Log.set_sink None;
    Log.set_level Log.Warn;
    Log.set_format Log.Logfmt
  in
  Fun.protect ~finally @@ fun () ->
  let session = Session.create ~config:verify_config () in
  Trace.start ();
  let response = Session.handle_line session (traced_evil_route_line rev9) in
  let spans = Trace.stop () in
  (* (a) spans: the whole tree — including the degraded re-route — is
     stamped with the caller's trace_id. *)
  checkb "spans recorded" true (List.length spans > 0);
  List.iter
    (fun (s : Trace.span) ->
      checkb (s.Trace.name ^ " carries trace_id") true
        (List.assoc_opt "trace_id" s.Trace.attrs
        = Some (Trace.String tid_example)))
    spans;
  checkb "degraded re-route traced" true
    (List.exists
       (fun (s : Trace.span) -> List.mem_assoc "degraded_to" s.Trace.attrs)
       spans);
  (* (b) access log: degraded flag and trace_id on the same record. *)
  let access =
    List.rev_map Json.of_string_exn !captured
    |> List.filter (fun doc ->
           Json.member "msg" doc = Some (Json.String "request"))
  in
  (match access with
  | [ record ] ->
      checkb "access trace_id" true
        (Json.member "trace_id" record = Some (Json.String tid_example));
      checkb "access degraded flag" true
        (Json.member "degraded" record = Some (Json.Bool true));
      checkb "access status ok" true
        (Json.member "status" record = Some (Json.String "ok"))
  | other -> Alcotest.failf "expected 1 access record, got %d" (List.length other));
  (* (c) envelope: trace echoed, schedule still correct. *)
  let doc = Json.of_string_exn response in
  checkb "trace echoed" true
    (Json.member "trace" doc = Some (Json.String tp_example));
  match Schedule.of_json (member_exn "schedule" (result_of response)) with
  | Ok sched -> checkb "rescued realizes" true (Schedule.realizes ~n:9 sched rev9)
  | Error msg -> Alcotest.failf "bad schedule json: %s" msg

let test_chaos_socket_trace_roundtrip () =
  (* Full-stack correlation through a real socket under a chaos plan: a
     forked server (access log to a temp file, plan inherited across the
     fork) degrades the first route, and the client's trace context comes
     back in the envelope and lands in the server's access log. *)
  let tag = Printf.sprintf "qr_trace_test_%d" (Unix.getpid ()) in
  let path = Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock") in
  let log_path = Filename.temp_file tag ".log" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  with_plan "engine.plan=raise#1" @@ fun () ->
  match Unix.fork () with
  | 0 ->
      (try
         let log = Unix.openfile log_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
         Unix.dup2 log Unix.stderr;
         Log.set_level Log.Info;
         Log.set_format Log.Json;
         Server.run_socket ~config:verify_config ~path ()
       with _ -> ());
      Unix._exit 0
  | child ->
      let finally () =
        (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        try Sys.remove log_path with Sys_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      let rec await tries =
        if tries = 0 then Alcotest.fail "server socket never appeared";
        if not (Sys.file_exists path) then begin
          Unix.sleepf 0.02;
          await (tries - 1)
        end
      in
      await 250;
      let trace = Result.get_ok (Trace_context.of_traceparent tp_example) in
      let request =
        P.request ~id:(Json.Int 1) ~trace ~meth:"route"
          (Json.Obj
             [
               ("grid", P.grid_to_json grid3);
               ("perm", P.perm_to_json rev9);
               ("engine", Json.String "local");
             ])
      in
      (match Client.rpc_retry ~retry:(fast_retry 4) ~path request with
      | Client.Response envelope ->
          (* Trace echoed through the wire... *)
          (match P.response_trace envelope with
          | Some t ->
              checks "trace_id round-trips" tid_example t.Trace_context.trace_id
          | None -> Alcotest.fail "response lost the trace context");
          checkb "server_ms on the wire" true
            (P.response_server_ms envelope <> None);
          (match P.response_result envelope with
          | Ok result -> (
              match Schedule.of_json (member_exn "schedule" result) with
              | Ok sched ->
                  checkb "degraded schedule realizes" true
                    (Schedule.realizes ~n:9 sched rev9)
              | Error msg -> Alcotest.failf "bad schedule json: %s" msg)
          | Error err -> Alcotest.failf "server error: %s" err.P.message)
      | Client.Server_error (err, _) ->
          Alcotest.failf "server error: %s" err.P.message
      | Client.Transport_failure msg ->
          Alcotest.failf "transport failure: %s" msg);
      (* A second request with no explicit context: the client mints one
         and the server still echoes something well-formed. *)
      let bare = P.request ~id:(Json.Int 2) ~meth:"health" (Json.Obj []) in
      (match Client.rpc_retry ~retry:(fast_retry 4) ~path bare with
      | Client.Response envelope ->
          checkb "client-minted trace echoed" true
            (P.response_trace envelope <> None)
      | _ -> Alcotest.fail "health request failed");
      (* ...and into the forked server's access log. *)
      (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] child);
      let log_lines =
        In_channel.with_open_text log_path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      let access =
        List.filter_map
          (fun line ->
            match Json.of_string line with
            | Ok doc
              when Json.member "msg" doc = Some (Json.String "request") ->
                Some doc
            | _ -> None)
          log_lines
      in
      checkb "two access records" true (List.length access = 2);
      let routed =
        List.find_opt
          (fun doc ->
            Json.member "method" doc = Some (Json.String "route"))
          access
      in
      (match routed with
      | Some record ->
          checkb "access log carries the caller's trace_id" true
            (Json.member "trace_id" record
            = Some (Json.String tid_example));
          checkb "access log flags the degradation" true
            (Json.member "degraded" record = Some (Json.Bool true))
      | None -> Alcotest.fail "no route access record in the server log")

let () =
  Alcotest.run "qr_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "grammar" `Quick test_parse_plan;
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "disarmed no-ops" `Quick test_disarmed_noops;
          Alcotest.test_case "point raises" `Quick test_point_raises;
          Alcotest.test_case "point errno" `Quick test_point_errno;
          Alcotest.test_case "fire count caps" `Quick test_fire_count_caps;
          Alcotest.test_case "action applicability" `Quick
            test_action_applicability;
          Alcotest.test_case "truncate bounds" `Quick test_truncate_bounds;
          Alcotest.test_case "corrupt mangles" `Quick
            test_corrupt_applies_mangler;
          Alcotest.test_case "seeded determinism" `Quick
            test_probability_deterministic;
          Alcotest.test_case "arm from env" `Quick test_arm_from_env;
        ] );
      ( "io",
        [
          Alcotest.test_case "torn writes complete" `Quick
            test_write_all_torn_writes;
          Alcotest.test_case "eintr storm" `Quick test_write_all_eintr_storm;
          Alcotest.test_case "real epipe" `Quick test_write_all_real_epipe;
          Alcotest.test_case "injected epipe" `Quick
            test_write_all_injected_epipe;
          Alcotest.test_case "read retries and resets" `Quick
            test_read_chunk_eintr_and_reset;
          Alcotest.test_case "read retries wouldblock" `Quick
            test_read_chunk_eagain;
        ] );
      ( "verified",
        [
          Alcotest.test_case "validate invariant" `Quick test_validate;
          Alcotest.test_case "degrades a bad engine" `Quick
            test_verified_degrades_bad_engine;
          Alcotest.test_case "rescues a raising engine" `Quick
            test_verified_rescues_raising_engine;
          Alcotest.test_case "chain exhaustion raises" `Quick
            test_verified_chain_exhaustion;
          Alcotest.test_case "healthy pass-through" `Quick
            test_verified_pass_through;
        ] );
      ( "session",
        [
          Alcotest.test_case "cache corruption self-heals" `Quick
            test_session_cache_corruption_self_heals;
          Alcotest.test_case "cache errors are misses" `Quick
            test_session_cache_errors_are_misses;
          Alcotest.test_case "dispatch crash isolated" `Quick
            test_session_dispatch_crash_isolated;
          Alcotest.test_case "consecutive error tracking" `Quick
            test_session_consecutive_errors;
          Alcotest.test_case "batch deadline aborts mid-plan" `Quick
            test_batch_deadline_aborts_mid_plan;
          Alcotest.test_case "batch 0ms deadline" `Quick
            test_batch_zero_deadline_all_items_error;
          Alcotest.test_case "verify health report" `Quick
            test_session_verify_health_report;
          Alcotest.test_case "verify serves the evil engine" `Quick
            test_session_verify_serves_evil_engine;
          Alcotest.test_case "exhaustion is a typed error" `Quick
            test_session_unverified_evil_exhaustion_is_typed;
        ] );
      ( "serve_fd",
        [
          Alcotest.test_case "end to end" `Quick test_serve_fd_end_to_end;
          Alcotest.test_case "peer closes mid-response" `Quick
            test_serve_fd_peer_closes_mid_response;
          Alcotest.test_case "error budget sheds" `Quick
            test_serve_fd_error_budget_sheds;
        ] );
      ( "chaos",
        List.map
          (fun (name, plan, seed) ->
            Alcotest.test_case name `Quick (chaos_case ~plan ~seed))
          chaos_scenarios
        @ [
            Alcotest.test_case "repeat hits under corruption" `Quick
              test_chaos_repeat_hits_under_corruption;
            Alcotest.test_case "mixed-fault soak" `Quick
              test_chaos_soak_mixed_faults;
          ] );
      ( "telemetry",
        [
          Alcotest.test_case "degraded request trace correlation" `Quick
            test_degraded_request_trace_correlation;
          Alcotest.test_case "socket trace round-trip under chaos" `Quick
            test_chaos_socket_trace_roundtrip;
        ] );
      ( "client",
        [
          Alcotest.test_case "retryable classification" `Quick
            test_retryable_classification;
          Alcotest.test_case "dead socket retries" `Quick
            test_client_retries_dead_socket;
          Alcotest.test_case "retry budget caps" `Quick
            test_client_retry_budget_caps;
          Alcotest.test_case "recovers via retry" `Quick
            test_client_recovers_via_retry;
        ] );
    ]
