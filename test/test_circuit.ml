(* Tests for Qr_circuit: Gate, Circuit, Qasm, Layout, Library. *)

module Grid = Qr_graph.Grid
module Graph = Qr_graph.Graph
module Perm = Qr_perm.Perm
module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Qasm = Qr_circuit.Qasm
module Layout = Qr_circuit.Layout
module Library = Qr_circuit.Library
module Schedule = Qr_route.Schedule
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ----------------------------------------------------------------- Gate *)

let test_gate_qubits () =
  Alcotest.check Alcotest.(list int) "one" [ 3 ] (Gate.qubits (Gate.One (Gate.H, 3)));
  Alcotest.check Alcotest.(list int) "two" [ 1; 2 ]
    (Gate.qubits (Gate.Two (Gate.CX, 1, 2)))

let test_gate_predicates () =
  checkb "2q" true (Gate.is_two_qubit (Gate.Two (Gate.CZ, 0, 1)));
  checkb "1q" false (Gate.is_two_qubit (Gate.One (Gate.X, 0)));
  checkb "swap" true (Gate.is_swap (Gate.Two (Gate.SWAP, 0, 1)));
  checkb "cx not swap" false (Gate.is_swap (Gate.Two (Gate.CX, 0, 1)))

let test_gate_map_qubits () =
  let g = Gate.map_qubits (fun q -> q * 2) (Gate.Two (Gate.CX, 1, 3)) in
  checkb "mapped" true (Gate.equal g (Gate.Two (Gate.CX, 2, 6)))

let test_gate_symmetry () =
  checkb "cz" true (Gate.is_symmetric Gate.CZ);
  checkb "swap" true (Gate.is_symmetric Gate.SWAP);
  checkb "cx" false (Gate.is_symmetric Gate.CX)

(* -------------------------------------------------------------- Circuit *)

let test_circuit_create_validates () =
  Alcotest.check_raises "range" (Invalid_argument "Circuit: qubit out of range")
    (fun () -> ignore (Circuit.create ~num_qubits:2 [ Gate.One (Gate.H, 5) ]));
  Alcotest.check_raises "repeat" (Invalid_argument "Circuit: repeated operand")
    (fun () -> ignore (Circuit.create ~num_qubits:2 [ Gate.Two (Gate.CX, 1, 1) ]))

let test_circuit_counts () =
  let c =
    Circuit.create ~num_qubits:3
      [ Gate.One (Gate.H, 0); Gate.Two (Gate.CX, 0, 1);
        Gate.Two (Gate.SWAP, 1, 2) ]
  in
  checki "size" 3 (Circuit.size c);
  checki "2q" 2 (Circuit.two_qubit_count c);
  checki "swaps" 1 (Circuit.swap_count c)

let test_circuit_depth_parallel_gates () =
  let c =
    Circuit.create ~num_qubits:4
      [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 2, 3) ]
  in
  checki "parallel depth 1" 1 (Circuit.depth c)

let test_circuit_depth_serial_gates () =
  let c =
    Circuit.create ~num_qubits:3
      [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 1, 2);
        Gate.One (Gate.H, 2) ]
  in
  checki "chained depth 3" 3 (Circuit.depth c)

let test_circuit_paper_example_shape () =
  (* The paper's Figure 1: a 4-qubit, 5-gate circuit of depth 3. *)
  let c =
    Circuit.create ~num_qubits:4
      [ Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CX, 2, 3);
        Gate.Two (Gate.CX, 1, 2); Gate.Two (Gate.CX, 0, 3);
        Gate.Two (Gate.CX, 1, 3) ]
  in
  checki "size 5" 5 (Circuit.size c);
  checki "depth 3" 3 (Circuit.depth c)

let test_circuit_layers_cover_gates () =
  let rng = Rng.create 1 in
  let c = Library.random_two_qubit rng ~num_qubits:6 ~gates:30 in
  let layered = List.concat (Circuit.layers c) in
  checki "layers partition gates" (Circuit.size c) (List.length layered);
  checki "layer count = depth" (Circuit.depth c) (List.length (Circuit.layers c))

let test_circuit_two_qubit_layers_ignore_singles () =
  let c =
    Circuit.create ~num_qubits:2
      [ Gate.One (Gate.H, 0); Gate.One (Gate.H, 0); Gate.Two (Gate.CX, 0, 1) ]
  in
  checki "one 2q layer" 1 (List.length (Circuit.two_qubit_layers c))

let test_circuit_concat_mismatch () =
  let a = Circuit.create ~num_qubits:2 [] in
  let b = Circuit.create ~num_qubits:3 [] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Circuit.concat: qubit-count mismatch") (fun () ->
      ignore (Circuit.concat a b))

let test_circuit_of_schedule () =
  let s = [ [| (0, 1); (2, 3) |]; [| (1, 2) |] ] in
  let c = Circuit.of_schedule ~num_qubits:4 s in
  checki "three swaps" 3 (Circuit.swap_count c);
  checki "depth 2" 2 (Circuit.depth c)

let test_expand_swaps () =
  let c = Circuit.create ~num_qubits:2 [ Gate.Two (Gate.SWAP, 0, 1) ] in
  let e = Circuit.expand_swaps c in
  checki "3 CX" 3 (Circuit.size e);
  checki "no swaps left" 0 (Circuit.swap_count e);
  checki "depth 3" 3 (Circuit.depth e)

let test_feasibility () =
  let g = Graph.path 3 in
  let ok = Circuit.create ~num_qubits:3 [ Gate.Two (Gate.CX, 0, 1) ] in
  let bad = Circuit.create ~num_qubits:3 [ Gate.Two (Gate.CX, 0, 2) ] in
  checkb "feasible" true (Circuit.is_feasible g ok);
  checkb "infeasible" false (Circuit.is_feasible g bad);
  checki "one violation" 1 (List.length (Circuit.infeasible_gates g bad))

(* ----------------------------------------------------------------- Qasm *)

let test_qasm_roundtrip () =
  let c =
    Circuit.create ~num_qubits:4
      [ Gate.One (Gate.H, 0); Gate.One (Gate.Rz 0.5, 1);
        Gate.Two (Gate.CX, 0, 1); Gate.Two (Gate.CP 0.25, 2, 3);
        Gate.Two (Gate.RZZ 1.5, 1, 2); Gate.Two (Gate.SWAP, 0, 3);
        Gate.One (Gate.Tdg, 2) ]
  in
  match Qasm.parse (Qasm.print c) with
  | Ok parsed -> checkb "roundtrip" true (Circuit.equal c parsed)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_qasm_parse_basic () =
  let text = "qubits 3\n# a comment\nh 0\ncx 0 1  # trailing comment\nrz 0.5 2\n" in
  match Qasm.parse text with
  | Ok c ->
      checki "qubits" 3 (Circuit.num_qubits c);
      checki "gates" 3 (Circuit.size c)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_qasm_errors () =
  checkb "missing header" true (Result.is_error (Qasm.parse "h 0\n"));
  checkb "unknown gate" true (Result.is_error (Qasm.parse "qubits 2\nfoo 0\n"));
  checkb "bad qubit" true (Result.is_error (Qasm.parse "qubits 2\nh x\n"));
  checkb "range" true (Result.is_error (Qasm.parse "qubits 2\nh 5\n"))

let test_qasm_parse_exn () =
  Alcotest.check_raises "exn variant"
    (Invalid_argument "Qasm: missing 'qubits <n>' header") (fun () ->
      ignore (Qasm.parse_exn ""))

let test_qasm_file_io () =
  let c = Library.ghz 4 in
  let path = Filename.temp_file "qroute" ".qasm" in
  Qasm.save path c;
  (match Qasm.load path with
  | Ok loaded -> checkb "file roundtrip" true (Circuit.equal c loaded)
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove path

(* --------------------------------------------------------------- Layout *)

let test_layout_identity () =
  let l = Layout.identity 4 in
  for q = 0 to 3 do
    checki "phys" q (Layout.phys l q);
    checki "logical" q (Layout.logical l q)
  done

let test_layout_inverse_consistency () =
  let l = Layout.of_phys_of_logical [| 2; 0; 1 |] in
  checki "phys 0" 2 (Layout.phys l 0);
  checki "logical of 2" 0 (Layout.logical l 2);
  for q = 0 to 2 do
    checki "roundtrip" q (Layout.logical l (Layout.phys l q))
  done

let test_layout_apply_schedule () =
  let l = Layout.identity 3 in
  (* Swap physical 0 and 1: logical 0 is now on physical 1. *)
  let l' = Layout.apply_schedule l [ [| (0, 1) |] ] in
  checki "moved" 1 (Layout.phys l' 0);
  checki "moved" 0 (Layout.phys l' 1);
  checki "fixed" 2 (Layout.phys l' 2)

let test_layout_routing_target () =
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    let src = Layout.random rng 8 and dst = Layout.random rng 8 in
    let rho = Layout.routing_target ~src ~dst in
    (* Applying rho to src must give dst. *)
    checkb "target reaches dst" true (Layout.equal (Layout.apply_perm src rho) dst)
  done

let test_layout_random_valid () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let l = Layout.random rng 10 in
    checkb "valid" true (Perm.is_permutation (Layout.to_phys_array l))
  done

(* -------------------------------------------------------------- Library *)

let test_qft_shape () =
  let c = Library.qft 4 in
  (* 4 H + 3+2+1 CP + 2 SWAP = 12 gates. *)
  checki "size" 12 (Circuit.size c);
  checki "qubits" 4 (Circuit.num_qubits c);
  let no_rev = Library.qft_no_reversal 4 in
  checki "no reversal" 10 (Circuit.size no_rev)

let test_ghz_shape () =
  let c = Library.ghz 5 in
  checki "size" 5 (Circuit.size c);
  checki "depth" 5 (Circuit.depth c)

let test_ising_feasible_on_grid () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let c = Library.ising_trotter_2d grid ~steps:2 ~theta:0.1 in
  checkb "nearest-neighbour by construction" true
    (Circuit.is_feasible (Grid.graph grid) c);
  checki "gates per step: 12 edges + 9 fields" ((12 + 9) * 2) (Circuit.size c)

let test_random_circuits_valid () =
  let rng = Rng.create 4 in
  let c = Library.random_two_qubit rng ~num_qubits:8 ~gates:50 in
  checki "gate count" 50 (Circuit.size c);
  let grid = Grid.make ~rows:3 ~cols:3 in
  let local = Library.random_local_two_qubit rng ~grid ~radius:2 ~gates:30 in
  List.iter
    (fun g ->
      match Gate.qubits g with
      | [ a; b ] -> checkb "radius bound" true (Grid.manhattan grid a b <= 2)
      | _ -> ())
    (Circuit.gates local)

let test_permutation_circuit_identity () =
  checki "identity empty" 0 (Circuit.size (Library.permutation_circuit (Perm.identity 5)))

let test_permutation_circuit_realizes () =
  let rng = Rng.create 5 in
  for n = 2 to 8 do
    let pi = Perm.check (Rng.permutation rng n) in
    let c = Library.permutation_circuit pi in
    (* Interpret the SWAP gates as a schedule and check it realizes pi. *)
    let sched =
      List.map
        (fun g ->
          match g with
          | Gate.Two (Gate.SWAP, a, b) -> [| (a, b) |]
          | _ -> Alcotest.fail "only swaps expected")
        (Circuit.gates c)
    in
    checkb "realizes" true (Schedule.realizes ~n sched pi)
  done

let () =
  Alcotest.run "qr_circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "qubits" `Quick test_gate_qubits;
          Alcotest.test_case "predicates" `Quick test_gate_predicates;
          Alcotest.test_case "map_qubits" `Quick test_gate_map_qubits;
          Alcotest.test_case "symmetry" `Quick test_gate_symmetry;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "create validates" `Quick test_circuit_create_validates;
          Alcotest.test_case "counts" `Quick test_circuit_counts;
          Alcotest.test_case "parallel depth" `Quick test_circuit_depth_parallel_gates;
          Alcotest.test_case "serial depth" `Quick test_circuit_depth_serial_gates;
          Alcotest.test_case "paper Figure 1 shape" `Quick
            test_circuit_paper_example_shape;
          Alcotest.test_case "layers cover" `Quick test_circuit_layers_cover_gates;
          Alcotest.test_case "2q layers" `Quick
            test_circuit_two_qubit_layers_ignore_singles;
          Alcotest.test_case "concat mismatch" `Quick test_circuit_concat_mismatch;
          Alcotest.test_case "of_schedule" `Quick test_circuit_of_schedule;
          Alcotest.test_case "expand swaps" `Quick test_expand_swaps;
          Alcotest.test_case "feasibility" `Quick test_feasibility;
        ] );
      ( "qasm",
        [
          Alcotest.test_case "roundtrip" `Quick test_qasm_roundtrip;
          Alcotest.test_case "parse basic" `Quick test_qasm_parse_basic;
          Alcotest.test_case "errors" `Quick test_qasm_errors;
          Alcotest.test_case "parse_exn" `Quick test_qasm_parse_exn;
          Alcotest.test_case "file io" `Quick test_qasm_file_io;
        ] );
      ( "layout",
        [
          Alcotest.test_case "identity" `Quick test_layout_identity;
          Alcotest.test_case "inverse consistency" `Quick
            test_layout_inverse_consistency;
          Alcotest.test_case "apply schedule" `Quick test_layout_apply_schedule;
          Alcotest.test_case "routing target" `Quick test_layout_routing_target;
          Alcotest.test_case "random valid" `Quick test_layout_random_valid;
        ] );
      ( "library",
        [
          Alcotest.test_case "qft shape" `Quick test_qft_shape;
          Alcotest.test_case "ghz shape" `Quick test_ghz_shape;
          Alcotest.test_case "ising feasible" `Quick test_ising_feasible_on_grid;
          Alcotest.test_case "random circuits" `Quick test_random_circuits_valid;
          Alcotest.test_case "perm circuit identity" `Quick
            test_permutation_circuit_identity;
          Alcotest.test_case "perm circuit realizes" `Quick
            test_permutation_circuit_realizes;
        ] );
    ]
