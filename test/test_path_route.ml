(* Tests for Qr_route.Path_route (odd-even transposition routing). *)

module Perm = Qr_perm.Perm
module Path_route = Qr_route.Path_route
module Schedule = Qr_route.Schedule
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Local layers of (p, p+1) pairs -> Schedule on [0..k-1]. *)
let to_schedule layers = List.map Array.of_list layers

let realizes dests layers =
  let k = Array.length dests in
  Schedule.realizes ~n:k (to_schedule layers) dests

let layers_are_adjacent_matchings k layers =
  List.for_all
    (fun layer ->
      Schedule.layer_is_matching ~n:k (Array.of_list layer)
      && List.for_all (fun (a, b) -> b = a + 1) layer)
    layers

let test_identity_routes_empty () =
  checki "no layers" 0 (List.length (Path_route.route (Perm.identity 7)))

let test_single_vertex () =
  checki "trivial" 0 (List.length (Path_route.route [| 0 |]))

let test_adjacent_swap () =
  let layers = Path_route.route [| 1; 0 |] in
  checki "one layer" 1 (List.length layers);
  checkb "realizes" true (realizes [| 1; 0 |] layers)

let test_reversal_depth_exact () =
  (* Full reversal on a path of k needs exactly k layers of odd-even. *)
  for k = 2 to 10 do
    let dests = Array.init k (fun i -> k - 1 - i) in
    let layers = Path_route.route dests in
    checkb "realizes" true (realizes dests layers);
    checkb "within bound" true
      (List.length layers <= Path_route.depth_upper_bound k)
  done

let test_rotation () =
  let dests = [| 1; 2; 3; 4; 0 |] in
  let layers = Path_route.route dests in
  checkb "realizes rotation" true (realizes dests layers);
  checkb "valid adjacent matchings" true (layers_are_adjacent_matchings 5 layers)

let test_rejects_non_permutation () =
  Alcotest.check_raises "bad input"
    (Invalid_argument "Path_route.route: dests is not a permutation") (fun () ->
      ignore (Path_route.route [| 0; 0 |]))

let test_min_parity_no_worse () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let k = 2 + Rng.int rng 12 in
    let dests = Perm.check (Rng.permutation rng k) in
    let even = Path_route.route dests in
    let best = Path_route.route_min_parity dests in
    checkb "min parity realizes" true (realizes dests best);
    checkb "never worse" true (List.length best <= List.length even)
  done

let route_always_correct =
  QCheck.Test.make ~name:"odd-even routes any permutation within k layers"
    ~count:500
    QCheck.(pair (int_range 1 14) (int_range 0 100000))
    (fun (k, seed) ->
      let rng = Rng.create seed in
      let dests = Perm.check (Rng.permutation rng k) in
      let layers = Path_route.route dests in
      realizes dests layers
      && layers_are_adjacent_matchings k layers
      && List.length layers <= Path_route.depth_upper_bound k)

let min_parity_always_correct =
  QCheck.Test.make ~name:"min-parity variant also correct" ~count:300
    QCheck.(pair (int_range 1 14) (int_range 0 100000))
    (fun (k, seed) ->
      let rng = Rng.create seed in
      let dests = Perm.check (Rng.permutation rng k) in
      let layers = Path_route.route_min_parity dests in
      realizes dests layers && layers_are_adjacent_matchings k layers)

let depth_lower_bound_displacement =
  QCheck.Test.make ~name:"depth >= max displacement" ~count:300
    QCheck.(pair (int_range 1 14) (int_range 0 100000))
    (fun (k, seed) ->
      let rng = Rng.create seed in
      let dests = Perm.check (Rng.permutation rng k) in
      let layers = Path_route.route_min_parity dests in
      let max_disp = Perm.max_distance (fun i j -> abs (i - j)) dests in
      List.length layers >= max_disp)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "path_route"
    [
      ( "path_route",
        [
          Alcotest.test_case "identity" `Quick test_identity_routes_empty;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "adjacent swap" `Quick test_adjacent_swap;
          Alcotest.test_case "reversal" `Quick test_reversal_depth_exact;
          Alcotest.test_case "rotation" `Quick test_rotation;
          Alcotest.test_case "rejects non-perm" `Quick test_rejects_non_permutation;
          Alcotest.test_case "min parity" `Quick test_min_parity_no_worse;
          qc route_always_correct;
          qc min_parity_always_correct;
          qc depth_lower_bound_displacement;
        ] );
    ]
