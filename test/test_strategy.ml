(* Tests for the Qroute.Strategy front-end and the umbrella entry points. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_names_unique_and_roundtrip () =
  let names = List.map Strategy.name Strategy.all in
  checki "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun strategy ->
      match Strategy.of_name (Strategy.name strategy) with
      | Some parsed ->
          checkb (Strategy.name strategy) true (parsed = strategy)
      | None -> Alcotest.failf "no parse for %s" (Strategy.name strategy))
    Strategy.all

let test_of_name_rejects_garbage () =
  checkb "garbage" true (Strategy.of_name "quantum-magic" = None);
  checkb "empty" true (Strategy.of_name "" = None);
  checkb "case sensitive" true (Strategy.of_name "Local" = None)

let test_every_strategy_routes_every_shape () =
  let rng = Rng.create 1 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      List.iter
        (fun strategy ->
          let sched = Strategy.route strategy grid pi in
          checkb
            (Printf.sprintf "%s on %dx%d valid" (Strategy.name strategy) m n)
            true
            (Schedule.is_valid (Grid.graph grid) sched);
          checkb
            (Printf.sprintf "%s on %dx%d realizes" (Strategy.name strategy) m n)
            true
            (Schedule.realizes ~n:(m * n) sched pi))
        Strategy.all)
    [ (1, 1); (1, 8); (8, 1); (2, 2); (5, 7); (7, 5) ]

let test_every_strategy_identity_free () =
  (* No strategy may charge anything for the identity. *)
  let grid = Grid.make ~rows:5 ~cols:5 in
  List.iter
    (fun strategy ->
      checki
        (Strategy.name strategy ^ " identity depth")
        0
        (Schedule.depth (Strategy.route strategy grid (Perm.identity 25))))
    Strategy.all

let test_default_route_is_best () =
  let grid = Grid.make ~rows:6 ~cols:6 in
  let pi = Generators.generate grid Generators.Random (Rng.create 3) in
  checki "default = Best"
    (Schedule.depth (Strategy.route Strategy.Best grid pi))
    (Schedule.depth (route grid pi))

let test_generic_route_on_non_grid () =
  let graphs =
    [ Graph.cycle 7; Graph.star 6; Graph.complete 5;
      (Topology.heavy_hex ~rows:2 ~cols:3).graph ]
  in
  let rng = Rng.create 4 in
  List.iter
    (fun g ->
      let n = Graph.num_vertices g in
      let oracle = Distance.of_graph g in
      let pi = Perm.check (Rng.permutation rng n) in
      List.iter
        (fun strategy ->
          let sched = Strategy.generic_route strategy g oracle pi in
          checkb
            (Strategy.name strategy ^ " generic valid")
            true
            (Schedule.is_valid g sched);
          checkb
            (Strategy.name strategy ^ " generic realizes")
            true
            (Schedule.realizes ~n sched pi))
        [ Strategy.Ats; Strategy.Ats_serial; Strategy.Best ])
    graphs

let test_local_never_deeper_than_worst_case () =
  (* The structural guarantee behind Figure 4's y-axis: 2m + n (or the
     transposed bound) for every instance. *)
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let m = 1 + Rng.int rng 9 and n = 1 + Rng.int rng 9 in
    let grid = Grid.make ~rows:m ~cols:n in
    let pi = Perm.check (Rng.permutation rng (m * n)) in
    let depth = Schedule.depth (Strategy.route Strategy.Local grid pi) in
    checkb "worst-case bound" true (depth <= min ((2 * m) + n) ((2 * n) + m))
  done

let strategy_agreement_property =
  QCheck.Test.make ~name:"all strategies realize the same permutation"
    ~count:40
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 0 100000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation (Rng.create seed) (m * n)) in
      List.for_all
        (fun strategy ->
          Schedule.realizes ~n:(m * n) (Strategy.route strategy grid pi) pi)
        Strategy.all)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "strategy"
    [
      ( "strategy",
        [
          Alcotest.test_case "names roundtrip" `Quick
            test_names_unique_and_roundtrip;
          Alcotest.test_case "of_name garbage" `Quick test_of_name_rejects_garbage;
          Alcotest.test_case "all shapes" `Quick
            test_every_strategy_routes_every_shape;
          Alcotest.test_case "identity free" `Quick
            test_every_strategy_identity_free;
          Alcotest.test_case "default = best" `Quick test_default_route_is_best;
          Alcotest.test_case "generic graphs" `Quick test_generic_route_on_non_grid;
          Alcotest.test_case "worst-case bound" `Quick
            test_local_never_deeper_than_worst_case;
          qc strategy_agreement_property;
        ] );
    ]
