(* Unit and property tests for Qr_util: Rng, Stats, Heap, Dsu, Timer. *)

module Rng = Qr_util.Rng
module Stats = Qr_util.Stats
module Heap = Qr_util.Heap
module Dsu = Qr_util.Dsu
module Timer = Qr_util.Timer

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  checkb "different seeds, different streams" true !differs

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let xa = Rng.next_int64 a in
  let xb = Rng.next_int64 b in
  check Alcotest.int64 "copies replay" xa xb

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.next_int64 a and xb = Rng.next_int64 b in
  checkb "split streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    checkb "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_rejects () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 5 in
  for _ = 1 to 500 do
    let x = Rng.int_in rng (-3) 4 in
    checkb "in closed range" true (x >= -3 && x <= 4)
  done;
  checki "singleton range" 9 (Rng.int_in rng 9 9)

let test_rng_int_covers () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  checkb "all residues appear" true (Array.for_all (fun b -> b) seen)

let test_rng_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    checkb "in range" true (x >= 0. && x < 2.5)
  done

let test_rng_bool_mixes () =
  let rng = Rng.create 17 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng then incr trues
  done;
  checkb "roughly balanced" true (!trues > 400 && !trues < 600)

let test_rng_permutation_valid () =
  let rng = Rng.create 19 in
  for n = 1 to 30 do
    let p = Rng.permutation rng n in
    checkb "is permutation" true (Qr_perm.Perm.is_permutation p)
  done

let test_rng_permutation_uniformish () =
  (* Over many draws of S_3, each of the 6 permutations should appear. *)
  let rng = Rng.create 23 in
  let counts = Hashtbl.create 6 in
  for _ = 1 to 600 do
    let p = Rng.permutation rng 3 in
    let key = Array.to_list p in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  checki "all 6 permutations of S_3 appear" 6 (Hashtbl.length counts);
  Hashtbl.iter (fun _ c -> checkb "no permutation starved" true (c > 40)) counts

let test_rng_shuffle_preserves_multiset () =
  let rng = Rng.create 29 in
  let a = Array.init 50 (fun i -> i mod 7) in
  let before = List.sort compare (Array.to_list a) in
  Rng.shuffle_in_place rng a;
  check Alcotest.(list int) "multiset preserved" before
    (List.sort compare (Array.to_list a))

let test_rng_sample_distinct () =
  let rng = Rng.create 31 in
  for _ = 1 to 50 do
    let sample = Rng.sample_distinct rng 10 25 in
    checki "ten values" 10 (List.length sample);
    checki "distinct" 10 (List.length (List.sort_uniq compare sample));
    List.iter (fun x -> checkb "in range" true (x >= 0 && x < 25)) sample
  done;
  checki "k = n takes all" 25
    (List.length (List.sort_uniq compare (Rng.sample_distinct rng 25 25)))

let test_rng_choose () =
  let rng = Rng.create 37 in
  for _ = 1 to 100 do
    let x = Rng.choose rng [| 4; 8; 15 |] in
    checkb "member" true (List.mem x [ 4; 8; 15 ])
  done

(* ---------------------------------------------------------------- Stats *)

let feq = Alcotest.check (Alcotest.float 1e-9)

let test_stats_mean () = feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_variance () =
  feq "variance" 2.5 (Stats.variance [| 1.; 2.; 3.; 4.; 5. |]);
  feq "singleton" 0. (Stats.variance [| 42. |])

let test_stats_stddev () =
  feq "stddev of constant" 0. (Stats.stddev [| 3.; 3.; 3. |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  feq "min" (-1.) lo;
  feq "max" 7. hi

let test_stats_median_odd () = feq "odd" 3. (Stats.median [| 5.; 1.; 3. |])

let test_stats_median_even () =
  feq "even interpolates" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  feq "p0" 10. (Stats.percentile xs 0.);
  feq "p100" 50. (Stats.percentile xs 100.);
  feq "p25" 20. (Stats.percentile xs 25.)

let test_stats_percentile_interpolates () =
  feq "p50 of pair" 15. (Stats.percentile [| 10.; 20. |] 50.);
  feq "p90 interpolated" 46. (Stats.percentile [| 10.; 20.; 30.; 40.; 50. |] 90.)

let test_stats_percentile_singleton () =
  feq "p0" 7. (Stats.percentile [| 7. |] 0.);
  feq "p50" 7. (Stats.percentile [| 7. |] 50.);
  feq "p100" 7. (Stats.percentile [| 7. |] 100.)

let test_stats_percentile_unsorted_negative () =
  (* Array.sort with Float.compare must order negatives correctly. *)
  let xs = [| 3.; -5.; 0.; -1.; 2. |] in
  feq "min via p0" (-5.) (Stats.percentile xs 0.);
  feq "max via p100" 3. (Stats.percentile xs 100.);
  feq "median via p50" 0. (Stats.percentile xs 50.)

let test_stats_percentile_input_untouched () =
  let xs = [| 9.; 1.; 5. |] in
  ignore (Stats.percentile xs 50.);
  check Alcotest.(array (float 0.)) "input not sorted in place"
    [| 9.; 1.; 5. |] xs

let test_stats_empty_rejected () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_stats_of_ints () =
  feq "converted mean" 2. (Stats.mean (Stats.of_ints [| 1; 2; 3 |]))

let test_stats_of_list () =
  check Alcotest.(array (float 0.)) "list converted" [| 1.; 2.; 3. |]
    (Stats.of_list [ 1.; 2.; 3. ]);
  checki "empty list" 0 (Array.length (Stats.of_list []));
  feq "composes with mean" 2.5 (Stats.mean (Stats.of_list [ 2.; 3. ]))

(* ----------------------------------------------------------------- Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k k) [ 5; 3; 8; 1; 9; 2 ];
  let drained = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _) ->
        drained := k :: !drained;
        drain ()
  in
  drain ();
  check Alcotest.(list int) "sorted ascending" [ 1; 2; 3; 5; 8; 9 ]
    (List.rev !drained)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  checkb "empty" true (Heap.is_empty h);
  checkb "pop none" true (Heap.pop_min h = None);
  checkb "peek none" true (Heap.peek_min h = None)

let test_heap_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.add h ~key:4 "x";
  checkb "peek" true (Heap.peek_min h = Some (4, "x"));
  checki "still there" 1 (Heap.length h)

let test_heap_duplicate_keys () =
  let h = Heap.create () in
  Heap.add h ~key:1 "a";
  Heap.add h ~key:1 "b";
  checki "both kept" 2 (Heap.length h);
  let first = Heap.pop_min h and second = Heap.pop_min h in
  checkb "both key 1" true
    (match (first, second) with
    | Some (1, _), Some (1, _) -> true
    | _ -> false)

let test_heap_of_list () =
  let h = Heap.of_list [ (3, 'c'); (1, 'a'); (2, 'b') ] in
  checkb "min is 1" true (Heap.pop_min h = Some (1, 'a'))

let heap_sort_matches_list_sort =
  QCheck.Test.make ~name:"heap drains in sorted key order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h ~key:k k) keys;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* ------------------------------------------------------------------ Dsu *)

let test_dsu_initially_disjoint () =
  let d = Dsu.create 5 in
  checki "five sets" 5 (Dsu.count_sets d);
  checkb "not same" false (Dsu.same d 0 4)

let test_dsu_union_find () =
  let d = Dsu.create 6 in
  checkb "first union merges" true (Dsu.union d 0 1);
  checkb "second union merges" true (Dsu.union d 1 2);
  checkb "redundant union" false (Dsu.union d 0 2);
  checkb "same component" true (Dsu.same d 0 2);
  checki "component size" 3 (Dsu.size d 2);
  checki "sets left" 4 (Dsu.count_sets d)

let test_dsu_groups () =
  let d = Dsu.create 4 in
  ignore (Dsu.union d 0 3);
  let groups = Dsu.groups d in
  let nonempty = Array.to_list groups |> List.filter (fun g -> g <> []) in
  checki "three groups" 3 (List.length nonempty);
  checkb "0 and 3 together" true
    (List.exists (fun g -> List.sort compare g = [ 0; 3 ]) nonempty)

let dsu_union_count_invariant =
  QCheck.Test.make ~name:"dsu: sets + successful unions = n" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let d = Dsu.create 20 in
      let merges =
        List.fold_left
          (fun acc (a, b) -> if Dsu.union d a b then acc + 1 else acc)
          0 pairs
      in
      Dsu.count_sets d + merges = 20)

(* ---------------------------------------------------------------- Timer *)

let test_timer_monotone () =
  let t = Timer.start () in
  let x = ref 0 in
  for i = 1 to 100000 do
    x := !x + i
  done;
  checkb "elapsed nonnegative" true (Timer.elapsed_s t >= 0.)

let test_timer_time () =
  let result, dt = Timer.time (fun () -> 2 + 2) in
  checki "result passes through" 4 result;
  checkb "time nonnegative" true (dt >= 0.)

let test_timer_repeated () =
  let per_run = Timer.time_repeated ~min_runs:3 ~min_time_s:0.0 (fun () -> ()) in
  checkb "mean per-run nonnegative" true (per_run >= 0.)

let test_timer_now_ns_monotonic () =
  let prev = ref (Timer.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Timer.now_ns () in
    checkb "never goes backwards" true (t >= !prev);
    prev := t
  done

let test_timer_now_ns_advances () =
  (* The clock must actually tick: burn some work and require progress. *)
  let t0 = Timer.now_ns () in
  let x = ref 0 in
  while Timer.now_ns () = t0 && !x < 100_000_000 do
    incr x
  done;
  checkb "clock advances" true (Timer.now_ns () > t0)

let test_timer_now_s_matches_ns () =
  let ns = Timer.now_ns () in
  let s = Timer.now_s () in
  let dt = s -. (Int64.to_float ns *. 1e-9) in
  checkb "same clock (within 1s)" true (dt >= 0. && dt < 1.)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qr_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects" `Quick test_rng_int_rejects;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool mixes" `Quick test_rng_bool_mixes;
          Alcotest.test_case "permutation valid" `Quick test_rng_permutation_valid;
          Alcotest.test_case "permutation covers S3" `Quick
            test_rng_permutation_uniformish;
          Alcotest.test_case "shuffle multiset" `Quick
            test_rng_shuffle_preserves_multiset;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile interpolates" `Quick
            test_stats_percentile_interpolates;
          Alcotest.test_case "percentile singleton" `Quick
            test_stats_percentile_singleton;
          Alcotest.test_case "percentile negatives" `Quick
            test_stats_percentile_unsorted_negative;
          Alcotest.test_case "percentile pure" `Quick
            test_stats_percentile_input_untouched;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
          Alcotest.test_case "of_ints" `Quick test_stats_of_ints;
          Alcotest.test_case "of_list" `Quick test_stats_of_list;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicate_keys;
          Alcotest.test_case "of_list" `Quick test_heap_of_list;
          qc heap_sort_matches_list_sort;
        ] );
      ( "dsu",
        [
          Alcotest.test_case "initially disjoint" `Quick test_dsu_initially_disjoint;
          Alcotest.test_case "union/find" `Quick test_dsu_union_find;
          Alcotest.test_case "groups" `Quick test_dsu_groups;
          qc dsu_union_count_invariant;
        ] );
      ( "timer",
        [
          Alcotest.test_case "monotone" `Quick test_timer_monotone;
          Alcotest.test_case "time" `Quick test_timer_time;
          Alcotest.test_case "repeated" `Quick test_timer_repeated;
          Alcotest.test_case "now_ns monotonic" `Quick
            test_timer_now_ns_monotonic;
          Alcotest.test_case "now_ns advances" `Quick test_timer_now_ns_advances;
          Alcotest.test_case "now_s matches now_ns" `Quick
            test_timer_now_s_matches_ns;
        ] );
    ]
