(* Tests for the SABRE-style swap-insertion transpiler. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let equivalent_result grid logical (result : Transpile.result) seed =
  let n = Grid.size grid in
  let psi = Statevector.random_state (Rng.create seed) n in
  let out_logical = Statevector.run logical psi in
  let placed =
    Statevector.permute_qubits psi (Layout.to_phys_array result.initial)
  in
  let out_phys = Statevector.run result.physical placed in
  let back = Array.init n (fun v -> Layout.logical result.final v) in
  Statevector.approx_equal out_logical
    (Statevector.permute_qubits out_phys back)

let test_feasible_circuit_untouched () =
  let grid = Grid.make ~rows:2 ~cols:3 in
  let c = Library.ising_trotter_2d grid ~steps:1 ~theta:0.3 in
  let r = Sabre_lite.run_grid grid c in
  checki "no swaps" 0 (Circuit.swap_count r.physical);
  checki "same size" (Circuit.size c) (Circuit.size r.physical);
  checkb "feasible" true (Circuit.is_feasible (Grid.graph grid) r.physical)

let test_single_distant_gate () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let c = Circuit.create ~num_qubits:9 [ Gate.Two (Gate.CX, 0, 8) ] in
  let r = Sabre_lite.run_grid grid c in
  checkb "feasible" true (Circuit.is_feasible (Grid.graph grid) r.physical);
  checkb "swaps inserted" true (Circuit.swap_count r.physical > 0);
  checki "cx survives" 1
    (List.length
       (List.filter
          (fun g -> match g with Gate.Two (Gate.CX, _, _) -> true | _ -> false)
          (Circuit.gates r.physical)))

let test_gate_count_preserved () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 1 in
  let c = Library.random_two_qubit rng ~num_qubits:9 ~gates:50 in
  let r = Sabre_lite.run_grid grid c in
  checki "logical gates preserved" (Circuit.size c)
    (Circuit.size r.physical - Circuit.swap_count r.physical)

let test_dependency_order_respected () =
  (* Two CX gates sharing a qubit must stay ordered even with routing in
     between; correctness is checked by exact simulation. *)
  let grid = Grid.make ~rows:2 ~cols:3 in
  let c =
    Circuit.create ~num_qubits:6
      [ Gate.Two (Gate.CX, 0, 5); Gate.Two (Gate.CX, 5, 3);
        Gate.One (Gate.H, 5); Gate.Two (Gate.CX, 3, 0) ]
  in
  let r = Sabre_lite.run_grid grid c in
  checkb "equivalent" true (equivalent_result grid c r 11)

let test_statevector_equivalence_suite () =
  let grid = Grid.make ~rows:2 ~cols:4 in
  let rng = Rng.create 2 in
  for seed = 0 to 4 do
    let c = Library.random_two_qubit rng ~num_qubits:8 ~gates:30 in
    let r = Sabre_lite.run_grid grid c in
    checkb "feasible" true (Circuit.is_feasible (Grid.graph grid) r.physical);
    checkb "equivalent" true (equivalent_result grid c r seed)
  done

let test_qft_on_line () =
  (* The stress case: all-to-all circuit on a path. *)
  let grid = Grid.make ~rows:1 ~cols:7 in
  let c = Library.qft 7 in
  let r = Sabre_lite.run_grid grid c in
  checkb "feasible" true (Circuit.is_feasible (Grid.graph grid) r.physical);
  checkb "equivalent" true (equivalent_result grid c r 3)

let test_initial_layout_respected () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let initial = Layout.of_phys_of_logical [| 3; 2; 1; 0 |] in
  let c = Circuit.create ~num_qubits:4 [ Gate.Two (Gate.CX, 0, 1) ] in
  let r = Sabre_lite.run_grid ~initial grid c in
  checki "no swaps needed" 0 (Circuit.swap_count r.physical);
  checkb "layout kept" true (Layout.equal r.initial initial)

let test_lookahead_config () =
  (* Different configs still give correct results. *)
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 3 in
  let c = Library.random_two_qubit rng ~num_qubits:9 ~gates:40 in
  List.iter
    (fun config ->
      let r = Sabre_lite.run_grid ~config grid c in
      checkb "feasible" true (Circuit.is_feasible (Grid.graph grid) r.physical);
      checkb "equivalent" true (equivalent_result grid c r 7))
    [ Sabre_lite.default_config;
      { Sabre_lite.default_config with Sabre_lite.lookahead = 0 };
      { Sabre_lite.default_config with Sabre_lite.lookahead_weight = 0. };
      { Sabre_lite.default_config with Sabre_lite.decay = 0.1; decay_reset = 1 } ]

let test_generic_coupling_graph () =
  let g = Graph.cycle 6 in
  let oracle = Distance.of_graph g in
  let rng = Rng.create 4 in
  let c = Library.random_two_qubit rng ~num_qubits:6 ~gates:20 in
  let r = Sabre_lite.run ~graph:g ~dist:oracle c in
  checkb "feasible on cycle" true (Circuit.is_feasible g r.physical)

let test_size_mismatch_rejected () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let c = Circuit.create ~num_qubits:3 [] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Sabre_lite.run: circuit and device sizes differ")
    (fun () -> ignore (Sabre_lite.run_grid grid c))

let test_comparable_to_slice_transpiler () =
  (* Both transpilers solve the same instances; neither should be
     catastrophically worse in swap count (within 4x either way on random
     mid-size circuits). *)
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 5 in
  let c = Library.random_two_qubit rng ~num_qubits:9 ~gates:60 in
  let sabre = Sabre_lite.run_grid grid c in
  let slice = transpile grid c in
  let s1 = Circuit.swap_count sabre.physical in
  let s2 = Circuit.swap_count slice.physical in
  checkb
    (Printf.sprintf "swap counts in the same regime (sabre=%d slice=%d)" s1 s2)
    true
    (s1 <= 4 * max 1 s2 && s2 <= 4 * max 1 s1)

let sabre_property =
  QCheck.Test.make ~name:"sabre always yields feasible equivalent circuits"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let grid = Grid.make ~rows:2 ~cols:3 in
      let rng = Rng.create seed in
      let c = Library.random_two_qubit rng ~num_qubits:6 ~gates:15 in
      let r = Sabre_lite.run_grid grid c in
      Circuit.is_feasible (Grid.graph grid) r.physical
      && equivalent_result grid c r seed)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sabre_lite"
    [
      ( "sabre_lite",
        [
          Alcotest.test_case "feasible untouched" `Quick
            test_feasible_circuit_untouched;
          Alcotest.test_case "distant gate" `Quick test_single_distant_gate;
          Alcotest.test_case "gate count" `Quick test_gate_count_preserved;
          Alcotest.test_case "dependencies" `Quick test_dependency_order_respected;
          Alcotest.test_case "statevector suite" `Quick
            test_statevector_equivalence_suite;
          Alcotest.test_case "qft on line" `Quick test_qft_on_line;
          Alcotest.test_case "initial layout" `Quick test_initial_layout_respected;
          Alcotest.test_case "configs" `Quick test_lookahead_config;
          Alcotest.test_case "generic graph" `Quick test_generic_coupling_graph;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch_rejected;
          Alcotest.test_case "vs slice transpiler" `Quick
            test_comparable_to_slice_transpiler;
          qc sabre_property;
        ] );
    ]
