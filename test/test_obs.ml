(* Tests for Qr_obs: Json round-trips, span tracing, metrics registry. *)

module Json = Qr_obs.Json
module Trace = Qr_obs.Trace
module Metrics = Qr_obs.Metrics

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Every test leaves the global sinks disabled so suites can run in any
   order. *)
let with_clean_sinks f =
  let finally () =
    ignore (Trace.stop ());
    Metrics.disable ();
    Metrics.reset ()
  in
  Fun.protect ~finally f

(* ----------------------------------------------------------------- Json *)

let test_json_print () =
  checks "scalars"
    {|{"a":null,"b":true,"c":-3,"d":"x\"y\n","e":[1,2.5]}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Null);
            ("b", Json.Bool true);
            ("c", Json.Int (-3));
            ("d", Json.String "x\"y\n");
            ("e", Json.List [ Json.Int 1; Json.Float 2.5 ]);
          ]))

let test_json_float_keeps_kind () =
  (* Integer-valued floats must still parse back as floats. *)
  let doc = Json.List [ Json.Float 5.0; Json.Int 5 ] in
  match Json.of_string (Json.to_string doc) with
  | Ok (Json.List [ Json.Float f; Json.Int i ]) ->
      check (Alcotest.float 0.) "float survives" 5.0 f;
      checki "int survives" 5 i
  | Ok other -> Alcotest.failf "unexpected shape: %s" (Json.to_string other)
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_json_nonfinite_is_null () =
  checks "nan -> null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]))

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("name", Json.String "röute \t \\ \x07");
        ("xs", Json.List [ Json.Int 0; Json.Int (-42); Json.Float 1e-3 ]);
        ("nested", Json.Obj [ ("deep", Json.List [ Json.Obj [] ]) ]);
        ("flag", Json.Bool false);
        ("nothing", Json.Null);
      ]
  in
  let again = Json.of_string_exn (Json.to_string doc) in
  checkb "round-trip equal" true (Json.equal doc again)

let test_json_parse_escapes () =
  match Json.of_string {|"aAé\n"|} with
  | Ok (Json.String s) -> checks "escapes decoded" "aA\xc3\xa9\n" s
  | _ -> Alcotest.fail "expected a string"

let test_json_parse_errors () =
  let is_error s =
    match Json.of_string s with Error _ -> true | Ok _ -> false
  in
  checkb "trailing garbage" true (is_error "1 2");
  checkb "unterminated string" true (is_error {|"abc|});
  checkb "bare word" true (is_error "nul");
  checkb "missing comma" true (is_error {|[1 2]|});
  checkb "empty input" true (is_error "");
  checkb "trailing newline ok" false (is_error "[1,2]\n")

let test_json_deep_nesting () =
  (* The recursive-descent parser must take heavily nested documents in
     stride — 512 levels is far beyond anything the wire protocol emits. *)
  let depth = 512 in
  let text =
    String.concat "" [ String.make depth '['; "7"; String.make depth ']' ]
  in
  let rec unwrap d doc =
    match (d, doc) with
    | 0, Json.Int 7 -> true
    | d, Json.List [ inner ] when d > 0 -> unwrap (d - 1) inner
    | _ -> false
  in
  checkb "512-deep array parses" true (unwrap depth (Json.of_string_exn text));
  checkb "re-prints to the same bytes" true
    (Json.to_string (Json.of_string_exn text) = text)

let test_json_unicode_escapes () =
  let parsed text =
    match Json.of_string text with
    | Ok (Json.String s) -> s
    | Ok other -> Alcotest.failf "expected string, got %s" (Json.to_string other)
    | Error msg -> Alcotest.failf "parse error: %s" msg
  in
  checks "ascii" "A" (parsed "\"\\u0041\"");
  checks "two-byte utf-8" "\xc3\xa9" (parsed "\"\\u00e9\"");
  checks "three-byte utf-8" "\xe2\x82\xac" (parsed "\"\\u20ac\"");
  checks "uppercase hex digits" "\xe2\x82\xac" (parsed "\"\\u20AC\"");
  checks "escapes compose" "A=\xc3\xa9\n" (parsed "\"\\u0041=\\u00e9\\n\"");
  (* Lone surrogates are not rejected: they pass through as the naive
     3-byte encoding of the code point (documented parser behavior). *)
  checks "lone high surrogate" "\xed\xa0\x80" (parsed {|"\ud800"|});
  checks "lone low surrogate" "\xed\xbf\xbf" (parsed {|"\udfff"|});
  let is_error s =
    match Json.of_string s with Error _ -> true | Ok _ -> false
  in
  checkb "truncated \\u" true (is_error {|"\u00|});
  checkb "short \\u" true (is_error {|"\u12"|});
  checkb "non-hex \\u" true (is_error {|"\uzzzz"|})

let test_json_error_offsets () =
  (* Error messages carry the byte offset of the failure — the server
     echoes them back to clients, so they must point at the right spot. *)
  let error_of text =
    match Json.of_string text with
    | Error msg -> msg
    | Ok doc -> Alcotest.failf "unexpected parse: %s" (Json.to_string doc)
  in
  checks "trailing garbage after scalar" "trailing garbage at byte 2"
    (error_of "1 2");
  checks "trailing garbage after list" "trailing garbage at byte 5"
    (error_of "[1,2]x");
  checks "trailing second document" "trailing garbage at byte 8"
    (error_of {|{"a":1} {"b":2}|});
  checkb "offset skips interior whitespace" true
    (error_of "[1,2]   x" = "trailing garbage at byte 8")

let test_json_nonfinite_roundtrip () =
  (* Non-finite floats print as null (JSON has no NaN/inf), and the
     printed document must parse back cleanly. *)
  let doc =
    Json.List
      [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity;
        Json.Float 1.5 ]
  in
  let text = Json.to_string doc in
  checks "printed as null" "[null,null,null,1.5]" text;
  checkb "round-trips as nulls" true
    (Json.of_string_exn text
    = Json.List [ Json.Null; Json.Null; Json.Null; Json.Float 1.5 ]);
  (* Stable under a second print/parse cycle. *)
  checks "second cycle stable" text
    (Json.to_string (Json.of_string_exn text))

let test_json_member () =
  let doc = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  checkb "present" true (Json.member "a" doc = Some (Json.Int 1));
  checkb "null field present" true (Json.member "b" doc = Some Json.Null);
  checkb "absent" true (Json.member "c" doc = None);
  checkb "non-object" true (Json.member "a" (Json.Int 3) = None)

(* ---------------------------------------------------------------- Trace *)

let test_trace_disabled_noop () =
  with_clean_sinks @@ fun () ->
  checkb "disabled" false (Trace.enabled ());
  let r = Trace.with_span "ghost" (fun () -> 7) in
  checki "value passes through" 7 r;
  Trace.add_attr "k" (Trace.Int 1);
  checki "nothing recorded" 0 (List.length (Trace.spans ()))

let test_trace_nesting () =
  with_clean_sinks @@ fun () ->
  let _, spans =
    Trace.run (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> ());
            Trace.with_span "inner" (fun () -> ())))
  in
  checki "three spans" 3 (List.length spans);
  (* Completion order: children before parents. *)
  (match List.map (fun (s : Trace.span) -> (s.name, s.depth)) spans with
  | [ ("inner", 1); ("inner", 1); ("outer", 0) ] -> ()
  | other ->
      Alcotest.failf "unexpected order/depths: %s"
        (String.concat "; "
           (List.map (fun (n, d) -> Printf.sprintf "%s@%d" n d) other)));
  let outer = List.nth spans 2 in
  let inner_total =
    List.fold_left
      (fun acc (s : Trace.span) ->
        if s.name = "inner" then Int64.add acc s.dur_ns else acc)
      0L spans
  in
  checkb "durations nonnegative" true
    (List.for_all (fun (s : Trace.span) -> s.dur_ns >= 0L) spans);
  checkb "outer contains children" true (outer.dur_ns >= inner_total);
  checkb "self = dur - children" true
    (outer.self_ns = Int64.sub outer.dur_ns inner_total)

let test_trace_attrs_and_exceptions () =
  with_clean_sinks @@ fun () ->
  let (), spans =
    Trace.run (fun () ->
        (try
           Trace.with_span "failing" ~attrs:[ ("static", Trace.Bool true) ]
             (fun () ->
               Trace.add_attr "late" (Trace.Int 9);
               failwith "boom")
         with Failure _ -> ());
        Trace.add_attr "orphan" (Trace.Int 0))
  in
  match spans with
  | [ s ] ->
      checks "recorded despite raise" "failing" s.name;
      checkb "static attr kept" true
        (List.mem_assoc "static" s.attrs);
      checkb "late attr kept" true (List.mem_assoc "late" s.attrs)
  | _ -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_trace_stop_clears () =
  with_clean_sinks @@ fun () ->
  Trace.start ();
  Trace.with_span "a" (fun () -> ());
  let first = Trace.stop () in
  checki "one span" 1 (List.length first);
  checkb "disabled after stop" false (Trace.enabled ());
  checki "stop drained" 0 (List.length (Trace.stop ()));
  Trace.with_span "b" (fun () -> ());
  checki "nothing recorded while off" 0 (List.length (Trace.spans ()))

let test_trace_chrome_json () =
  with_clean_sinks @@ fun () ->
  let (), spans =
    Trace.run (fun () ->
        Trace.with_span "phase" ~attrs:[ ("k", Trace.Int 3) ] (fun () -> ()))
  in
  let doc = Trace.to_chrome_json spans in
  (* Must survive a print/parse cycle and contain a complete event. *)
  let again = Json.of_string_exn (Json.to_string doc) in
  match Json.member "traceEvents" again with
  | Some (Json.List [ ev ]) ->
      checkb "name" true (Json.member "name" ev = Some (Json.String "phase"));
      checkb "complete event" true
        (Json.member "ph" ev = Some (Json.String "X"));
      checkb "has ts" true (Json.member "ts" ev <> None);
      checkb "has dur" true (Json.member "dur" ev <> None);
      (match Json.member "args" ev with
      | Some args -> checkb "attr" true (Json.member "k" args = Some (Json.Int 3))
      | None -> Alcotest.fail "missing args")
  | _ -> Alcotest.fail "expected traceEvents with one event"

let test_trace_summary () =
  with_clean_sinks @@ fun () ->
  let (), spans =
    Trace.run (fun () ->
        Trace.with_span "a" (fun () ->
            Trace.with_span "b" (fun () -> ()));
        Trace.with_span "a" (fun () -> ()))
  in
  let rows = Trace.summary spans in
  checki "two rows" 2 (List.length rows);
  let row name = List.find (fun (r : Trace.row) -> r.span_name = name) rows in
  checki "a count" 2 (row "a").count;
  checki "b count" 1 (row "b").count;
  checkb "max <= total" true ((row "a").max_ns <= (row "a").total_ns);
  (* Self-times partition the wall time: sum of self = sum of root durs. *)
  let self_sum =
    List.fold_left (fun acc (r : Trace.row) -> Int64.add acc r.self_total_ns)
      0L rows
  in
  let root_sum =
    List.fold_left
      (fun acc (s : Trace.span) ->
        if s.depth = 0 then Int64.add acc s.dur_ns else acc)
      0L spans
  in
  checkb "self-times partition wall time" true (self_sum = root_sum);
  let table = Trace.summary_table spans in
  checkb "table mentions both" true
    (String.length table > 0
    && String.index_opt table 'a' <> None
    && String.index_opt table 'b' <> None)

(* -------------------------------------------------------------- Metrics *)

let test_metrics_disabled_noop () =
  with_clean_sinks @@ fun () ->
  let c = Metrics.counter "t_noop_counter" in
  let g = Metrics.gauge "t_noop_gauge" in
  let h = Metrics.histogram "t_noop_hist" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.set g 3.5;
  Metrics.observe h 2.0;
  checki "counter untouched" 0 (Metrics.value c);
  checkb "gauge untouched" true (Metrics.gauge_value g = None);
  checki "histogram untouched" 0 (Metrics.histogram_count h)

let test_metrics_counter () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let c = Metrics.counter "t_counter" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "accumulates" 5 (Metrics.value c);
  checkb "lookup finds it" true (Metrics.find_counter "t_counter" = Some c);
  checkb "unknown is None" true (Metrics.find_counter "t_missing" = None);
  (* Re-registration returns the same instrument. *)
  let c' = Metrics.counter "t_counter" in
  Metrics.incr c';
  checki "shared" 6 (Metrics.value c);
  Metrics.reset ();
  checki "reset zeroes" 0 (Metrics.value c)

let test_metrics_kind_clash () =
  with_clean_sinks @@ fun () ->
  ignore (Metrics.counter "t_clash");
  checkb "gauge over counter rejected" true
    (try
       ignore (Metrics.gauge "t_clash");
       false
     with Invalid_argument _ -> true)

let test_metrics_gauge () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let g = Metrics.gauge "t_gauge" in
  Metrics.set g 1.5;
  Metrics.set g (-2.0);
  checkb "last value wins" true (Metrics.gauge_value g = Some (-2.0))

let test_metrics_histogram_buckets () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] "t_hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 100.0 ];
  checki "count" 7 (Metrics.histogram_count h);
  Alcotest.check (Alcotest.float 1e-9) "sum" 112.0 (Metrics.histogram_sum h);
  (* Bounds are inclusive upper bounds; above the last bound -> overflow. *)
  (match Metrics.bucket_counts h with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
      Alcotest.check (Alcotest.float 0.) "bound 1" 1.0 b1;
      Alcotest.check (Alcotest.float 0.) "bound 2" 2.0 b2;
      Alcotest.check (Alcotest.float 0.) "bound 3" 4.0 b3;
      checkb "overflow bound" true (binf = infinity);
      checki "<=1" 2 c1;
      checki "(1,2]" 2 c2;
      checki "(2,4]" 2 c3;
      checki ">4" 1 cinf
  | other -> Alcotest.failf "expected 4 buckets, got %d" (List.length other));
  Metrics.reset ();
  checki "reset count" 0 (Metrics.histogram_count h);
  checkb "reset buckets" true
    (List.for_all (fun (_, c) -> c = 0) (Metrics.bucket_counts h))

let test_metrics_default_buckets () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let h = Metrics.histogram "t_hist_default" in
  Metrics.observe h 3.0;
  Metrics.observe h 5000.0;
  (* Default bounds are powers of two 1..1024 plus overflow. *)
  checki "eleven bounds plus overflow" 12 (List.length (Metrics.bucket_counts h));
  checki "observation in (2,4]" 1
    (List.assoc 4.0 (Metrics.bucket_counts h));
  checki "overflow catches big" 1
    (List.assoc infinity (Metrics.bucket_counts h))

let test_metrics_to_json () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let c = Metrics.counter "t_json_counter" in
  let g = Metrics.gauge "t_json_gauge" in
  let _unset = Metrics.gauge "t_json_gauge_unset" in
  let h = Metrics.histogram ~buckets:[| 2.0 |] "t_json_hist" in
  Metrics.add c 3;
  Metrics.set g 0.5;
  Metrics.observe h 1.0;
  Metrics.observe h 9.0;
  let doc = Json.of_string_exn (Json.to_string (Metrics.to_json ())) in
  (match Json.member "counters" doc with
  | Some counters ->
      checkb "counter value" true
        (Json.member "t_json_counter" counters = Some (Json.Int 3))
  | None -> Alcotest.fail "missing counters");
  (match Json.member "gauges" doc with
  | Some gauges ->
      checkb "gauge value" true
        (Json.member "t_json_gauge" gauges = Some (Json.Float 0.5));
      checkb "unset gauge omitted" true
        (Json.member "t_json_gauge_unset" gauges = None)
  | None -> Alcotest.fail "missing gauges");
  match Json.member "histograms" doc with
  | Some hists -> (
      match Json.member "t_json_hist" hists with
      | Some hist ->
          checkb "hist count" true (Json.member "count" hist = Some (Json.Int 2));
          checkb "hist sum" true
            (Json.member "sum" hist = Some (Json.Float 10.0));
          (match Json.member "buckets" hist with
          | Some (Json.List buckets) -> checki "two buckets" 2 (List.length buckets)
          | _ -> Alcotest.fail "missing buckets")
      | None -> Alcotest.fail "missing t_json_hist")
  | None -> Alcotest.fail "missing histograms"

(* ----------------------------------------------------------- exposition *)

(* The exposition is line-oriented; index it as such. *)
let prom_lines () = String.split_on_char '\n' (Metrics.to_prometheus ())

let has_line lines l = List.mem l lines

let test_prometheus_counter_gauge () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let c = Metrics.counter ~help:"A test counter." "t_prom_counter" in
  let g = Metrics.gauge "t_prom_gauge" in
  let _unset = Metrics.gauge "t_prom_gauge_unset" in
  Metrics.add c 7;
  Metrics.set g 2.5;
  let lines = prom_lines () in
  checkb "help line" true (has_line lines "# HELP t_prom_counter A test counter.");
  checkb "type line" true (has_line lines "# TYPE t_prom_counter counter");
  checkb "counter sample" true (has_line lines "t_prom_counter 7");
  checkb "gauge type" true (has_line lines "# TYPE t_prom_gauge gauge");
  checkb "gauge sample" true (has_line lines "t_prom_gauge 2.5");
  checkb "unset gauge omitted" true
    (not
       (List.exists
          (fun l ->
            String.length l >= 17 && String.sub l 0 17 = "t_prom_gauge_unset")
          lines))

let test_prometheus_histogram_cumulative () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let h = Metrics.histogram ~buckets:[| 1.0; 2.5; 4.0 |] "t_prom_hist" in
  (* 1.0 lands exactly on a bound (inclusive); 9.0 only in the overflow. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 3.0; 9.0 ];
  let lines = prom_lines () in
  checkb "type histogram" true (has_line lines "# TYPE t_prom_hist histogram");
  (* Cumulative: le=1 holds 0.5 and the exactly-on-bound 1.0. *)
  checkb "le=1" true (has_line lines "t_prom_hist_bucket{le=\"1\"} 2");
  checkb "le=2.5" true (has_line lines "t_prom_hist_bucket{le=\"2.5\"} 2");
  checkb "le=4" true (has_line lines "t_prom_hist_bucket{le=\"4\"} 3");
  checkb "le=+Inf is total" true
    (has_line lines "t_prom_hist_bucket{le=\"+Inf\"} 4");
  checkb "sum" true (has_line lines "t_prom_hist_sum 13.5");
  checkb "count" true (has_line lines "t_prom_hist_count 4")

let test_prometheus_empty_histogram () =
  with_clean_sinks @@ fun () ->
  Metrics.enable ();
  let _h = Metrics.histogram ~buckets:[| 0.5; 8.0 |] "t_prom_empty" in
  let lines = prom_lines () in
  (* An unobserved histogram still exposes its full shape, all zeroes —
     scrapers need the series to exist before the first event. *)
  checkb "le=0.5 zero" true (has_line lines "t_prom_empty_bucket{le=\"0.5\"} 0");
  checkb "le=8 zero" true (has_line lines "t_prom_empty_bucket{le=\"8\"} 0");
  checkb "+Inf zero" true (has_line lines "t_prom_empty_bucket{le=\"+Inf\"} 0");
  checkb "sum zero" true (has_line lines "t_prom_empty_sum 0");
  checkb "count zero" true (has_line lines "t_prom_empty_count 0")

let test_latency_buckets_shape () =
  (* Strictly increasing, sub-millisecond resolution at the bottom,
     seconds at the top — the contract the *_ms histograms rely on. *)
  let b = Metrics.latency_buckets in
  checkb "first is sub-ms" true (b.(0) < 1.0);
  checkb "last is seconds" true (b.(Array.length b - 1) >= 10_000.0);
  let increasing = ref true in
  for k = 1 to Array.length b - 1 do
    if not (b.(k) > b.(k - 1)) then increasing := false
  done;
  checkb "strictly increasing" true !increasing

(* -------------------------------------------------------- Trace_context *)

module Trace_context = Qr_obs.Trace_context

let is_hex s = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let test_trace_context_mint () =
  let t = Trace_context.mint () in
  checki "trace_id width" 32 (String.length t.Trace_context.trace_id);
  checki "parent_id width" 16 (String.length t.Trace_context.parent_id);
  checkb "trace_id hex" true (is_hex t.Trace_context.trace_id);
  checkb "parent_id hex" true (is_hex t.Trace_context.parent_id);
  checkb "distinct mints" true
    (not (Trace_context.equal t (Trace_context.mint ())))

let test_trace_context_seeded () =
  Trace_context.seed 42;
  let a = Trace_context.mint () in
  Trace_context.seed 42;
  let b = Trace_context.mint () in
  checkb "seeded mint deterministic" true (Trace_context.equal a b)

let test_trace_context_roundtrip () =
  let t = Trace_context.mint () in
  let tp = Trace_context.to_traceparent t in
  checki "traceparent width" 55 (String.length tp);
  (match Trace_context.of_traceparent tp with
  | Ok t' -> checkb "roundtrip" true (Trace_context.equal t t')
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg);
  let child = Trace_context.child t in
  checks "child keeps trace_id" t.Trace_context.trace_id
    child.Trace_context.trace_id;
  checkb "child renames parent" true
    (child.Trace_context.parent_id <> t.Trace_context.parent_id)

let test_trace_context_rejects () =
  let bad tp = Result.is_error (Trace_context.of_traceparent tp) in
  checkb "garbage" true (bad "nope");
  checkb "bad version" true
    (bad "01-0123456789abcdef0123456789abcdef-0123456789abcdef-01");
  checkb "short trace_id" true (bad "00-0123-0123456789abcdef-01");
  checkb "uppercase rejected" true
    (bad "00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01");
  checkb "non-hex" true
    (bad "00-0123456789abcdex0123456789abcdef-0123456789abcdef-01");
  checkb "all-zero trace_id" true
    (bad "00-00000000000000000000000000000000-0123456789abcdef-01");
  checkb "all-zero parent" true
    (bad "00-0123456789abcdef0123456789abcdef-0000000000000000-01");
  checkb "make validates too" true
    (Result.is_error
       (Trace_context.make ~trace_id:"zz" ~parent_id:"0123456789abcdef"))

let test_trace_spans_carry_trace_id () =
  with_clean_sinks @@ fun () ->
  Fun.protect ~finally:(fun () -> Trace.set_trace_id None) @@ fun () ->
  let id = "0123456789abcdef0123456789abcdef" in
  Trace.set_trace_id (Some id);
  Trace.start ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" ~attrs:[ ("k", Trace.Int 1) ] (fun () -> ()));
  let stamped = Trace.stop () in
  checki "two spans" 2 (List.length stamped);
  List.iter
    (fun (s : Trace.span) ->
      checkb (s.Trace.name ^ " stamped") true
        (List.mem_assoc "trace_id" s.Trace.attrs
        && List.assoc "trace_id" s.Trace.attrs = Trace.String id))
    stamped;
  (* The given attrs survive alongside the stamp. *)
  let inner = List.find (fun (s : Trace.span) -> s.Trace.name = "inner") stamped in
  checkb "own attr kept" true
    (List.assoc_opt "k" inner.Trace.attrs = Some (Trace.Int 1));
  (* And with the context cleared, spans are unstamped again. *)
  Trace.set_trace_id None;
  Trace.start ();
  Trace.with_span "bare" (fun () -> ());
  match Trace.stop () with
  | [ s ] -> checkb "no stamp" true (not (List.mem_assoc "trace_id" s.Trace.attrs))
  | other -> Alcotest.failf "expected one span, got %d" (List.length other)

let test_trace_summary_alignment () =
  with_clean_sinks @@ fun () ->
  Trace.start ();
  Trace.with_span "a_span_name_much_longer_than_the_default_column" (fun () ->
      Trace.with_span "tiny" (fun () -> ()));
  let table = Trace.summary_table (Trace.stop ()) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' table)
  in
  checkb "several lines" true (List.length lines >= 3);
  (* Dynamic name padding: every rendered line has the same width, so
     the numeric columns line up even with long span names. *)
  match lines with
  | first :: rest ->
      let w = String.length first in
      List.iter
        (fun l -> checki ("line width of " ^ String.trim l) w (String.length l))
        rest
  | [] -> Alcotest.fail "empty table"

(* ------------------------------------------------------------------ Log *)

module Log = Qr_obs.Log

let has_substring ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

(* Capture records in memory and restore global log state afterwards. *)
let with_log_capture ?(level = Log.Debug) ?(format = Log.Json) f =
  let captured = ref [] in
  Log.set_sink (Some (fun line -> captured := line :: !captured));
  Log.set_level level;
  Log.set_format format;
  let finally () =
    Log.set_sink None;
    Log.set_level Log.Warn;
    Log.set_format Log.Logfmt
  in
  Fun.protect ~finally (fun () -> f captured)

let test_log_json_record () =
  with_log_capture @@ fun captured ->
  Log.info "hello" [ ("k", Json.Int 3); ("s", Json.String "v") ];
  match !captured with
  | [ line ] -> (
      match Json.of_string line with
      | Ok doc ->
          checkb "level field" true
            (Json.member "level" doc = Some (Json.String "info"));
          checkb "msg field" true
            (Json.member "msg" doc = Some (Json.String "hello"));
          checkb "kv int" true (Json.member "k" doc = Some (Json.Int 3));
          checkb "ts_ms present" true
            (match Json.member "ts_ms" doc with
            | Some (Json.Float ms) -> ms >= 0.
            | _ -> false)
      | Error msg -> Alcotest.failf "record is not JSON: %s" msg)
  | other -> Alcotest.failf "expected 1 record, got %d" (List.length other)

let test_log_logfmt_record () =
  with_log_capture ~format:Log.Logfmt @@ fun captured ->
  Log.warn "spaced message" [ ("plain", Json.String "bare"); ("n", Json.Int 2) ];
  match !captured with
  | [ line ] ->
      checkb "level" true
        (has_substring ~affix:"level=warn" line);
      checkb "quoted msg" true
        (has_substring ~affix:"msg=\"spaced message\"" line);
      checkb "bare value" true
        (has_substring ~affix:"plain=bare" line);
      checkb "int value" true (has_substring ~affix:"n=2" line)
  | other -> Alcotest.failf "expected 1 record, got %d" (List.length other)

let test_log_level_filter () =
  with_log_capture ~level:Log.Warn @@ fun captured ->
  checkb "would_log error" true (Log.would_log Log.Error);
  checkb "would not log info" true (not (Log.would_log Log.Info));
  Log.debug "dropped" [];
  Log.info "dropped" [];
  Log.error "kept" [];
  checki "only the error got through" 1 (List.length !captured)

let test_log_warn_once () =
  with_log_capture @@ fun captured ->
  Log.reset_once ();
  Log.warn_once ~key:"k1" "first" [];
  Log.warn_once ~key:"k1" "suppressed" [];
  Log.warn_once ~key:"k2" "other key" [];
  checki "two records" 2 (List.length !captured);
  Log.reset_once ();
  Log.warn_once ~key:"k1" "after reset" [];
  checki "reset re-arms" 3 (List.length !captured)

let test_log_level_parse () =
  checkb "info" true (Log.level_of_string "INFO" = Ok Log.Info);
  checkb "warning alias" true (Log.level_of_string "warning" = Ok Log.Warn);
  checkb "bad" true (Result.is_error (Log.level_of_string "loud"));
  checkb "json" true (Log.format_of_string "json" = Ok Log.Json);
  checkb "bad format" true (Result.is_error (Log.format_of_string "xml"))

(* ---------------------------------------------- instrumented routing run *)

let test_routed_counters_consistent () =
  (* End-to-end: spans and counters from an instrumented routing call, with
     swap_layers equal to the schedule depth actually returned. *)
  with_clean_sinks @@ fun () ->
  Metrics.reset ();
  Metrics.enable ();
  let grid = Qroute.Grid.make ~rows:6 ~cols:6 in
  let pi = Qroute.Rng.permutation (Qroute.Rng.create 5) (Qroute.Grid.size grid) in
  let sched, spans =
    Trace.run (fun () -> Qroute.Strategy.route Qroute.Strategy.Best grid pi)
  in
  Metrics.disable ();
  let names = List.map (fun (s : Trace.span) -> s.name) spans in
  List.iter
    (fun required ->
      checkb (required ^ " span present") true (List.mem required names))
    [ "route"; "band_search"; "mcbbm_assign"; "round1_columns";
      "round2_rows"; "round3_columns" ];
  let counter name =
    match Metrics.find_counter name with
    | Some c -> Metrics.value c
    | None -> Alcotest.failf "counter %s not registered" name
  in
  checki "route_calls" 1 (counter "route_calls");
  checki "swap_layers = depth" (Qroute.Schedule.depth sched)
    (counter "swap_layers");
  checki "swaps_total = size" (Qroute.Schedule.size sched)
    (counter "swaps_total");
  checkb "band_search_iterations counted" true
    (counter "band_search_iterations" > 0)

let () =
  Alcotest.run "qr_obs"
    [
      ( "json",
        [
          Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "float kind" `Quick test_json_float_keeps_kind;
          Alcotest.test_case "nonfinite" `Quick test_json_nonfinite_is_null;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "error offsets" `Quick test_json_error_offsets;
          Alcotest.test_case "nonfinite roundtrip" `Quick
            test_json_nonfinite_roundtrip;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled noop" `Quick test_trace_disabled_noop;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "attrs/exceptions" `Quick
            test_trace_attrs_and_exceptions;
          Alcotest.test_case "stop clears" `Quick test_trace_stop_clears;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json;
          Alcotest.test_case "summary" `Quick test_trace_summary;
          Alcotest.test_case "spans carry trace_id" `Quick
            test_trace_spans_carry_trace_id;
          Alcotest.test_case "summary alignment" `Quick
            test_trace_summary_alignment;
        ] );
      ( "trace-context",
        [
          Alcotest.test_case "mint" `Quick test_trace_context_mint;
          Alcotest.test_case "seeded" `Quick test_trace_context_seeded;
          Alcotest.test_case "roundtrip" `Quick test_trace_context_roundtrip;
          Alcotest.test_case "rejects" `Quick test_trace_context_rejects;
        ] );
      ( "log",
        [
          Alcotest.test_case "json record" `Quick test_log_json_record;
          Alcotest.test_case "logfmt record" `Quick test_log_logfmt_record;
          Alcotest.test_case "level filter" `Quick test_log_level_filter;
          Alcotest.test_case "warn once" `Quick test_log_warn_once;
          Alcotest.test_case "level parse" `Quick test_log_level_parse;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled noop" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "kind clash" `Quick test_metrics_kind_clash;
          Alcotest.test_case "gauge" `Quick test_metrics_gauge;
          Alcotest.test_case "histogram buckets" `Quick
            test_metrics_histogram_buckets;
          Alcotest.test_case "default buckets" `Quick
            test_metrics_default_buckets;
          Alcotest.test_case "to_json" `Quick test_metrics_to_json;
          Alcotest.test_case "prometheus scalars" `Quick
            test_prometheus_counter_gauge;
          Alcotest.test_case "prometheus cumulative" `Quick
            test_prometheus_histogram_cumulative;
          Alcotest.test_case "prometheus empty histogram" `Quick
            test_prometheus_empty_histogram;
          Alcotest.test_case "latency buckets" `Quick
            test_latency_buckets_shape;
        ] );
      ( "routing",
        [
          Alcotest.test_case "instrumented route" `Quick
            test_routed_counters_consistent;
        ] );
    ]
