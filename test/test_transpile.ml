(* Tests for Qr_circuit.Transpile: the mapping/routing alternation. *)

module Grid = Qr_graph.Grid
module Graph = Qr_graph.Graph
module Distance = Qr_graph.Distance
module Perm = Qr_perm.Perm
module Gate = Qr_circuit.Gate
module Circuit = Qr_circuit.Circuit
module Layout = Qr_circuit.Layout
module Transpile = Qr_circuit.Transpile
module Library = Qr_circuit.Library
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let local_engine () = Qroute.Router_registry.get "local"

let test_feasible_circuit_untouched () =
  let grid = Grid.make ~rows:2 ~cols:3 in
  let c = Library.ising_trotter_2d grid ~steps:1 ~theta:0.3 in
  let r = Transpile.run_grid grid c in
  checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) r);
  checki "no routing needed" 0 r.routed_slices;
  checki "no swaps" 0 (Circuit.swap_count r.physical);
  checki "same size" (Circuit.size c) (Circuit.size r.physical);
  checkb "layout unchanged" true (Layout.equal r.initial r.final)

let test_single_distant_gate () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  (* Qubits 0 and 8 are the opposite corners. *)
  let c = Circuit.create ~num_qubits:9 [ Gate.Two (Gate.CX, 0, 8) ] in
  let r = Transpile.run_grid grid c in
  checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) r);
  checki "one routed slice" 1 r.routed_slices;
  checkb "inserted swaps" true (Circuit.swap_count r.physical > 0);
  (* The CX must survive with its operands adjacent at execution time. *)
  checki "one cx" 1
    (List.length
       (List.filter
          (fun g -> match g with Gate.Two (Gate.CX, _, _) -> true | _ -> false)
          (Circuit.gates r.physical)))

let test_gate_count_preserved () =
  (* Every logical gate appears exactly once; only SWAPs are added. *)
  let rng = Rng.create 1 in
  let grid = Grid.make ~rows:3 ~cols:3 in
  let c = Library.random_two_qubit rng ~num_qubits:9 ~gates:40 in
  let r = Transpile.run_grid grid c in
  checki "logical gates preserved"
    (Circuit.size c)
    (Circuit.size r.physical - Circuit.swap_count r.physical)

let test_initial_layout_respected () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let initial = Layout.of_phys_of_logical [| 3; 2; 1; 0 |] in
  (* Logical 0 and 1 sit on physical 3 and 2, which are adjacent. *)
  let c = Circuit.create ~num_qubits:4 [ Gate.Two (Gate.CX, 0, 1) ] in
  let r = Transpile.run_grid ~initial grid c in
  checki "no routing" 0 r.routed_slices;
  (match Circuit.gates r.physical with
  | [ Gate.Two (Gate.CX, a, b) ] ->
      checki "control on phys 3" 3 a;
      checki "target on phys 2" 2 b
  | _ -> Alcotest.fail "expected exactly the mapped CX");
  checkb "layout preserved" true (Layout.equal r.initial initial)

let test_size_mismatch_rejected () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let c = Circuit.create ~num_qubits:3 [] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Transpile.run: circuit and device sizes differ")
    (fun () -> ignore (Transpile.run_grid grid c))

let test_single_qubit_gates_follow_layout () =
  let grid = Grid.make ~rows:1 ~cols:4 in
  (* Force routing between two H gates on qubit 0 and check the second H
     lands wherever qubit 0 ends up. *)
  let c =
    Circuit.create ~num_qubits:4
      [ Gate.One (Gate.H, 0); Gate.Two (Gate.CX, 0, 3); Gate.One (Gate.H, 0) ]
  in
  let r = Transpile.run_grid grid c in
  checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) r);
  let hs =
    List.filter_map
      (fun g -> match g with Gate.One (Gate.H, q) -> Some q | _ -> None)
      (Circuit.gates r.physical)
  in
  checki "two H gates" 2 (List.length hs);
  checki "first H at initial position" 0 (List.hd hs);
  checki "second H follows the qubit" (Layout.phys r.final 0) (List.nth hs 1)

let test_every_strategy_router () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let rng = Rng.create 2 in
  let c = Library.random_two_qubit rng ~num_qubits:9 ~gates:25 in
  List.iter
    (fun strategy ->
      let r = Qroute.transpile ~strategy grid c in
      checkb
        ("feasible with " ^ Qroute.Strategy.name strategy)
        true
        (Transpile.verify_feasible (Grid.graph grid) r))
    Qroute.Strategy.all

let test_generic_graph_transpile () =
  (* Transpile on a cycle coupling graph using the generic entry point. *)
  let g = Graph.cycle 6 in
  let oracle = Distance.of_graph g in
  let rng = Rng.create 3 in
  let c = Library.random_two_qubit rng ~num_qubits:6 ~gates:15 in
  let router rho = Qr_token.Parallel_ats.route ~trials:1 g oracle rho in
  let r = Transpile.run ~graph:g ~dist:oracle ~router c in
  checkb "feasible on cycle" true (Circuit.is_feasible g r.physical)

let test_qft_on_line_heavy_routing () =
  (* QFT on a line needs lots of routing (the paper's extreme case). *)
  let grid = Grid.make ~rows:1 ~cols:6 in
  let c = Library.qft 6 in
  let r = Transpile.run_grid grid c in
  checkb "feasible" true (Transpile.verify_feasible (Grid.graph grid) r);
  checkb "swaps added" true (Circuit.swap_count r.physical > 0);
  checkb "routing happened" true (r.routed_slices > 0)

let test_swap_layers_accounting () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let c = Circuit.create ~num_qubits:9 [ Gate.Two (Gate.CX, 0, 8) ] in
  let r = Transpile.run_grid grid c in
  checkb "swap layer count positive" true (r.swap_layers > 0)

let test_min_total_extension_correct_and_no_worse () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let rng = Rng.create 9 in
  let c = Library.random_two_qubit rng ~num_qubits:16 ~gates:50 in
  let nearest = Transpile.run_grid ~extension:Transpile.Nearest grid c in
  let hungarian = Transpile.run_grid ~extension:Transpile.Min_total grid c in
  checkb "nearest feasible" true (Circuit.is_feasible (Grid.graph grid) nearest.physical);
  checkb "min-total feasible" true
    (Circuit.is_feasible (Grid.graph grid) hungarian.physical);
  (* Both must preserve semantics; check the Hungarian variant exactly. *)
  let psi = Qr_sim.Statevector.random_state (Rng.create 1) 16 in
  let out_logical = Qr_sim.Statevector.run c psi in
  let placed =
    Qr_sim.Statevector.permute_qubits psi (Layout.to_phys_array hungarian.initial)
  in
  let out_phys = Qr_sim.Statevector.run hungarian.physical placed in
  let back = Array.init 16 (fun v -> Layout.logical hungarian.final v) in
  checkb "min-total equivalent" true
    (Qr_sim.Statevector.approx_equal out_logical
       (Qr_sim.Statevector.permute_qubits out_phys back));
  (* Empirically the optimal completion should not lose by much; allow 20%
     slack to keep the test robust across instances. *)
  checkb "min-total competitive" true
    (Circuit.swap_count hungarian.physical
    <= Circuit.swap_count nearest.physical * 6 / 5)

let transpile_property =
  QCheck.Test.make ~name:"transpilation always yields a feasible circuit"
    ~count:50
    QCheck.(triple (int_range 2 4) (int_range 2 4) (int_range 0 100000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let rng = Rng.create seed in
      let c = Library.random_two_qubit rng ~num_qubits:(m * n) ~gates:20 in
      let r =
        Transpile.run_grid ~engine:(local_engine ()) grid c
      in
      Circuit.is_feasible (Grid.graph grid) r.physical
      && Circuit.size r.physical - Circuit.swap_count r.physical
         = Circuit.size c)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "transpile"
    [
      ( "transpile",
        [
          Alcotest.test_case "feasible untouched" `Quick
            test_feasible_circuit_untouched;
          Alcotest.test_case "distant gate" `Quick test_single_distant_gate;
          Alcotest.test_case "gate count preserved" `Quick
            test_gate_count_preserved;
          Alcotest.test_case "initial layout" `Quick test_initial_layout_respected;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch_rejected;
          Alcotest.test_case "1q gates follow" `Quick
            test_single_qubit_gates_follow_layout;
          Alcotest.test_case "all strategies" `Quick test_every_strategy_router;
          Alcotest.test_case "generic graph" `Quick test_generic_graph_transpile;
          Alcotest.test_case "qft on line" `Quick test_qft_on_line_heavy_routing;
          Alcotest.test_case "swap layers" `Quick test_swap_layers_accounting;
          Alcotest.test_case "min-total extension" `Quick
            test_min_total_extension_correct_and_no_worse;
          qc transpile_property;
        ] );
    ]
