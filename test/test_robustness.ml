(* Robustness suite: failure injection (the validators must catch corrupted
   artifacts) and a golden regression corpus pinning router behavior on
   fixed seeds. *)

open Qroute

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------ failure injection *)

let base_instance () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pi = Generators.generate grid Generators.Random (Rng.create 7) in
  let sched = route grid pi in
  (grid, pi, sched)

let test_detects_dropped_layer () =
  let grid, pi, sched = base_instance () in
  match sched with
  | [] -> Alcotest.fail "expected a nonempty schedule"
  | _ :: corrupted ->
      checkb "dropped layer caught" false
        (Schedule.realizes ~n:(Grid.size grid) corrupted pi)

let test_detects_duplicated_layer () =
  let grid, pi, sched = base_instance () in
  match sched with
  | first :: _ ->
      checkb "duplicated layer caught" false
        (Schedule.realizes ~n:(Grid.size grid) (first :: sched) pi)
  | [] -> Alcotest.fail "expected a nonempty schedule"

let test_detects_reordered_layers () =
  let grid, pi, sched = base_instance () in
  let reversed = List.rev sched in
  (* Either the reversed schedule fails to realize pi, or pi happens to be
     an involution-like case — rule that out by checking against the
     inverse too: reversal realizes the inverse, which differs from pi
     unless pi is an involution. *)
  let realized = Schedule.apply ~n:(Grid.size grid) reversed in
  checkb "reversal realizes the inverse" true
    (Perm.equal realized (Perm.inverse pi))

let test_detects_non_matching_layer () =
  let grid, _, _ = base_instance () in
  let bad = [ [| (0, 1); (1, 2) |] ] in
  checkb "vertex reuse rejected" false
    (Schedule.is_valid (Grid.graph grid) bad)

let test_detects_non_edge_swap () =
  let grid, _, _ = base_instance () in
  (* (0, 5) is a diagonal on a 4x4 grid: not a coupling edge. *)
  checkb "non-edge rejected" false
    (Schedule.is_valid (Grid.graph grid) [ [| (0, 5) |] ])

let test_detects_corrupted_sigmas () =
  (* Sigmas built for one permutation, used with another: either the
     precondition rejects them, or — when the uniqueness property happens
     to hold anyway — GridRoute must still route the *target* permutation
     correctly (the sigma family only steers round 1).  Both outcomes are
     sound; silent mis-routing is not. *)
  let grid = Grid.make ~rows:4 ~cols:4 in
  for seed = 1 to 10 do
    let pi1 = Generators.generate grid Generators.Random (Rng.create seed) in
    let pi2 =
      Generators.generate grid Generators.Random (Rng.create (100 + seed))
    in
    let sigmas = Local_grid_route.sigmas grid pi1 in
    if Grid_route.check_sigmas grid pi2 sigmas then begin
      let sched = Grid_route.route_with_sigmas grid pi2 sigmas in
      checkb "accepted sigmas still route the target" true
        (Schedule.realizes ~n:16 sched pi2)
    end
    else
      Alcotest.check_raises "rejected sigmas raise on use"
        (Invalid_argument "Grid_route.route_with_sigmas: invalid sigmas")
        (fun () -> ignore (Grid_route.route_with_sigmas grid pi2 sigmas))
  done

let test_detects_corrupted_circuit () =
  (* Dropping a SWAP from a transpiled circuit must break equivalence. *)
  let grid = Grid.make ~rows:2 ~cols:3 in
  let logical = Library.qft 6 in
  let result = transpile grid logical in
  let without_one_swap =
    let dropped = ref false in
    Circuit.create ~num_qubits:6
      (List.filter
         (fun g ->
           if (not !dropped) && Gate.is_swap g then begin
             dropped := true;
             false
           end
           else true)
         (Circuit.gates result.physical))
  in
  checki "one gate fewer" (Circuit.size result.physical - 1)
    (Circuit.size without_one_swap);
  let psi = Statevector.random_state (Rng.create 3) 6 in
  let good = Statevector.run result.physical psi in
  let bad = Statevector.run without_one_swap psi in
  checkb "corruption detected by simulator" false
    (Statevector.approx_equal good bad)

let test_validators_reject_garbage_text () =
  checkb "schedule" true (Result.is_error (Schedule.of_string "1-2 2-3\nfoo"));
  checkb "qasm" true (Result.is_error (Qasm.parse "qubits 2\ncx 0 0\n"))

(* ------------------------------------------------------ golden regression *)

(* Depths for fixed instances, locked on first release.  These protect
   against silent behavioral drift: any intentional algorithm change must
   update them consciously.  (Sizes/depths are deterministic: all RNG flows
   through seeds.) *)

let golden_cases =
  (* (side, workload, strategy, expected depth) *)
  [
    (8, Generators.Random, Strategy.Local, 19);
    (8, Generators.Random, Strategy.Naive, 20);
    (8, Generators.Block_local 2, Strategy.Local, 3);
    (8, Generators.Reversal, Strategy.Local, 16);
    (8, Generators.Reversal, Strategy.Naive, 16);
  ]

let test_golden_depths () =
  List.iter
    (fun (side, kind, strategy, expected) ->
      let grid = Grid.make ~rows:side ~cols:side in
      let pi = Generators.generate grid kind (Rng.create 12345) in
      let depth = Schedule.depth (Strategy.route strategy grid pi) in
      checki
        (Printf.sprintf "%dx%d %s %s" side side (Generators.name kind)
           (Strategy.name strategy))
        expected depth)
    golden_cases

let test_golden_rng_stream () =
  (* The SplitMix64 stream itself is part of the reproducibility contract. *)
  let rng = Rng.create 42 in
  let first = Rng.next_int64 rng in
  Alcotest.check Alcotest.int64 "first draw for seed 42"
    first
    (Rng.next_int64 (Rng.create 42))

let test_golden_reversal_structure () =
  (* Reversal of an 8x8 grid: both matching-based routers achieve
     16 = m + n layers; lock that structural constant. *)
  let grid = Grid.make ~rows:8 ~cols:8 in
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  let depth = Schedule.depth (route grid pi) in
  checki "reversal depth" 16 depth;
  checkb "within paper bound" true (depth <= (2 * 8) + 8)

let test_deterministic_end_to_end () =
  (* Same seed, same everything: the whole pipeline is reproducible. *)
  let run () =
    let grid = Grid.make ~rows:3 ~cols:3 in
    let c = Library.random_two_qubit (Rng.create 5) ~num_qubits:9 ~gates:30 in
    let r = transpile grid c in
    (Circuit.size r.physical, Circuit.depth r.physical,
     Layout.to_phys_array r.final)
  in
  let a = run () and b = run () in
  checkb "bit-identical reruns" true (a = b)

let () =
  Alcotest.run "robustness"
    [
      ( "failure injection",
        [
          Alcotest.test_case "dropped layer" `Quick test_detects_dropped_layer;
          Alcotest.test_case "duplicated layer" `Quick
            test_detects_duplicated_layer;
          Alcotest.test_case "reordered layers" `Quick
            test_detects_reordered_layers;
          Alcotest.test_case "non-matching layer" `Quick
            test_detects_non_matching_layer;
          Alcotest.test_case "non-edge swap" `Quick test_detects_non_edge_swap;
          Alcotest.test_case "corrupted sigmas" `Quick
            test_detects_corrupted_sigmas;
          Alcotest.test_case "corrupted circuit" `Quick
            test_detects_corrupted_circuit;
          Alcotest.test_case "garbage text" `Quick
            test_validators_reject_garbage_text;
        ] );
      ( "golden regression",
        [
          Alcotest.test_case "depths" `Quick test_golden_depths;
          Alcotest.test_case "rng stream" `Quick test_golden_rng_stream;
          Alcotest.test_case "reversal structure" `Quick
            test_golden_reversal_structure;
          Alcotest.test_case "deterministic pipeline" `Quick
            test_deterministic_end_to_end;
        ] );
    ]
