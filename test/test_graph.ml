(* Tests for Qr_graph: Graph, Grid, Product, Bfs, Distance. *)

module Graph = Qr_graph.Graph
module Grid = Qr_graph.Grid
module Product = Qr_graph.Product
module Bfs = Qr_graph.Bfs
module Distance = Qr_graph.Distance

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------------------------------------------------------- Graph *)

let test_graph_of_edges () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 1); (3, 0) ] in
  checki "vertices" 4 (Graph.num_vertices g);
  checki "edges" 3 (Graph.num_edges g);
  checki "degree 1" 2 (Graph.degree g 1);
  checkb "mem 1-2" true (Graph.mem_edge g 1 2);
  checkb "mem symmetric" true (Graph.mem_edge g 2 1);
  checkb "absent" false (Graph.mem_edge g 2 3)

let test_graph_rejects_loop () =
  Alcotest.check_raises "loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1) ]))

let test_graph_rejects_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Graph.of_edges: duplicate edge")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 1); (1, 0) ]))

let test_graph_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_graph_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.check
    Alcotest.(array int)
    "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_graph_edges_canonical () =
  let g = Graph.of_edges ~n:4 [ (3, 2); (1, 0) ] in
  Alcotest.check
    Alcotest.(list (pair int int))
    "u < v, lexicographic" [ (0, 1); (2, 3) ] (Graph.edges g)

let test_graph_path () =
  let g = Graph.path 5 in
  checki "edges" 4 (Graph.num_edges g);
  checki "endpoint degree" 1 (Graph.degree g 0);
  checki "inner degree" 2 (Graph.degree g 2);
  checkb "connected" true (Graph.is_connected g)

let test_graph_cycle () =
  let g = Graph.cycle 5 in
  checki "edges" 5 (Graph.num_edges g);
  for v = 0 to 4 do
    checki "2-regular" 2 (Graph.degree g v)
  done;
  checkb "wraps" true (Graph.mem_edge g 0 4)

let test_graph_cycle_small_rejected () =
  Alcotest.check_raises "C2"
    (Invalid_argument "Graph.cycle: need at least 3 vertices") (fun () ->
      ignore (Graph.cycle 2))

let test_graph_complete () =
  let g = Graph.complete 6 in
  checki "edges" 15 (Graph.num_edges g);
  checki "max degree" 5 (Graph.max_degree g)

let test_graph_star () =
  let g = Graph.star 7 in
  checki "edges" 6 (Graph.num_edges g);
  checki "center degree" 6 (Graph.degree g 0);
  checki "leaf degree" 1 (Graph.degree g 3)

let test_graph_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  checkb "disconnected" false (Graph.is_connected g)

let test_graph_empty_connected () =
  checkb "empty is connected" true (Graph.is_connected (Graph.of_edges ~n:0 []))

let test_graph_singleton_connected () =
  checkb "one vertex" true (Graph.is_connected (Graph.of_edges ~n:1 []))

let test_graph_fold_neighbors () =
  let g = Graph.star 4 in
  let sum = Graph.fold_neighbors g 0 (fun acc v -> acc + v) 0 in
  checki "sum of leaves" 6 sum

(* ----------------------------------------------------------------- Grid *)

let test_grid_dimensions () =
  let g = Grid.make ~rows:3 ~cols:5 in
  checki "rows" 3 (Grid.rows g);
  checki "cols" 5 (Grid.cols g);
  checki "size" 15 (Grid.size g);
  checki "edges of 3x5" ((2 * 5) + (3 * 4)) (Graph.num_edges (Grid.graph g))

let test_grid_index_coord_roundtrip () =
  let g = Grid.make ~rows:4 ~cols:7 in
  for v = 0 to Grid.size g - 1 do
    let r, c = Grid.coord g v in
    checki "roundtrip" v (Grid.index g r c)
  done

let test_grid_row_major () =
  let g = Grid.make ~rows:3 ~cols:4 in
  checki "(0,0)" 0 (Grid.index g 0 0);
  checki "(0,3)" 3 (Grid.index g 0 3);
  checki "(1,0)" 4 (Grid.index g 1 0);
  checki "(2,3)" 11 (Grid.index g 2 3)

let test_grid_adjacency () =
  let g = Grid.make ~rows:3 ~cols:3 in
  let graph = Grid.graph g in
  checkb "right neighbor" true
    (Graph.mem_edge graph (Grid.index g 1 1) (Grid.index g 1 2));
  checkb "down neighbor" true
    (Graph.mem_edge graph (Grid.index g 1 1) (Grid.index g 2 1));
  checkb "no diagonal" false
    (Graph.mem_edge graph (Grid.index g 0 0) (Grid.index g 1 1));
  checki "corner degree" 2 (Graph.degree graph (Grid.index g 0 0));
  checki "center degree" 4 (Graph.degree graph (Grid.index g 1 1))

let test_grid_manhattan_matches_bfs () =
  let g = Grid.make ~rows:4 ~cols:5 in
  let table = Bfs.all_pairs (Grid.graph g) in
  for u = 0 to Grid.size g - 1 do
    for v = 0 to Grid.size g - 1 do
      checki "closed form = BFS" table.(u).(v) (Grid.manhattan g u v)
    done
  done

let test_grid_transpose () =
  let g = Grid.make ~rows:2 ~cols:3 in
  let gt = Grid.transpose g in
  checki "rows swapped" 3 (Grid.rows gt);
  checki "cols swapped" 2 (Grid.cols gt);
  for v = 0 to Grid.size g - 1 do
    let r, c = Grid.coord g v in
    let r', c' = Grid.coord gt (Grid.transpose_vertex g v) in
    checki "row mirror" c r';
    checki "col mirror" r c'
  done

let test_grid_lines () =
  let g = Grid.make ~rows:3 ~cols:4 in
  Alcotest.check
    Alcotest.(array int)
    "row 1" [| 4; 5; 6; 7 |] (Grid.vertices_in_row g 1);
  Alcotest.check
    Alcotest.(array int)
    "col 2" [| 2; 6; 10 |] (Grid.vertices_in_col g 2)

let test_grid_degenerate () =
  let line = Grid.make ~rows:1 ~cols:6 in
  checki "path edges" 5 (Graph.num_edges (Grid.graph line));
  let dot = Grid.make ~rows:1 ~cols:1 in
  checki "single vertex" 0 (Graph.num_edges (Grid.graph dot))

let test_grid_rejects_empty () =
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Grid.make: dimensions must be positive") (fun () ->
      ignore (Grid.make ~rows:0 ~cols:3))

(* -------------------------------------------------------------- Product *)

let test_product_grid_isomorphic () =
  (* P_m x P_n must equal the grid graph, including flat indexing. *)
  let grid = Grid.make ~rows:3 ~cols:4 in
  let p = Product.of_grid grid in
  let pg = Product.graph p and gg = Grid.graph grid in
  checki "same vertices" (Graph.num_vertices gg) (Graph.num_vertices pg);
  checki "same edge count" (Graph.num_edges gg) (Graph.num_edges pg);
  Graph.iter_edges gg (fun u v ->
      checkb "edge present" true (Graph.mem_edge pg u v))

let test_product_cycle_path () =
  let p = Product.make (Graph.cycle 4) (Graph.path 3) in
  let g = Product.graph p in
  checki "vertices" 12 (Graph.num_vertices g);
  checki "edges" ((3 * 4) + (4 * 2)) (Graph.num_edges g);
  let u_mid = Product.index p 0 1 in
  checki "mid degree" 4 (Graph.degree g u_mid)

let test_product_index_coord () =
  let p = Product.make (Graph.path 3) (Graph.path 5) in
  for x = 0 to Product.size p - 1 do
    let u, v = Product.coord p x in
    checki "roundtrip" x (Product.index p u v)
  done

let test_product_transpose_vertex () =
  let p = Product.make (Graph.path 2) (Graph.path 3) in
  let pt = Product.transpose p in
  for x = 0 to Product.size p - 1 do
    let u, v = Product.coord p x in
    let v', u' = Product.coord pt (Product.transpose_vertex p x) in
    checki "left mirrored" u u';
    checki "right mirrored" v v'
  done

let test_product_edge_rule () =
  let p = Product.make (Graph.path 3) (Graph.path 3) in
  let g = Product.graph p in
  checkb "left edge" true
    (Graph.mem_edge g (Product.index p 0 0) (Product.index p 1 0));
  checkb "right edge" true
    (Graph.mem_edge g (Product.index p 0 0) (Product.index p 0 1));
  checkb "diagonal" false
    (Graph.mem_edge g (Product.index p 0 0) (Product.index p 1 1))

(* ------------------------------------------------------------------ Bfs *)

let test_bfs_distances_path () =
  let g = Graph.path 6 in
  let d = Bfs.distances g 0 in
  Alcotest.check Alcotest.(array int) "linear" [| 0; 1; 2; 3; 4; 5 |] d

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let d = Bfs.distances g 0 in
  checki "reachable" 1 d.(1);
  checkb "unreachable is max_int" true (d.(3) = max_int)

let test_bfs_shortest_path_valid () =
  let g = Grid.graph (Grid.make ~rows:4 ~cols:4) in
  let path = Bfs.shortest_path g 0 15 in
  checki "length = dist + 1" (Bfs.distance g 0 15 + 1) (List.length path);
  checki "starts" 0 (List.hd path);
  checki "ends" 15 (List.nth path (List.length path - 1));
  let rec adjacent = function
    | a :: (b :: _ as rest) -> Graph.mem_edge g a b && adjacent rest
    | _ -> true
  in
  checkb "consecutive adjacency" true (adjacent path)

let test_bfs_shortest_path_self () =
  let g = Graph.path 3 in
  Alcotest.check Alcotest.(list int) "trivial path" [ 1 ] (Bfs.shortest_path g 1 1)

let test_bfs_shortest_path_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.check_raises "no path" Not_found (fun () ->
      ignore (Bfs.shortest_path g 0 3))

let test_bfs_diameter () =
  checki "path diameter" 5 (Bfs.diameter (Graph.path 6));
  checki "cycle diameter" 3 (Bfs.diameter (Graph.cycle 6));
  checki "grid diameter" 5 (Bfs.diameter (Grid.graph (Grid.make ~rows:3 ~cols:4)));
  checki "complete diameter" 1 (Bfs.diameter (Graph.complete 5))

let test_bfs_eccentricity_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Bfs.eccentricity: disconnected graph") (fun () ->
      ignore (Bfs.eccentricity g 0))

let test_bfs_parents_walk () =
  let g = Grid.graph (Grid.make ~rows:3 ~cols:3) in
  let parent = Bfs.parents g 8 in
  let d = Bfs.distances g 8 in
  for v = 0 to 8 do
    let rec walk x steps = if x = 8 then steps else walk parent.(x) (steps + 1) in
    checki "walk length" d.(v) (walk v 0)
  done

(* ------------------------------------------------------------- Distance *)

let test_distance_grid_vs_graph () =
  let grid = Grid.make ~rows:3 ~cols:4 in
  let dg = Distance.of_grid grid in
  let db = Distance.of_graph (Grid.graph grid) in
  let dl = Distance.of_graph_lazy (Grid.graph grid) in
  for u = 0 to Grid.size grid - 1 do
    for v = 0 to Grid.size grid - 1 do
      checki "grid = table" (Distance.dist db u v) (Distance.dist dg u v);
      checki "lazy = table" (Distance.dist db u v) (Distance.dist dl u v)
    done
  done

let test_distance_product () =
  let g1 = Graph.cycle 4 and g2 = Graph.path 3 in
  let combined =
    Distance.of_product (Distance.of_graph g1) (Distance.of_graph g2)
  in
  let direct = Distance.of_graph (Product.graph (Product.make g1 g2)) in
  for u = 0 to 11 do
    for v = 0 to 11 do
      checki "product additivity" (Distance.dist direct u v)
        (Distance.dist combined u v)
    done
  done

let test_distance_bounds_checked () =
  let d = Distance.of_grid (Grid.make ~rows:2 ~cols:2) in
  Alcotest.check_raises "range"
    (Invalid_argument "Distance.dist: vertex out of range") (fun () ->
      ignore (Distance.dist d 0 7))

let grid_distance_property =
  QCheck.Test.make ~name:"grid manhattan = bfs on random grids" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let table = Bfs.all_pairs (Grid.graph grid) in
      let ok = ref true in
      for u = 0 to (m * n) - 1 do
        for v = 0 to (m * n) - 1 do
          if table.(u).(v) <> Grid.manhattan grid u v then ok := false
        done
      done;
      !ok)

let product_degree_property =
  QCheck.Test.make ~name:"product degree = sum of factor degrees" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (a, b) ->
      let g1 = Graph.path a and g2 = Graph.path b in
      let p = Product.make g1 g2 in
      let g = Product.graph p in
      let ok = ref true in
      for x = 0 to Product.size p - 1 do
        let u, v = Product.coord p x in
        if Graph.degree g x <> Graph.degree g1 u + Graph.degree g2 v then
          ok := false
      done;
      !ok)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qr_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges" `Quick test_graph_of_edges;
          Alcotest.test_case "rejects loop" `Quick test_graph_rejects_loop;
          Alcotest.test_case "rejects duplicate" `Quick test_graph_rejects_duplicate;
          Alcotest.test_case "rejects out of range" `Quick
            test_graph_rejects_out_of_range;
          Alcotest.test_case "neighbors sorted" `Quick test_graph_neighbors_sorted;
          Alcotest.test_case "edges canonical" `Quick test_graph_edges_canonical;
          Alcotest.test_case "path" `Quick test_graph_path;
          Alcotest.test_case "cycle" `Quick test_graph_cycle;
          Alcotest.test_case "cycle too small" `Quick test_graph_cycle_small_rejected;
          Alcotest.test_case "complete" `Quick test_graph_complete;
          Alcotest.test_case "star" `Quick test_graph_star;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected;
          Alcotest.test_case "empty connected" `Quick test_graph_empty_connected;
          Alcotest.test_case "singleton connected" `Quick
            test_graph_singleton_connected;
          Alcotest.test_case "fold_neighbors" `Quick test_graph_fold_neighbors;
        ] );
      ( "grid",
        [
          Alcotest.test_case "dimensions" `Quick test_grid_dimensions;
          Alcotest.test_case "index/coord roundtrip" `Quick
            test_grid_index_coord_roundtrip;
          Alcotest.test_case "row major" `Quick test_grid_row_major;
          Alcotest.test_case "adjacency" `Quick test_grid_adjacency;
          Alcotest.test_case "manhattan = BFS" `Quick test_grid_manhattan_matches_bfs;
          Alcotest.test_case "transpose" `Quick test_grid_transpose;
          Alcotest.test_case "rows/cols" `Quick test_grid_lines;
          Alcotest.test_case "degenerate" `Quick test_grid_degenerate;
          Alcotest.test_case "rejects empty" `Quick test_grid_rejects_empty;
        ] );
      ( "product",
        [
          Alcotest.test_case "grid isomorphic" `Quick test_product_grid_isomorphic;
          Alcotest.test_case "cylinder" `Quick test_product_cycle_path;
          Alcotest.test_case "index/coord" `Quick test_product_index_coord;
          Alcotest.test_case "transpose vertex" `Quick test_product_transpose_vertex;
          Alcotest.test_case "edge rule" `Quick test_product_edge_rule;
          qc product_degree_property;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path distances" `Quick test_bfs_distances_path;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "shortest path valid" `Quick test_bfs_shortest_path_valid;
          Alcotest.test_case "trivial path" `Quick test_bfs_shortest_path_self;
          Alcotest.test_case "disconnected path" `Quick
            test_bfs_shortest_path_disconnected;
          Alcotest.test_case "diameter" `Quick test_bfs_diameter;
          Alcotest.test_case "eccentricity disconnected" `Quick
            test_bfs_eccentricity_disconnected;
          Alcotest.test_case "parents walk" `Quick test_bfs_parents_walk;
        ] );
      ( "distance",
        [
          Alcotest.test_case "grid vs graph vs lazy" `Quick
            test_distance_grid_vs_graph;
          Alcotest.test_case "product" `Quick test_distance_product;
          Alcotest.test_case "bounds" `Quick test_distance_bounds_checked;
          qc grid_distance_property;
        ] );
    ]
