(* Tests for Qr_route.Local_grid_route (Algorithms 1 and 2 of the paper). *)

module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Generators = Qr_perm.Generators
module Schedule = Qr_route.Schedule
module Column_graph = Qr_route.Column_graph
module Grid_route = Qr_route.Grid_route
module Local = Qr_route.Local_grid_route
module Decompose = Qr_bipartite.Decompose
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let grids = [ (1, 1); (1, 6); (6, 1); (2, 2); (3, 5); (5, 3); (6, 6) ]

let test_routes_all_kinds () =
  let rng = Rng.create 1 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      List.iter
        (fun kind ->
          let pi = Generators.generate grid kind rng in
          let s = Local.route grid pi in
          checkb "valid" true (Schedule.is_valid (Grid.graph grid) s);
          checkb "realizes" true (Schedule.realizes ~n:(m * n) s pi))
        (Generators.paper_kinds grid @ [ Generators.Reversal ]))
    grids

let test_best_orientation_correct () =
  let rng = Rng.create 2 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      for _ = 1 to 5 do
        let pi = Perm.check (Rng.permutation rng (m * n)) in
        let s = Local.route_best_orientation grid pi in
        checkb "valid on original grid" true (Schedule.is_valid (Grid.graph grid) s);
        checkb "realizes" true (Schedule.realizes ~n:(m * n) s pi)
      done)
    grids

let test_best_orientation_no_worse () =
  let rng = Rng.create 3 in
  let grid = Grid.make ~rows:3 ~cols:7 in
  for _ = 1 to 10 do
    let pi = Perm.check (Rng.permutation rng 21) in
    let direct = Local.route grid pi in
    let best = Local.route_best_orientation grid pi in
    checkb "min of both orientations" true
      (Schedule.depth best <= Schedule.depth direct)
  done

let test_discovery_partitions_edges () =
  let rng = Rng.create 4 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      let cg = Column_graph.build grid pi in
      List.iter
        (fun strategy ->
          let matchings = Local.discover_matchings strategy cg in
          checki "m matchings" m (List.length matchings);
          checkb "partition of edges" true
            (Decompose.validate ~nl:n ~nr:n
               ~edges:(Column_graph.hk_edges cg) matchings))
        [ Local.Doubling; Local.Whole ])
    [ (2, 2); (4, 4); (3, 6); (6, 3); (1, 5) ]

let test_doubling_finds_row_local_at_w0 () =
  (* For a permutation whose every row maps to itself with distinct
     destination columns (row-wise cyclic shift), every matching can be
     found in a single-row band, and each matching's edges then live in
     one row. *)
  let grid = Grid.make ~rows:4 ~cols:4 in
  let pi =
    Qr_perm.Grid_perm.of_coord_map grid (fun (r, c) -> (r, (c + 1) mod 4))
  in
  let cg = Column_graph.build grid pi in
  let matchings = Local.discover_matchings Local.Doubling cg in
  checki "4 matchings" 4 (List.length matchings);
  List.iter
    (fun matching ->
      let rows =
        Array.to_list matching
        |> List.map (fun e -> Column_graph.src_row cg e)
        |> List.sort_uniq compare
      in
      checki "edges confined to one source row" 1 (List.length rows))
    matchings

let test_delta_metric () =
  let grid = Grid.make ~rows:3 ~cols:2 in
  (* Identity: column multigraph has edges j->j labeled (i,i). *)
  let pi = Perm.identity 6 in
  let cg = Column_graph.build grid pi in
  (* Matching of the two row-0 edges: labels (0,0) twice. *)
  let matching = [| Grid.index grid 0 0; Grid.index grid 0 1 |] in
  checki "delta at row 0" 0 (Local.delta cg matching 0);
  checki "delta at row 1" 4 (Local.delta cg matching 1);
  checki "delta at row 2" 8 (Local.delta cg matching 2)

let test_mcbbm_assignment_is_permutation () =
  let rng = Rng.create 5 in
  let grid = Grid.make ~rows:5 ~cols:4 in
  let pi = Perm.check (Rng.permutation rng 20) in
  let cg = Column_graph.build grid pi in
  let matchings = Local.discover_matchings Local.Doubling cg in
  let rows = Local.assign_rows Local.Mcbbm cg matchings in
  checkb "row assignment is a permutation" true (Perm.is_permutation rows)

let test_mcbbm_bottleneck_no_worse_than_arbitrary () =
  (* The MCBBM assignment minimizes the max Delta, so it is <= the max
     Delta of the arbitrary assignment. *)
  let rng = Rng.create 6 in
  for _ = 1 to 10 do
    let grid = Grid.make ~rows:5 ~cols:5 in
    let pi = Perm.check (Rng.permutation rng 25) in
    let cg = Column_graph.build grid pi in
    let matchings = Local.discover_matchings Local.Doubling cg in
    let max_delta rows =
      List.mapi (fun k m -> Local.delta cg m rows.(k)) matchings
      |> List.fold_left max 0
    in
    let mcbbm = Local.assign_rows Local.Mcbbm cg matchings in
    let arbitrary = Local.assign_rows Local.Arbitrary cg matchings in
    checkb "bottleneck optimal" true (max_delta mcbbm <= max_delta arbitrary)
  done

let test_row_local_permutation_is_cheap () =
  (* Cyclic column shift within each row: a locality-aware router should
     route it in about n layers (one row phase), far below the 2m + n
     worst case, and crucially with empty column phases. *)
  let grid = Grid.make ~rows:8 ~cols:8 in
  let pi =
    Qr_perm.Grid_perm.of_coord_map grid (fun (r, c) -> (r, (c + 1) mod 8))
  in
  let s = Local.route grid pi in
  checkb "no column phase needed" true (Schedule.depth s <= 8)

let test_block_local_beats_or_ties_naive_usually () =
  (* The headline behaviour: on block-local workloads the locality-aware
     router should never be dramatically worse than naive; we assert the
     paper's "can always be made no worse" via the min with naive. *)
  let rng = Rng.create 7 in
  let grid = Grid.make ~rows:8 ~cols:8 in
  for _ = 1 to 5 do
    let pi = Generators.generate grid (Generators.Block_local 2) rng in
    let local = Local.route_best_orientation grid pi in
    let naive = Grid_route.route_naive grid pi in
    let best = min (Schedule.depth local) (Schedule.depth naive) in
    checkb "combined strategy no worse than naive" true
      (best <= Schedule.depth naive)
  done

let test_ablation_switches_work () =
  let rng = Rng.create 8 in
  let grid = Grid.make ~rows:4 ~cols:6 in
  let pi = Perm.check (Rng.permutation rng 24) in
  List.iter
    (fun (discovery, assignment) ->
      let s = Local.route ~discovery ~assignment grid pi in
      checkb "every configuration routes" true (Schedule.realizes ~n:24 s pi))
    [
      (Local.Doubling, Local.Mcbbm);
      (Local.Doubling, Local.Arbitrary);
      (Local.Whole, Local.Mcbbm);
      (Local.Whole, Local.Arbitrary);
    ]

let local_route_property =
  QCheck.Test.make ~name:"LocalGridRoute correct on random instances"
    ~count:150
    QCheck.(triple (int_range 1 7) (int_range 1 7) (int_range 0 100000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let rng = Rng.create seed in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      let s = Local.route grid pi in
      Schedule.is_valid (Grid.graph grid) s
      && Schedule.realizes ~n:(m * n) s pi
      && Schedule.depth s <= (2 * m) + n)

let best_orientation_property =
  QCheck.Test.make ~name:"Algorithm 1 correct and bounded by both orientations"
    ~count:100
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 0 100000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let rng = Rng.create seed in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      let s = Local.route_best_orientation grid pi in
      Schedule.is_valid (Grid.graph grid) s
      && Schedule.realizes ~n:(m * n) s pi
      && Schedule.depth s <= min ((2 * m) + n) ((2 * n) + m))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "local_grid_route"
    [
      ( "local_grid_route",
        [
          Alcotest.test_case "routes all kinds" `Quick test_routes_all_kinds;
          Alcotest.test_case "best orientation correct" `Quick
            test_best_orientation_correct;
          Alcotest.test_case "best orientation no worse" `Quick
            test_best_orientation_no_worse;
          Alcotest.test_case "discovery partitions" `Quick
            test_discovery_partitions_edges;
          Alcotest.test_case "w=0 bands for row-local" `Quick
            test_doubling_finds_row_local_at_w0;
          Alcotest.test_case "delta metric" `Quick test_delta_metric;
          Alcotest.test_case "mcbbm permutation" `Quick
            test_mcbbm_assignment_is_permutation;
          Alcotest.test_case "mcbbm bottleneck optimal" `Quick
            test_mcbbm_bottleneck_no_worse_than_arbitrary;
          Alcotest.test_case "row-local cheap" `Quick
            test_row_local_permutation_is_cheap;
          Alcotest.test_case "block-local vs naive" `Quick
            test_block_local_beats_or_ties_naive_usually;
          Alcotest.test_case "ablation switches" `Quick test_ablation_switches_work;
          qc local_route_property;
          qc best_orientation_property;
        ] );
    ]
